// Model-sensitivity ablation (not a paper figure): how robust are the
// headline comparisons to the simulation's latency parameters? Sweeps the
// injected RPC round trip and re-measures the Mantle-vs-Tectonic objstat gap,
// and sweeps the delta-record compaction cadence to expose its dirstat cost.
//
// Expected shape: the Mantle/Tectonic ratio *grows* with RTT (more round
// trips hurt more), stays >1 even at tiny RTTs (capacity effects remain),
// and dirstat latency is insensitive to compaction cadence thanks to
// merge-on-read.

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

double MeasureObjstat(SystemKind kind, int64_t rtt_nanos, const BenchConfig& config) {
  NetworkOptions net = BenchNetworkOptions();
  net.rtt_nanos = rtt_nanos;
  SystemInstance instance;
  instance.network = std::make_unique<Network>(net);
  if (kind == SystemKind::kMantle) {
    MantleOptions options;
    options.tafdb = BenchTafDbOptions();
    options.index.follower_read = true;
    options.index.raft = BenchRaftOptions();
    instance.service =
        std::make_unique<MantleService>(instance.network.get(), std::move(options));
  } else {
    TectonicOptions options;
    options.tafdb = BenchTafDbOptions();
    instance.service = std::make_unique<TectonicService>(instance.network.get(), options);
  }
  NamespaceSpec spec;
  spec.num_dirs = config.ns_dirs / 2;
  spec.num_objects = config.ns_objects / 2;
  GeneratedNamespace ns = PopulateNamespace(instance.get(), spec);
  MdtestOps ops(instance.get(), &ns);
  DriverOptions driver;
  driver.threads = config.threads;
  driver.duration_nanos = config.DurationNanos();
  driver.warmup_nanos = config.WarmupNanos();
  return RunClosedLoop(driver, ops.ObjStat()).Throughput();
}

void RttSweep(const BenchConfig& config) {
  std::printf("\n-- objstat throughput vs injected RPC round trip --\n");
  Table table({"rtt", "Tectonic", "Mantle", "Mantle/Tectonic"});
  for (int64_t rtt_us : {20, 80, 240}) {
    const double tectonic = MeasureObjstat(SystemKind::kTectonic, rtt_us * 1000, config);
    const double mantle = MeasureObjstat(SystemKind::kMantle, rtt_us * 1000, config);
    table.AddRow({std::to_string(rtt_us) + " us", FormatOps(tectonic), FormatOps(mantle),
                  FormatDouble(tectonic > 0 ? mantle / tectonic : 0, 2) + "x"});
  }
  table.Print();
}

void CompactionSweep(const BenchConfig& config) {
  std::printf("\n-- dirstat under contended mkdir vs compaction cadence --\n");
  Table table({"compaction interval", "dirstat mean", "mkdir throughput", "pending deltas"});
  for (int64_t interval_us : {500, 5'000, 50'000}) {
    SystemInstance instance;
    instance.network = std::make_unique<Network>(BenchNetworkOptions());
    MantleOptions options;
    options.tafdb = BenchTafDbOptions();
    options.tafdb.force_delta_records = true;
    options.tafdb.compaction_interval_nanos = interval_us * 1000;
    options.index.follower_read = true;
    options.index.raft = BenchRaftOptions();
    auto mantle = std::make_unique<MantleService>(instance.network.get(), std::move(options));
    MantleService* service = mantle.get();
    instance.service = std::move(mantle);

    NamespaceSpec spec;
    spec.num_dirs = config.ns_dirs / 8;
    spec.num_objects = config.ns_objects / 8;
    GeneratedNamespace ns = PopulateNamespace(instance.get(), spec);
    MdtestOps ops(instance.get(), &ns);

    // Background contended mkdirs generate a steady stream of delta records
    // while dirstat reads merge them.
    DriverOptions mkdir_driver;
    mkdir_driver.threads = config.threads / 2;
    mkdir_driver.duration_nanos = config.DurationNanos();
    mkdir_driver.warmup_nanos = config.WarmupNanos();
    OpFn mkdir_fn = ops.Mkdir("/storm", config.threads / 2, /*shared=*/true);
    WorkloadResult mkdir_result;
    std::thread mkdir_thread(
        [&]() { mkdir_result = RunClosedLoop(mkdir_driver, mkdir_fn); });

    DriverOptions stat_driver;
    stat_driver.threads = config.threads / 2;
    stat_driver.duration_nanos = config.DurationNanos();
    stat_driver.warmup_nanos = config.WarmupNanos();
    WorkloadResult stat_result = RunClosedLoop(stat_driver, ops.DirStat());
    mkdir_thread.join();

    table.AddRow({std::to_string(interval_us / 1000) + "." +
                      std::to_string((interval_us % 1000) / 100) + " ms",
                  FormatMicros(stat_result.total.Mean()), FormatOps(mkdir_result.Throughput()),
                  FormatCount(service->tafdb()->PendingCompactions())});
  }
  table.Print();
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Ablation", "simulation-model sensitivity",
              "conclusions should survive RTT changes; compaction cadence ~free");
  RttSweep(config);
  CompactionSweep(config);
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
