// Batched & coalesced read path (ISSUE 8): batch-size sweep of MultiStat
// (Mantle fast path vs the contract's looped default) and a skewed
// hot-directory lookup workload with the singleflight coalescer on vs off.
//
// Expected shape: the fast path's advantage grows with batch size (ONE
// IndexNode resolve + one TafDB RPC per touched shard vs 2 RPCs per path);
// at batch 64 it clears 3x the looped default. On the skewed workload,
// coalescing collapses duplicate in-flight resolves on the IndexNode leader
// and clears 1.5x the uncoalesced run.
//
// Filters for smoke runs:
//   MANTLE_BENCH_BATCH_SIZES   - comma-separated subset of 1,4,16,64,256
//   MANTLE_BENCH_BATCH_THREADS - client threads for the sweep (default 8:
//                                batching substitutes for client concurrency,
//                                so the sweep runs at modest thread counts;
//                                the coalescing part keeps the global default,
//                                since singleflight needs concurrent
//                                duplicates to collapse)

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/common/config.h"

namespace mantle {
namespace {

// Summary values exported as a machine-readable line for bench_snapshot.sh.
struct SweepPoint {
  size_t batch = 0;
  double batched_paths_per_sec = 0;
  double looped_paths_per_sec = 0;
  double batched_rpcs_per_path = 0;
  double looped_rpcs_per_path = 0;
};

SystemInstance MakeMantleWithCoalesce(bool enable) {
  SystemInstance instance;
  instance.network = std::make_unique<Network>(BenchNetworkOptions());
  MantleOptions options;
  options.tafdb = BenchTafDbOptions();
  options.index.num_voters = 3;
  options.index.raft = BenchRaftOptions();
  options.index.coalesce.enable = enable;
  auto mantle = std::make_unique<MantleService>(instance.network.get(), std::move(options));
  instance.mantle = mantle.get();
  instance.service = std::move(mantle);
  return instance;
}

// One batch op per closed-loop iteration: MultiStat over `batch` paths taken
// from a window of the namespace. The pool is sorted so a window looks like a
// real batched stat - the stat-after-list pattern where a client lists a
// directory and stats its entries, so most paths in a batch are siblings.
// `fast` selects the Mantle override; otherwise the qualified call runs the
// contract's looped default on the same service.
OpFn BatchStatOp(MantleService* mantle, const GeneratedNamespace* ns, size_t batch,
                 bool fast) {
  auto pool = std::make_shared<std::vector<std::string>>(ns->objects);
  std::sort(pool->begin(), pool->end());
  return [mantle, pool, batch, fast](int, uint64_t, Rng& rng) -> OpResult {
    const size_t span_max = pool->size() - batch;
    const size_t offset = static_cast<size_t>(rng.Next()) % span_max;
    const std::span<const std::string> paths(pool->data() + offset, batch);
    const MultiOpResult result =
        fast ? mantle->MultiStat(paths) : mantle->MetadataService::MultiStat(paths);
    OpResult summary;
    summary.status = result.all_ok() ? Status::Ok() : result.results.front().status;
    summary.breakdown = result.breakdown;
    summary.rpcs = result.rpcs;
    summary.retries = result.retries;
    return summary;
  };
}

std::vector<SweepPoint> RunBatchSweep(const BenchConfig& config) {
  std::printf("\n-- batch sweep: MultiStat fast path vs looped default --\n");
  static const size_t kBatches[] = {1, 4, 16, 64, 256};
  const std::string filter = EnvString("MANTLE_BENCH_BATCH_SIZES", "");
  std::vector<SweepPoint> points;
  Table table({"batch", "mode", "batches/s", "paths/s", "rpcs/path", "p50", "p99", "errors"});
  for (size_t batch : kBatches) {
    if (!filter.empty() &&
        ("," + filter + ",").find("," + std::to_string(batch) + ",") == std::string::npos) {
      continue;
    }
    SweepPoint point;
    point.batch = batch;
    for (const bool fast : {false, true}) {
      SystemInstance system = MakeSystem(SystemKind::kMantle);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs;
      spec.num_objects = config.ns_objects;
      GeneratedNamespace ns = PopulateNamespace(system.get(), spec);

      DriverOptions driver;
      driver.threads = static_cast<int>(EnvInt("MANTLE_BENCH_BATCH_THREADS", 8));
      driver.duration_nanos = config.DurationNanos();
      driver.warmup_nanos = config.WarmupNanos();
      WorkloadResult result =
          RunClosedLoop(driver, BatchStatOp(system.mantle, &ns, batch, fast));

      const double paths_per_sec = result.Throughput() * static_cast<double>(batch);
      const double rpcs_per_path = result.MeanRpcsPerOp() / static_cast<double>(batch);
      if (fast) {
        point.batched_paths_per_sec = paths_per_sec;
        point.batched_rpcs_per_path = rpcs_per_path;
      } else {
        point.looped_paths_per_sec = paths_per_sec;
        point.looped_rpcs_per_path = rpcs_per_path;
      }
      table.AddRow({std::to_string(batch), fast ? "batched" : "looped",
                    FormatOps(result.Throughput()), FormatOps(paths_per_sec),
                    FormatDouble(rpcs_per_path), FormatMicros(result.total.Percentile(0.5)),
                    FormatMicros(result.total.Percentile(0.99)),
                    FormatCount(result.errors)});
    }
    points.push_back(point);
  }
  table.Print();
  for (const SweepPoint& point : points) {
    if (point.looped_paths_per_sec > 0) {
      std::printf("batch=%zu speedup: %.2fx\n", point.batch,
                  point.batched_paths_per_sec / point.looped_paths_per_sec);
    }
  }
  return points;
}

// Skewed hot-directory lookups: most ops resolve the same few hot paths, the
// exact duplicate-in-flight pattern singleflight collapses on the leader.
double RunSkewedLookups(const BenchConfig& config, bool coalesce) {
  SystemInstance system = MakeMantleWithCoalesce(coalesce);
  MetadataService* service = system.get();
  // A deep hot directory (depth 10, like the mdtest runs) with a handful of
  // hot objects, plus a spread of cold siblings for the unskewed tail.
  std::string hot_dir;
  for (int level = 0; level < 10; ++level) {
    hot_dir += "/h" + std::to_string(level);
    if (!service->BulkLoadDir(hot_dir).ok()) {
      return 0;
    }
  }
  std::vector<std::string> lookup_paths;
  for (int i = 0; i < 4; ++i) {
    const std::string path = hot_dir + "/hot" + std::to_string(i);
    if (!service->BulkLoadObject(path, 1).ok()) {
      return 0;
    }
    // 90% of samples land on the 4 hot paths.
    for (int weight = 0; weight < 18; ++weight) {
      lookup_paths.push_back(path);
    }
  }
  for (int i = 0; i < 8; ++i) {
    const std::string path = hot_dir + "/cold" + std::to_string(i);
    if (!service->BulkLoadObject(path, 1).ok()) {
      return 0;
    }
    lookup_paths.push_back(path);
  }
  GeneratedNamespace empty_ns;
  MdtestOps ops(service, &empty_ns);
  DriverOptions driver;
  driver.threads = config.threads;
  driver.duration_nanos = config.DurationNanos();
  driver.warmup_nanos = config.WarmupNanos();
  WorkloadResult result = RunClosedLoop(driver, ops.LookupPaths(lookup_paths));
  Table table(WorkloadColumns(coalesce ? "coalesce=on" : "coalesce=off"));
  table.AddRow(WorkloadRow(coalesce ? "skewed-hot-dir" : "skewed-hot-dir", result));
  table.Print();
  return result.Throughput();
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Batch read", "batched MultiStat sweep + coalesced hot-directory lookups",
              "expect batched >= 3x looped at batch 64; coalesce on >= 1.5x off");

  const std::vector<SweepPoint> sweep = RunBatchSweep(config);

  std::printf("\n-- skewed hot-directory lookups: singleflight coalescing --\n");
  const double off = RunSkewedLookups(config, false);
  const double on = RunSkewedLookups(config, true);
  if (off > 0) {
    std::printf("coalesce speedup: %.2fx\n", on / off);
  }

  // Machine-readable summary consumed by scripts/bench_snapshot.sh.
  std::printf("\nBATCH_READ_SUMMARY {\"sweep\":[");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& point = sweep[i];
    std::printf("%s{\"batch\":%zu,\"batched_paths_per_sec\":%.1f,"
                "\"looped_paths_per_sec\":%.1f,\"batched_rpcs_per_path\":%.3f,"
                "\"looped_rpcs_per_path\":%.3f}",
                i == 0 ? "" : ",", point.batch, point.batched_paths_per_sec,
                point.looped_paths_per_sec, point.batched_rpcs_per_path,
                point.looped_rpcs_per_path);
  }
  std::printf("],\"coalesce_off_ops_per_sec\":%.1f,\"coalesce_on_ops_per_sec\":%.1f}\n", off,
              on);
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
