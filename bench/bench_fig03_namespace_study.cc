// Figure 3: characteristics of real-world namespaces.
//
// The paper profiles five production namespaces: >2B entries each, 82-92%
// objects, average directory depth ~10.6-11.9 with tails to depth 95. We
// regenerate five harness-scaled namespaces with the same shape parameters
// and report (a) entry composition and (b) the access-depth distribution.

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/common/path.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 3", "characteristics of five generated namespaces",
              "expect ~90% objects and mean access depth ~10-12 with long tails");

  struct NsShape {
    const char* name;
    double object_share;  // of total entries
    int mean_depth;
    int max_depth;
  };
  static const NsShape kShapes[] = {{"ns1", 0.90, 11, 40},
                                    {"ns2", 0.917, 11, 48},
                                    {"ns3", 0.82, 10, 36},
                                    {"ns4", 0.88, 10, 95},
                                    {"ns5", 0.91, 11, 44}};

  Table table({"namespace", "entries", "objects", "dirs", "obj %", "avg dir depth",
               "avg access depth", "p50 access", "max depth"});
  for (const NsShape& shape : kShapes) {
    const uint64_t total = config.ns_dirs + config.ns_objects;
    NamespaceSpec spec;
    spec.num_objects = static_cast<uint64_t>(total * shape.object_share);
    spec.num_dirs = total - spec.num_objects;
    spec.mean_depth = shape.mean_depth;
    spec.max_depth = shape.max_depth;
    spec.depth_stddev = 3;
    spec.seed = 1000 + static_cast<uint64_t>(shape.mean_depth) * 17 +
                static_cast<uint64_t>(shape.max_depth);
    GeneratedNamespace ns = GenerateNamespace(spec);

    // Access depth = depth of object paths (what applications look up).
    Histogram access_depth;
    int max_depth = 0;
    for (const auto& object : ns.objects) {
      const int depth = static_cast<int>(PathDepth(object));
      access_depth.Record(depth);
      max_depth = std::max(max_depth, depth);
    }
    table.AddRow({shape.name, FormatCount(ns.dirs.size() + ns.objects.size()),
                  FormatCount(ns.objects.size()), FormatCount(ns.dirs.size()),
                  FormatDouble(100.0 * static_cast<double>(ns.objects.size()) /
                                   static_cast<double>(ns.dirs.size() + ns.objects.size()),
                               1) +
                      "%",
                  FormatDouble(ns.AverageDirDepth(), 1), FormatDouble(access_depth.Mean(), 1),
                  FormatDouble(static_cast<double>(access_depth.Percentile(50)), 0),
                  std::to_string(max_depth)});
  }
  table.Print();
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
