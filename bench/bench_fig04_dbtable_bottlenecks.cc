// Figure 4: performance analysis of the legacy DBtable-based COSS metadata
// service (the §3 namespace-behaviour study).
//   (a) latency breakdown: the lookup phase dominates objstat/dirstat (~90%)
//       and delete (~63%).
//   (b) mkdir/dirrename throughput collapses by ~99% when all threads write
//       one shared directory (distributed 2PC abort/retry storms).

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 4", "bottlenecks of the DBtable-based metadata service",
              "(a) lookup dominates reads; (b) shared-directory collapse");

  // --- (a) latency breakdown ------------------------------------------------
  std::printf("\n-- (a) latency breakdown (DBtable, depth~10) --\n");
  {
    SystemInstance system = MakeSystem(SystemKind::kDbTable);
    NamespaceSpec spec;
    spec.num_dirs = config.ns_dirs;
    spec.num_objects = config.ns_objects;
    GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
    MdtestOps ops(system.get(), &ns);

    DriverOptions driver;
    driver.threads = config.threads;
    driver.duration_nanos = config.DurationNanos();
        driver.warmup_nanos = config.WarmupNanos();

    Table table({"op", "lookup", "execute", "total", "lookup %"});
    struct Cell {
      const char* label;
      OpFn fn;
    };
    std::vector<Cell> cells;
    cells.push_back({"objstat", ops.ObjStat()});
    cells.push_back({"dirstat", ops.DirStat()});
    cells.push_back({"delete", ops.CreateDelete("/bench_del", config.threads)});
    for (auto& cell : cells) {
      WorkloadResult result = RunClosedLoop(driver, cell.fn);
      const double lookup = result.lookup.Mean();
      const double total = result.total.Mean();
      table.AddRow({cell.label, FormatMicros(lookup), FormatMicros(result.execute.Mean()),
                    FormatMicros(total),
                    FormatDouble(total > 0 ? 100.0 * lookup / total : 0, 1) + "%"});
    }
    table.Print();
  }

  // --- (b) shared-directory contention ---------------------------------------
  std::printf("\n-- (b) directory modification contention (DBtable) --\n");
  {
    Table table({"op", "no conflict", "all conflict", "reduction"});
    // The paper's study drives 512 threads; saturate the contended row by
    // running this part at 4x the configured client count.
    const int storm_threads = config.threads * 4;
    for (bool rename : {false, true}) {
      double results[2] = {0, 0};
      uint64_t retry_counts[2] = {0, 0};
      for (int shared = 0; shared < 2; ++shared) {
        SystemInstance system = MakeSystem(SystemKind::kDbTable);
        NamespaceSpec spec;
        spec.num_dirs = config.ns_dirs / 4;
        spec.num_objects = config.ns_objects / 4;
        GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
        MdtestOps ops(system.get(), &ns);
        DriverOptions driver;
        driver.threads = storm_threads;
        driver.duration_nanos = config.DurationNanos();
        driver.warmup_nanos = config.WarmupNanos();
        OpFn fn = rename ? ops.DirRename("/bench_rn", storm_threads, shared == 1)
                         : ops.Mkdir("/bench_mk", storm_threads, shared == 1);
        WorkloadResult result = RunClosedLoop(driver, fn);
        results[shared] = result.Throughput();
        retry_counts[shared] = result.retries;
      }
      const double reduction =
          results[0] > 0 ? 100.0 * (1.0 - results[1] / results[0]) : 0;
      table.AddRow({rename ? "dirrename" : "mkdir", FormatOps(results[0]),
                    FormatOps(results[1]), FormatDouble(reduction, 1) + "%"});
      std::printf("  (%s retries: no-conflict=%llu, all-conflict=%llu)\n",
                  rename ? "dirrename" : "mkdir",
                  static_cast<unsigned long long>(retry_counts[0]),
                  static_cast<unsigned long long>(retry_counts[1]));
    }
    table.Print();
  }
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
