// Figure 10: completion time of the two real-world application workloads
// (Analytics = Spark ad-hoc queries with a rename commit storm; Audio =
// AI audio preprocessing, lookup-heavy and conflict-free), with data access
// disabled (a) and enabled (b), across all four systems.
//
// Expected shape: Analytics punishes contended renames (Mantle far ahead of
// InfiniFS/Tectonic; LocoFS second); Audio rewards fast lookups (ordering
// Tectonic worst -> Mantle best); enabling data access compresses the Audio
// gap but barely moves Analytics.

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/workload/applications.h"

namespace mantle {
namespace {

void RunApps(const BenchConfig& config, bool with_data) {
  std::printf("\n-- completion time, data access %s --\n", with_data ? "ENABLED" : "disabled");
  static const SystemKind kSystems[] = {SystemKind::kTectonic, SystemKind::kInfiniFs,
                                        SystemKind::kLocoFs, SystemKind::kMantle};
  Table table({"system", "Analytics", "Audio", "analytics errs", "audio errs"});
  for (SystemKind kind : kSystems) {
    double analytics_seconds = 0;
    double audio_seconds = 0;
    uint64_t analytics_errors = 0;
    uint64_t audio_errors = 0;
    {
      SystemInstance system = MakeSystem(kind);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs / 8;
      spec.num_objects = config.ns_objects / 8;
      PopulateNamespace(system.get(), spec);
      AnalyticsOptions options;
      options.queries = config.quick ? 2 : 4;
      options.subtasks_per_query = config.quick ? 16 : 48;
      options.threads = config.threads / 2;
      options.data.enabled = with_data;
      AppResult result = RunAnalytics(system.get(), "/spark", options);
      analytics_seconds = result.completion_seconds;
      analytics_errors = result.errors;
    }
    {
      SystemInstance system = MakeSystem(kind);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs / 8;
      spec.num_objects = config.ns_objects / 8;
      PopulateNamespace(system.get(), spec);
      AudioOptions options;
      options.input_objects = config.quick ? 300 : 1'500;
      options.threads = config.threads / 2;
      options.data.enabled = with_data;
      AppResult result = RunAudio(system.get(), "/audio", options);
      audio_seconds = result.completion_seconds;
      audio_errors = result.errors;
    }
    table.AddRow({SystemName(kind), FormatDouble(analytics_seconds, 2) + " s",
                  FormatDouble(audio_seconds, 2) + " s", FormatCount(analytics_errors),
                  FormatCount(audio_errors)});
  }
  table.Print();
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 10", "application completion time (Analytics / Audio)",
              "expect Mantle shortest in every cell");
  RunApps(config, /*with_data=*/false);
  RunApps(config, /*with_data=*/true);
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
