// Figure 11: CDFs of metadata operation latency inside the application
// workloads (metadata-only): mkdir and dirrename from Analytics, objstat and
// dirstat from Audio/Analytics read-back, for all four systems.
//
// Expected shape: Mantle's curves are tight and left-most; InfiniFS shows a
// broad dirrename distribution with heavy tails (retry storms); Tectonic and
// LocoFS mkdir/dirrename curves nearly overlap (both serialize on the shared
// directory), LocoFS slightly ahead.

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/workload/applications.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 11", "latency CDFs of application metadata operations",
              "percentile points per op; expect Mantle left-most and tight");

  static const SystemKind kSystems[] = {SystemKind::kTectonic, SystemKind::kInfiniFs,
                                        SystemKind::kLocoFs, SystemKind::kMantle};
  for (SystemKind kind : kSystems) {
    std::printf("\n-- %s --\n", SystemName(kind));
    SystemInstance system = MakeSystem(kind);
    NamespaceSpec spec;
    spec.num_dirs = config.ns_dirs / 8;
    spec.num_objects = config.ns_objects / 8;
    PopulateNamespace(system.get(), spec);

    AnalyticsOptions analytics;
    analytics.queries = config.quick ? 2 : 4;
    analytics.subtasks_per_query = config.quick ? 16 : 48;
    analytics.threads = config.threads / 2;
    AppResult analytics_result = RunAnalytics(system.get(), "/spark", analytics);

    AudioOptions audio;
    audio.input_objects = config.quick ? 300 : 1'500;
    audio.threads = config.threads / 2;
    AppResult audio_result = RunAudio(system.get(), "/audio", audio);

    PrintCdf("(a) mkdir      [Analytics]", analytics_result.mkdir_latency);
    PrintCdf("(b) dirrename  [Analytics]", analytics_result.rename_latency);
    PrintCdf("(c) objstat    [Audio]", audio_result.objstat_latency);
    PrintCdf("(d) dirstat    [Analytics]", analytics_result.dirstat_latency);
  }
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
