// Figure 12: throughput of object operations and directory read operations
// (create, delete, objstat, dirstat) across Tectonic, InfiniFS, LocoFS and
// Mantle.
//
// Expected shape (paper §6.3): Tectonic < InfiniFS < LocoFS < Mantle for the
// stat-style operations; for create, LocoFS approaches Mantle because the
// data-layer attribute updates shrink the resolution share.

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 12", "object + directory read operation throughput",
              "expect Tectonic < InfiniFS < LocoFS < Mantle (create: LocoFS ~ Mantle)");

  static const SystemKind kSystems[] = {SystemKind::kTectonic, SystemKind::kInfiniFs,
                                        SystemKind::kLocoFs, SystemKind::kMantle};
  static const char* kOps[] = {"create", "delete", "objstat", "dirstat"};

  for (const char* op : kOps) {
    std::printf("\n-- %s --\n", op);
    Table table(WorkloadColumns());
    for (SystemKind kind : kSystems) {
      SystemInstance system = MakeSystem(kind);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs;
      spec.num_objects = config.ns_objects;
      GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
      MdtestOps ops(system.get(), &ns);

      DriverOptions driver;
      driver.threads = config.threads;
      driver.duration_nanos = config.DurationNanos();
      driver.warmup_nanos = config.WarmupNanos();

      OpFn fn;
      if (std::string(op) == "create") {
        fn = ops.Create("/bench_create", config.threads);
      } else if (std::string(op) == "delete") {
        fn = ops.CreateDelete("/bench_delete", config.threads);
      } else if (std::string(op) == "objstat") {
        fn = ops.ObjStat();
      } else {
        fn = ops.DirStat();
      }
      WorkloadResult result = RunClosedLoop(driver, fn);
      table.AddRow(WorkloadRow(SystemName(kind), result));
    }
    table.Print();
  }
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
