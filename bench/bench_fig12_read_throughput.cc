// Figure 12: throughput of object operations and directory read operations
// (create, delete, objstat, dirstat) across Tectonic, InfiniFS, LocoFS and
// Mantle.
//
// Expected shape (paper §6.3): Tectonic < InfiniFS < LocoFS < Mantle for the
// stat-style operations; for create, LocoFS approaches Mantle because the
// data-layer attribute updates shrink the resolution share.

// Filters for smoke runs (comma-separated, case-sensitive, empty = all):
//   MANTLE_BENCH_OPS      - subset of create,delete,objstat,dirstat
//   MANTLE_BENCH_SYSTEMS  - subset of Tectonic,InfiniFS,LocoFS,Mantle

#include <cstdio>
#include <string>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/common/config.h"

namespace mantle {
namespace {

// True if `list` is empty or contains `name` as a comma-separated element.
bool ListSelects(const std::string& list, const std::string& name) {
  if (list.empty()) {
    return true;
  }
  size_t pos = 0;
  while (pos <= list.size()) {
    const size_t comma = list.find(',', pos);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (list.compare(pos, end - pos, name) == 0) {
      return true;
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return false;
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 12", "object + directory read operation throughput",
              "expect Tectonic < InfiniFS < LocoFS < Mantle (create: LocoFS ~ Mantle)");

  static const SystemKind kSystems[] = {SystemKind::kTectonic, SystemKind::kInfiniFs,
                                        SystemKind::kLocoFs, SystemKind::kMantle};
  static const char* kOps[] = {"create", "delete", "objstat", "dirstat"};
  const std::string op_filter = EnvString("MANTLE_BENCH_OPS", "");
  const std::string system_filter = EnvString("MANTLE_BENCH_SYSTEMS", "");

  for (const char* op : kOps) {
    if (!ListSelects(op_filter, op)) {
      continue;
    }
    std::printf("\n-- %s --\n", op);
    Table table(WorkloadColumns());
    for (SystemKind kind : kSystems) {
      if (!ListSelects(system_filter, SystemName(kind))) {
        continue;
      }
      SystemInstance system = MakeSystem(kind);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs;
      spec.num_objects = config.ns_objects;
      GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
      MdtestOps ops(system.get(), &ns);

      DriverOptions driver;
      driver.threads = config.threads;
      driver.duration_nanos = config.DurationNanos();
      driver.warmup_nanos = config.WarmupNanos();

      OpFn fn;
      if (std::string(op) == "create") {
        fn = ops.Create("/bench_create", config.threads);
      } else if (std::string(op) == "delete") {
        fn = ops.CreateDelete("/bench_delete", config.threads);
      } else if (std::string(op) == "objstat") {
        fn = ops.ObjStat();
      } else {
        fn = ops.DirStat();
      }
      WorkloadResult result = RunClosedLoop(driver, fn);
      table.AddRow(WorkloadRow(SystemName(kind), result));
    }
    table.Print();
  }
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
