// Figure 13: latency breakdown (lookup vs execution) of the Figure 12
// operations.
//
// Expected shape: the lookup phase dominates for Tectonic/InfiniFS (many
// round trips or wide fan-out), shrinks for LocoFS (central in-memory
// resolution), and is smallest for Mantle (single-RPC + TopDirPathCache).
// InfiniFS folds the objstat leaf read into its lookup phase; LocoFS resolves
// directory operations inside the execution phase (paper §6.3).

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/bench_util/trace_probe.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 13", "latency breakdown of object/directory read operations",
              "columns are mean per-phase latency; T/I/L/M as in the paper");

  static const SystemKind kSystems[] = {SystemKind::kTectonic, SystemKind::kInfiniFs,
                                        SystemKind::kLocoFs, SystemKind::kMantle};
  static const char* kOps[] = {"create", "delete", "objstat", "dirstat"};

  for (const char* op : kOps) {
    std::printf("\n-- %s --\n", op);
    Table table({"system", "lookup", "execute", "total", "lookup %"});
    TraceProbeResult probe;
    for (SystemKind kind : kSystems) {
      SystemInstance system = MakeSystem(kind);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs;
      spec.num_objects = config.ns_objects;
      GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
      MdtestOps ops(system.get(), &ns);

      DriverOptions driver;
      driver.threads = config.threads;
      driver.duration_nanos = config.DurationNanos();
      driver.warmup_nanos = config.WarmupNanos();

      OpFn fn;
      if (std::string(op) == "create") {
        fn = ops.Create("/bench_create", config.threads);
      } else if (std::string(op) == "delete") {
        fn = ops.CreateDelete("/bench_delete", config.threads);
      } else if (std::string(op) == "objstat") {
        fn = ops.ObjStat();
      } else {
        fn = ops.DirStat();
      }
      WorkloadResult result = RunClosedLoop(driver, fn);
      const double lookup = result.lookup.Mean();
      const double execute = result.execute.Mean();
      const double total = result.total.Mean();
      table.AddRow({SystemName(kind), FormatMicros(lookup), FormatMicros(execute),
                    FormatMicros(total),
                    FormatDouble(total > 0 ? 100.0 * lookup / total : 0, 1) + "%"});
      if (kind == SystemKind::kMantle) {
        // Cross-check: re-derive the same breakdown from stitched span trees.
        // Tracing is a second, independent measurement of where time went;
        // the probe table reports per-phase agreement with the hand splits
        // (expected within ~10% on a quiesced system).
        const uint64_t probe_ops = config.quick ? 64 : 256;
        probe = RunTraceProbe(fn, probe_ops);
      }
    }
    table.Print();
    PrintTraceProbe(std::string("Mantle ") + op, probe);
  }
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
