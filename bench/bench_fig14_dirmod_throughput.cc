// Figure 14: throughput of directory modification operations - mkdir and
// dirrename, each in exclusive ('-e', per-thread directories) and shared
// ('-s', one contended directory) modes.
//
// Expected shape (paper §6.3):
//   mkdir-e     : Tectonic ~ InfiniFS; LocoFS worst (unbatched Raft commit);
//                 Mantle highest (batched Raft + single-RPC lookups).
//   mkdir-s     : Tectonic/LocoFS serialize on the parent-attribute latch,
//                 InfiniFS better (single-shard atomic primitive), Mantle
//                 highest thanks to delta records.
//   dirrename-e : like mkdir-e with extra loop-detection cost for I/L/M.
//   dirrename-s : baselines collapse under conflicts; Mantle's delta records
//                 keep it near its exclusive throughput.

#include <cstdio>
#include <string>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 14", "directory modification throughput (mkdir/dirrename, -e/-s)",
              "expect Mantle to lead every group; '-s' collapses the baselines");

  static const SystemKind kSystems[] = {SystemKind::kTectonic, SystemKind::kInfiniFs,
                                        SystemKind::kLocoFs, SystemKind::kMantle};
  struct Cell {
    const char* label;
    bool rename;
    bool shared;
  };
  static const Cell kCells[] = {{"mkdir-e", false, false},
                                {"mkdir-s", false, true},
                                {"dirrename-e", true, false},
                                {"dirrename-s", true, true}};

  for (const Cell& cell : kCells) {
    std::printf("\n-- %s --\n", cell.label);
    Table table(WorkloadColumns());
    for (SystemKind kind : kSystems) {
      SystemInstance system = MakeSystem(kind);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs / 4;  // dirmod benches need less ballast
      spec.num_objects = config.ns_objects / 4;
      GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
      MdtestOps ops(system.get(), &ns);

      DriverOptions driver;
      driver.threads = config.threads;
      driver.duration_nanos = config.DurationNanos();
      driver.warmup_nanos = config.WarmupNanos();

      OpFn fn = cell.rename ? ops.DirRename("/bench_rn", config.threads, cell.shared)
                            : ops.Mkdir("/bench_mk", config.threads, cell.shared);
      WorkloadResult result = RunClosedLoop(driver, fn);
      table.AddRow(WorkloadRow(SystemName(kind), result));
    }
    table.Print();
  }
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
