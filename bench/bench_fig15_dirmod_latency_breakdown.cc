// Figure 15: latency breakdown (lookup / loop detection / execution) of the
// directory modification operations of Figure 14.
//
// Expected shape: Tectonic has no loop-detection phase (it skips loop checks
// under relaxed consistency); InfiniFS pays distributed loop detection (one
// DB RPC per ancestor level); LocoFS and Mantle run it on their central
// index; Mantle reports zero lookup time for dirrename because resolution is
// merged into the loop-detection RPC (paper §6.3).

#include <cstdio>
#include <string>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/bench_util/trace_probe.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 15", "latency breakdown of directory modifications",
              "phases: lookup / loop detection / execution (mean per op)");

  static const SystemKind kSystems[] = {SystemKind::kTectonic, SystemKind::kInfiniFs,
                                        SystemKind::kLocoFs, SystemKind::kMantle};
  struct Cell {
    const char* label;
    bool rename;
    bool shared;
  };
  static const Cell kCells[] = {{"mkdir-e", false, false},
                                {"mkdir-s", false, true},
                                {"dirrename-e", true, false},
                                {"dirrename-s", true, true}};

  for (const Cell& cell : kCells) {
    std::printf("\n-- %s --\n", cell.label);
    Table table({"system", "lookup", "loopdetect", "execute", "total"});
    TraceProbeResult probe;
    for (SystemKind kind : kSystems) {
      SystemInstance system = MakeSystem(kind);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs / 4;
      spec.num_objects = config.ns_objects / 4;
      GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
      MdtestOps ops(system.get(), &ns);

      DriverOptions driver;
      driver.threads = config.threads;
      driver.duration_nanos = config.DurationNanos();
      driver.warmup_nanos = config.WarmupNanos();

      OpFn fn = cell.rename ? ops.DirRename("/bench_rn", config.threads, cell.shared)
                            : ops.Mkdir("/bench_mk", config.threads, cell.shared);
      WorkloadResult result = RunClosedLoop(driver, fn);
      table.AddRow({SystemName(kind), FormatMicros(result.lookup.Mean()),
                    FormatMicros(result.loop_detect.Mean()),
                    FormatMicros(result.execute.Mean()),
                    FormatMicros(result.total.Mean())});
      if (kind == SystemKind::kMantle) {
        // Same breakdown, independently re-derived from stitched span trees
        // ("index.rename_prepare" spans map onto the loop-detection phase).
        const uint64_t probe_ops = config.quick ? 48 : 192;
        probe = RunTraceProbe(fn, probe_ops);
      }
    }
    table.Print();
    PrintTraceProbe(std::string("Mantle ") + cell.label, probe);
  }
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
