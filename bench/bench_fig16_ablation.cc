// Figure 16: effect of each Mantle optimization, enabled cumulatively:
// Mantle-base -> +pathcache -> +raftlogbatch -> +delta record -> +follower
// read, measured on dirstat, mkdir-e and dirrename-s.
//
// Expected shape: +pathcache roughly doubles dirstat; +raftlogbatch lifts
// mkdir-e (fsync amortization); +delta record rescues dirrename-s from
// conflict collapse; +follower read adds further dirstat headroom.

#include <cstdio>
#include <string>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

struct Step {
  const char* label;
  MantleFeatureOverrides overrides;
};

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 16", "effect of individual optimizations (cumulative)",
              "throughput normalized to Mantle-base per workload");

  std::vector<Step> steps;
  {
    MantleFeatureOverrides base;
    base.path_cache = false;
    base.raft_log_batching = false;
    base.delta_records = false;
    base.follower_read = false;
    steps.push_back({"Mantle-base", base});
    MantleFeatureOverrides with_cache = base;
    with_cache.path_cache = true;
    steps.push_back({"+pathcache", with_cache});
    MantleFeatureOverrides with_batch = with_cache;
    with_batch.raft_log_batching = true;
    steps.push_back({"+raftlogbatch", with_batch});
    MantleFeatureOverrides with_delta = with_batch;
    with_delta.delta_records = true;
    steps.push_back({"+delta record", with_delta});
    MantleFeatureOverrides with_follower = with_delta;
    with_follower.follower_read = true;
    steps.push_back({"+follower read", with_follower});
  }

  static const char* kWorkloads[] = {"dirstat", "mkdir-e", "dirrename-s"};
  for (const char* workload : kWorkloads) {
    std::printf("\n-- %s --\n", workload);
    Table table({"configuration", "throughput", "normalized", "retries"});
    double base_throughput = 0;
    for (const Step& step : steps) {
      SystemInstance system = MakeSystem(SystemKind::kMantle, step.overrides);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs / 4;
      spec.num_objects = config.ns_objects / 4;
      GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
      MdtestOps ops(system.get(), &ns);

      DriverOptions driver;
      driver.threads = config.threads;
      driver.duration_nanos = config.DurationNanos();
      driver.warmup_nanos = config.WarmupNanos();

      OpFn fn;
      if (std::string(workload) == "dirstat") {
        fn = ops.DirStat();
      } else if (std::string(workload) == "mkdir-e") {
        fn = ops.Mkdir("/bench_mk", config.threads, /*shared=*/false);
      } else {
        fn = ops.DirRename("/bench_rn", config.threads, /*shared=*/true);
      }
      WorkloadResult result = RunClosedLoop(driver, fn);
      if (base_throughput == 0) {
        base_throughput = result.Throughput();
      }
      table.AddRow({step.label, FormatOps(result.Throughput()),
                    FormatDouble(base_throughput > 0 ? result.Throughput() / base_throughput : 0,
                                 2) +
                        "x",
                    FormatCount(result.retries)});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
