// Figure 17: impact of directory depth on path-resolution latency.
//
// Expected shape: Tectonic's latency grows linearly with depth (one RTT per
// level); InfiniFS grows sublinearly but degrades under concurrency (fan-out
// stragglers); LocoFS tracks Mantle at shallow depths then drifts up as the
// central node's per-level CPU accumulates; Mantle stays nearly flat (the
// paper reports a 10-level path costs only 1.09x a 1-level path).

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 17", "path-resolution latency vs directory depth",
              "mean lookup latency; expect Mantle flat, Tectonic linear in depth");

  static const SystemKind kSystems[] = {SystemKind::kTectonic, SystemKind::kInfiniFs,
                                        SystemKind::kLocoFs, SystemKind::kMantle};
  static const int kDepths[] = {1, 2, 4, 6, 8, 10};

  Table table({"system", "d=1", "d=2", "d=4", "d=6", "d=8", "d=10", "d10/d1"});
  for (SystemKind kind : kSystems) {
    SystemInstance system = MakeSystem(kind);
    // A chain per depth plus a leaf object; lookups resolve the leaf's parent.
    std::vector<std::string> row{SystemName(kind)};
    double depth1_mean = 0;
    double depth10_mean = 0;
    for (int depth : kDepths) {
      auto chain =
          BulkLoadChain(system.get(), "depth" + std::to_string(depth) + "_lvl", depth);
      const std::string leaf = chain.back() + "/leafobj";
      system.get()->BulkLoadObject(leaf, 1024);

      MdtestOps ops(system.get(), nullptr);
      DriverOptions driver;
      driver.threads = config.threads;
      driver.duration_nanos = config.DurationNanos() / 2;
      driver.warmup_nanos = config.WarmupNanos();
      WorkloadResult result = RunClosedLoop(driver, ops.LookupPaths({leaf}));
      const double mean = result.lookup.Mean();
      if (depth == 1) {
        depth1_mean = mean;
      }
      if (depth == 10) {
        depth10_mean = mean;
      }
      row.push_back(FormatMicros(mean));
    }
    row.push_back(FormatDouble(depth1_mean > 0 ? depth10_mean / depth1_mean : 0, 2) + "x");
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
