// Figure 18: impact of the truncation constant k in TopDirPathCache.
//
// Follower read is disabled (as in the paper). Expected shape: lookup latency
// rises with k (more IndexTable levels per lookup) while cache memory and the
// fraction of cacheable directories fall steeply; k = 3 trades ~31% latency
// over k = 1 for ~88% memory savings.

#include <algorithm>
#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 18", "impact of k in TopDirPathCache (follower read off)",
              "latency grows with k; cache entries/memory shrink sharply");

  Table table({"k", "lookup mean", "p99", "norm vs k=1", "cache entries", "cache bytes",
               "hit rate"});
  double base_mean = 0;
  for (int k = 1; k <= 5; ++k) {
    MantleFeatureOverrides overrides;
    overrides.follower_read = false;
    overrides.truncate_k = k;
    SystemInstance system = MakeSystem(SystemKind::kMantle, overrides);

    NamespaceSpec spec;
    spec.num_dirs = config.ns_dirs;
    spec.num_objects = config.ns_objects / 2;
    GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
    MdtestOps ops(system.get(), &ns);

    DriverOptions driver;
    // Latency-bound regime: the per-probe cost of k only shows while the
    // leader is *not* queueing (the paper measures latency, not saturation).
    driver.threads = std::max(2, config.threads / 8);
    driver.duration_nanos = config.DurationNanos();
    driver.warmup_nanos = config.WarmupNanos();
    WorkloadResult result = RunClosedLoop(driver, ops.LookupPaths(ns.objects));

    const double mean = result.lookup.Mean();
    if (k == 1) {
      base_mean = mean;
    }
    // Cache stats come from the replica actually serving (leader).
    IndexReplica* replica = system.mantle->index()->LeaderReplica();
    const auto stats = replica->cache().stats();
    const double hit_rate =
        (stats.hits + stats.misses) > 0
            ? static_cast<double>(stats.hits) / static_cast<double>(stats.hits + stats.misses)
            : 0;
    table.AddRow({std::to_string(k), FormatMicros(mean),
                  FormatMicros(static_cast<double>(result.total.Percentile(99))),
                  FormatDouble(base_mean > 0 ? mean / base_mean : 0, 2),
                  FormatCount(replica->cache().Size()),
                  FormatCount(replica->cache().MemoryBytes()),
                  FormatDouble(hit_rate * 100, 1) + "%"});
  }
  table.Print();
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
