// Figure 19: Mantle scalability.
//   (a) throughput vs namespace size - objstat and create stay flat as the
//       namespace grows (the paper scales 1B -> 10B entries; we sweep the
//       harness-scaled range, the invariant is flatness, not magnitude).
//   (b) throughput vs client threads - objstat saturates the leader alone,
//       +followers extends scaling, +learners extends it further; create is
//       bounded by TafDB capacity.

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

WorkloadResult RunCell(SystemInstance& system, const BenchConfig& config, int threads,
                       const OpFn& fn) {
  DriverOptions driver;
  driver.threads = threads;
  driver.duration_nanos = config.DurationNanos();
  return RunClosedLoop(driver, fn);
}

void RunSizeSweep(const BenchConfig& config) {
  std::printf("\n-- (a) throughput vs namespace size (threads=%d) --\n", config.threads);
  Table table({"entries", "objstat", "create"});
  const uint64_t base_entries = config.ns_dirs + config.ns_objects;
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    const uint64_t dirs = static_cast<uint64_t>(config.ns_dirs * scale);
    const uint64_t objects = static_cast<uint64_t>(config.ns_objects * scale);
    SystemInstance system = MakeSystem(SystemKind::kMantle);
    NamespaceSpec spec;
    spec.num_dirs = dirs;
    spec.num_objects = objects;
    GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
    MdtestOps ops(system.get(), &ns);
    WorkloadResult objstat = RunCell(system, config, config.threads, ops.ObjStat());
    WorkloadResult create =
        RunCell(system, config, config.threads, ops.Create("/cr", config.threads));
    table.AddRow({FormatCount(dirs + objects), FormatOps(objstat.Throughput()),
                  FormatOps(create.Throughput())});
    (void)base_entries;
  }
  table.Print();
}

void RunThreadSweep(const BenchConfig& config) {
  std::printf("\n-- (b) throughput vs client threads --\n");
  struct Config {
    const char* label;
    bool follower_read;
    uint32_t learners;
    bool create;
  };
  static const Config kConfigs[] = {
      {"objstat (leader only)", false, 0, false},
      {"objstat +followers", true, 0, false},
      {"objstat +learners", true, 2, false},
      {"create", true, 0, true},
  };
  const int kThreadPoints[] = {config.threads / 4, config.threads / 2, config.threads,
                               config.threads * 2, config.threads * 4};

  Table table({"configuration", "t/4", "t/2", "t", "2t", "4t"});
  for (const Config& cell : kConfigs) {
    MantleFeatureOverrides overrides;
    overrides.follower_read = cell.follower_read;
    overrides.learners = cell.learners;
    SystemInstance system = MakeSystem(SystemKind::kMantle, overrides);
    NamespaceSpec spec;
    spec.num_dirs = config.ns_dirs / 2;
    spec.num_objects = config.ns_objects / 2;
    GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
    MdtestOps ops(system.get(), &ns);

    std::vector<std::string> row{cell.label};
    for (int threads : kThreadPoints) {
      const int effective = std::max(1, threads);
      OpFn fn = cell.create ? ops.Create("/cr" + std::to_string(effective), effective)
                            : ops.ObjStat();
      WorkloadResult result = RunCell(system, config, effective, fn);
      row.push_back(FormatOps(result.Throughput()));
    }
    table.AddRow(row);
  }
  table.Print();
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 19", "Mantle scalability (namespace size; client threads)",
              "expect flat over size; follower/learner reads extend thread scaling");
  RunSizeSweep(config);
  RunThreadSweep(config);
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
