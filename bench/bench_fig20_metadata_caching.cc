// Figure 20: impact of adding AM-Cache-style metadata caching to InfiniFS and
// Mantle on the two application workloads.
//
// Expected shape: caching barely moves Analytics (dominated by directory
// modification contention) but substantially accelerates InfiniFS on Audio
// (lookup-bound); Mantle improves only slightly - its single-RPC resolution
// leaves little to cache.

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/workload/applications.h"

namespace mantle {
namespace {

struct Variant {
  const char* label;
  SystemKind kind;
  bool cached;
};

SystemInstance MakeVariant(const Variant& variant) {
  if (variant.kind == SystemKind::kInfiniFs) {
    return MakeSystem(SystemKind::kInfiniFs, {}, variant.cached);
  }
  // Mantle with/without the bolt-on AM-Cache.
  SystemInstance instance;
  instance.network = std::make_unique<Network>(BenchNetworkOptions());
  MantleOptions options;
  options.tafdb = BenchTafDbOptions();
  options.index.num_voters = 3;
  options.index.follower_read = true;
  options.index.raft = BenchRaftOptions();
  options.enable_am_cache = variant.cached;
  auto mantle = std::make_unique<MantleService>(instance.network.get(), std::move(options));
  instance.mantle = mantle.get();
  instance.service = std::move(mantle);
  return instance;
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 20", "adding metadata caching (AM-Cache) to InfiniFS and Mantle",
              "expect big Audio gains for InfiniFS, marginal ones for Mantle");

  static const Variant kVariants[] = {
      {"InfiniFS", SystemKind::kInfiniFs, false},
      {"InfiniFS + cache", SystemKind::kInfiniFs, true},
      {"Mantle", SystemKind::kMantle, false},
      {"Mantle + cache", SystemKind::kMantle, true},
  };

  Table table({"system", "Analytics", "Audio"});
  for (const Variant& variant : kVariants) {
    double analytics_seconds = 0;
    double audio_seconds = 0;
    {
      SystemInstance system = MakeVariant(variant);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs / 8;
      spec.num_objects = config.ns_objects / 8;
      PopulateNamespace(system.get(), spec);
      AnalyticsOptions options;
      options.queries = config.quick ? 2 : 4;
      options.subtasks_per_query = config.quick ? 16 : 48;
      options.threads = config.threads / 2;
      analytics_seconds = RunAnalytics(system.get(), "/spark", options).completion_seconds;
    }
    {
      SystemInstance system = MakeVariant(variant);
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs / 8;
      spec.num_objects = config.ns_objects / 8;
      PopulateNamespace(system.get(), spec);
      AudioOptions options;
      options.input_objects = config.quick ? 300 : 1'500;
      options.threads = config.threads / 2;
      audio_seconds = RunAudio(system.get(), "/audio", options).completion_seconds;
    }
    table.AddRow({variant.label, FormatDouble(analytics_seconds, 2) + " s",
                  FormatDouble(audio_seconds, 2) + " s"});
  }
  table.Print();
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
