// Microbenchmarks (google-benchmark) of Mantle's core data structures:
// IndexTable probes, TopDirPathCache hits, RemovalList scans, PrefixTree
// subtree removal, and Raft log append/slice. These quantify the per-probe
// costs behind the modeled service times in the cluster simulation.

#include <benchmark/benchmark.h>

#include "src/index/index_table.h"
#include "src/index/prefix_tree.h"
#include "src/index/removal_list.h"
#include "src/index/top_dir_path_cache.h"
#include "src/raft/log.h"

namespace mantle {
namespace {

void BM_IndexTableLookup(benchmark::State& state) {
  IndexTable table;
  const int entries = static_cast<int>(state.range(0));
  for (int i = 0; i < entries; ++i) {
    table.Insert(kRootId, "dir" + std::to_string(i), kRootId + 1 + i, kPermAll);
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(kRootId, "dir" + std::to_string(i % entries)));
    ++i;
  }
}
BENCHMARK(BM_IndexTableLookup)->Arg(1024)->Arg(65536);

void BM_IndexTableAncestorChain(benchmark::State& state) {
  IndexTable table;
  const int depth = static_cast<int>(state.range(0));
  InodeId parent = kRootId;
  for (int i = 0; i < depth; ++i) {
    table.Insert(parent, "d", kRootId + 1 + i, kPermAll);
    parent = kRootId + 1 + i;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.AncestorChain(parent));
  }
}
BENCHMARK(BM_IndexTableAncestorChain)->Arg(4)->Arg(16)->Arg(64);

void BM_PathCacheLookupHit(benchmark::State& state) {
  TopDirPathCache cache;
  const int entries = static_cast<int>(state.range(0));
  for (int i = 0; i < entries; ++i) {
    cache.TryInsert("/a/b/prefix" + std::to_string(i), PathCacheEntry{uint64_t(i + 2), kPermAll});
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup("/a/b/prefix" + std::to_string(i % entries)));
    ++i;
  }
}
BENCHMARK(BM_PathCacheLookupHit)->Arg(1024)->Arg(65536);

void BM_RemovalListScanEmpty(benchmark::State& state) {
  RemovalList list;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.ContainsPrefixOf("/a/b/c/d/e/f/g/h/i/j"));
  }
}
BENCHMARK(BM_RemovalListScanEmpty);

void BM_RemovalListScanPopulated(benchmark::State& state) {
  RemovalList list;
  const int entries = static_cast<int>(state.range(0));
  for (int i = 0; i < entries; ++i) {
    list.Insert("/busy/dir" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.ContainsPrefixOf("/a/b/c/d/e/f/g/h/i/j"));
  }
}
BENCHMARK(BM_RemovalListScanPopulated)->Arg(4)->Arg(64);

void BM_RemovalListInsertRetire(benchmark::State& state) {
  RemovalList list;
  for (auto _ : state) {
    auto token = list.Insert("/spark/out/tmp");
    list.MarkDone(token);
    list.RunMaintenancePass([](const std::string&) {});
  }
}
BENCHMARK(BM_RemovalListInsertRetire);

void BM_PrefixTreeRemoveSubtree(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    PrefixTree tree;
    for (int i = 0; i < width; ++i) {
      tree.Insert("/root/mid" + std::to_string(i) + "/leaf");
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(tree.RemoveSubtree("/root"));
  }
}
BENCHMARK(BM_PrefixTreeRemoveSubtree)->Arg(16)->Arg(256);

void BM_RaftLogAppendSlice(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RaftLog log;
    state.ResumeTiming();
    for (size_t i = 0; i < batch; ++i) {
      log.Append(LogEntry{1, log.LastIndex() + 1, "command-payload-of-typical-size-xxxx"});
    }
    benchmark::DoNotOptimize(log.Slice(0, batch));
  }
}
BENCHMARK(BM_RaftLogAppendSlice)->Arg(64)->Arg(512);

}  // namespace
}  // namespace mantle

BENCHMARK_MAIN();
