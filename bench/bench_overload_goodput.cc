// Overload drill: goodput vs offered load, with and without admission control.
//
// An open-loop client fleet offers load to a single modeled server (2 workers
// x 2 ms of service time -> ~1000 op/s capacity) at multiples of saturation.
// Each request carries a 30 ms deadline; "goodput" counts replies that were
// both successful and on time. Expected shape: the unprotected server keeps
// accepting work as offered load passes 1x, queue delay grows without bound,
// and goodput collapses toward zero (the metastable regime - every cycle is
// spent on requests whose callers already gave up). With admission control
// the queue is bounded, excess load is rejected at the door with kOverloaded,
// and goodput stays pinned near capacity.

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/common/result.h"
#include "src/net/network.h"

namespace mantle {
namespace {

constexpr int64_t kServiceNanos = 2'000'000;    // 2 ms -> capacity ~1000 op/s
constexpr int64_t kDeadlineNanos = 30'000'000;  // per-request deadline
constexpr int kWorkers = 2;
constexpr int kIssuers = 4;
constexpr double kCapacityOpsPerSec = kWorkers * 1e9 / kServiceNanos;

struct CellResult {
  int issued = 0;
  int good = 0;
  uint64_t rejected = 0;
  uint64_t late_executed = 0;
};

CellResult RunCell(double offered_multiplier, bool admission_on, int64_t duration_nanos) {
  NetworkOptions net_options;
  net_options.zero_latency = false;
  net_options.rtt_nanos = 10'000;
  if (admission_on) {
    // Bound in-queue wait at ~8 * 2ms / 2 workers = 8 ms << the 30 ms
    // deadline: whatever is admitted completes in time.
    net_options.admission.max_queue_depth = 8;
  }
  Network network(net_options);
  ServerExecutor* server = network.AddServer("drill-db", kWorkers);

  const double per_issuer_rate = offered_multiplier * kCapacityOpsPerSec / kIssuers;
  const auto issue_interval = std::chrono::nanoseconds(static_cast<int64_t>(1e9 / per_issuer_rate));
  const int per_issuer = static_cast<int>(per_issuer_rate * duration_nanos / 1e9);

  struct Pending {
    std::future<Result<int64_t>> reply;
    int64_t deadline_nanos;
  };
  const uint64_t rejected_before = obs::Metrics::Instance().CounterValue("admission.rejected.depth");
  const uint64_t late_before = obs::Metrics::Instance().CounterValue("admission.expired.executed");
  std::vector<std::vector<Pending>> pending(kIssuers);
  std::vector<std::thread> issuers;
  for (int t = 0; t < kIssuers; ++t) {
    pending[t].reserve(per_issuer);
    issuers.emplace_back([&, t]() {
      for (int i = 0; i < per_issuer; ++i) {
        ScopedDeadline deadline(kDeadlineNanos);
        auto reply = server->CallAsync(
            [&network]() -> Result<int64_t> {
              network.ChargeService(kServiceNanos);
              return MonotonicNanos();  // completion stamp for goodput scoring
            },
            [](const Status& fault) -> Result<int64_t> { return fault; });
        pending[t].push_back(Pending{std::move(reply), DeadlineBudget::AbsoluteNanos()});
        std::this_thread::sleep_for(issue_interval);
      }
    });
  }
  for (auto& issuer : issuers) {
    issuer.join();
  }
  CellResult cell;
  for (auto& lane : pending) {
    for (Pending& p : lane) {
      ++cell.issued;
      Result<int64_t> reply = p.reply.get();
      if (reply.ok() && *reply <= p.deadline_nanos) {
        ++cell.good;
      }
    }
  }
  cell.rejected = obs::Metrics::Instance().CounterValue("admission.rejected.depth") - rejected_before;
  cell.late_executed =
      obs::Metrics::Instance().CounterValue("admission.expired.executed") - late_before;
  return cell;
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Overload drill", "goodput vs offered load, admission off/on",
              "open-loop burst against one 1000 op/s server; expect unprotected "
              "goodput to collapse past 1x while admission keeps it near capacity");

  // Short cells: past saturation the unprotected queue must also drain before
  // the cell can be scored, which costs (offered - capacity) * cell seconds.
  const int64_t duration_nanos = config.quick ? 200'000'000 : 500'000'000;
  static const double kMultipliers[] = {0.5, 1.0, 2.0, 4.0, 8.0};

  Table table({"admission", "offered", "issued", "good", "goodput", "rejected", "late-exec"});
  for (bool admission_on : {false, true}) {
    for (double multiplier : kMultipliers) {
      CellResult cell = RunCell(multiplier, admission_on, duration_nanos);
      const double seconds = duration_nanos / 1e9;
      table.AddRow({admission_on ? "on" : "off",
                    FormatDouble(multiplier, 1) + "x",
                    FormatCount(static_cast<uint64_t>(cell.issued)),
                    FormatCount(static_cast<uint64_t>(cell.good)),
                    FormatOps(cell.good / seconds),
                    FormatCount(cell.rejected),
                    FormatCount(cell.late_executed)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
