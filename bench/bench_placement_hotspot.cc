// Hotspot drill: static placement vs heat-aware live migration.
//
// A two-server TafDB fleet serves a skewed closed-loop read/write mix: 90% of
// the traffic lands on shards that all start on server 0 (the classic "one
// tenant got popular" hotspot), the rest is uniform. Under static placement
// server 0's workers saturate while server 1 idles, capping fleet throughput
// near one server's capacity. With the PlacementSupervisor enabled, the heat
// tracker spots the skew and live-migrates hot shards to the idle server
// mid-run; steady-state throughput should recover to >= 1.5x the static cell
// (the ISSUE 10 acceptance gate, enforced on BENCH_placement.json).
//
// Emits a machine-readable PLACEMENT_SUMMARY line consumed by
// scripts/bench_snapshot.sh.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/tafdb/tafdb.h"

namespace mantle {
namespace {

constexpr uint32_t kNumShards = 16;
constexpr uint32_t kNumServers = 2;
constexpr int kRowsPerHotShard = 512;
constexpr int kHotTrafficPercent = 90;

struct CellResult {
  double ops_per_sec = 0.0;
  uint64_t migrations = 0;
  uint64_t rows_moved = 0;
  uint64_t shards_left_hot_server = 0;  // hot shards still on server 0 at end
  int64_t last_fence_nanos = 0;
};

MetaValue Row(uint64_t size) {
  return MetaValue{EntryType::kObject, 1, kPermAll, size, 0, 0, 0, 0};
}

CellResult RunCell(bool supervisor_on, const BenchConfig& config) {
  // Short wire time, real service charging: each row access costs 20 us of
  // the owning server's 2 workers, so a server saturates near 100 Kop/s and
  // the hotspot actually caps fleet throughput (zero_latency would disable
  // the CPU model and there would be nothing for migration to relieve).
  NetworkOptions net_options;
  net_options.rtt_nanos = 10'000;
  // Heavier rows than the default 20 us so one server's capacity (2 workers /
  // 200 us = 10 Kop/s) sits well below what even a small closed-loop client
  // fleet offers - the hotspot binds regardless of host speed or thread count.
  net_options.db_row_access_nanos = 200'000;
  Network network(net_options);

  TafDbOptions options;
  options.num_shards = kNumShards;
  options.num_servers = kNumServers;
  options.workers_per_server = 2;
  options.start_compactor = false;
  options.enable_placement = false;  // enabled after load, below
  // Aggressive supervisor so the drill converges within one bench cell.
  options.placement.poll_interval_nanos = 2'000'000;    // 2 ms
  options.placement.confirm_window_nanos = 20'000'000;  // 20 ms
  options.placement.cooldown_nanos = 50'000'000;        // 50 ms
  // Wide enough that a balanced fleet (the post-migration steady state) does
  // not ping-pong shards on EMA noise.
  options.placement.skew_threshold = 1.35;
  options.placement.min_hot_score = 100.0;
  TafDb db(&network, options);
  ShardMap* map = db.shard_map();

  // One pid per shard; the "hot" pids are those whose shard starts on
  // server 0. Each hot shard carries real rows so migrating it costs work.
  std::vector<InodeId> hot_pids;
  std::vector<InodeId> cold_pids;
  std::vector<bool> covered(kNumShards, false);
  for (InodeId pid = 2; hot_pids.size() + cold_pids.size() < kNumShards; ++pid) {
    const uint32_t shard = map->ShardIndex(pid);
    if (covered[shard]) {
      continue;
    }
    covered[shard] = true;
    if (map->placement().Get(shard).server == 0) {
      hot_pids.push_back(pid);
    } else {
      cold_pids.push_back(pid);
    }
  }
  for (const InodeId pid : hot_pids) {
    for (int i = 0; i < kRowsPerHotShard; ++i) {
      db.LoadPut(EntryKey(pid, "r" + std::to_string(i)), Row(i));
    }
  }
  for (const InodeId pid : cold_pids) {
    for (int i = 0; i < kRowsPerHotShard; ++i) {
      db.LoadPut(EntryKey(pid, "r" + std::to_string(i)), Row(i));
    }
  }

  std::atomic<uint64_t> ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  const int threads = config.quick ? std::min(config.threads, 8) : config.threads;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t]() {
      Rng rng(0xbe9c'0000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const bool hot = rng.Uniform(100) < kHotTrafficPercent;
        const auto& pool = hot ? hot_pids : cold_pids;
        const InodeId pid = pool[rng.Uniform(pool.size())];
        const MetaKey key = EntryKey(pid, "r" + std::to_string(rng.Uniform(kRowsPerHotShard)));
        if (rng.Uniform(10) == 0) {
          // 10% writes keep lock traffic (and thus conflict heat) real.
          WriteOp put;
          put.kind = WriteOp::Kind::kPut;
          put.key = key;
          put.value = Row(rng.Uniform(1 << 20));
          if (!db.Execute({put}).ok()) {
            continue;  // retriable abort mid-migration: not an op served
          }
        } else {
          if (!db.Get(key).ok()) {
            continue;
          }
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  if (supervisor_on) {
    db.EnableAutoPlacement();
  }
  // The placement cell warms up longer: the EMAs must see the skew, the
  // confirmation window must pass, and the migrations must land before the
  // measured window opens (that is the steady state the gate scores).
  const int64_t warmup =
      config.WarmupNanos() + (supervisor_on ? (config.quick ? 400'000'000 : 800'000'000) : 0);
  PreciseSleep(warmup);
  const uint64_t ops_start = ops.load(std::memory_order_relaxed);
  const int64_t t_start = MonotonicNanos();
  PreciseSleep(config.DurationNanos());
  const uint64_t ops_end = ops.load(std::memory_order_relaxed);
  const int64_t t_end = MonotonicNanos();

  stop.store(true, std::memory_order_release);
  for (auto& c : clients) {
    c.join();
  }
  db.DisableAutoPlacement();

  CellResult cell;
  cell.ops_per_sec = (ops_end - ops_start) * 1e9 / static_cast<double>(t_end - t_start);
  cell.migrations = db.placement().migrator().stats().committed.load(std::memory_order_relaxed);
  cell.rows_moved = db.placement().migrator().stats().rows_copied.load(std::memory_order_relaxed);
  cell.last_fence_nanos =
      db.placement().migrator().stats().last_fence_nanos.load(std::memory_order_relaxed);
  for (const InodeId pid : hot_pids) {
    if (map->placement().Get(map->ShardIndex(pid)).server == 0) {
      ++cell.shards_left_hot_server;
    }
  }
  return cell;
}

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Placement hotspot drill", "static placement vs heat-aware live migration",
              "90% of traffic on server 0's shards; expect the supervisor to migrate "
              "hot shards to the idle server and steady-state throughput >= 1.5x static");

  const CellResult static_cell = RunCell(/*supervisor_on=*/false, config);
  const CellResult placed_cell = RunCell(/*supervisor_on=*/true, config);

  Table table({"placement", "throughput", "migrations", "rows moved", "hot shards on srv0",
               "last fence"});
  table.AddRow({"static", FormatOps(static_cell.ops_per_sec),
                FormatCount(static_cell.migrations), FormatCount(static_cell.rows_moved),
                FormatCount(static_cell.shards_left_hot_server), "-"});
  table.AddRow({"heat-aware", FormatOps(placed_cell.ops_per_sec),
                FormatCount(placed_cell.migrations), FormatCount(placed_cell.rows_moved),
                FormatCount(placed_cell.shards_left_hot_server),
                FormatMicros(static_cast<double>(placed_cell.last_fence_nanos))});
  table.Print();
  if (static_cell.ops_per_sec > 0) {
    std::printf("placement speedup: %.2fx\n",
                placed_cell.ops_per_sec / static_cell.ops_per_sec);
  }

  // Machine-readable summary consumed by scripts/bench_snapshot.sh.
  std::printf("\nPLACEMENT_SUMMARY {\"static_ops_per_sec\":%.1f,"
              "\"placement_ops_per_sec\":%.1f,\"migrations\":%llu,"
              "\"rows_moved\":%llu,\"hot_shards_left_on_server0\":%llu,"
              "\"last_fence_nanos\":%lld}\n",
              static_cell.ops_per_sec, placed_cell.ops_per_sec,
              static_cast<unsigned long long>(placed_cell.migrations),
              static_cast<unsigned long long>(placed_cell.rows_moved),
              static_cast<unsigned long long>(placed_cell.shards_left_hot_server),
              static_cast<long long>(placed_cell.last_fence_nanos));
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
