// §7.2 "Co-locating IndexNode for resource utilization": multiple namespaces
// share one TafDB fleet, each with its own IndexNode group. This bench drives
// the same lookup workload at (a) one tenant alone and (b) three tenants
// concurrently, reporting per-tenant and aggregate throughput.
//
// Expected shape: aggregate throughput grows with tenants (each namespace
// brings its own IndexNode capacity) while per-tenant throughput dips only
// where the shared TafDB or the host saturates - the headroom argument the
// paper makes for co-location.

#include <algorithm>
#include <cstdio>
#include <thread>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Sec 7.2", "co-located namespaces over one shared TafDB",
              "aggregate lookup throughput should grow with tenant count");

  for (int tenants : {1, 2, 3}) {
    Network network(BenchNetworkOptions());
    TafDb shared_db(&network, BenchTafDbOptions());
    std::vector<std::unique_ptr<MantleService>> services;
    std::vector<GeneratedNamespace> namespaces;
    for (int tenant = 0; tenant < tenants; ++tenant) {
      MantleOptions options;
      options.namespace_name = "tenant" + std::to_string(tenant);
      options.id_base = static_cast<InodeId>(tenant + 1) << 56;
      options.index.follower_read = true;
      options.index.raft = BenchRaftOptions();
      services.push_back(
          std::make_unique<MantleService>(&network, &shared_db, std::move(options)));
      NamespaceSpec spec;
      spec.num_dirs = config.ns_dirs / 4;
      spec.num_objects = config.ns_objects / 4;
      spec.seed = 42 + static_cast<uint64_t>(tenant);
      namespaces.push_back(PopulateNamespace(services.back().get(), spec));
    }

    std::vector<WorkloadResult> results(tenants);
    std::vector<std::thread> runners;
    for (int tenant = 0; tenant < tenants; ++tenant) {
      runners.emplace_back([&, tenant]() {
        MdtestOps ops(services[tenant].get(), &namespaces[tenant]);
        DriverOptions driver;
        // Fixed per-tenant demand: adding tenants adds load, so aggregate
        // growth (or its absence) measures co-location headroom directly.
        driver.threads = std::max(4, config.threads / 4);
        driver.duration_nanos = config.DurationNanos();
        driver.warmup_nanos = config.WarmupNanos();
        results[tenant] = RunClosedLoop(driver, ops.ObjStat());
      });
    }
    for (auto& runner : runners) {
      runner.join();
    }

    double aggregate = 0;
    std::printf("\n-- %d tenant(s), %d client threads each --\n", tenants,
                std::max(4, config.threads / 4));
    Table table({"tenant", "objstat throughput", "mean latency"});
    for (int tenant = 0; tenant < tenants; ++tenant) {
      aggregate += results[tenant].Throughput();
      table.AddRow({"tenant" + std::to_string(tenant),
                    FormatOps(results[tenant].Throughput()),
                    FormatMicros(results[tenant].total.Mean())});
    }
    table.AddRow({"aggregate", FormatOps(aggregate), ""});
    table.Print();
  }
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
