// §7.2 "Optimization potential": the RDMA proof-of-concept. The paper reports
// that moving the RPC framework to RDMA roughly doubles per-node path
// resolution throughput (500K -> 1M ops/s). We model RDMA as halving the RPC
// round trip and the per-probe CPU cost on the IndexNode and compare
// leader-only lookup throughput.

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Sec 7.2", "RDMA proof-of-concept (RPC cost halved)",
              "expect roughly 2x single-node lookup throughput");

  Table table({"transport", "lookup throughput", "mean latency"});
  for (double scale : {1.0, 0.5}) {
    MantleFeatureOverrides overrides;
    overrides.follower_read = false;  // single-node capacity is the subject
    overrides.rtt_scale = scale;
    SystemInstance system = MakeSystem(SystemKind::kMantle, overrides);
    NamespaceSpec spec;
    spec.num_dirs = config.ns_dirs / 2;
    spec.num_objects = config.ns_objects / 2;
    GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
    MdtestOps ops(system.get(), &ns);

    DriverOptions driver;
    driver.threads = config.threads;
    driver.duration_nanos = config.DurationNanos();
    driver.warmup_nanos = config.WarmupNanos();
    WorkloadResult result = RunClosedLoop(driver, ops.LookupPaths(ns.objects));
    table.AddRow({scale == 1.0 ? "TCP RPC (baseline)" : "RDMA (modeled, 0.5x cost)",
                  FormatOps(result.Throughput()), FormatMicros(result.total.Mean())});
  }
  table.Print();
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
