// Table 3: characteristics of the five Cluster-C production namespaces and
// their peak lookup / mkdir throughput under Mantle.
//
// We regenerate five namespaces with the paper's object counts scaled to the
// harness and the reported small-object ratios, host each on its own Mantle
// namespace (IndexNode per namespace; shared TafDB semantics), and probe peak
// lookup and mkdir throughput.

#include <cstdio>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"

namespace mantle {
namespace {

void Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Table 3", "five Cluster-C namespaces under Mantle",
              "columns mirror the paper: sizes, small-object ratio, peak throughputs");

  struct NsShape {
    const char* name;
    double scale;        // relative namespace size (C1 largest)
    double dir_share;    // directories / total entries
    double small_ratio;  // objects <= 512 KB
  };
  static const NsShape kShapes[] = {{"C1", 1.00, 0.008, 0.62},
                                    {"C2", 0.66, 0.084, 0.292},
                                    {"C3", 0.38, 0.108, 0.337},
                                    {"C4", 0.25, 0.099, 0.288},
                                    {"C5", 0.03, 0.107, 0.281}};

  Table table({"name", "#objects", "#dirs", "small obj", "peak lookup", "peak mkdir"});
  for (const NsShape& shape : kShapes) {
    SystemInstance system = MakeSystem(SystemKind::kMantle);
    const uint64_t total =
        static_cast<uint64_t>((config.ns_dirs + config.ns_objects) * shape.scale);
    NamespaceSpec spec;
    spec.num_dirs = std::max<uint64_t>(64, static_cast<uint64_t>(total * shape.dir_share));
    spec.num_objects = total - spec.num_dirs;
    spec.small_object_ratio = shape.small_ratio;
    GeneratedNamespace ns = PopulateNamespace(system.get(), spec);
    MdtestOps ops(system.get(), &ns);

    uint64_t small_objects = 0;
    for (uint64_t size : ns.object_sizes) {
      if (size <= spec.small_object_max_bytes) {
        ++small_objects;
      }
    }

    DriverOptions driver;
    driver.threads = config.threads;
    driver.duration_nanos = config.DurationNanos();
    driver.warmup_nanos = config.WarmupNanos();
    WorkloadResult lookup = RunClosedLoop(driver, ops.LookupPaths(ns.objects));
    WorkloadResult mkdir =
        RunClosedLoop(driver, ops.Mkdir("/probe_mk", config.threads, /*shared=*/false));

    table.AddRow({shape.name, FormatCount(ns.objects.size()), FormatCount(ns.dirs.size()),
                  FormatDouble(100.0 * static_cast<double>(small_objects) /
                                   static_cast<double>(std::max<size_t>(1, ns.objects.size())),
                               1) +
                      "%",
                  FormatOps(lookup.Throughput()), FormatOps(mkdir.Throughput())});
  }
  table.Print();
}

}  // namespace
}  // namespace mantle

int main() {
  mantle::Run();
  return 0;
}
