// audio_pipeline: the paper's AI audio-preprocessing workload - scan a corpus
// of small audio objects on deep paths, segment each, and write the outputs.
// Runs the same pipeline on Mantle and on the DBtable-style baseline
// (Tectonic) to show what single-RPC path resolution buys a lookup-dominated
// application.
//
//   $ ./build/examples/audio_pipeline [clips]

#include <cstdio>
#include <cstdlib>

#include "src/baselines/tectonic/tectonic_service.h"
#include "src/core/mantle_service.h"
#include "src/workload/applications.h"

using namespace mantle;

namespace {

AppResult RunPipeline(MetadataService* service, int clips) {
  AudioOptions options;
  options.input_objects = clips;
  options.segments_per_object = 3;
  options.threads = 12;
  options.dir_depth = 10;
  return RunAudio(service, "/audio", options);
}

}  // namespace

int main(int argc, char** argv) {
  const int clips = argc > 1 ? std::atoi(argv[1]) : 400;
  std::printf("Audio preprocessing: %d clips at directory depth 10, 3 segments each\n\n",
              clips);

  double tectonic_seconds = 0;
  {
    Network network;
    TectonicOptions options;
    TectonicService tectonic(&network, options);
    AppResult result = RunPipeline(&tectonic, clips);
    tectonic_seconds = result.completion_seconds;
    std::printf("Tectonic (level-by-level lookups): %6.2f s, objstat p50 %7.0f us\n",
                result.completion_seconds,
                static_cast<double>(result.objstat_latency.Percentile(50)) / 1e3);
  }
  {
    Network network;
    MantleOptions options;
    options.index.follower_read = true;
    MantleService mantle(&network, options);
    AppResult result = RunPipeline(&mantle, clips);
    std::printf("Mantle   (single-RPC lookups):     %6.2f s, objstat p50 %7.0f us\n",
                result.completion_seconds,
                static_cast<double>(result.objstat_latency.Percentile(50)) / 1e3);
    std::printf("\nSpeedup: %.1fx shorter completion time\n",
                tectonic_seconds / result.completion_seconds);
  }
  return 0;
}
