// mantle_shell: an interactive shell over a live Mantle namespace. Useful
// for poking at the metadata service by hand and for demos.
//
//   $ ./build/examples/mantle_shell
//   mantle> mkdir /a
//   mantle> put /a/file.bin 4096
//   mantle> ls /a
//   mantle> stat /a/file.bin
//   mantle> mv /a /b
//   mantle> stats
//   mantle> help

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/mantle_service.h"

using namespace mantle;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  mkdir <path>          create a directory\n"
      "  rmdir <path>          remove an empty directory\n"
      "  put <path> [bytes]    create an object (default 4096 bytes)\n"
      "  rm <path>             delete an object\n"
      "  ls <path>             list a directory\n"
      "  stat <path>           stat an object or directory\n"
      "  mv <src> <dst>        rename a directory (atomic, loop-checked)\n"
      "  chmod <path> <mask>   set directory permission bits (r=4 w=2 x=1)\n"
      "  lookup <path>         resolve a path, showing RPC count and latency\n"
      "  stats                 IndexNode and TafDB internals\n"
      "  help                  this text\n"
      "  quit                  exit\n");
}

void PrintOp(const char* verb, const OpResult& result) {
  std::printf("%s: %s  (%lld rpcs, %.0f us", verb, result.status.ToString().c_str(),
              static_cast<long long>(result.rpcs), result.breakdown.total_nanos() / 1e3);
  if (result.retries > 0) {
    std::printf(", %d retries", result.retries);
  }
  std::printf(")\n");
}

}  // namespace

int main() {
  Network network;
  MantleOptions options;
  options.index.follower_read = true;
  MantleService fs(&network, options);
  std::printf("Mantle shell - %u IndexNode replicas, %u TafDB shards. Type 'help'.\n",
              fs.index()->num_replicas(), fs.tafdb()->shard_map()->num_shards());

  std::string line;
  while (std::printf("mantle> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream input(line);
    std::string command;
    input >> command;
    if (command.empty()) {
      continue;
    }
    if (command == "quit" || command == "exit") {
      break;
    }
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "fsck") {
      auto report = fs.Fsck();
      std::printf("fsck: %s  (%llu dirs checked, %llu rows scanned)\n",
                  report.clean() ? "clean" : "INCONSISTENT",
                  static_cast<unsigned long long>(report.dirs_checked),
                  static_cast<unsigned long long>(report.rows_scanned));
      for (const auto& path : report.missing_entry_row) {
        std::printf("  missing entry row:   %s\n", path.c_str());
      }
      for (const auto& path : report.missing_attr_row) {
        std::printf("  missing attr row:    %s\n", path.c_str());
      }
      for (const auto& path : report.id_mismatch) {
        std::printf("  id mismatch:         %s\n", path.c_str());
      }
      for (const auto& path : report.unindexed_dir_row) {
        std::printf("  unindexed dir row:   %s\n", path.c_str());
      }
      continue;
    }
    if (command == "stats") {
      IndexReplica* leader = fs.index()->LeaderReplica();
      const auto cache = leader->cache().stats();
      const auto& txn = fs.tafdb()->txn_stats();
      std::printf("IndexTable dirs:      %zu\n", leader->table().Size());
      std::printf("TopDirPathCache:      %zu entries (%llu hits / %llu misses)\n",
                  leader->cache().Size(), static_cast<unsigned long long>(cache.hits),
                  static_cast<unsigned long long>(cache.misses));
      std::printf("RemovalList live:     %zu\n", leader->removal_list().LiveCount());
      std::printf("TafDB rows:           %zu\n", fs.tafdb()->TotalRows());
      std::printf("TafDB txns:           %llu committed, %llu aborted\n",
                  static_cast<unsigned long long>(txn.committed.load()),
                  static_cast<unsigned long long>(txn.aborted.load()));
      std::printf("Total RPCs:           %llu\n",
                  static_cast<unsigned long long>(network.total_rpcs()));
      continue;
    }

    std::string path;
    input >> path;
    if (path.empty()) {
      std::printf("usage error; try 'help'\n");
      continue;
    }
    if (command == "mkdir") {
      PrintOp("mkdir", fs.Mkdir(path));
    } else if (command == "rmdir") {
      PrintOp("rmdir", fs.Rmdir(path));
    } else if (command == "put") {
      uint64_t bytes = 4096;
      input >> bytes;
      PrintOp("put", fs.CreateObject(path, bytes));
    } else if (command == "rm") {
      PrintOp("rm", fs.DeleteObject(path));
    } else if (command == "ls") {
      std::vector<std::string> names;
      OpResult result = fs.ReadDir(path, &names);
      if (!result.ok()) {
        PrintOp("ls", result);
        continue;
      }
      for (const auto& name : names) {
        std::printf("  %s\n", name.c_str());
      }
      std::printf("(%zu entries)\n", names.size());
    } else if (command == "stat") {
      StatInfo info;
      OpResult as_dir = fs.StatDir(path, &info);
      if (as_dir.ok()) {
        std::printf("directory  children=%lld  mtime=%llu  perm=%u\n",
                    static_cast<long long>(info.child_count),
                    static_cast<unsigned long long>(info.mtime), info.permission);
        continue;
      }
      OpResult as_obj = fs.StatObject(path, &info);
      if (as_obj.ok()) {
        std::printf("object  size=%llu  perm=%u\n",
                    static_cast<unsigned long long>(info.size), info.permission);
      } else {
        PrintOp("stat", as_obj);
      }
    } else if (command == "mv") {
      std::string dst;
      input >> dst;
      if (dst.empty()) {
        std::printf("usage: mv <src> <dst>\n");
        continue;
      }
      PrintOp("mv", fs.RenameDir(path, dst));
    } else if (command == "chmod") {
      unsigned mask = kPermAll;
      input >> mask;
      PrintOp("chmod", fs.SetDirPermission(path, mask));
    } else if (command == "lookup") {
      PrintOp("lookup", fs.Lookup(path));
    } else {
      std::printf("unknown command '%s'; try 'help'\n", command.c_str());
    }
  }
  return 0;
}
