// multi_namespace: the production deployment shape of paper §7 - one shared
// TafDB per cluster, one IndexNode Raft group per namespace. Three tenant
// namespaces run concurrent traffic against the shared database while each
// enjoys its own isolated directory index.
//
//   $ ./build/examples/multi_namespace

#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/mantle_service.h"

using namespace mantle;

int main() {
  Network network;
  TafDbOptions db_options;
  TafDb shared_db(&network, db_options);

  // Three namespaces (think: AI training, data warehouse, log analysis) share
  // the TafDB fleet; each gets a dedicated IndexNode group.
  std::vector<std::unique_ptr<MantleService>> tenants;
  const char* names[] = {"ai-train", "warehouse", "logs"};
  InodeId tenant_index = 0;
  for (const char* name : names) {
    MantleOptions options;
    options.namespace_name = name;
    options.index.num_voters = 3;
    options.index.follower_read = true;
    // Namespaces sharing one TafDB get disjoint inode-id spaces.
    options.id_base = ++tenant_index << 56;
    tenants.push_back(std::make_unique<MantleService>(&network, &shared_db, options));
  }

  // Concurrent tenant traffic.
  std::vector<std::thread> workers;
  for (size_t tenant = 0; tenant < tenants.size(); ++tenant) {
    workers.emplace_back([&, tenant]() {
      MantleService& service = *tenants[tenant];
      service.Mkdir("/data");
      for (int i = 0; i < 40; ++i) {
        service.Mkdir("/data/job" + std::to_string(i));
        service.CreateObject("/data/job" + std::to_string(i) + "/out.bin", 4096);
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }

  // Namespaces are fully isolated at the directory level even though every
  // row lives in the one TafDB.
  std::printf("shared TafDB rows: %zu\n\n", shared_db.TotalRows());
  for (size_t tenant = 0; tenant < tenants.size(); ++tenant) {
    MantleService& service = *tenants[tenant];
    StatInfo info;
    service.StatDir("/data", &info);
    std::printf("namespace %-10s: /data has %lld children, IndexTable holds %zu dirs\n",
                names[tenant], static_cast<long long>(info.child_count),
                service.index()->LeaderReplica()->table().Size());
  }

  // Same path, different namespaces, different objects - no interference.
  tenants[0]->CreateObject("/data/job0/tenant-private", 1);
  std::printf("\n'%s' sees /data/job0/tenant-private: %s\n", names[0],
              tenants[0]->StatObject("/data/job0/tenant-private").status.ToString().c_str());
  std::printf("'%s' sees /data/job0/tenant-private: %s\n", names[1],
              tenants[1]->StatObject("/data/job0/tenant-private").status.ToString().c_str());
  return 0;
}
