// Quickstart: stand up a Mantle metadata service, build a small namespace,
// and exercise every metadata operation through the public API.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/core/mantle_service.h"

using namespace mantle;

int main() {
  // One process hosts the whole simulated cluster: a sharded TafDB fleet plus
  // a 3-replica IndexNode. The network model injects an 80 us RTT per RPC.
  Network network;
  MantleOptions options;
  options.index.follower_read = true;
  MantleService mantle(&network, options);

  std::printf("Mantle is up: %u IndexNode replicas, %u TafDB shards\n\n",
              mantle.index()->num_replicas(), mantle.tafdb()->shard_map()->num_shards());

  // Build a little hierarchy.
  for (const char* dir : {"/datasets", "/datasets/vision", "/datasets/vision/train",
                          "/datasets/vision/train/batch0"}) {
    OpResult result = mantle.Mkdir(dir);
    std::printf("mkdir   %-34s -> %-12s (%lld rpcs, %.0f us)\n", dir,
                result.status.ToString().c_str(), static_cast<long long>(result.rpcs),
                result.breakdown.total_nanos() / 1e3);
  }

  // Store objects.
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/datasets/vision/train/batch0/img" + std::to_string(i) + ".png";
    OpResult result = mantle.CreateObject(path, 128 * 1024);
    std::printf("create  %-34s -> %-12s (%lld rpcs)\n", path.c_str(),
                result.status.ToString().c_str(), static_cast<long long>(result.rpcs));
  }

  // The headline property: deep-path lookups are a single RPC to IndexNode.
  OpResult lookup = mantle.Lookup("/datasets/vision/train/batch0/img0.png");
  std::printf("\nlookup  /datasets/vision/train/batch0/img0.png -> %s in %lld RPC(s), %.0f us\n",
              lookup.status.ToString().c_str(), static_cast<long long>(lookup.rpcs),
              lookup.breakdown.lookup_nanos / 1e3);

  // Stats and listings.
  StatInfo info;
  mantle.StatObject("/datasets/vision/train/batch0/img1.png", &info);
  std::printf("objstat img1.png: size=%llu bytes\n", static_cast<unsigned long long>(info.size));
  mantle.StatDir("/datasets/vision/train/batch0", &info);
  std::printf("dirstat batch0:   children=%lld\n", static_cast<long long>(info.child_count));

  std::vector<std::string> names;
  mantle.ReadDir("/datasets/vision/train/batch0", &names);
  std::printf("readdir batch0:   ");
  for (const auto& name : names) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n");

  // Atomic cross-directory rename with loop detection on the IndexNode.
  mantle.Mkdir("/published");
  OpResult rename = mantle.RenameDir("/datasets/vision/train/batch0", "/published/batch0");
  std::printf("\nrename  batch0 -> /published/batch0: %s (loop detect %.0f us)\n",
              rename.status.ToString().c_str(), rename.breakdown.loop_detect_nanos / 1e3);
  std::printf("old path now: %s\n",
              mantle.StatDir("/datasets/vision/train/batch0").status.ToString().c_str());
  std::printf("new path now: %s\n", mantle.StatDir("/published/batch0").status.ToString().c_str());

  // Loop renames are rejected before any metadata moves.
  OpResult loop = mantle.RenameDir("/published", "/published/batch0/inside");
  std::printf("loop rename rejected: %s\n", loop.status.ToString().c_str());

  // Peek at the IndexNode internals.
  IndexReplica* leader = mantle.index()->LeaderReplica();
  const auto cache_stats = leader->cache().stats();
  std::printf("\nTopDirPathCache: %zu entries, %llu hits, %llu misses, %llu invalidations\n",
              leader->cache().Size(), static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(cache_stats.invalidations));
  std::printf("IndexTable: %zu directories indexed\n", leader->table().Size());
  std::printf("TafDB: %zu metadata rows\n", mantle.tafdb()->TotalRows());
  return 0;
}
