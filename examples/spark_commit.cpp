// spark_commit: the §3.2 motivation scenario - a Spark-style query whose
// subtasks all rename their temporary directories into ONE shared output
// directory at commit time. Runs the same commit storm against Mantle with
// delta records ON and OFF to show the contention collapse they prevent.
//
//   $ ./build/examples/spark_commit [subtasks]

#include <cstdio>
#include <cstdlib>

#include "src/core/mantle_service.h"
#include "src/workload/applications.h"

using namespace mantle;

namespace {

void RunCommitStorm(bool delta_records, int subtasks) {
  Network network;
  MantleOptions options;
  options.tafdb.enable_delta_records = delta_records;
  options.index.follower_read = true;
  MantleService mantle(&network, options);

  AnalyticsOptions analytics;
  analytics.queries = 2;
  analytics.subtasks_per_query = subtasks;
  analytics.objects_per_subtask = 1;
  analytics.threads = 16;
  AppResult result = RunAnalytics(&mantle, "/warehouse", analytics);

  const auto& txn = mantle.tafdb()->txn_stats();
  std::printf("delta records %-3s: completion %6.2f s | rename p50 %8.0f us  p99 %8.0f us | "
              "txn aborts %llu\n",
              delta_records ? "ON" : "OFF", result.completion_seconds,
              static_cast<double>(result.rename_latency.Percentile(50)) / 1e3,
              static_cast<double>(result.rename_latency.Percentile(99)) / 1e3,
              static_cast<unsigned long long>(txn.aborted.load()));
}

}  // namespace

int main(int argc, char** argv) {
  const int subtasks = argc > 1 ? std::atoi(argv[1]) : 32;
  std::printf("Spark commit storm: 2 queries x %d subtasks renaming into one shared "
              "output directory\n\n", subtasks);
  RunCommitStorm(/*delta_records=*/false, subtasks);
  RunCommitStorm(/*delta_records=*/true, subtasks);
  std::printf("\nWith delta records, contended attribute updates become conflict-free\n"
              "appends (paper Fig. 8) and the commit phase stops aborting.\n");
  return 0;
}
