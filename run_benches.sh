#!/bin/bash
# Runs every bench binary in order, teeing to bench_output.txt.
set -u
cd "$(dirname "$0")"
: > bench_output.txt
for b in build/bench/*; do
  if [ -x "$b" ]; then
    echo "### $(basename "$b")" | tee -a bench_output.txt
    timeout 1800 "$b" >> bench_output.txt 2>&1
    echo "exit=$? $(basename "$b")"
  fi
done
echo "ALL_BENCHES_DONE"
