#!/usr/bin/env bash
# Quick-slice bench snapshots as machine-readable JSON.
#
# Usage: scripts/bench_snapshot.sh [build_dir] [out_dir]
#   build_dir  tree with built bench binaries      (default: <repo>/build)
#   out_dir    where the BENCH_*.json files land   (default: build_dir)
#
# Emits:
#   BENCH_batch_read.json  the BATCH_READ_SUMMARY from a quick bench_batch_read
#                          run, augmented with computed speedups and the run
#                          configuration. The acceptance gates for ISSUE 8 ride
#                          on this file: batch=64 >= 3x looped, coalesce >= 1.5x.
#   BENCH_fig12.json       the "== metrics ==" counter footer of a quick
#                          bench_fig12 slice plus its run configuration - a
#                          coarse canary for read-path throughput regressions.
#   BENCH_placement.json   the PLACEMENT_SUMMARY from a quick
#                          bench_placement_hotspot run. The ISSUE 10 gate rides
#                          on this file: heat-aware steady-state throughput
#                          >= 1.5x static under the seeded hotspot.
#
# Each run is a ~1s-per-cell quick slice: noisy, but cheap enough for CI. The
# JSON is validated (strict parse) before it is written; a run whose summary
# line is missing or malformed fails the script. Every file carries a
# "provenance" block (git SHA + UTC timestamp, computed once here and passed
# into the writers) so a snapshot can always be traced back to its tree.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
OUT_DIR="${2:-$BUILD_DIR}"
mkdir -p "$OUT_DIR"

# Provenance stamp, computed once and passed to every JSON writer below.
GIT_SHA="$(git -C "$ROOT" rev-parse HEAD 2>/dev/null || echo unknown)"
if [ -n "$(git -C "$ROOT" status --porcelain 2>/dev/null || true)" ]; then
  GIT_SHA="$GIT_SHA-dirty"
fi
GENERATED_UTC="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

QUICK_ENV=(MANTLE_BENCH_QUICK=1 MANTLE_BENCH_SECONDS="${MANTLE_BENCH_SECONDS:-1}")

echo "== bench_batch_read quick slice =="
BATCH_OUT="$(env "${QUICK_ENV[@]}" MANTLE_METRICS=off \
  "$BUILD_DIR/bench/bench_batch_read")"
SUMMARY_LINE="$(echo "$BATCH_OUT" | grep '^BATCH_READ_SUMMARY ' | tail -1 | cut -d' ' -f2-)"
if [ -z "$SUMMARY_LINE" ]; then
  echo "bench_snapshot FAILED: no BATCH_READ_SUMMARY line in bench_batch_read output" >&2
  echo "$BATCH_OUT" | tail -20 >&2
  exit 1
fi
python3 - "$OUT_DIR/BENCH_batch_read.json" "$GIT_SHA" "$GENERATED_UTC" <<PYEOF
import json, sys

summary = json.loads('''$SUMMARY_LINE''')
for point in summary["sweep"]:
    looped = point["looped_paths_per_sec"]
    point["speedup"] = point["batched_paths_per_sec"] / looped if looped > 0 else None
off = summary["coalesce_off_ops_per_sec"]
summary["coalesce_speedup"] = summary["coalesce_on_ops_per_sec"] / off if off > 0 else None
summary["config"] = {
    "quick": True,
    "seconds_per_cell": float("${MANTLE_BENCH_SECONDS:-1}"),
}
summary["provenance"] = {"git_sha": sys.argv[2], "generated_utc": sys.argv[3]}
with open(sys.argv[1], "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
by_batch = {p["batch"]: p["speedup"] for p in summary["sweep"]}
print(f"wrote {sys.argv[1]}: batch speedups "
      f"{ {b: round(s, 2) for b, s in by_batch.items() if s} }, "
      f"coalesce {summary['coalesce_speedup']:.2f}x")
PYEOF

echo "== bench_fig12 quick slice =="
FIG12_OUT="$(env "${QUICK_ENV[@]}" MANTLE_BENCH_THREADS=8 \
  MANTLE_BENCH_OPS=objstat MANTLE_BENCH_SYSTEMS=Mantle \
  "$BUILD_DIR/bench/bench_fig12_read_throughput")"
# The counter footer is everything after the last "== metrics ==" marker
# (no "== traces ==" section follows when MANTLE_TRACE_EXPORT is unset).
METRICS_JSON="$(echo "$FIG12_OUT" | awk '/^== metrics ==$/{found=1; buf=""; next} found{buf=buf $0 "\n"} END{printf "%s", buf}')"
if [ -z "$METRICS_JSON" ]; then
  echo "bench_snapshot FAILED: no metrics footer in bench_fig12 output" >&2
  echo "$FIG12_OUT" | tail -20 >&2
  exit 1
fi
METRICS_FILE="$(mktemp)"
trap 'rm -f "$METRICS_FILE"' EXIT
echo "$METRICS_JSON" > "$METRICS_FILE"
python3 - "$METRICS_FILE" "$OUT_DIR/BENCH_fig12.json" "$GIT_SHA" "$GENERATED_UTC" <<'PYEOF'
import json, sys

with open(sys.argv[1]) as f:
    metrics = json.load(f)  # must parse as strict JSON
doc = {
    "config": {
        "quick": True,
        "threads": 8,
        "ops": "objstat",
        "systems": "Mantle",
    },
    "metrics": metrics,
    "provenance": {"git_sha": sys.argv[3], "generated_utc": sys.argv[4]},
}
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[2]}: {len(metrics.get('counters', {}))} counters, "
      f"{len(metrics.get('histograms', {}))} histograms")
PYEOF

echo "== bench_placement_hotspot quick slice =="
PLACEMENT_OUT="$(env "${QUICK_ENV[@]}" MANTLE_METRICS=off \
  "$BUILD_DIR/bench/bench_placement_hotspot")"
PLACEMENT_LINE="$(echo "$PLACEMENT_OUT" | grep '^PLACEMENT_SUMMARY ' | tail -1 | cut -d' ' -f2-)"
if [ -z "$PLACEMENT_LINE" ]; then
  echo "bench_snapshot FAILED: no PLACEMENT_SUMMARY line in bench_placement_hotspot output" >&2
  echo "$PLACEMENT_OUT" | tail -20 >&2
  exit 1
fi
python3 - "$OUT_DIR/BENCH_placement.json" "$GIT_SHA" "$GENERATED_UTC" <<PYEOF
import json, sys

summary = json.loads('''$PLACEMENT_LINE''')
static = summary["static_ops_per_sec"]
summary["speedup"] = summary["placement_ops_per_sec"] / static if static > 0 else None
summary["gate"] = {"min_speedup": 1.5, "passed": bool(summary["speedup"] and summary["speedup"] >= 1.5)}
summary["config"] = {
    "quick": True,
    "seconds_per_cell": float("${MANTLE_BENCH_SECONDS:-1}"),
}
summary["provenance"] = {"git_sha": sys.argv[2], "generated_utc": sys.argv[3]}
with open(sys.argv[1], "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[1]}: speedup {summary['speedup']:.2f}x "
      f"({summary['migrations']} migrations, gate {'PASS' if summary['gate']['passed'] else 'FAIL'})")
PYEOF

echo "bench snapshot OK"
