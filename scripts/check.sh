#!/usr/bin/env bash
# Tier-1 verification under a sanitizer.
#
# Usage: scripts/check.sh [thread|address|none]   (default: thread)
#
# Builds the tree into build-<sanitizer>/ with -DMANTLE_SANITIZE=<mode> and
# runs the full test suite. Exits non-zero on any build failure, test failure,
# or sanitizer report (sanitizers abort the offending test binary).

set -euo pipefail

MODE="${1:-thread}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

case "$MODE" in
  thread|address)
    BUILD_DIR="$ROOT/build-$MODE"
    SANITIZE="$MODE"
    ;;
  none)
    BUILD_DIR="$ROOT/build"
    SANITIZE=""
    ;;
  *)
    echo "usage: $0 [thread|address|none]" >&2
    exit 2
    ;;
esac

# Fail on any sanitizer finding instead of just logging it.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0 halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

cmake -B "$BUILD_DIR" -S "$ROOT" -DMANTLE_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Sanitized binaries run several times slower; scale the per-test timeouts.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" --timeout 900

# Metrics smoke: a ~2s bench_fig12 slice must end with a JSON footer whose
# index cache and RPC counters are non-zero, proving the observability layer
# is wired through the full stack (not just compiled in).
echo "== metrics smoke (bench_fig12 quick slice) =="
SMOKE_OUT="$(MANTLE_BENCH_QUICK=1 MANTLE_BENCH_SECONDS=0.3 MANTLE_BENCH_THREADS=8 \
  MANTLE_BENCH_OPS=objstat MANTLE_BENCH_SYSTEMS=Mantle \
  "$BUILD_DIR/bench/bench_fig12_read_throughput")"
for metric in '"index.cache.hit"' '"net.rpc.count"'; do
  if ! echo "$SMOKE_OUT" | grep -E "${metric}: [1-9][0-9]*" >/dev/null; then
    echo "metrics smoke FAILED: ${metric} missing or zero in bench_fig12 output" >&2
    echo "$SMOKE_OUT" | tail -40 >&2
    exit 1
  fi
done
echo "metrics smoke OK"

# Bench snapshot: quick slices of bench_batch_read and bench_fig12 written as
# BENCH_*.json next to the build. Fails if either binary stops emitting its
# machine-readable summary, and leaves the batch/coalesce speedups where a
# reviewer (or a trend job) can diff them.
echo "== bench snapshot (batch_read + fig12 quick slices) =="
"$ROOT/scripts/bench_snapshot.sh" "$BUILD_DIR" "$BUILD_DIR"

# Recovery smoke: the seeded acceptance drill (coordinator killed mid-2PC plus
# total index-group loss) must end with zero in-doubt transactions and a clean
# fsck, straight from the built tree.
echo "== recovery smoke (seeded crash drill) =="
"$BUILD_DIR/tests/crash_recovery_test" \
  --gtest_filter='CrashRecoveryTest.AcceptanceSeededCrashDrillEndsCleanWithoutRepair'
echo "recovery smoke OK"

# Overload smoke: the seeded overload drill (open-loop burst at 4x one
# server's capacity) must show admission control at least doubling goodput
# with zero handlers executed past their in-queue deadline, straight from the
# built tree.
echo "== overload smoke (seeded 4x-capacity drill) =="
"$BUILD_DIR/tests/overload_test" \
  --gtest_filter='OverloadTest.AdmissionDoublesGoodputAtFourTimesCapacity'
echo "overload smoke OK"

# Membership smoke: the seeded kill-and-replace drill (crash one voter under
# live load) must end with the replication factor restored by the repair
# supervisor, zero acked-write loss, and a clean leader decommission via
# TimeoutNow transfer, straight from the built tree.
echo "== membership smoke (seeded kill-and-replace drill) =="
"$BUILD_DIR/tests/membership_test" \
  --gtest_filter='MembershipAcceptanceTest.KillAndReplaceDrillUnderLoad'
echo "membership smoke OK"

# Placement smoke: the seeded hotspot drill (skewed load, supervisor on) must
# end with hot shards migrated off the hot server, zero acked-write loss and a
# clean fsck; the direct drill migrates every shard and fsck must stay clean.
echo "== placement smoke (seeded hotspot drill) =="
"$BUILD_DIR/tests/placement_test" \
  --gtest_filter='PlacementDrillTest.*'
echo "placement smoke OK"

# Trace smoke: run a bench slice with tracing sampled and the flight recorder
# exporting, then assert the Chrome trace JSON parses, contains at least one
# trace that crossed multiple servers, and that the critical-path rollups
# reconcile (queue+service+wire+logic within 5% of each root span).
echo "== trace smoke (bench_fig13 quick slice) =="
TRACE_JSON="$BUILD_DIR/trace_smoke.json"
rm -f "$TRACE_JSON"
MANTLE_BENCH_QUICK=1 MANTLE_BENCH_SECONDS=0.2 MANTLE_BENCH_THREADS=4 \
  MANTLE_TRACE_EXPORT="$TRACE_JSON" \
  "$BUILD_DIR/bench/bench_fig13_read_latency_breakdown" >/dev/null
python3 - "$TRACE_JSON" <<'PYEOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)  # must parse as strict JSON

events = doc["traceEvents"]
summaries = doc["mantleTraceSummaries"]
assert events, "no trace events exported"
assert summaries, "no trace summaries exported"

multi_server = [s for s in summaries if len(s.get("servers", [])) >= 2]
assert multi_server, "no trace crossed multiple servers"

checked = 0
for s in summaries:
    root = s["root_nanos"]
    if root <= 0:
        continue
    attributed = s["queue_nanos"] + s["service_nanos"] + s["wire_nanos"] + s["logic_nanos"]
    gap = abs(attributed - root) / root
    assert gap <= 0.05, f"trace {s['trace_id']}: attribution off by {gap:.1%}"
    checked += 1
assert checked > 0, "no closed-root traces to reconcile"
print(f"trace smoke OK: {len(events)} events, {len(summaries)} traces "
      f"({len(multi_server)} multi-server), {checked} reconciled within 5%")
PYEOF

# The rename TOCTOU fix is only as good as its race coverage: under TSan,
# hammer the rename-safety suite repeatedly so the seqlock-validated prepare
# section sees many interleavings.
if [ "$MODE" = thread ]; then
  echo "== rename safety under TSan (10 repeats) =="
  "$BUILD_DIR/tests/rename_safety_test" --gtest_repeat=10 \
    --gtest_filter='RenameSafetyTest.*'
  echo "rename safety OK"

  # Overload protection is all cross-thread state (breaker transitions, token
  # buckets, racing hedges): repeat its concurrency-heavy scenarios under TSan
  # so the interleavings actually vary.
  echo "== overload protection under TSan (5 repeats) =="
  "$BUILD_DIR/tests/overload_test" --gtest_repeat=5 \
    --gtest_filter='OverloadTest.BreakerTripsHalfOpensAndRecovers:OverloadTest.RetryBudgetBoundsRetryAmplification:OverloadTest.Hedg*'
  echo "overload protection OK"

  # Trace propagation is deliberately cross-thread (handler-local traces,
  # depot hand-off, stitch-at-op-end): repeat the fault-heavy tracing tests
  # under TSan so the orphan/stitch interleavings actually vary.
  echo "== trace propagation under TSan (5 repeats) =="
  "$BUILD_DIR/tests/tracing_test" --gtest_repeat=5 \
    --gtest_filter='TracingTest.SpansPropagate*:TracingTest.Dropped*:TracingTest.TimedOut*:TracingTest.Hedged*:TracingTest.FlightRecorderRetains*'
  echo "trace propagation OK"

  # The singleflight coalescer is pure cross-thread machinery (joiners racing
  # the leader's resolve, registry eviction, started-flag publication): repeat
  # its tests plus the chaos-mode batch conformance suite under TSan so the
  # join/publish interleavings actually vary.
  echo "== read coalescer under TSan (10 repeats) =="
  "$BUILD_DIR/tests/batch_read_test" --gtest_repeat=10 \
    --gtest_filter='BatchReadTest.Coalesc*:*BatchReadConformanceTest.MultiStatUnderSeededChaosStaysElementwise*'
  echo "read coalescer OK"

  # Membership changes are replicator threads starting and retiring while the
  # leader commits, plus the repair supervisor racing its own replacement
  # pipeline against live writers: repeat the config-change scenarios and the
  # learner-snapshot races under TSan so those interleavings actually vary.
  echo "== membership & repair under TSan (5 repeats) =="
  "$BUILD_DIR/tests/membership_test" --gtest_repeat=5 \
    --gtest_filter='MembershipTest.*:MembershipAcceptanceTest.*'
  "$BUILD_DIR/tests/raft_snapshot_test" --gtest_repeat=5 \
    --gtest_filter='RaftSnapshotTest.LearnerCatchupSnapshotRacesConfigChange:RaftSnapshotTest.InstallSnapshotAtJustRemovedNodeIsHarmless:RaftSnapshotTest.CrashAtThePersistedPointConverges'
  echo "membership & repair OK"

  # Live migration is a fence/latch dance between the migrator, 2PC phase-two
  # appliers, the compactor and stale routers: repeat the migration/cutover
  # scenarios under TSan so the fence and dirty-capture interleavings actually
  # vary.
  echo "== shard migration under TSan (5 repeats) =="
  "$BUILD_DIR/tests/placement_test" --gtest_repeat=5 \
    --gtest_filter='PlacementMigrationTest.MigrationUnderConcurrent2pcLosesNoAckedWrite:PlacementMigrationTest.StaleRouterBouncesWithWrongShard:PlacementMigrationTest.Crash*:PlacementMigrationTest.MigrationPreservesEveryRowAndBumpsEpoch'
  echo "shard migration OK"
fi
