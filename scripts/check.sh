#!/usr/bin/env bash
# Tier-1 verification under a sanitizer.
#
# Usage: scripts/check.sh [thread|address|none]   (default: thread)
#
# Builds the tree into build-<sanitizer>/ with -DMANTLE_SANITIZE=<mode> and
# runs the full test suite. Exits non-zero on any build failure, test failure,
# or sanitizer report (sanitizers abort the offending test binary).

set -euo pipefail

MODE="${1:-thread}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

case "$MODE" in
  thread|address)
    BUILD_DIR="$ROOT/build-$MODE"
    SANITIZE="$MODE"
    ;;
  none)
    BUILD_DIR="$ROOT/build"
    SANITIZE=""
    ;;
  *)
    echo "usage: $0 [thread|address|none]" >&2
    exit 2
    ;;
esac

# Fail on any sanitizer finding instead of just logging it.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0 halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

cmake -B "$BUILD_DIR" -S "$ROOT" -DMANTLE_SANITIZE="$SANITIZE" >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Sanitized binaries run several times slower; scale the per-test timeouts.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" --timeout 900
