#include "src/admission/admission.h"

#include "src/obs/metrics.h"

namespace mantle {

namespace {
thread_local OpPriority g_op_priority = OpPriority::kForeground;
thread_local int g_op_cost = 1;
}  // namespace

OpPriority CurrentOpPriority() { return g_op_priority; }

int CurrentOpCost() { return g_op_cost; }

ScopedOpCost::ScopedOpCost(int cost) : saved_(g_op_cost) {
  g_op_cost = cost < 1 ? 1 : cost;
}

ScopedOpCost::~ScopedOpCost() { g_op_cost = saved_; }

const char* OpPriorityName(OpPriority priority) {
  return priority == OpPriority::kBackground ? "bg" : "fg";
}

ScopedOpPriority::ScopedOpPriority(OpPriority priority) : saved_(g_op_priority) {
  g_op_priority = priority;
}

ScopedOpPriority::~ScopedOpPriority() { g_op_priority = saved_; }

AdmissionController::AdmissionController(const std::string& server_name,
                                         const AdmissionOptions& options, int workers)
    : options_(options), workers_(workers < 1 ? 1 : workers) {
  (void)server_name;  // policy is per-server, instruments are fleet-wide
  obs::Metrics& metrics = obs::Metrics::Instance();
  admitted_ = metrics.GetCounter("admission.admitted");
  rejected_depth_ = metrics.GetCounter("admission.rejected.depth");
  rejected_delay_ = metrics.GetCounter("admission.rejected.delay");
  rejected_background_ = metrics.GetCounter("admission.rejected.background");
  shed_expired_ = metrics.GetCounter("admission.shed.expired");
  expired_executed_ = metrics.GetCounter("admission.expired.executed");
  ema_gauge_ = metrics.GetGauge("admission.service.ema_nanos");
}

Status AdmissionController::Admit(int queue_depth, OpPriority priority, int cost) {
  if (!enabled()) {
    return Status::Ok();
  }
  // A handler worth `cost` units is judged as if the queue already held its
  // extra cost-1 singular equivalents.
  if (cost > 1) {
    queue_depth += cost - 1;
  }
  if (options_.max_queue_depth > 0) {
    int threshold = options_.max_queue_depth;
    if (priority == OpPriority::kBackground) {
      threshold = static_cast<int>(threshold * options_.background_fraction);
      if (threshold < 1) {
        threshold = 1;
      }
      if (QueueBusy(queue_depth, threshold)) {
        rejected_background_->Add();
        return Status::Overloaded("admission: background shed at queue depth " +
                                  std::to_string(queue_depth));
      }
    } else if (QueueBusy(queue_depth, threshold)) {
      rejected_depth_->Add();
      return Status::Overloaded("admission: queue depth " + std::to_string(queue_depth) +
                                " >= " + std::to_string(threshold));
    }
  }
  if (options_.max_queue_delay_nanos > 0) {
    const int64_t estimated = EstimatedQueueDelayNanos(queue_depth);
    if (estimated > options_.max_queue_delay_nanos) {
      rejected_delay_->Add();
      return Status::Overloaded("admission: estimated queue delay " +
                                std::to_string(estimated) + "ns exceeds bound");
    }
  }
  admitted_->Add();
  return Status::Ok();
}

void AdmissionController::RecordServiceTime(int64_t nanos) {
  if (nanos < 0) {
    return;
  }
  // EMA with alpha = 1/8; a single relaxed load/store race only blurs the
  // estimate, which the age policy tolerates.
  const int64_t prev = ema_service_nanos_.load(std::memory_order_relaxed);
  const int64_t next = prev == 0 ? nanos : prev - prev / 8 + nanos / 8;
  ema_service_nanos_.store(next, std::memory_order_relaxed);
  ema_gauge_->Set(next);
}

void AdmissionController::RecordShedExpired() { shed_expired_->Add(); }

void AdmissionController::RecordExpiredExecuted() { expired_executed_->Add(); }

int64_t AdmissionController::EstimatedQueueDelayNanos(int queue_depth) const {
  const int64_t ema = ema_service_nanos_.load(std::memory_order_relaxed);
  return queue_depth <= 0 ? 0 : (queue_depth * ema) / workers_;
}

}  // namespace mantle
