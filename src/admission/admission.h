// Server-side admission control (overload protection, FoundationDB Record
// Layer-style resource governance adapted to the simulated fabric).
//
// Every ServerExecutor owns one AdmissionController. Callers consult it
// before enqueuing a handler; it rejects with kOverloaded when the queue is
// deeper than the configured bound or when the estimated in-queue delay
// (depth x EMA service time / workers) exceeds the configured age bound.
// Background work (invalidator sweeps, compaction, fsck repair) is tagged via
// ScopedOpPriority and is shed earlier than foreground traffic, so elastic
// maintenance load yields first when a server saturates.
//
// The controller also centralises the repo's one definition of "busy"
// (QueueBusy): follower-read offload in IndexService and admission rejection
// read the same predicate, so the two load signals cannot drift apart.
//
// All policy knobs default to "disabled" (zero), preserving the unbounded
// seed behaviour unless a configuration opts in.

#ifndef SRC_ADMISSION_ADMISSION_H_
#define SRC_ADMISSION_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace mantle {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

// Priority tier of the work the current thread is performing. Foreground is
// client-visible metadata traffic; background is maintenance (invalidator,
// compactor, fsck repair, index rebuild) that should be shed first under
// load. Propagated thread-locally, like DeadlineBudget.
enum class OpPriority : uint8_t {
  kForeground = 0,
  kBackground = 1,
};

OpPriority CurrentOpPriority();

// Short stable label ("fg" / "bg") used in metric and trace-span names, e.g.
// the fabric's per-priority queue-wait segments ("queue.fg" / "queue.bg").
const char* OpPriorityName(OpPriority priority);

// RAII tag: marks all work on this thread as `priority` for its scope.
class ScopedOpPriority {
 public:
  explicit ScopedOpPriority(OpPriority priority);
  ~ScopedOpPriority();

  ScopedOpPriority(const ScopedOpPriority&) = delete;
  ScopedOpPriority& operator=(const ScopedOpPriority&) = delete;

 private:
  OpPriority saved_;
};

// Cost units of the RPC the current thread is about to issue, in units of
// "one singular handler" (default 1). Batched reads tag their scope with the
// batch size so admission control sees the true queue pressure a single
// batch RPC represents - without this, a 256-path batch would be admitted as
// cheaply as one lookup. Propagated thread-locally, like OpPriority.
int CurrentOpCost();

// RAII tag: RPCs issued on this thread within the scope carry `cost` units.
class ScopedOpCost {
 public:
  explicit ScopedOpCost(int cost);
  ~ScopedOpCost();

  ScopedOpCost(const ScopedOpCost&) = delete;
  ScopedOpCost& operator=(const ScopedOpCost&) = delete;

 private:
  int saved_;
};

struct AdmissionOptions {
  // Reject foreground work when the server queue already holds this many
  // handlers. 0 = unbounded (admission control disabled).
  int max_queue_depth = 0;

  // Background work is rejected once the queue reaches this fraction of
  // max_queue_depth, so maintenance yields capacity before clients notice.
  double background_fraction = 0.5;

  // Reject when the estimated in-queue wait (depth x EMA service time /
  // workers) exceeds this bound. 0 = no age-based rejection.
  int64_t max_queue_delay_nanos = 0;
};

class AdmissionController {
 public:
  AdmissionController(const std::string& server_name, const AdmissionOptions& options,
                      int workers);

  // The single definition of "queue is busy" shared by admission control and
  // IndexService follower-read offload. threshold <= 0 means "always busy"
  // (offload everything); a queue at or beyond the threshold is busy.
  static bool QueueBusy(int queue_depth, int threshold) {
    return threshold <= 0 || queue_depth >= threshold;
  }

  bool enabled() const {
    return options_.max_queue_depth > 0 || options_.max_queue_delay_nanos > 0;
  }

  // Decides whether a handler may be enqueued given the current queue depth.
  // Returns kOverloaded (retriable) on rejection. `cost` (>= 1) is the
  // handler's weight in singular-handler units: a batch RPC carrying N
  // lookups is judged as if the queue were already N-1 entries deeper, so
  // batching cannot smuggle load past the depth and delay policies.
  Status Admit(int queue_depth, OpPriority priority, int cost = 1);

  // Called by the executor after a handler finishes; feeds the EMA used for
  // the age-based policy.
  void RecordServiceTime(int64_t nanos);

  // A queued handler was dropped because its deadline expired before a worker
  // picked it up.
  void RecordShedExpired();

  // A handler with an already-expired deadline executed anyway (only possible
  // on paths that cannot synthesize a Status result). The overload drill
  // asserts this stays zero for protected configurations.
  void RecordExpiredExecuted();

  int64_t EstimatedQueueDelayNanos(int queue_depth) const;
  int64_t ema_service_nanos() const {
    return ema_service_nanos_.load(std::memory_order_relaxed);
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  const AdmissionOptions options_;
  const int workers_;
  std::atomic<int64_t> ema_service_nanos_{0};

  obs::Counter* admitted_;
  obs::Counter* rejected_depth_;
  obs::Counter* rejected_delay_;
  obs::Counter* rejected_background_;
  obs::Counter* shed_expired_;
  obs::Counter* expired_executed_;
  obs::Gauge* ema_gauge_;
};

}  // namespace mantle

#endif  // SRC_ADMISSION_ADMISSION_H_
