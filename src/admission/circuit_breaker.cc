#include "src/admission/circuit_breaker.h"

#include "src/obs/metrics.h"

namespace mantle {

CircuitBreaker::CircuitBreaker(const BreakerOptions& options) : options_(options) {
  obs::Metrics& metrics = obs::Metrics::Instance();
  tripped_ = metrics.GetCounter("breaker.trip");
  fast_failed_ = metrics.GetCounter("breaker.fastfail");
  probes_ = metrics.GetCounter("breaker.halfopen.probe");
  closed_ = metrics.GetCounter("breaker.close");
}

bool CircuitBreaker::Allow(int64_t now_nanos) {
  if (!enabled()) {
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_nanos < open_until_nanos_) {
        fast_failed_->Add();
        return false;
      }
      state_ = State::kHalfOpen;
      probe_successes_ = 0;
      probe_in_flight_ = false;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probe_in_flight_) {
        fast_failed_->Add();
        return false;
      }
      probe_in_flight_ = true;
      probes_->Add();
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    if (++probe_successes_ >= options_.half_open_successes) {
      state_ = State::kClosed;
      closed_->Add();
    }
  }
}

void CircuitBreaker::RecordFailure(int64_t now_nanos) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to open for another cooling-off window.
    state_ = State::kOpen;
    probe_in_flight_ = false;
    open_until_nanos_ = now_nanos + options_.open_nanos;
    tripped_->Add();
    return;
  }
  if (state_ == State::kClosed && ++consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    consecutive_failures_ = 0;
    open_until_nanos_ = now_nanos + options_.open_nanos;
    tripped_->Add();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

}  // namespace mantle
