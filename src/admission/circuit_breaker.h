// Per-destination circuit breaker: fail calls to a melting server fast.
//
// One breaker guards each ServerExecutor ("link" = every caller's path to
// that destination). Consecutive kOverloaded / kTimeout outcomes trip it
// open; while open, callers get kOverloaded immediately without charging RTT
// or occupying a queue slot. After `open_nanos` the breaker half-opens and
// admits one probe at a time; `half_open_successes` consecutive probe
// successes close it, any probe failure re-opens it.
//
// failure_threshold == 0 disables the breaker (seed behaviour).

#ifndef SRC_ADMISSION_CIRCUIT_BREAKER_H_
#define SRC_ADMISSION_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "src/common/status.h"

namespace mantle {

namespace obs {
class Counter;
}  // namespace obs

struct BreakerOptions {
  // Consecutive overloaded/timeout outcomes before tripping. 0 disables.
  int failure_threshold = 0;

  // How long a tripped breaker stays open before admitting probes.
  int64_t open_nanos = 20'000'000;  // 20 ms

  // Consecutive half-open probe successes required to close.
  int half_open_successes = 1;
};

class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const BreakerOptions& options);

  bool enabled() const { return options_.failure_threshold > 0; }

  // Returns true when the call may proceed; false means fail fast with
  // kOverloaded. In half-open state only one probe is allowed in flight;
  // every Allow() == true in half-open MUST be matched by RecordSuccess() or
  // RecordFailure() so the probe slot is released.
  bool Allow(int64_t now_nanos);

  // Outcome feedback. Only overloaded/timeout outcomes count as breaker
  // failures; logical errors (NotFound, Aborted...) are successes here
  // because the server is answering.
  void RecordSuccess();
  void RecordFailure(int64_t now_nanos);

  State state() const;

 private:
  const BreakerOptions options_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  bool probe_in_flight_ = false;
  int64_t open_until_nanos_ = 0;

  obs::Counter* tripped_;
  obs::Counter* fast_failed_;
  obs::Counter* probes_;
  obs::Counter* closed_;
};

}  // namespace mantle

#endif  // SRC_ADMISSION_CIRCUIT_BREAKER_H_
