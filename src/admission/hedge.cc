#include "src/admission/hedge.h"

#include <algorithm>

namespace mantle {

LatencyEstimator::LatencyEstimator() { window_.reserve(kWindow); }

void LatencyEstimator::Record(int64_t nanos) {
  if (nanos < 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (window_.size() < kWindow) {
    window_.push_back(nanos);
  } else {
    window_[next_] = nanos;
    next_ = (next_ + 1) % kWindow;
  }
  ++total_samples_;
}

int64_t LatencyEstimator::Quantile(double q, int min_samples) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_.empty() || total_samples_ < min_samples) {
    return 0;
  }
  std::vector<int64_t> sorted = window_;
  q = std::min(1.0, std::max(0.0, q));
  size_t rank = static_cast<size_t>(q * (sorted.size() - 1));
  std::nth_element(sorted.begin(), sorted.begin() + rank, sorted.end());
  return sorted[rank];
}

int64_t LatencyEstimator::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_samples_;
}

}  // namespace mantle
