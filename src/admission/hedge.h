// Hedged-read support: a latency estimator that turns observed read
// latencies into a quantile-derived hedge delay ("The Tail at Scale").
//
// IndexService records each successful replica read; when hedging is enabled
// and the primary replica has not answered within the observed
// `quantile`-percentile latency, a second read is issued to another replica
// and the first useful answer wins. Hedges spend retry-budget tokens so a
// saturated fleet cannot hedge itself deeper into overload.

#ifndef SRC_ADMISSION_HEDGE_H_
#define SRC_ADMISSION_HEDGE_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace mantle {

struct HedgeOptions {
  bool enable = false;

  // Hedge after the observed `quantile` of read latency (0.95 = p95).
  double quantile = 0.95;

  // Clamp on the derived delay, so cold estimators and latency spikes keep
  // the hedge point sane.
  int64_t min_delay_nanos = 200'000;      // 0.2 ms
  int64_t max_delay_nanos = 50'000'000;   // 50 ms

  // Do not hedge until this many latency samples exist.
  int min_samples = 16;
};

// Sliding window of recent latency samples with on-demand quantiles.
// Thread-safe; sized for a few hundred samples so Quantile() stays cheap.
class LatencyEstimator {
 public:
  static constexpr size_t kWindow = 256;

  LatencyEstimator();

  void Record(int64_t nanos);

  // The q-quantile (q in [0,1]) over the current window; 0 when fewer than
  // `min_samples` samples have ever been recorded.
  int64_t Quantile(double q, int min_samples) const;

  int64_t samples() const;

 private:
  mutable std::mutex mu_;
  std::vector<int64_t> window_;
  size_t next_ = 0;
  int64_t total_samples_ = 0;
};

}  // namespace mantle

#endif  // SRC_ADMISSION_HEDGE_H_
