#include "src/admission/retry_budget.h"

#include "src/obs/metrics.h"

namespace mantle {

RetryBudget::RetryBudget(const RetryBudgetOptions& options)
    : options_(options), tokens_(options.initial_tokens) {
  obs::Metrics& metrics = obs::Metrics::Instance();
  spent_ = metrics.GetCounter("retry.budget.spent");
  denied_ = metrics.GetCounter("retry.budget.denied");
  earned_ = metrics.GetCounter("retry.budget.earned");
  tokens_gauge_ = metrics.GetGauge("retry.budget.tokens");
}

bool RetryBudget::TrySpendRetry() { return TrySpend(options_.retry_cost); }

bool RetryBudget::TrySpendHedge() { return TrySpend(options_.hedge_cost); }

bool RetryBudget::TrySpend(double cost) {
  if (!options_.enabled) {
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < cost) {
    denied_->Add();
    return false;
  }
  tokens_ -= cost;
  spent_->Add();
  tokens_gauge_->Set(static_cast<int64_t>(tokens_));
  return true;
}

void RetryBudget::RecordSuccess() {
  if (!options_.enabled) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ += options_.earn_per_success;
  if (tokens_ > options_.max_tokens) {
    tokens_ = options_.max_tokens;
  }
  earned_->Add();
  tokens_gauge_->Set(static_cast<int64_t>(tokens_));
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

}  // namespace mantle
