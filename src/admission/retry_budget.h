// Client-side retry budget: a token bucket that bounds fleet-wide retry
// amplification (the classic metastable-failure fuel).
//
// Each MantleService (one "client" of the fabric) owns one budget. The first
// attempt of an operation is always free; every retry spends `retry_cost`
// tokens and every hedged read spends `hedge_cost`. Successful operations
// earn `earn_per_success` tokens back. When the bucket runs dry, retries and
// hedges are denied and the operation fails fast with the last error, so a
// fleet of failing callers converges to at most
//   earn_per_success / retry_cost
// retries per success instead of max_attempts per caller.

#ifndef SRC_ADMISSION_RETRY_BUDGET_H_
#define SRC_ADMISSION_RETRY_BUDGET_H_

#include <cstdint>
#include <mutex>

namespace mantle {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

struct RetryBudgetOptions {
  // Master switch. Disabled preserves the seed behaviour (attempt-count and
  // deadline are the only retry bounds).
  bool enabled = false;

  double max_tokens = 32.0;        // bucket capacity
  double initial_tokens = 32.0;    // starting balance
  double earn_per_success = 0.1;   // tokens earned per successful operation
  double retry_cost = 1.0;         // tokens spent per retry attempt
  double hedge_cost = 1.0;         // tokens spent per hedged read
};

class RetryBudget {
 public:
  explicit RetryBudget(const RetryBudgetOptions& options);

  // False when the budget is exhausted (the retry/hedge must not be sent).
  // Always true when the budget is disabled.
  bool TrySpendRetry();
  bool TrySpendHedge();

  // Earn tokens back on a successful operation.
  void RecordSuccess();

  double tokens() const;
  bool enabled() const { return options_.enabled; }
  const RetryBudgetOptions& options() const { return options_; }

 private:
  bool TrySpend(double cost);

  const RetryBudgetOptions options_;
  mutable std::mutex mu_;
  double tokens_;

  obs::Counter* spent_;
  obs::Counter* denied_;
  obs::Counter* earned_;
  obs::Gauge* tokens_gauge_;
};

}  // namespace mantle

#endif  // SRC_ADMISSION_RETRY_BUDGET_H_
