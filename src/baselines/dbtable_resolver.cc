#include "src/baselines/dbtable_resolver.h"

#include "src/common/path.h"

namespace mantle {

Result<DbResolveOutcome> DbTableResolver::ResolveLevels(
    const std::vector<std::string>& components, size_t levels, size_t start_level,
    InodeId start_id, uint32_t start_mask) {
  DbResolveOutcome outcome;
  outcome.dir_id = start_id;
  outcome.perm_mask = start_mask;
  for (size_t level = start_level; level < levels; ++level) {
    auto row = db_->Get(EntryKey(outcome.dir_id, components[level]));
    if (!row.ok()) {
      return row.status();
    }
    if (!row->IsDirectoryEntry()) {
      return Status::NotADirectory(PathPrefix(components, level + 1));
    }
    outcome.perm_mask &= row->permission;
    if ((row->permission & kPermTraverse) == 0) {
      return Status::PermissionDenied(PathPrefix(components, level + 1));
    }
    outcome.parent_id = outcome.dir_id;
    outcome.dir_id = row->id;
  }
  return outcome;
}

}  // namespace mantle
