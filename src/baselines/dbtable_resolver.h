// Level-by-level path resolution over TafDB - the DBtable architecture of
// Fig. 2. Each level costs one RPC to the shard owning the parent directory,
// with a permission check at every step; resolution latency therefore grows
// linearly with depth (Fig. 17). Used by the Tectonic baseline and as the
// InfiniFS fallback path.

#ifndef SRC_BASELINES_DBTABLE_RESOLVER_H_
#define SRC_BASELINES_DBTABLE_RESOLVER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/tafdb/tafdb.h"

namespace mantle {

struct DbResolveOutcome {
  InodeId dir_id = kRootId;     // directory the walk ends at
  InodeId parent_id = kRootId;  // one level above dir_id
  uint32_t perm_mask = kPermAll;
};

class DbTableResolver {
 public:
  explicit DbTableResolver(TafDb* db) : db_(db) {}

  // Resolves the first `levels` components of `components`, one Get RPC per
  // level, starting from `start_id` at level `start_level`.
  Result<DbResolveOutcome> ResolveLevels(const std::vector<std::string>& components,
                                         size_t levels, size_t start_level = 0,
                                         InodeId start_id = kRootId,
                                         uint32_t start_mask = kPermAll);

 private:
  TafDb* db_;
};

}  // namespace mantle

#endif  // SRC_BASELINES_DBTABLE_RESOLVER_H_
