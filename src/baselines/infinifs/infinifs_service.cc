#include "src/baselines/infinifs/infinifs_service.h"

#include <future>

#include "src/common/path.h"

namespace mantle {

InfiniFsService::InfiniFsService(Network* network, InfiniFsOptions options)
    : network_(network), options_(std::move(options)) {
  tafdb_ = std::make_unique<TafDb>(network_, options_.tafdb);
  coordinator_ = network_->AddServer("infinifs-coord", options_.coordinator_workers);
  if (options_.enable_am_cache) {
    am_cache_ = std::make_unique<AmCache>();
  }
  tafdb_->LoadPut(AttrKey(kRootId),
                  MetaValue{EntryType::kAttrPrimary, kRootId, kPermAll, 0, 0, 0, 0, kNoParent});
}

InodeId InfiniFsService::PredictId(const std::string& path) {
  if (path.empty() || path == "/") {
    return kRootId;
  }
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a over the normalized path
  for (char c : path) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  // High bit keeps predicted directory ids disjoint from sequential object
  // ids; never collides with kRootId.
  return hash | 0x8000000000000000ULL;
}

Result<InfiniFsService::Resolved> InfiniFsService::Resolve(
    const std::vector<std::string>& components, size_t levels) {
  Resolved resolved;
  size_t level = 0;

  if (am_cache_ != nullptr && levels > 0) {
    if (auto hit = am_cache_->LongestPrefix(components, levels)) {
      level = hit->levels;
      resolved.dir_id = hit->dir_id;
    }
  }

  bool first_round = true;
  while (level < levels) {
    // One parallel round: level `level` uses the verified parent id; deeper
    // levels use predicted ids.
    std::vector<std::future<std::optional<MetaValue>>> futures;
    futures.reserve(levels - level);
    for (size_t i = level; i < levels; ++i) {
      const InodeId pid =
          (i == level) ? resolved.dir_id : PredictId(PathPrefix(components, i));
      Shard* shard = tafdb_->shard_map()->Route(pid);
      ServerExecutor* server = tafdb_->shard_map()->RouteServer(pid);
      MetaKey key = EntryKey(pid, components[i]);
      futures.push_back(server->CallAsync([this, shard, key = std::move(key)]() {
        network_->ChargeDbRowAccess();
        return shard->Get(key);
      }));
    }
    network_->InjectDelay();
    resolve_stats_.rounds.fetch_add(1, std::memory_order_relaxed);
    if (!first_round) {
      resolve_stats_.fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
    first_round = false;

    std::vector<std::optional<MetaValue>> rows;
    rows.reserve(futures.size());
    for (auto& future : futures) {
      rows.push_back(future.get());
    }

    // Verify the chain: a level's result is valid only if the pid we queried
    // with equals the actual id of its parent directory.
    const size_t round_base = level;
    while (level < levels) {
      const size_t i = level - round_base;
      const InodeId pid_used =
          (level == round_base) ? resolved.dir_id : PredictId(PathPrefix(components, level));
      if (pid_used != resolved.dir_id) {
        break;  // misprediction: re-round starting from the verified parent
      }
      const auto& row = rows[i];
      if (!row.has_value()) {
        return Status::NotFound(PathPrefix(components, level + 1));
      }
      if (!row->IsDirectoryEntry()) {
        return Status::NotADirectory(PathPrefix(components, level + 1));
      }
      resolved.perm_mask &= row->permission;
      if ((row->permission & kPermTraverse) == 0) {
        return Status::PermissionDenied(PathPrefix(components, level + 1));
      }
      resolved.parent_id = resolved.dir_id;
      resolved.dir_id = row->id;
      ++level;
    }
  }

  if (am_cache_ != nullptr && levels > 0) {
    am_cache_->Insert(PathPrefix(components, levels), resolved.dir_id);
  }
  return resolved;
}

Status InfiniFsService::CoordinatorPrepare(const std::string& src_path,
                                           const std::string& dst_path, InodeId src_id,
                                           InodeId dst_parent_id, uint64_t uuid) {
  // Step 1: take path locks on the coordinator. A lock conflicts not only on
  // the exact path but on any prefix relationship: a rename holding "/x"
  // excludes a rename into "/x/..." and of any ancestor of "/x" - otherwise
  // two concurrent renames could weave the cycle that loop detection alone
  // cannot see (each walks a chain the other is about to change).
  Status lock_status = coordinator_->Call([this, &src_path, &dst_path, uuid]() {
    std::lock_guard<std::mutex> lock(lock_mu_);
    for (const auto& [held_path, holder] : path_locks_) {
      if (holder == uuid) {
        continue;
      }
      for (const std::string* requested : {&src_path, &dst_path}) {
        if (IsPathPrefix(held_path, *requested) || IsPathPrefix(*requested, held_path)) {
          return Status::Busy("rename in flight on " + held_path);
        }
      }
    }
    path_locks_[src_path] = uuid;
    path_locks_[dst_path] = uuid;
    return Status::Ok();
  });
  if (!lock_status.ok()) {
    return lock_status;
  }
  // Step 2: loop detection by walking the destination's ancestor chain via
  // attribute-row parent pointers - one DB RPC per level (this is what makes
  // distributed loop detection expensive, paper §4).
  InodeId current = dst_parent_id;
  while (current != kRootId && current != kNoParent) {
    if (current == src_id) {
      CoordinatorRelease(src_path, dst_path, uuid);
      return Status::LoopDetected(dst_path + " is under " + src_path);
    }
    auto attr = tafdb_->Get(AttrKey(current));
    if (!attr.ok()) {
      CoordinatorRelease(src_path, dst_path, uuid);
      return attr.status();
    }
    current = attr->parent;
  }
  return Status::Ok();
}

void InfiniFsService::CoordinatorRelease(const std::string& src_path,
                                         const std::string& dst_path, uint64_t uuid) {
  coordinator_->Call([this, &src_path, &dst_path, uuid]() {
    std::lock_guard<std::mutex> lock(lock_mu_);
    auto src_it = path_locks_.find(src_path);
    if (src_it != path_locks_.end() && src_it->second == uuid) {
      path_locks_.erase(src_it);
    }
    auto dst_it = path_locks_.find(dst_path);
    if (dst_it != path_locks_.end() && dst_it->second == uuid) {
      path_locks_.erase(dst_it);
    }
    return 0;
  });
}

OpResult InfiniFsService::Lookup(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto resolved = Resolve(components, components.empty() ? 0 : components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  result.status = resolved.ok() ? Status::Ok() : resolved.status();
  return result;
}

OpResult InfiniFsService::CreateObject(const std::string& path, uint64_t size) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = Resolve(components, components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  if ((parent->perm_mask & kPermWrite) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  const InodeId pid = parent->dir_id;
  std::vector<WriteOp> ops;
  WriteOp insert;
  insert.kind = WriteOp::Kind::kPut;
  insert.expect = WriteOp::Expect::kMustNotExist;
  insert.key = EntryKey(pid, components.back());
  insert.value = MetaValue{EntryType::kObject, AllocateObjectId(), kPermAll, size, 0, 1, 0, pid};
  ops.push_back(std::move(insert));
  WriteOp attr;
  attr.kind = WriteOp::Kind::kAddChildCount;
  attr.key = AttrKey(pid);
  attr.count_delta = +1;
  attr.bump_mtime = true;
  ops.push_back(std::move(attr));
  result.status = tafdb_->ApplyAtomicSingleShard(ops);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult InfiniFsService::DeleteObject(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = Resolve(components, components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  const InodeId pid = parent->dir_id;
  std::vector<WriteOp> ops;
  WriteOp erase;
  erase.kind = WriteOp::Kind::kDelete;
  erase.expect = WriteOp::Expect::kMustBeObject;
  erase.key = EntryKey(pid, components.back());
  ops.push_back(std::move(erase));
  WriteOp attr;
  attr.kind = WriteOp::Kind::kAddChildCount;
  attr.key = AttrKey(pid);
  attr.count_delta = -1;
  attr.bump_mtime = true;
  ops.push_back(std::move(attr));
  result.status = tafdb_->ApplyAtomicSingleShard(ops);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

StatResult InfiniFsService::StatObject(const std::string& path) {
  StatResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  // InfiniFS folds the leaf read into the speculative round (the paper notes
  // it "bypasses the execution phase for objstat"): resolve the parent and
  // fetch the leaf row in the same style - here we run the parent resolve and
  // the leaf get as one extra level in the final round by simply resolving
  // then reading; the lookup phase carries the whole cost.
  auto parent = Resolve(components, components.size() - 1);
  if (!parent.ok()) {
    result.breakdown.lookup_nanos = timer.ElapsedNanos();
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  auto row = tafdb_->Get(EntryKey(parent->dir_id, components.back()));
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!row.ok()) {
    result.status = row.status();
    return result;
  }
  result.info = StatInfo{row->id, row->IsDirectoryEntry(), row->size, 0, row->mtime,
                         row->permission};
  result.status = Status::Ok();
  return result;
}

StatResult InfiniFsService::StatDir(const std::string& path) {
  StatResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto dir = Resolve(components, components.size());
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto attr = tafdb_->ReadDirAttr(dir->dir_id);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!attr.ok()) {
    result.status = attr.status();
    return result;
  }
  result.info = StatInfo{dir->dir_id, true, 0, attr->child_count, attr->mtime, dir->perm_mask};
  result.status = Status::Ok();
  return result;
}

OpResult InfiniFsService::Mkdir(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::AlreadyExists("/");
    return result;
  }
  auto parent = Resolve(components, components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  if ((parent->perm_mask & kPermWrite) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  const InodeId pid = parent->dir_id;
  InodeId dir_id = PredictId(NormalizePath(path));
  // CFS two-transaction strategy: (1) the new directory's attribute row on
  // shard(dir_id); (2) entry row + parent attribute on shard(pid). Both are
  // single-shard atomic primitives; no distributed transaction, no aborts.
  // The attribute insert doubles as the id-uniqueness check: if the predicted
  // id is taken (a same-path predecessor was renamed away and lives on), fall
  // back to an allocated, unpredictable id.
  WriteOp attr_primary;
  attr_primary.kind = WriteOp::Kind::kPut;
  attr_primary.expect = WriteOp::Expect::kMustNotExist;
  attr_primary.key = AttrKey(dir_id);
  attr_primary.value = MetaValue{EntryType::kAttrPrimary, dir_id, kPermAll, 0, 0, 1, 0, pid};
  result.status = tafdb_->ApplySingle(attr_primary);
  if (result.status.IsAlreadyExists()) {
    dir_id = AllocateUnpredictedDirId();
    attr_primary.key = AttrKey(dir_id);
    attr_primary.value.id = dir_id;
    result.status = tafdb_->ApplySingle(attr_primary);
  }
  if (result.status.ok()) {
    std::vector<WriteOp> second;
    WriteOp entry;
    entry.kind = WriteOp::Kind::kPut;
    entry.expect = WriteOp::Expect::kMustNotExist;
    entry.key = EntryKey(pid, components.back());
    entry.value = MetaValue{EntryType::kDirectory, dir_id, kPermAll, 0, 0, 1, 0, pid};
    second.push_back(std::move(entry));
    WriteOp parent_attr;
    parent_attr.kind = WriteOp::Kind::kAddChildCount;
    parent_attr.key = AttrKey(pid);
    parent_attr.count_delta = +1;
    parent_attr.bump_mtime = true;
    second.push_back(std::move(parent_attr));
    result.status = tafdb_->ApplyAtomicSingleShard(second);
    if (!result.status.ok()) {
      // Roll the orphan attribute row back so the id is reusable.
      WriteOp undo;
      undo.kind = WriteOp::Kind::kDelete;
      undo.key = AttrKey(dir_id);
      tafdb_->ApplySingle(undo);
    }
  }
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult InfiniFsService::Rmdir(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument("cannot remove the root");
    return result;
  }
  auto dir = Resolve(components, components.size());
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto has_children = tafdb_->HasChildren(dir->dir_id);
  if (!has_children.ok()) {
    result.status = has_children.status();
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  if (*has_children) {
    result.status = Status::NotEmpty(path);
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  std::vector<WriteOp> first;
  WriteOp entry;
  entry.kind = WriteOp::Kind::kDelete;
  entry.expect = WriteOp::Expect::kMustExist;
  entry.key = EntryKey(dir->parent_id, components.back());
  first.push_back(std::move(entry));
  WriteOp parent_attr;
  parent_attr.kind = WriteOp::Kind::kAddChildCount;
  parent_attr.key = AttrKey(dir->parent_id);
  parent_attr.count_delta = -1;
  parent_attr.bump_mtime = true;
  first.push_back(std::move(parent_attr));
  result.status = tafdb_->ApplyAtomicSingleShard(first);
  if (result.status.ok()) {
    WriteOp attr;
    attr.kind = WriteOp::Kind::kDelete;
    attr.key = AttrKey(dir->dir_id);
    result.status = tafdb_->ApplySingle(attr);
  }
  if (am_cache_ != nullptr) {
    am_cache_->InvalidateSubtree(NormalizePath(path));
  }
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult InfiniFsService::RenameDir(const std::string& src_path, const std::string& dst_path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  const auto src_components = SplitPath(src_path);
  const auto dst_components = SplitPath(dst_path);
  if (src_components.empty() || dst_components.empty()) {
    result.status = Status::InvalidArgument("rename involving the root");
    return result;
  }
  const std::string src_norm = NormalizePath(src_path);
  const std::string dst_norm = NormalizePath(dst_path);
  const uint64_t uuid = NewUuid();

  result.status = RetryTransaction(
      [&]() -> Status {
        Stopwatch lookup_timer;
        auto src_parent = Resolve(src_components, src_components.size() - 1);
        if (!src_parent.ok()) {
          result.breakdown.lookup_nanos += lookup_timer.ElapsedNanos();
          return src_parent.status();
        }
        auto dst_parent = Resolve(dst_components, dst_components.size() - 1);
        result.breakdown.lookup_nanos += lookup_timer.ElapsedNanos();
        if (!dst_parent.ok()) {
          return dst_parent.status();
        }
        auto src_row = tafdb_->Get(EntryKey(src_parent->dir_id, src_components.back()));
        if (!src_row.ok()) {
          return src_row.status();
        }
        if (!src_row->IsDirectoryEntry()) {
          return Status::NotADirectory(src_path);
        }

        Stopwatch loop_timer;
        Status prepare = CoordinatorPrepare(src_norm, dst_norm, src_row->id,
                                            dst_parent->dir_id, uuid);
        result.breakdown.loop_detect_nanos += loop_timer.ElapsedNanos();
        if (!prepare.ok()) {
          return prepare;
        }

        Stopwatch exec_timer;
        const uint64_t txn_id = tafdb_->NextTxnId();
        std::vector<WriteOp> ops;
        WriteOp erase;
        erase.kind = WriteOp::Kind::kDelete;
        erase.expect = WriteOp::Expect::kMustExist;
        erase.key = EntryKey(src_parent->dir_id, src_components.back());
        ops.push_back(std::move(erase));
        WriteOp insert;
        insert.kind = WriteOp::Kind::kPut;
        insert.expect = WriteOp::Expect::kMustNotExist;
        insert.key = EntryKey(dst_parent->dir_id, dst_components.back());
        MetaValue moved = *src_row;
        moved.parent = dst_parent->dir_id;
        insert.value = moved;
        ops.push_back(std::move(insert));
        WriteOp src_attr;
        src_attr.kind = WriteOp::Kind::kAddChildCount;
        src_attr.expect = WriteOp::Expect::kMustExist;
        src_attr.key = AttrKey(src_parent->dir_id);
        src_attr.count_delta = -1;
        src_attr.bump_mtime = true;
        ops.push_back(std::move(src_attr));
        if (dst_parent->dir_id != src_parent->dir_id) {
          WriteOp dst_attr;
          dst_attr.kind = WriteOp::Kind::kAddChildCount;
          dst_attr.expect = WriteOp::Expect::kMustExist;
          dst_attr.key = AttrKey(dst_parent->dir_id);
          dst_attr.count_delta = +1;
          dst_attr.bump_mtime = true;
          ops.push_back(std::move(dst_attr));
        }
        // Reverse link of the moved directory follows it to the new parent.
        WriteOp reparent;
        reparent.kind = WriteOp::Kind::kPut;
        reparent.expect = WriteOp::Expect::kMustExist;
        reparent.key = AttrKey(src_row->id);
        auto moved_attr = tafdb_->LocalGet(AttrKey(src_row->id));
        if (moved_attr.has_value()) {
          MetaValue updated = *moved_attr;
          updated.parent = dst_parent->dir_id;
          reparent.value = updated;
          ops.push_back(std::move(reparent));
        }
        Status txn_status = tafdb_->Execute(ops, txn_id);
        CoordinatorRelease(src_norm, dst_norm, uuid);
        result.breakdown.execute_nanos += exec_timer.ElapsedNanos();
        if (txn_status.ok() && am_cache_ != nullptr) {
          am_cache_->InvalidateSubtree(src_norm);
        }
        return txn_status;
      },
      options_.retry, &result.retries);
  result.rpcs = rpcs.count();
  return result;
}

OpResult InfiniFsService::ReadDir(const std::string& path, std::vector<std::string>* names) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto dir = Resolve(components, components.size());
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto listing = tafdb_->ListChildren(dir->dir_id);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!listing.ok()) {
    result.status = listing.status();
    return result;
  }
  if (names != nullptr) {
    names->clear();
    for (const auto& entry : *listing) {
      names->push_back(entry.key.name);
    }
  }
  result.status = Status::Ok();
  return result;
}

OpResult InfiniFsService::SetDirPermission(const std::string& path, uint32_t permission) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument("cannot setattr the root");
    return result;
  }
  auto parent = Resolve(components, components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto row = tafdb_->Get(EntryKey(parent->dir_id, components.back()));
  if (!row.ok()) {
    result.status = row.status();
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  WriteOp update;
  update.kind = WriteOp::Kind::kPut;
  update.expect = WriteOp::Expect::kMustExist;
  update.key = EntryKey(parent->dir_id, components.back());
  MetaValue value = *row;
  value.permission = permission;
  update.value = value;
  result.status = tafdb_->ApplySingle(update);
  if (am_cache_ != nullptr) {
    am_cache_->InvalidateSubtree(NormalizePath(path));
  }
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

Result<InodeId> InfiniFsService::LocalResolveParent(
    const std::vector<std::string>& components) {
  InodeId current = kRootId;
  for (size_t level = 0; level + 1 < components.size(); ++level) {
    auto row = tafdb_->LocalGet(EntryKey(current, components[level]));
    if (!row.has_value()) {
      return Status::NotFound(PathPrefix(components, level + 1));
    }
    current = row->id;
  }
  return current;
}

Status InfiniFsService::BulkLoad(const BulkEntry& entry) {
  const auto components = SplitPath(entry.path);
  if (components.empty()) {
    return entry.kind == BulkEntry::Kind::kDir ? Status::Ok()
                                               : Status::InvalidArgument(entry.path);
  }
  auto pid = LocalResolveParent(components);
  if (!pid.ok()) {
    return pid.status();
  }
  if (entry.kind == BulkEntry::Kind::kDir) {
    const InodeId dir_id = PredictId(NormalizePath(entry.path));
    tafdb_->LoadPut(EntryKey(*pid, components.back()),
                    MetaValue{EntryType::kDirectory, dir_id, kPermAll, 0, 0, 0, 0, *pid});
    tafdb_->LoadPut(AttrKey(dir_id),
                    MetaValue{EntryType::kAttrPrimary, dir_id, kPermAll, 0, 0, 0, 0, *pid});
  } else {
    tafdb_->LoadPut(EntryKey(*pid, components.back()),
                    MetaValue{EntryType::kObject, AllocateObjectId(), kPermAll, entry.size, 0,
                              0, 0, *pid});
  }
  tafdb_->LoadAdjustChildCount(*pid, +1);
  return Status::Ok();
}

}  // namespace mantle
