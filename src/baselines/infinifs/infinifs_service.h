// InfiniFS baseline: speculative parallel path resolution (paper §3.3, §6.1).
//
// Directory ids are *predictable*: a directory created at path P receives
// id = PredictId(P), so a resolver can guess every level's shard key from the
// path string alone and issue all per-level lookups in one parallel round.
// Renames break the prediction for the moved subtree (ids do not change, the
// paths do), forcing sequential fallback rounds - the degradation the paper
// attributes to InfiniFS under rename-heavy workloads.
//
// Directory modifications use the CFS two-transaction strategy: each half is
// a single-shard atomic operation (no distributed 2PC, no aborts) except
// cross-directory dirrename, which still needs a distributed transaction plus
// a dedicated rename coordinator for locking and loop detection - loop
// detection walks parent pointers with one DB RPC per ancestor level.
//
// The optional AM-Cache (enable_am_cache) adds the metadata caching of
// Fig. 20.

#ifndef SRC_BASELINES_INFINIFS_INFINIFS_SERVICE_H_
#define SRC_BASELINES_INFINIFS_INFINIFS_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/am_cache.h"
#include "src/core/metadata_service.h"
#include "src/core/retry.h"
#include "src/net/network.h"
#include "src/tafdb/tafdb.h"

namespace mantle {

struct InfiniFsOptions {
  TafDbOptions tafdb;
  RetryOptions retry;
  size_t coordinator_workers = 4;
  bool enable_am_cache = false;
};

class InfiniFsService final : public MetadataService {
 public:
  InfiniFsService(Network* network, InfiniFsOptions options);

  std::string name() const override { return "InfiniFS"; }

  OpResult CreateObject(const std::string& path, uint64_t size) override;
  OpResult DeleteObject(const std::string& path) override;
  StatResult StatObject(const std::string& path) override;
  StatResult StatDir(const std::string& path) override;
  // Re-export the base out-param deprecation shims next to the overrides.
  using MetadataService::StatObject;
  using MetadataService::StatDir;
  OpResult Mkdir(const std::string& path) override;
  OpResult Rmdir(const std::string& path) override;
  OpResult RenameDir(const std::string& src_path, const std::string& dst_path) override;
  OpResult ReadDir(const std::string& path, std::vector<std::string>* names) override;
  OpResult SetDirPermission(const std::string& path, uint32_t permission) override;
  OpResult Lookup(const std::string& path) override;

  Status BulkLoad(const BulkEntry& entry) override;

  TafDb* tafdb() { return tafdb_.get(); }
  AmCache* am_cache() { return am_cache_.get(); }

  // Deterministic id prediction; public for tests.
  static InodeId PredictId(const std::string& path);

  struct ResolveStats {
    std::atomic<uint64_t> rounds{0};
    std::atomic<uint64_t> fallbacks{0};  // rounds beyond the first per resolve
  };
  const ResolveStats& resolve_stats() const { return resolve_stats_; }

 private:
  struct Resolved {
    InodeId dir_id = kRootId;
    InodeId parent_id = kRootId;
    uint32_t perm_mask = kPermAll;
  };

  // Speculative parallel resolution of the first `levels` components.
  Result<Resolved> Resolve(const std::vector<std::string>& components, size_t levels);

  struct CoordinatorGrant {
    bool granted = false;
  };
  // Rename coordinator (single logical server): path locks + loop detection.
  Status CoordinatorPrepare(const std::string& src_path, const std::string& dst_path,
                            InodeId src_id, InodeId dst_parent_id, uint64_t uuid);
  void CoordinatorRelease(const std::string& src_path, const std::string& dst_path,
                          uint64_t uuid);

  InodeId AllocateObjectId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }
  // Fallback directory ids when the predicted id is already in use (the
  // previous holder was renamed away but still exists). Unpredictable by
  // construction, so resolution under such a directory always falls back.
  InodeId AllocateUnpredictedDirId() {
    return 0x4000000000000000ULL + next_dir_id_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NewUuid() { return next_uuid_.fetch_add(1, std::memory_order_relaxed) + 1; }
  Result<InodeId> LocalResolveParent(const std::vector<std::string>& components);

  Network* network_;
  InfiniFsOptions options_;
  std::unique_ptr<TafDb> tafdb_;
  ServerExecutor* coordinator_;
  std::unique_ptr<AmCache> am_cache_;
  ResolveStats resolve_stats_;

  std::mutex lock_mu_;
  std::unordered_map<std::string, uint64_t> path_locks_;

  std::atomic<InodeId> next_id_{1'000'000'000ULL};  // object ids, disjoint from hashes
  std::atomic<InodeId> next_dir_id_{1};
  std::atomic<uint64_t> next_uuid_{0};
};

}  // namespace mantle

#endif  // SRC_BASELINES_INFINIFS_INFINIFS_SERVICE_H_
