#include "src/baselines/locofs/loco_dir_machine.h"

#include "src/common/path.h"

namespace mantle {

LocoDirMachine::LocoDirMachine(Network* network) : network_(network) {
  attrs_[kRootId] = Attr{};
}

Result<LocoDirMachine::DirInfo> LocoDirMachine::WalkLocked(
    const std::vector<std::string>& components, size_t levels) const {
  DirInfo info;
  for (size_t level = 0; level < levels; ++level) {
    auto entry = table_.Lookup(info.id, components[level]);
    if (!entry.has_value()) {
      return Status::NotFound(PathPrefix(components, level + 1));
    }
    info.perm_mask &= entry->permission;
    if ((entry->permission & kPermTraverse) == 0) {
      return Status::PermissionDenied(PathPrefix(components, level + 1));
    }
    info.parent_id = info.id;
    info.id = entry->id;
  }
  return info;
}

Result<LocoDirMachine::DirInfo> LocoDirMachine::Resolve(
    const std::vector<std::string>& components, size_t levels) {
  network_->ChargeMemIndexAccess(static_cast<int64_t>(levels));
  return WalkLocked(components, levels);
}

Result<LocoDirMachine::DirInfo> LocoDirMachine::DirStat(
    const std::vector<std::string>& components) {
  auto info = Resolve(components, components.size());
  if (!info.ok()) {
    return info;
  }
  std::lock_guard<std::mutex> lock(attr_mu_);
  auto it = attrs_.find(info->id);
  if (it != attrs_.end()) {
    info->child_count = it->second.child_count;
    info->mtime = it->second.mtime;
  }
  return info;
}

std::vector<std::string> LocoDirMachine::ChildDirs(InodeId pid) const {
  std::lock_guard<std::mutex> lock(attr_mu_);
  auto it = children_.find(pid);
  if (it == children_.end()) {
    return {};
  }
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::string LocoDirMachine::Apply(uint64_t index, const std::string& payload) {
  auto decoded = DecodeIndexCommand(payload);
  if (!decoded.ok()) {
    return EncodeApplyStatus(decoded.status());
  }
  Status status;
  switch (decoded->type) {
    case IndexCommandType::kAddDir:
      status = ApplyAddDir(*decoded);
      break;
    case IndexCommandType::kRemoveDir:
      status = ApplyRemoveDir(*decoded);
      break;
    case IndexCommandType::kRenameDir:
      status = ApplyRenameDir(*decoded);
      break;
    case IndexCommandType::kSetPermission:
      status = ApplySetPermission(*decoded);
      break;
    default:
      status = Status::InvalidArgument("unknown locofs command");
      break;
  }
  return EncodeApplyStatus(status);
}

std::string LocoDirMachine::Snapshot() {
  // Entries carry everything needed to rebuild attrs and child listings:
  // serialize the table, then reconstruct bookkeeping on restore. Directory
  // mtimes are logical counters and restart at the snapshot point.
  std::vector<SnapshotEntry> entries;
  for (const auto& exported : table_.Export()) {
    entries.push_back(
        SnapshotEntry{exported.pid, exported.name, exported.id, exported.permission});
  }
  return EncodeIndexSnapshot(entries);
}

void LocoDirMachine::Restore(const std::string& snapshot) {
  auto decoded = DecodeIndexSnapshot(snapshot);
  if (!decoded.ok()) {
    return;
  }
  table_.Reset();
  {
    std::lock_guard<std::mutex> lock(attr_mu_);
    attrs_.clear();
    children_.clear();
    attrs_[table_.root_id()] = Attr{};
  }
  for (const auto& entry : *decoded) {
    table_.Insert(entry.pid, entry.name, entry.id, entry.permission);
  }
  std::lock_guard<std::mutex> lock(attr_mu_);
  for (const auto& entry : *decoded) {
    attrs_.try_emplace(entry.id);
    ++attrs_[entry.pid].child_count;
    children_[entry.pid].insert(entry.name);
  }
}

Status LocoDirMachine::ApplyAddDir(const IndexCommand& command) {
  const auto components = SplitPath(command.inval_path);
  if (components.empty()) {
    return Status::AlreadyExists("/");
  }
  auto parent = WalkLocked(components, components.size() - 1);
  if (!parent.ok()) {
    return parent.status();
  }
  Status status = table_.Insert(parent->id, components.back(), command.id, command.permission);
  if (!status.ok()) {
    return status;
  }
  std::lock_guard<std::mutex> lock(attr_mu_);
  attrs_[command.id] = Attr{};
  Attr& parent_attr = attrs_[parent->id];
  ++parent_attr.child_count;
  ++parent_attr.mtime;
  children_[parent->id].insert(components.back());
  return Status::Ok();
}

Status LocoDirMachine::ApplyRemoveDir(const IndexCommand& command) {
  const auto components = SplitPath(command.inval_path);
  if (components.empty()) {
    return Status::InvalidArgument("cannot remove the root");
  }
  auto dir = WalkLocked(components, components.size());
  if (!dir.ok()) {
    return dir.status();
  }
  {
    std::lock_guard<std::mutex> lock(attr_mu_);
    auto it = attrs_.find(dir->id);
    if (it != attrs_.end() && it->second.child_count > 0) {
      return Status::NotEmpty(command.inval_path);
    }
  }
  Status status = table_.Remove(dir->parent_id, components.back());
  if (!status.ok()) {
    return status;
  }
  std::lock_guard<std::mutex> lock(attr_mu_);
  attrs_.erase(dir->id);
  Attr& parent_attr = attrs_[dir->parent_id];
  --parent_attr.child_count;
  ++parent_attr.mtime;
  children_[dir->parent_id].erase(components.back());
  return Status::Ok();
}

Status LocoDirMachine::ApplyRenameDir(const IndexCommand& command) {
  const auto src_components = SplitPath(command.inval_path);
  const auto dst_components = SplitPath(command.dst_name);
  if (src_components.empty() || dst_components.empty()) {
    return Status::InvalidArgument("rename involving the root");
  }
  auto src = WalkLocked(src_components, src_components.size());
  if (!src.ok()) {
    return src.status();
  }
  auto release = [this, &src, &command]() { table_.UnlockDir(src->id, command.uuid); };
  auto dst_parent = WalkLocked(dst_components, dst_components.size() - 1);
  if (!dst_parent.ok()) {
    release();
    return dst_parent.status();
  }
  if (table_.IsSelfOrAncestor(src->id, dst_parent->id)) {
    release();
    return Status::LoopDetected(command.dst_name);
  }
  Status status =
      table_.Rename(src->parent_id, src_components.back(), dst_parent->id, dst_components.back());
  if (!status.ok()) {
    release();
    return status;
  }
  std::lock_guard<std::mutex> lock(attr_mu_);
  Attr& old_parent = attrs_[src->parent_id];
  --old_parent.child_count;
  ++old_parent.mtime;
  children_[src->parent_id].erase(src_components.back());
  Attr& new_parent = attrs_[dst_parent->id];
  ++new_parent.child_count;
  ++new_parent.mtime;
  children_[dst_parent->id].insert(dst_components.back());
  return Status::Ok();
}

Status LocoDirMachine::ApplySetPermission(const IndexCommand& command) {
  const auto components = SplitPath(command.inval_path);
  if (components.empty()) {
    return Status::InvalidArgument("cannot setattr the root");
  }
  auto parent = WalkLocked(components, components.size() - 1);
  if (!parent.ok()) {
    return parent.status();
  }
  return table_.SetPermission(parent->id, components.back(), command.permission);
}

Result<LocoDirMachine::RenamePrepared> LocoDirMachine::RenamePrepare(
    const std::vector<std::string>& src_components,
    const std::vector<std::string>& dst_components, uint64_t uuid) {
  network_->ChargeMemIndexAccess(
      static_cast<int64_t>(src_components.size() + dst_components.size()));
  auto src = WalkLocked(src_components, src_components.size());
  if (!src.ok()) {
    return src.status();
  }
  auto dst_parent = WalkLocked(dst_components, dst_components.size() - 1);
  if (!dst_parent.ok()) {
    return dst_parent.status();
  }
  if (table_.Lookup(dst_parent->id, dst_components.back()).has_value()) {
    return Status::AlreadyExists(dst_components.back());
  }
  if (!table_.TryLockDir(src->id, uuid)) {
    return Status::Busy("rename lock held");
  }
  if (table_.IsSelfOrAncestor(src->id, dst_parent->id)) {
    table_.UnlockDir(src->id, uuid);
    return Status::LoopDetected(JoinPath(dst_components));
  }
  return RenamePrepared{src->id, dst_parent->id};
}

void LocoDirMachine::RenameAbort(InodeId src_id, uint64_t uuid) {
  table_.UnlockDir(src_id, uuid);
}

void LocoDirMachine::LoadDir(const std::vector<std::string>& components, InodeId id,
                             uint32_t permission) {
  if (components.empty()) {
    return;
  }
  auto parent = WalkLocked(components, components.size() - 1);
  if (!parent.ok()) {
    return;
  }
  if (!table_.Insert(parent->id, components.back(), id, permission).ok()) {
    return;
  }
  std::lock_guard<std::mutex> lock(attr_mu_);
  attrs_[id] = Attr{};
  ++attrs_[parent->id].child_count;
  children_[parent->id].insert(components.back());
}

}  // namespace mantle
