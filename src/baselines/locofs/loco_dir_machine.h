// LocoDirMachine: the in-memory directory metadata server of the LocoFS
// baseline (tiered architecture, paper §3.3 & §6.1).
//
// LocoFS decouples directory metadata (held entirely on one dedicated server,
// replicated by Raft without log batching) from object metadata (stored in
// the scalable DB). All directory operations - resolution, dirstat, mkdir,
// rename, loop detection - execute on this central node, which is both its
// strength (single-RTT lookups) and its bottleneck (central-node CPU and
// unbatched Raft commit throughput).
//
// Commands reuse the IndexCommand codec with path-carrying semantics: the
// machine resolves paths during apply ("LocoFS resolves paths during the
// execution phase", §6.3). Fields:
//   kAddDir:        inval_path = full path of the new directory
//   kRemoveDir:     inval_path = full path
//   kRenameDir:     inval_path = full source path, dst_name = full dest path
//   kSetPermission: inval_path = full path

#ifndef SRC_BASELINES_LOCOFS_LOCO_DIR_MACHINE_H_
#define SRC_BASELINES_LOCOFS_LOCO_DIR_MACHINE_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/index/command.h"
#include "src/index/index_table.h"
#include "src/net/network.h"
#include "src/raft/state_machine.h"

namespace mantle {

class LocoDirMachine final : public StateMachine {
 public:
  explicit LocoDirMachine(Network* network);

  std::string Apply(uint64_t index, const std::string& command) override;
  std::string Snapshot() override;
  void Restore(const std::string& snapshot) override;

  struct DirInfo {
    InodeId id = kRootId;
    InodeId parent_id = kRootId;
    uint32_t perm_mask = kPermAll;
    int64_t child_count = 0;  // child *directories* (objects live in the DB)
    uint64_t mtime = 0;
  };

  // Resolves the first `levels` components; charges one in-memory probe per
  // level on the caller's (dirserver) executor.
  Result<DirInfo> Resolve(const std::vector<std::string>& components, size_t levels);

  // Resolution without the modeled CPU charge (bulk loading, tests).
  Result<DirInfo> ResolveNoCharge(const std::vector<std::string>& components,
                                  size_t levels) const {
    return WalkLocked(components, levels);
  }

  // Full-path stat, resolution included (single RPC on the dirserver).
  Result<DirInfo> DirStat(const std::vector<std::string>& components);

  // Child directory names under `pid`.
  std::vector<std::string> ChildDirs(InodeId pid) const;

  struct RenamePrepared {
    InodeId src_id = 0;
    InodeId dst_parent_id = 0;
  };
  // Leader-side rename coordination: lock bit + loop detection.
  Result<RenamePrepared> RenamePrepare(const std::vector<std::string>& src_components,
                                       const std::vector<std::string>& dst_components,
                                       uint64_t uuid);
  void RenameAbort(InodeId src_id, uint64_t uuid);

  // Bulk load (pre-serving, applied to every replica identically).
  void LoadDir(const std::vector<std::string>& components, InodeId id, uint32_t permission);

  size_t DirCount() const { return table_.Size(); }

 private:
  struct Attr {
    int64_t child_count = 0;
    uint64_t mtime = 0;
  };

  Status ApplyAddDir(const IndexCommand& command);
  Status ApplyRemoveDir(const IndexCommand& command);
  Status ApplyRenameDir(const IndexCommand& command);
  Status ApplySetPermission(const IndexCommand& command);

  // Walks `components[0..levels)` in the table; no service charge (used from
  // apply and internal paths).
  Result<DirInfo> WalkLocked(const std::vector<std::string>& components, size_t levels) const;

  Network* network_;
  IndexTable table_;

  mutable std::mutex attr_mu_;
  std::unordered_map<InodeId, Attr> attrs_;
  std::unordered_map<InodeId, std::set<std::string>> children_;
};

}  // namespace mantle

#endif  // SRC_BASELINES_LOCOFS_LOCO_DIR_MACHINE_H_
