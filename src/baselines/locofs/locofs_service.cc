#include "src/baselines/locofs/locofs_service.h"

#include "src/admission/admission.h"
#include "src/common/path.h"

namespace mantle {

LocoFsService::LocoFsService(Network* network, LocoFsOptions options)
    : network_(network), options_(std::move(options)) {
  tafdb_ = std::make_unique<TafDb>(network_, options_.tafdb);
  RaftOptions raft = options_.raft;
  raft.log_batching = false;  // LocoFS's commit path lacks batching (§6.3)
  raft.workers_per_node = options_.dirserver_workers;
  machines_.resize(options_.dirserver_voters, nullptr);
  dirserver_ = std::make_unique<RaftGroup>(
      network_, "locofs-dir", options_.dirserver_voters, 0,
      [this](uint32_t id) -> std::unique_ptr<StateMachine> {
        auto machine = std::make_unique<LocoDirMachine>(network_);
        machines_[id] = machine.get();
        return machine;
      },
      raft);
  dirserver_->Start();
}

template <typename Fn>
auto LocoFsService::LeaderCall(Fn&& fn) -> decltype(fn(static_cast<LocoDirMachine*>(nullptr))) {
  RaftNode* node = dirserver_->WaitForLeader();
  using R = decltype(fn(static_cast<LocoDirMachine*>(nullptr)));
  if (node == nullptr) {
    return R(Status::Unavailable("locofs dirserver has no leader"));
  }
  LocoDirMachine* machine = machines_[node->id()];
  return node->server()->Call([&fn, machine]() { return fn(machine); });
}

Status LocoFsService::ProposeCommand(const IndexCommand& command) {
  auto result = dirserver_->Propose(EncodeIndexCommand(command));
  if (!result.ok()) {
    return result.status();
  }
  return DecodeApplyStatus(*result);
}

OpResult LocoFsService::Lookup(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto info = LeaderCall([&components](LocoDirMachine* machine) {
    return machine->Resolve(components, components.empty() ? 0 : components.size() - 1);
  });
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  result.status = info.ok() ? Status::Ok() : info.status();
  return result;
}

OpResult LocoFsService::CreateObject(const std::string& path, uint64_t size) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  // The duplicate-name check against sibling *directories* must go through
  // the directory node (paper §3.3: "object creation ... involves duplicate
  // name check and parent directory update, both of which must go through
  // the directory node").
  auto parent = LeaderCall([&components](LocoDirMachine* machine)
                               -> Result<LocoDirMachine::DirInfo> {
    auto info = machine->Resolve(components, components.size() - 1);
    if (!info.ok()) {
      return info;
    }
    if (machine->ResolveNoCharge(components, components.size()).ok()) {
      return Status::AlreadyExists(components.back() + " is a directory");
    }
    return info;
  });
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  if ((parent->perm_mask & kPermWrite) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  WriteOp insert;
  insert.kind = WriteOp::Kind::kPut;
  insert.expect = WriteOp::Expect::kMustNotExist;
  insert.key = EntryKey(parent->id, components.back());
  insert.value =
      MetaValue{EntryType::kObject, AllocateId(), kPermAll, size, 0, 1, 0, parent->id};
  result.status = tafdb_->ApplySingle(insert);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult LocoFsService::DeleteObject(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = LeaderCall([&components](LocoDirMachine* machine) {
    return machine->Resolve(components, components.size() - 1);
  });
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  WriteOp erase;
  erase.kind = WriteOp::Kind::kDelete;
  erase.expect = WriteOp::Expect::kMustBeObject;
  erase.key = EntryKey(parent->id, components.back());
  result.status = tafdb_->ApplySingle(erase);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

StatResult LocoFsService::StatObject(const std::string& path) {
  StatResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = LeaderCall([&components](LocoDirMachine* machine) {
    return machine->Resolve(components, components.size() - 1);
  });
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  if ((parent->perm_mask & kPermRead) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto row = tafdb_->Get(EntryKey(parent->id, components.back()));
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!row.ok()) {
    result.status = row.status();
    return result;
  }
  result.info = StatInfo{row->id, false, row->size, 0, row->mtime, row->permission};
  result.status = Status::Ok();
  return result;
}

StatResult LocoFsService::StatDir(const std::string& path) {
  StatResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  // Resolution happens inside the execution phase on the dirserver (§6.3).
  auto info =
      LeaderCall([&components](LocoDirMachine* machine) { return machine->DirStat(components); });
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!info.ok()) {
    result.status = info.status();
    return result;
  }
  result.info = StatInfo{info->id, true, 0, info->child_count, info->mtime, info->perm_mask};
  result.status = Status::Ok();
  return result;
}

// LocoFS-grouped batch stat: the dirserver already holds every directory's
// metadata on one leader, so ONE leader RPC resolves the whole batch of
// parents, then one TafDB MultiGet (one RPC per touched shard) reads the
// leaf rows. Per-entry results match the singular StatObject.
MultiOpResult LocoFsService::MultiStat(std::span<const std::string> paths) {
  MultiOpResult batch;
  batch.results.resize(paths.size());
  if (paths.empty()) {
    return batch;
  }
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  std::vector<std::vector<std::string>> components(paths.size());
  std::vector<size_t> live;
  live.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    components[i] = SplitPath(paths[i]);
    if (components[i].empty()) {
      batch.results[i].status = Status::InvalidArgument(paths[i]);
      batch.results[i].FailAt(OpPhase::kLookup, paths[i]);
    } else {
      live.push_back(i);
    }
  }
  // One dirserver RPC resolves every parent; admission sees the batch at its
  // true cost.
  using ParentVector = std::vector<Result<LocoDirMachine::DirInfo>>;
  auto parents = [&]() -> Result<ParentVector> {
    ScopedOpCost cost(static_cast<int>(live.size()));
    return LeaderCall([&](LocoDirMachine* machine) -> Result<ParentVector> {
      ParentVector resolved;
      resolved.reserve(live.size());
      for (size_t slot : live) {
        resolved.push_back(machine->Resolve(components[slot], components[slot].size() - 1));
      }
      return resolved;
    });
  }();
  batch.breakdown.lookup_nanos = timer.ElapsedNanos();
  std::vector<MetaKey> keys;
  std::vector<size_t> key_slots;
  keys.reserve(live.size());
  key_slots.reserve(live.size());
  for (size_t j = 0; j < live.size(); ++j) {
    const size_t slot = live[j];
    StatResult& entry = batch.results[slot];
    if (!parents.ok()) {
      entry.status = parents.status();
      entry.FailAt(OpPhase::kLookup, parents.status().message());
      continue;
    }
    const auto& parent = (*parents)[j];
    if (!parent.ok()) {
      entry.status = parent.status();
      entry.FailAt(OpPhase::kLookup, parent.status().message());
      continue;
    }
    if ((parent->perm_mask & kPermRead) == 0) {
      entry.status = Status::PermissionDenied(paths[slot]);
      entry.FailAt(OpPhase::kLookup, components[slot].back());
      continue;
    }
    keys.push_back(EntryKey(parent->id, components[slot].back()));
    key_slots.push_back(slot);
  }
  timer.Reset();
  if (!keys.empty()) {
    const auto rows = tafdb_->MultiGet(keys);
    for (size_t k = 0; k < key_slots.size(); ++k) {
      StatResult& entry = batch.results[key_slots[k]];
      if (!rows[k].ok()) {
        entry.status = rows[k].status();
        entry.FailAt(OpPhase::kExecute, components[key_slots[k]].back());
        continue;
      }
      const MetaValue& row = *rows[k];
      entry.info = StatInfo{row.id, false, row.size, 0, row.mtime, row.permission};
      entry.status = Status::Ok();
    }
  }
  batch.breakdown.execute_nanos = timer.ElapsedNanos();
  batch.rpcs = rpcs.count();
  return batch;
}

OpResult LocoFsService::Mkdir(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::AlreadyExists("/");
    return result;
  }
  // Object-tier duplicate check: a sibling object with the same name blocks
  // the mkdir (one dirserver resolve + one DB probe).
  auto parent = LeaderCall([&components](LocoDirMachine* machine) {
    return machine->Resolve(components, components.size() - 1);
  });
  if (!parent.ok()) {
    result.status = parent.status();
    result.breakdown.lookup_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  if (tafdb_->Get(EntryKey(parent->id, components.back())).ok()) {
    result.status = Status::AlreadyExists(path);
    result.breakdown.lookup_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  IndexCommand command;
  command.type = IndexCommandType::kAddDir;
  command.name = components.back();
  command.id = AllocateId();
  command.permission = kPermAll;
  command.inval_path = NormalizePath(path);
  result.status = ProposeCommand(command);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult LocoFsService::Rmdir(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument("cannot remove the root");
    return result;
  }
  auto dir = LeaderCall(
      [&components](LocoDirMachine* machine) { return machine->DirStat(components); });
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto has_children = tafdb_->HasChildren(dir->id);
  if (!has_children.ok()) {
    result.status = has_children.status();
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  if (*has_children) {
    result.status = Status::NotEmpty(path);
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  IndexCommand command;
  command.type = IndexCommandType::kRemoveDir;
  command.inval_path = NormalizePath(path);
  result.status = ProposeCommand(command);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult LocoFsService::RenameDir(const std::string& src_path, const std::string& dst_path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  const auto src_components = SplitPath(src_path);
  const auto dst_components = SplitPath(dst_path);
  if (src_components.empty() || dst_components.empty()) {
    result.status = Status::InvalidArgument("rename involving the root");
    return result;
  }
  const uint64_t uuid = NewUuid();
  result.status = RetryTransaction(
      [&]() -> Status {
        Stopwatch loop_timer;
        auto prepared = LeaderCall([&](LocoDirMachine* machine) {
          return machine->RenamePrepare(src_components, dst_components, uuid);
        });
        result.breakdown.loop_detect_nanos += loop_timer.ElapsedNanos();
        if (!prepared.ok()) {
          return prepared.status();
        }
        // An object at the destination name blocks the rename.
        if (tafdb_->Get(EntryKey(prepared->dst_parent_id, dst_components.back())).ok()) {
          const InodeId src_id = prepared->src_id;
          LeaderCall([src_id, uuid](LocoDirMachine* machine) -> Result<int> {
            machine->RenameAbort(src_id, uuid);
            return 0;
          });
          return Status::AlreadyExists(dst_path);
        }
        Stopwatch exec_timer;
        IndexCommand command;
        command.type = IndexCommandType::kRenameDir;
        command.uuid = uuid;
        command.inval_path = NormalizePath(src_path);
        command.dst_name = NormalizePath(dst_path);
        Status status = ProposeCommand(command);
        if (!status.ok()) {
          const InodeId src_id = prepared->src_id;
          LeaderCall([src_id, uuid](LocoDirMachine* machine) -> Result<int> {
            machine->RenameAbort(src_id, uuid);
            return 0;
          });
        }
        result.breakdown.execute_nanos += exec_timer.ElapsedNanos();
        return status;
      },
      options_.retry, &result.retries);
  result.rpcs = rpcs.count();
  return result;
}

OpResult LocoFsService::ReadDir(const std::string& path, std::vector<std::string>* names) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  struct Listing {
    LocoDirMachine::DirInfo info;
    std::vector<std::string> dirs;
  };
  auto listing = LeaderCall([&components](LocoDirMachine* machine) -> Result<Listing> {
    auto info = machine->DirStat(components);
    if (!info.ok()) {
      return info.status();
    }
    return Listing{*info, machine->ChildDirs(info->id)};
  });
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!listing.ok()) {
    result.status = listing.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto objects = tafdb_->ListChildren(listing->info.id);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!objects.ok()) {
    result.status = objects.status();
    return result;
  }
  if (names != nullptr) {
    *names = listing->dirs;
    for (const auto& entry : *objects) {
      names->push_back(entry.key.name);
    }
  }
  result.status = Status::Ok();
  return result;
}

OpResult LocoFsService::SetDirPermission(const std::string& path, uint32_t permission) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  IndexCommand command;
  command.type = IndexCommandType::kSetPermission;
  command.permission = permission;
  command.inval_path = NormalizePath(path);
  result.status = ProposeCommand(command);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

Status LocoFsService::BulkLoad(const BulkEntry& entry) {
  const auto components = SplitPath(entry.path);
  if (entry.kind == BulkEntry::Kind::kDir) {
    if (components.empty()) {
      return Status::Ok();
    }
    const InodeId id = AllocateId();
    for (LocoDirMachine* machine : machines_) {
      machine->LoadDir(components, id, kPermAll);
    }
    return Status::Ok();
  }
  if (components.empty()) {
    return Status::InvalidArgument(entry.path);
  }
  auto parent = machines_[0]->ResolveNoCharge(components, components.size() - 1);
  if (!parent.ok()) {
    return parent.status();
  }
  tafdb_->LoadPut(EntryKey(parent->id, components.back()),
                  MetaValue{EntryType::kObject, AllocateId(), kPermAll, entry.size, 0, 0, 0,
                            parent->id});
  return Status::Ok();
}

}  // namespace mantle
