// LocoFS baseline: loosely-coupled tiered metadata service (paper §3.3).
//
// Directory metadata lives on a central, Raft-replicated directory server
// (LocoDirMachine) with *no log batching* and *no follower reads* - the two
// limitations the paper observes throttle it. Object metadata lives in the
// scalable DB. Path resolution and every directory operation funnel through
// the central node; object operations take one dirserver RPC (resolve) plus
// one DB RPC.

#ifndef SRC_BASELINES_LOCOFS_LOCOFS_SERVICE_H_
#define SRC_BASELINES_LOCOFS_LOCOFS_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/locofs/loco_dir_machine.h"
#include "src/core/metadata_service.h"
#include "src/core/retry.h"
#include "src/raft/group.h"
#include "src/tafdb/tafdb.h"

namespace mantle {

struct LocoFsOptions {
  TafDbOptions tafdb;
  RetryOptions retry;
  RaftOptions raft;           // raft.log_batching forced off in the constructor
  uint32_t dirserver_voters = 3;
  // Worker parity with an IndexNode replica: the paper hosts LocoFS's
  // directory server and Mantle's IndexNode on identical machines.
  size_t dirserver_workers = 4;
};

class LocoFsService final : public MetadataService {
 public:
  LocoFsService(Network* network, LocoFsOptions options);

  std::string name() const override { return "LocoFS"; }

  OpResult CreateObject(const std::string& path, uint64_t size) override;
  OpResult DeleteObject(const std::string& path) override;
  StatResult StatObject(const std::string& path) override;
  StatResult StatDir(const std::string& path) override;
  // Re-export the base out-param deprecation shims next to the overrides.
  using MetadataService::StatObject;
  using MetadataService::StatDir;
  // LocoFS-grouped batch stat: ONE dirserver RPC resolves every parent on the
  // leader, then one TafDB MultiGet reads the leaf rows (the "file metadata
  // grouped by directory" trick applied to batched reads).
  MultiOpResult MultiStat(std::span<const std::string> paths) override;
  OpResult Mkdir(const std::string& path) override;
  OpResult Rmdir(const std::string& path) override;
  OpResult RenameDir(const std::string& src_path, const std::string& dst_path) override;
  OpResult ReadDir(const std::string& path, std::vector<std::string>* names) override;
  OpResult SetDirPermission(const std::string& path, uint32_t permission) override;
  OpResult Lookup(const std::string& path) override;

  Status BulkLoad(const BulkEntry& entry) override;

  TafDb* tafdb() { return tafdb_.get(); }
  RaftGroup* dirserver() { return dirserver_.get(); }

 private:
  InodeId AllocateId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }
  uint64_t NewUuid() { return next_uuid_.fetch_add(1, std::memory_order_relaxed) + 1; }

  // One RPC to the dirserver leader running `fn` on its executor.
  template <typename Fn>
  auto LeaderCall(Fn&& fn) -> decltype(fn(static_cast<LocoDirMachine*>(nullptr)));

  Status ProposeCommand(const IndexCommand& command);

  Network* network_;
  LocoFsOptions options_;
  std::unique_ptr<TafDb> tafdb_;
  std::vector<LocoDirMachine*> machines_;
  std::unique_ptr<RaftGroup> dirserver_;
  std::atomic<InodeId> next_id_{kRootId};
  std::atomic<uint64_t> next_uuid_{0};
};

}  // namespace mantle

#endif  // SRC_BASELINES_LOCOFS_LOCOFS_SERVICE_H_
