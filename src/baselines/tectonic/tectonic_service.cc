#include "src/baselines/tectonic/tectonic_service.h"

#include <map>

#include "src/common/path.h"

namespace mantle {

TectonicService::TectonicService(Network* network, TectonicOptions options)
    : network_(network), options_(options), tafdb_(nullptr), resolver_(nullptr) {
  tafdb_ = std::make_unique<TafDb>(network_, options_.tafdb);
  resolver_ = DbTableResolver(tafdb_.get());
  tafdb_->LoadPut(AttrKey(kRootId),
                  MetaValue{EntryType::kAttrPrimary, kRootId, kPermAll, 0, 0, 0, 0, kNoParent});
}

Status TectonicService::ApplyWrites(std::vector<WriteOp> ops, int* retries) {
  if (options_.use_distributed_txn) {
    return RetryTransaction(
        [&]() {
          const uint64_t txn_id = tafdb_->NextTxnId();
          return tafdb_->Execute(ops, txn_id);
        },
        options_.retry, retries);
  }
  // Relaxed consistency: group by shard; each group applies atomically under
  // the shard latch (serializing with other writers), but there is no
  // atomicity across groups and no aborts.
  std::map<uint32_t, std::vector<WriteOp>> grouped;
  ShardMap* shards = tafdb_->shard_map();
  for (auto& op : ops) {
    grouped[shards->ShardIndex(op.key.pid)].push_back(std::move(op));
  }
  for (auto& [shard_index, shard_ops] : grouped) {
    Status status = tafdb_->ApplyAtomicSingleShard(shard_ops);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

OpResult TectonicService::Lookup(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto outcome = resolver_.ResolveLevels(components,
                                         components.empty() ? 0 : components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  result.status = outcome.ok() ? Status::Ok() : outcome.status();
  return result;
}

OpResult TectonicService::CreateObject(const std::string& path, uint64_t size) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = resolver_.ResolveLevels(components, components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  if ((parent->perm_mask & kPermWrite) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  const InodeId pid = parent->dir_id;
  std::vector<WriteOp> ops;
  WriteOp insert;
  insert.kind = WriteOp::Kind::kPut;
  insert.expect = WriteOp::Expect::kMustNotExist;
  insert.key = EntryKey(pid, components.back());
  insert.value = MetaValue{EntryType::kObject, AllocateId(), kPermAll, size, 0, 1, 0, pid};
  ops.push_back(std::move(insert));
  WriteOp attr;
  attr.kind = WriteOp::Kind::kAddChildCount;
  attr.key = AttrKey(pid);
  attr.count_delta = +1;
  attr.bump_mtime = true;
  ops.push_back(std::move(attr));
  result.status = ApplyWrites(std::move(ops), &result.retries);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult TectonicService::DeleteObject(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = resolver_.ResolveLevels(components, components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  const InodeId pid = parent->dir_id;
  std::vector<WriteOp> ops;
  WriteOp erase;
  erase.kind = WriteOp::Kind::kDelete;
  erase.expect = WriteOp::Expect::kMustBeObject;
  erase.key = EntryKey(pid, components.back());
  ops.push_back(std::move(erase));
  WriteOp attr;
  attr.kind = WriteOp::Kind::kAddChildCount;
  attr.key = AttrKey(pid);
  attr.count_delta = -1;
  attr.bump_mtime = true;
  ops.push_back(std::move(attr));
  result.status = ApplyWrites(std::move(ops), &result.retries);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

StatResult TectonicService::StatObject(const std::string& path) {
  StatResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = resolver_.ResolveLevels(components, components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  if ((parent->perm_mask & kPermRead) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto row = tafdb_->Get(EntryKey(parent->dir_id, components.back()));
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!row.ok()) {
    result.status = row.status();
    return result;
  }
  result.info = StatInfo{row->id, row->IsDirectoryEntry(), row->size, 0, row->mtime,
                         row->permission};
  result.status = Status::Ok();
  return result;
}

StatResult TectonicService::StatDir(const std::string& path) {
  StatResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto dir = resolver_.ResolveLevels(components, components.size());
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto attr = tafdb_->ReadDirAttr(dir->dir_id);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!attr.ok()) {
    result.status = attr.status();
    return result;
  }
  result.info = StatInfo{dir->dir_id, true, 0, attr->child_count, attr->mtime, dir->perm_mask};
  result.status = Status::Ok();
  return result;
}

OpResult TectonicService::Mkdir(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::AlreadyExists("/");
    return result;
  }
  auto parent = resolver_.ResolveLevels(components, components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  if ((parent->perm_mask & kPermWrite) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  const InodeId pid = parent->dir_id;
  const InodeId dir_id = AllocateId();
  std::vector<WriteOp> ops;
  WriteOp entry;
  entry.kind = WriteOp::Kind::kPut;
  entry.expect = WriteOp::Expect::kMustNotExist;
  entry.key = EntryKey(pid, components.back());
  entry.value = MetaValue{EntryType::kDirectory, dir_id, kPermAll, 0, 0, 1, 0, pid};
  ops.push_back(std::move(entry));
  WriteOp attr_primary;
  attr_primary.kind = WriteOp::Kind::kPut;
  attr_primary.expect = WriteOp::Expect::kMustNotExist;
  attr_primary.key = AttrKey(dir_id);
  attr_primary.value = MetaValue{EntryType::kAttrPrimary, dir_id, kPermAll, 0, 0, 1, 0, pid};
  ops.push_back(std::move(attr_primary));
  WriteOp parent_attr;
  parent_attr.kind = WriteOp::Kind::kAddChildCount;
  parent_attr.key = AttrKey(pid);
  parent_attr.count_delta = +1;
  parent_attr.bump_mtime = true;
  ops.push_back(std::move(parent_attr));
  result.status = ApplyWrites(std::move(ops), &result.retries);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult TectonicService::Rmdir(const std::string& path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument("cannot remove the root");
    return result;
  }
  auto dir = resolver_.ResolveLevels(components, components.size());
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto has_children = tafdb_->HasChildren(dir->dir_id);
  if (!has_children.ok()) {
    result.status = has_children.status();
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  if (*has_children) {
    result.status = Status::NotEmpty(path);
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  std::vector<WriteOp> ops;
  WriteOp entry;
  entry.kind = WriteOp::Kind::kDelete;
  entry.expect = WriteOp::Expect::kMustExist;
  entry.key = EntryKey(dir->parent_id, components.back());
  ops.push_back(std::move(entry));
  WriteOp attr;
  attr.kind = WriteOp::Kind::kDelete;
  attr.key = AttrKey(dir->dir_id);
  ops.push_back(std::move(attr));
  WriteOp parent_attr;
  parent_attr.kind = WriteOp::Kind::kAddChildCount;
  parent_attr.key = AttrKey(dir->parent_id);
  parent_attr.count_delta = -1;
  parent_attr.bump_mtime = true;
  ops.push_back(std::move(parent_attr));
  result.status = ApplyWrites(std::move(ops), &result.retries);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult TectonicService::RenameDir(const std::string& src_path, const std::string& dst_path) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto src_components = SplitPath(src_path);
  const auto dst_components = SplitPath(dst_path);
  if (src_components.empty() || dst_components.empty()) {
    result.status = Status::InvalidArgument("rename involving the root");
    return result;
  }
  auto src_parent = resolver_.ResolveLevels(src_components, src_components.size() - 1);
  if (!src_parent.ok()) {
    result.status = src_parent.status();
    result.breakdown.lookup_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  auto dst_parent = resolver_.ResolveLevels(dst_components, dst_components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dst_parent.ok()) {
    result.status = dst_parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto src_row = tafdb_->Get(EntryKey(src_parent->dir_id, src_components.back()));
  if (!src_row.ok() || !src_row->IsDirectoryEntry()) {
    result.status = src_row.ok() ? Status::NotADirectory(src_path) : src_row.status();
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  // No distributed loop detection (Fig. 15 shows no loop-detection phase for
  // Tectonic); the proxy performs only the free client-side path-prefix
  // check, which is not linearizable under concurrent renames.
  const std::string src_norm = NormalizePath(src_path);
  const std::string dst_norm = NormalizePath(dst_path);
  if (IsPathPrefix(src_norm, dst_norm)) {
    result.status = Status::LoopDetected(dst_norm + " is under " + src_norm);
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  WriteOp erase;
  erase.kind = WriteOp::Kind::kDelete;
  erase.expect = WriteOp::Expect::kMustExist;
  erase.key = EntryKey(src_parent->dir_id, src_components.back());
  WriteOp insert;
  insert.kind = WriteOp::Kind::kPut;
  insert.expect = WriteOp::Expect::kMustNotExist;
  insert.key = EntryKey(dst_parent->dir_id, dst_components.back());
  MetaValue moved = *src_row;
  moved.parent = dst_parent->dir_id;
  insert.value = moved;
  WriteOp src_attr;
  src_attr.kind = WriteOp::Kind::kAddChildCount;
  src_attr.key = AttrKey(src_parent->dir_id);
  src_attr.count_delta = -1;
  src_attr.bump_mtime = true;
  WriteOp dst_attr;
  dst_attr.kind = WriteOp::Kind::kAddChildCount;
  dst_attr.key = AttrKey(dst_parent->dir_id);
  dst_attr.count_delta = +1;
  dst_attr.bump_mtime = true;

  if (options_.use_distributed_txn) {
    std::vector<WriteOp> ops;
    ops.push_back(std::move(erase));
    ops.push_back(std::move(insert));
    ops.push_back(std::move(src_attr));
    if (dst_parent->dir_id != src_parent->dir_id) {
      ops.push_back(std::move(dst_attr));
    }
    result.status = ApplyWrites(std::move(ops), &result.retries);
  } else {
    // Relaxed mode: link at the destination first, unlink second. A failure
    // between the stages leaves a transient extra link instead of losing the
    // directory - the safe ordering for non-atomic multi-shard mutation.
    std::vector<WriteOp> link_stage;
    link_stage.push_back(std::move(insert));
    if (dst_parent->dir_id != src_parent->dir_id) {
      link_stage.push_back(std::move(dst_attr));
    }
    result.status = tafdb_->ApplyAtomicSingleShard(link_stage);
    if (result.status.ok()) {
      std::vector<WriteOp> unlink_stage;
      unlink_stage.push_back(std::move(erase));
      unlink_stage.push_back(std::move(src_attr));
      result.status = tafdb_->ApplyAtomicSingleShard(unlink_stage);
    }
  }
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

OpResult TectonicService::ReadDir(const std::string& path, std::vector<std::string>* names) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto dir = resolver_.ResolveLevels(components, components.size());
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto listing = tafdb_->ListChildren(dir->dir_id);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!listing.ok()) {
    result.status = listing.status();
    return result;
  }
  if (names != nullptr) {
    names->clear();
    for (const auto& entry : *listing) {
      names->push_back(entry.key.name);
    }
  }
  result.status = Status::Ok();
  return result;
}

OpResult TectonicService::SetDirPermission(const std::string& path, uint32_t permission) {
  OpResult result;
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument("cannot setattr the root");
    return result;
  }
  auto parent = resolver_.ResolveLevels(components, components.size() - 1);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result;
  }
  timer.Reset();
  auto row = tafdb_->Get(EntryKey(parent->dir_id, components.back()));
  if (!row.ok()) {
    result.status = row.status();
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result;
  }
  WriteOp update;
  update.kind = WriteOp::Kind::kPut;
  update.expect = WriteOp::Expect::kMustExist;
  update.key = EntryKey(parent->dir_id, components.back());
  MetaValue value = *row;
  value.permission = permission;
  update.value = value;
  result.status = ApplyWrites({update}, &result.retries);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  return result;
}

Result<InodeId> TectonicService::LocalResolveParent(const std::vector<std::string>& components) {
  InodeId current = kRootId;
  for (size_t level = 0; level + 1 < components.size(); ++level) {
    auto row = tafdb_->LocalGet(EntryKey(current, components[level]));
    if (!row.has_value()) {
      return Status::NotFound(PathPrefix(components, level + 1));
    }
    current = row->id;
  }
  return current;
}

Status TectonicService::BulkLoad(const BulkEntry& entry) {
  const auto components = SplitPath(entry.path);
  if (components.empty()) {
    return entry.kind == BulkEntry::Kind::kDir ? Status::Ok()
                                               : Status::InvalidArgument(entry.path);
  }
  auto pid = LocalResolveParent(components);
  if (!pid.ok()) {
    return pid.status();
  }
  if (entry.kind == BulkEntry::Kind::kDir) {
    const InodeId dir_id = AllocateId();
    tafdb_->LoadPut(EntryKey(*pid, components.back()),
                    MetaValue{EntryType::kDirectory, dir_id, kPermAll, 0, 0, 0, 0, *pid});
    tafdb_->LoadPut(AttrKey(dir_id),
                    MetaValue{EntryType::kAttrPrimary, dir_id, kPermAll, 0, 0, 0, 0, *pid});
  } else {
    tafdb_->LoadPut(EntryKey(*pid, components.back()),
                    MetaValue{EntryType::kObject, AllocateId(), kPermAll, entry.size, 0, 0, 0,
                              *pid});
  }
  tafdb_->LoadAdjustChildCount(*pid, +1);
  return Status::Ok();
}

}  // namespace mantle
