// Tectonic baseline: the DBtable-based metadata service (paper Fig. 2, §6.1).
//
// Every operation starts with a level-by-level path resolution - one RPC per
// component - so lookup latency grows linearly with depth. Two write modes:
//   * relaxed (default, matching the paper's Tectonic re-implementation):
//     no distributed transactions; each shard's mutations apply atomically
//     under the shard latch, so shared-directory updates serialize rather
//     than abort, and multi-shard operations are not atomic as a whole;
//   * distributed-txn (use_distributed_txn = true): the legacy Baidu
//     DBtable-based service of the §3 study, where directory modifications
//     run two-phase commit with key locks and collapse under contention via
//     abort/retry storms (Fig. 4b).

#ifndef SRC_BASELINES_TECTONIC_TECTONIC_SERVICE_H_
#define SRC_BASELINES_TECTONIC_TECTONIC_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/dbtable_resolver.h"
#include "src/core/metadata_service.h"
#include "src/core/retry.h"
#include "src/net/network.h"
#include "src/tafdb/tafdb.h"

namespace mantle {

struct TectonicOptions {
  TafDbOptions tafdb;
  RetryOptions retry;
  // true = the legacy DBtable service with distributed transactions (§3
  // study); false = the relaxed-consistency Tectonic of §6.
  bool use_distributed_txn = false;
};

class TectonicService final : public MetadataService {
 public:
  TectonicService(Network* network, TectonicOptions options);

  std::string name() const override {
    return options_.use_distributed_txn ? "DBtable" : "Tectonic";
  }

  OpResult CreateObject(const std::string& path, uint64_t size) override;
  OpResult DeleteObject(const std::string& path) override;
  StatResult StatObject(const std::string& path) override;
  StatResult StatDir(const std::string& path) override;
  // Re-export the base out-param deprecation shims next to the overrides.
  using MetadataService::StatObject;
  using MetadataService::StatDir;
  OpResult Mkdir(const std::string& path) override;
  OpResult Rmdir(const std::string& path) override;
  OpResult RenameDir(const std::string& src_path, const std::string& dst_path) override;
  OpResult ReadDir(const std::string& path, std::vector<std::string>* names) override;
  OpResult SetDirPermission(const std::string& path, uint32_t permission) override;
  OpResult Lookup(const std::string& path) override;

  Status BulkLoad(const BulkEntry& entry) override;

  TafDb* tafdb() { return tafdb_.get(); }

 private:
  InodeId AllocateId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }
  Result<InodeId> LocalResolveParent(const std::vector<std::string>& components);
  // Applies `ops` according to the consistency mode: one distributed
  // transaction (with retry bookkeeping) or per-shard atomic groups.
  Status ApplyWrites(std::vector<WriteOp> ops, int* retries);

  Network* network_;
  TectonicOptions options_;
  std::unique_ptr<TafDb> tafdb_;
  DbTableResolver resolver_;
  std::atomic<InodeId> next_id_{kRootId};
};

}  // namespace mantle

#endif  // SRC_BASELINES_TECTONIC_TECTONIC_SERVICE_H_
