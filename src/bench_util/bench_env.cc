#include "src/bench_util/bench_env.h"

#include "src/common/config.h"

namespace mantle {

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  config.quick = EnvBool("MANTLE_BENCH_QUICK", false);
  config.threads = static_cast<int>(EnvInt("MANTLE_BENCH_THREADS", config.quick ? 12 : 48));
  config.seconds_per_cell = EnvDouble("MANTLE_BENCH_SECONDS", config.quick ? 0.4 : 1.5);
  config.ns_dirs = static_cast<uint64_t>(
      EnvInt("MANTLE_BENCH_DIRS", config.quick ? 2'000 : 20'000));
  config.ns_objects = static_cast<uint64_t>(
      EnvInt("MANTLE_BENCH_OBJECTS", config.quick ? 20'000 : 200'000));
  return config;
}

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kMantle:
      return "Mantle";
    case SystemKind::kTectonic:
      return "Tectonic";
    case SystemKind::kDbTable:
      return "DBtable";
    case SystemKind::kInfiniFs:
      return "InfiniFS";
    case SystemKind::kLocoFs:
      return "LocoFS";
  }
  return "?";
}

NetworkOptions BenchNetworkOptions() {
  NetworkOptions options;
  options.rtt_nanos = EnvInt("MANTLE_BENCH_RTT_NANOS", 80'000);
  options.db_row_access_nanos = EnvInt("MANTLE_BENCH_DB_ACCESS_NANOS", 100'000);
  options.mem_index_access_nanos = EnvInt("MANTLE_BENCH_MEM_ACCESS_NANOS", 60'000);
  return options;
}

TafDbOptions BenchTafDbOptions() {
  TafDbOptions options;
  options.num_shards = 32;
  options.num_servers = 6;  // paper: 18 TafDB nodes; scaled to the harness
  options.workers_per_server = 1;
  return options;
}

RaftOptions BenchRaftOptions() {
  RaftOptions options;
  options.fsync_nanos = 250'000;
  options.log_batching = true;
  // Narrow executors keep the *modeled* capacity ceilings (single IndexNode
  // replica, LocoFS's central node) below the harness host's own ceiling, so
  // saturation effects show at laptop scale.
  options.workers_per_node = 2;
  return options;
}

SystemInstance MakeSystem(SystemKind kind, const MantleFeatureOverrides& overrides,
                          bool infinifs_am_cache) {
  SystemInstance instance;
  NetworkOptions net = BenchNetworkOptions();
  if (kind == SystemKind::kMantle && overrides.rtt_scale != 1.0) {
    net.rtt_nanos = static_cast<int64_t>(net.rtt_nanos * overrides.rtt_scale);
    net.mem_index_access_nanos =
        static_cast<int64_t>(net.mem_index_access_nanos * overrides.rtt_scale);
  }
  instance.network = std::make_unique<Network>(net);
  Network* network = instance.network.get();

  switch (kind) {
    case SystemKind::kMantle: {
      MantleOptions options;
      options.tafdb = BenchTafDbOptions();
      options.tafdb.enable_delta_records = overrides.delta_records;
      options.index.num_voters = 3;
      options.index.num_learners = overrides.learners;
      options.index.follower_read = overrides.follower_read;
      options.index.raft = BenchRaftOptions();
      options.index.raft.log_batching = overrides.raft_log_batching;
      options.index.node.enable_path_cache = overrides.path_cache;
      options.index.node.truncate_k = overrides.truncate_k;
      auto mantle = std::make_unique<MantleService>(network, std::move(options));
      instance.mantle = mantle.get();
      instance.service = std::move(mantle);
      break;
    }
    case SystemKind::kTectonic:
    case SystemKind::kDbTable: {
      TectonicOptions options;
      options.tafdb = BenchTafDbOptions();
      options.use_distributed_txn = (kind == SystemKind::kDbTable);
      instance.service = std::make_unique<TectonicService>(network, options);
      break;
    }
    case SystemKind::kInfiniFs: {
      InfiniFsOptions options;
      options.tafdb = BenchTafDbOptions();
      options.enable_am_cache = infinifs_am_cache;
      auto service = std::make_unique<InfiniFsService>(network, options);
      instance.infinifs = service.get();
      instance.service = std::move(service);
      break;
    }
    case SystemKind::kLocoFs: {
      LocoFsOptions options;
      options.tafdb = BenchTafDbOptions();
      options.raft = BenchRaftOptions();  // batching disabled by the service
      options.dirserver_workers = 4;
      instance.service = std::make_unique<LocoFsService>(network, options);
      break;
    }
  }
  return instance;
}

}  // namespace mantle
