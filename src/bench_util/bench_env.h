// Bench harness environment: configuration knobs and system factories.
//
// Every bench binary reads the same environment variables so runs scale to
// the host:
//   MANTLE_BENCH_THREADS  - closed-loop client threads       (default 32)
//   MANTLE_BENCH_SECONDS  - measured seconds per cell        (default 1.5)
//   MANTLE_BENCH_DIRS     - populated directories            (default 20000)
//   MANTLE_BENCH_OBJECTS  - populated objects                (default 200000)
//   MANTLE_BENCH_QUICK    - 1 = shrink everything ~8x for smoke runs
//
// The topology mirrors the paper's deployment (Table 2) scaled to one
// process: a TafDB fleet shared by the sharded systems, a 3-replica
// IndexNode (Mantle), a 3-replica unbatched dirserver (LocoFS), and a rename
// coordinator (InfiniFS).

#ifndef SRC_BENCH_UTIL_BENCH_ENV_H_
#define SRC_BENCH_UTIL_BENCH_ENV_H_

#include <memory>
#include <string>

#include "src/baselines/infinifs/infinifs_service.h"
#include "src/baselines/locofs/locofs_service.h"
#include "src/baselines/tectonic/tectonic_service.h"
#include "src/core/mantle_service.h"

namespace mantle {

struct BenchConfig {
  int threads = 32;
  double seconds_per_cell = 1.5;
  uint64_t ns_dirs = 20'000;
  uint64_t ns_objects = 200'000;
  bool quick = false;

  int64_t DurationNanos() const { return static_cast<int64_t>(seconds_per_cell * 1e9); }
  // Per-cell warmup excluded from measurement (thread spin-up, cold caches).
  int64_t WarmupNanos() const { return quick ? 100'000'000 : 250'000'000; }

  static BenchConfig FromEnv();
};

enum class SystemKind { kMantle, kTectonic, kDbTable, kInfiniFs, kLocoFs };

const char* SystemName(SystemKind kind);

// Mantle feature toggles for the ablation and parameter studies.
struct MantleFeatureOverrides {
  bool path_cache = true;
  bool raft_log_batching = true;
  bool delta_records = true;
  bool follower_read = true;
  uint32_t learners = 0;
  int truncate_k = 3;
  double rtt_scale = 1.0;  // <1.0 models the RDMA proof-of-concept (§7.2)
};

struct SystemInstance {
  std::unique_ptr<Network> network;
  std::unique_ptr<MetadataService> service;
  MantleService* mantle = nullptr;      // non-null when kind == kMantle
  InfiniFsService* infinifs = nullptr;  // non-null when kind == kInfiniFs

  MetadataService* get() { return service.get(); }
};

SystemInstance MakeSystem(SystemKind kind, const MantleFeatureOverrides& overrides = {},
                          bool infinifs_am_cache = false);

// Paper-scaled option builders (exposed for targeted benches/tests).
NetworkOptions BenchNetworkOptions();
TafDbOptions BenchTafDbOptions();
RaftOptions BenchRaftOptions();

}  // namespace mantle

#endif  // SRC_BENCH_UTIL_BENCH_ENV_H_
