#include "src/bench_util/report.h"

#include <cstdio>
#include <cstdlib>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_export.h"

namespace mantle {

namespace {

void PrintMetricsFooter() {
  std::printf("\n== metrics ==\n%s\n", obs::Metrics::Instance().DumpJson().c_str());
  std::fflush(stdout);
}

void ExportFlightRecorder() {
  const char* path = std::getenv("MANTLE_TRACE_EXPORT");
  if (path == nullptr || path[0] == '\0') {
    return;
  }
  const auto traces = obs::FlightRecorder::Instance().Snapshot();
  if (obs::WriteChromeTraceFile(path, traces)) {
    std::printf("\n== traces ==\nwrote %zu traces to %s (chrome://tracing)\n",
                traces.size(), path);
  } else {
    std::printf("\n== traces ==\nfailed to write %s\n", path);
  }
  std::fflush(stdout);
}

}  // namespace

void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& caption) {
  static const bool installed = []() {
    if (obs::MetricsEnabled()) {
      std::atexit(PrintMetricsFooter);
    }
    // Registered after the metrics footer so it runs first at exit: the
    // trace file lands before the (large) JSON footer scrolls by.
    std::atexit(ExportFlightRecorder);
    return true;
  }();
  (void)installed;
  std::printf("\n== %s: %s ==\n", figure.c_str(), title.c_str());
  if (!caption.empty()) {
    std::printf("   %s\n", caption.c_str());
  }
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Table::Print() const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string separator;
  for (size_t c = 0; c < widths.size(); ++c) {
    separator.append(widths[c] + 2, '-');
  }
  std::printf("  %s\n", separator.c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string FormatOps(double ops_per_sec) {
  char buf[64];
  if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mop/s", ops_per_sec / 1e6);
  } else if (ops_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f Kop/s", ops_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f op/s", ops_per_sec);
  }
  return buf;
}

std::string FormatMicros(double nanos) {
  char buf[64];
  if (nanos >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f s", nanos / 1e9);
  } else if (nanos >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", nanos / 1e3);
  }
  return buf;
}

std::string FormatCount(uint64_t count) {
  char buf[64];
  if (count >= 1'000'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fB", static_cast<double>(count) / 1e9);
  } else if (count >= 1'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(count) / 1e6);
  } else if (count >= 1'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(count) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(count));
  }
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::vector<std::string> WorkloadColumns(const std::string& first) {
  return {first,  "throughput", "mean",    "p50",
          "p99",  "rpcs/op",    "retries", "errors"};
}

std::vector<std::string> WorkloadRow(const std::string& label, const WorkloadResult& result) {
  return {label,
          FormatOps(result.Throughput()),
          FormatMicros(result.total.Mean()),
          FormatMicros(static_cast<double>(result.total.Percentile(50))),
          FormatMicros(static_cast<double>(result.total.Percentile(99))),
          FormatDouble(result.MeanRpcsPerOp(), 1),
          FormatCount(result.retries),
          FormatCount(result.errors)};
}

void PrintCdf(const std::string& label, const Histogram& histogram) {
  static const double kPercentiles[] = {10, 25, 50, 75, 90, 95, 99, 99.9};
  std::printf("  %-28s", label.c_str());
  for (double p : kPercentiles) {
    std::printf(" p%-5.4g %-10s", p,
                FormatMicros(static_cast<double>(histogram.Percentile(p))).c_str());
  }
  std::printf("\n");
}

}  // namespace mantle
