// Paper-style table and series printing for the bench harness.

#ifndef SRC_BENCH_UTIL_REPORT_H_
#define SRC_BENCH_UTIL_REPORT_H_

#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/workload/mdtest_driver.h"

namespace mantle {

// Prints "== <figure id>: <title> ==" with a caption describing the paper
// counterpart and what shape to expect. Also installs (once) an atexit hook
// that prints the process-wide metrics registry as a JSON footer, so every
// bench binary ends with a machine-readable "== metrics ==" block. Disable
// with MANTLE_METRICS=off (which also disables collection).
void PrintHeader(const std::string& figure, const std::string& title,
                 const std::string& caption = "");

class Table {
 public:
  explicit Table(std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
std::string FormatOps(double ops_per_sec);       // "12.3 Kop/s"
std::string FormatMicros(double nanos);          // "123.4 us"
std::string FormatCount(uint64_t count);         // "1.2M"
std::string FormatDouble(double value, int precision = 2);

// One summary row for a workload run: throughput + latency percentiles.
std::vector<std::string> WorkloadRow(const std::string& label, const WorkloadResult& result);
// The column names matching WorkloadRow.
std::vector<std::string> WorkloadColumns(const std::string& first = "system");

// Prints a latency CDF as fixed percentile points (Fig. 11 style).
void PrintCdf(const std::string& label, const Histogram& histogram);

}  // namespace mantle

#endif  // SRC_BENCH_UTIL_REPORT_H_
