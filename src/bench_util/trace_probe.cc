#include "src/bench_util/trace_probe.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/bench_util/report.h"
#include "src/obs/critical_path.h"
#include "src/obs/trace.h"

namespace mantle {

namespace {

double Disagreement(double trace_nanos, double hand_nanos) {
  // Phases that barely register on either side are noise, not signal: a
  // 300ns cache hit measured two ways can disagree by 2x without meaning
  // anything. Gate on both estimates clearing 1us.
  constexpr double kFloorNanos = 1'000.0;
  if (trace_nanos < kFloorNanos || hand_nanos < kFloorNanos) {
    return 0.0;
  }
  const double larger = std::max(trace_nanos, hand_nanos);
  return std::abs(trace_nanos - hand_nanos) / larger;
}

}  // namespace

double TraceProbeResult::MaxPhaseDisagreement() const {
  double worst = Disagreement(trace_lookup_nanos, hand_lookup_nanos);
  worst = std::max(worst, Disagreement(trace_loop_detect_nanos, hand_loop_detect_nanos));
  worst = std::max(worst, Disagreement(trace_execute_nanos, hand_execute_nanos));
  worst = std::max(worst, Disagreement(trace_total_nanos, hand_total_nanos));
  return worst;
}

TraceProbeResult RunTraceProbe(const OpFn& op, uint64_t num_ops, uint64_t seed) {
  TraceProbeResult out;
  Rng rng(seed);
  // Disjoint op-index space: generators that derive fresh paths from the op
  // index (create) must not collide with paths the closed-loop run already
  // created for thread 0.
  constexpr uint64_t kProbeIndexBase = 1ULL << 40;
  for (uint64_t i = 0; i < num_ops; ++i) {
    // One capture per op: compound generators (create+delete pairs) issue
    // several service calls, each getting its own capture-owned trace; the
    // op's phases are the sum across them, mirroring how the hand-measured
    // breakdown accumulates across the same calls.
    obs::ScopedTraceCapture capture;
    OpResult result = op(0, kProbeIndexBase + i, rng);
    ++out.ops;
    if (!result.ok()) {
      ++out.errors;
      continue;  // mirror RunClosedLoop's phase histograms: errors still
                 // record, but a failed op's phases skew both sides equally,
                 // so skipping keeps the comparison about attribution.
    }
    // One op may have produced several traces (compound generators issue
    // several service calls). Analyze each, then map them onto the
    // generator's reporting convention below.
    struct TracedCall {
      int64_t lookup = 0;
      int64_t loop_detect = 0;
      int64_t execute = 0;
      obs::PathAttribution path;
    };
    std::vector<TracedCall> calls;
    for (obs::OpTrace& trace : capture.traces()) {
      const auto& spans = trace.spans();
      if (spans.empty()) {
        continue;
      }
      TracedCall call;
      call.lookup = obs::TotalDurationOfNamed(spans, "lookup");
      call.loop_detect = obs::TotalDurationOfNamed(spans, "index.rename_prepare");
      call.execute = obs::TotalDurationOfNamed(spans, "execute");
      call.path = obs::AnalyzeCriticalPath(spans);
      calls.push_back(std::move(call));
    }
    if (calls.empty()) {
      continue;
    }
    // Generators report compound ops two ways: pair ops (create+delete,
    // mkdir+rmdir) measure the first call and fold the follow-up's entire
    // latency into its execute phase; setup+measure ops (dirrename) report
    // only the last call. Pick whichever convention the hand-measured total
    // actually matches.
    const double hand_total = static_cast<double>(result.breakdown.total_nanos());
    double sum_roots = 0;
    for (const TracedCall& call : calls) {
      sum_roots += static_cast<double>(call.path.root_nanos);
    }
    const double last_root = static_cast<double>(calls.back().path.root_nanos);
    const bool fold_all = std::abs(hand_total - sum_roots) <= std::abs(hand_total - last_root);
    const size_t measured = fold_all ? 0 : calls.size() - 1;
    int64_t lookup = calls[measured].lookup;
    int64_t loop_detect = calls[measured].loop_detect;
    int64_t execute = calls[measured].execute;
    int64_t total = 0;
    int64_t queue = 0;
    int64_t service = 0;
    int64_t wire = 0;
    int64_t logic = 0;
    for (size_t c = measured; c < calls.size(); ++c) {
      if (c != measured && fold_all) {
        execute += calls[c].path.root_nanos;
      }
      total += calls[c].path.root_nanos;
      queue += calls[c].path.queue_nanos;
      service += calls[c].path.service_nanos;
      wire += calls[c].path.wire_nanos;
      logic += calls[c].path.logic_nanos;
    }
    ++out.traced_ops;
    out.trace_lookup_nanos += static_cast<double>(lookup);
    out.trace_loop_detect_nanos += static_cast<double>(loop_detect);
    out.trace_execute_nanos += static_cast<double>(execute);
    out.trace_total_nanos += static_cast<double>(total);
    out.queue_nanos += static_cast<double>(queue);
    out.service_nanos += static_cast<double>(service);
    out.wire_nanos += static_cast<double>(wire);
    out.logic_nanos += static_cast<double>(logic);
    out.hand_lookup_nanos += static_cast<double>(result.breakdown.lookup_nanos);
    out.hand_loop_detect_nanos += static_cast<double>(result.breakdown.loop_detect_nanos);
    out.hand_execute_nanos += static_cast<double>(result.breakdown.execute_nanos);
    out.hand_total_nanos += static_cast<double>(result.breakdown.total_nanos());
  }
  if (out.traced_ops > 0) {
    const double n = static_cast<double>(out.traced_ops);
    out.trace_lookup_nanos /= n;
    out.trace_loop_detect_nanos /= n;
    out.trace_execute_nanos /= n;
    out.trace_total_nanos /= n;
    out.hand_lookup_nanos /= n;
    out.hand_loop_detect_nanos /= n;
    out.hand_execute_nanos /= n;
    out.hand_total_nanos /= n;
    out.queue_nanos /= n;
    out.service_nanos /= n;
    out.wire_nanos /= n;
    out.logic_nanos /= n;
  }
  return out;
}

void PrintTraceProbe(const std::string& label, const TraceProbeResult& probe) {
  std::printf("\n-- trace probe: %s (%llu ops, %llu traced) --\n", label.c_str(),
              static_cast<unsigned long long>(probe.ops),
              static_cast<unsigned long long>(probe.traced_ops));
  if (probe.traced_ops == 0) {
    std::printf("  no traces captured\n");
    return;
  }
  Table table({"phase", "trace-derived", "hand-instrumented", "delta"});
  auto add = [&table](const char* phase, double trace_nanos, double hand_nanos) {
    table.AddRow({phase, FormatMicros(trace_nanos), FormatMicros(hand_nanos),
                  FormatDouble(100.0 * Disagreement(trace_nanos, hand_nanos), 1) + "%"});
  };
  add("lookup", probe.trace_lookup_nanos, probe.hand_lookup_nanos);
  add("loopdetect", probe.trace_loop_detect_nanos, probe.hand_loop_detect_nanos);
  add("execute", probe.trace_execute_nanos, probe.hand_execute_nanos);
  add("total", probe.trace_total_nanos, probe.hand_total_nanos);
  table.Print();
  std::printf("  critical path: queue %s  service %s  wire %s  logic %s  (root %s)\n",
              FormatMicros(probe.queue_nanos).c_str(),
              FormatMicros(probe.service_nanos).c_str(),
              FormatMicros(probe.wire_nanos).c_str(),
              FormatMicros(probe.logic_nanos).c_str(),
              FormatMicros(probe.trace_total_nanos).c_str());
  std::printf("  max phase disagreement: %.1f%%\n", 100.0 * probe.MaxPhaseDisagreement());
}

}  // namespace mantle
