// Trace-derived latency breakdowns for the bench harness.
//
// RunTraceProbe replays a bench OpFn single-threaded under a
// ScopedTraceCapture, so every op yields a complete stitched span tree, and
// derives the same per-phase means the driver measures by hand with
// stopwatches. The two estimates come from independent machinery (explicit
// Stopwatch splits in the op bodies vs. span trees stitched across servers),
// so their agreement is the bench harness's self-check that the distributed
// tracing pipeline attributes time where it actually went.

#ifndef SRC_BENCH_UTIL_TRACE_PROBE_H_
#define SRC_BENCH_UTIL_TRACE_PROBE_H_

#include <cstdint>
#include <string>

#include "src/workload/mdtest_driver.h"

namespace mantle {

struct TraceProbeResult {
  uint64_t ops = 0;
  uint64_t traced_ops = 0;  // ops that produced at least one non-empty trace
  uint64_t errors = 0;

  // Mean per-op phase latencies (nanos) over traced ops. trace_* sums the
  // matching named spans ("lookup", "index.rename_prepare", "execute");
  // hand_* reads OpResult.breakdown on the very same ops.
  double trace_lookup_nanos = 0;
  double trace_loop_detect_nanos = 0;
  double trace_execute_nanos = 0;
  double trace_total_nanos = 0;
  double hand_lookup_nanos = 0;
  double hand_loop_detect_nanos = 0;
  double hand_execute_nanos = 0;
  double hand_total_nanos = 0;

  // Mean critical-path rollups per op (exact partition of the root span, so
  // queue + service + wire + logic == trace_total up to rounding).
  double queue_nanos = 0;
  double service_nanos = 0;
  double wire_nanos = 0;
  double logic_nanos = 0;

  // Largest relative disagreement between trace-derived and hand-instrumented
  // means across the phases that registered (>=1us both ways); 0.07 = 7%.
  double MaxPhaseDisagreement() const;
};

// Runs `num_ops` ops on one thread with tracing captured. The op must route
// through a service whose MakeOpContext honours ScopedTraceCapture
// (MantleService does; baselines fall back to hand splits only).
TraceProbeResult RunTraceProbe(const OpFn& op, uint64_t num_ops,
                               uint64_t seed = 0x7ace5eedULL);

// Prints the trace-vs-hand comparison table plus the critical-path rollup
// line for one probe (used by the Figure 13/15 breakdown benches).
void PrintTraceProbe(const std::string& label, const TraceProbeResult& probe);

}  // namespace mantle

#endif  // SRC_BENCH_UTIL_TRACE_PROBE_H_
