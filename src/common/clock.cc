#include "src/common/clock.h"

#include <thread>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace mantle {

namespace {

// Linux pads sleeps with a default 50 us timer slack; tightening it keeps the
// injected RPC latencies (tens of microseconds) close to nominal.
struct TimerSlackTightener {
  TimerSlackTightener() {
#if defined(__linux__)
    prctl(PR_SET_TIMERSLACK, 1000UL, 0, 0, 0);  // 1 us
#endif
  }
};

}  // namespace

void PreciseSleep(int64_t nanos, int64_t spin_tail_nanos) {
  thread_local TimerSlackTightener slack_tightener;
  if (nanos <= 0) {
    return;
  }
  const int64_t deadline = MonotonicNanos() + nanos;
  if (nanos > spin_tail_nanos) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos - spin_tail_nanos));
  }
  while (MonotonicNanos() < deadline) {
    // Busy-poll the tail. cpu_relax-style pause keeps hyperthread siblings
    // responsive while we wait out the last few microseconds.
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }
}

}  // namespace mantle
