// Monotonic time helpers and calibrated delay injection.
//
// The simulated cluster fabric (src/net) charges each RPC a configurable
// round-trip latency. PreciseSleep implements that delay: long waits use the
// OS sleep primitive; the final stretch is spun so that injected latencies in
// the tens-of-microseconds range stay close to their nominal value instead of
// absorbing scheduler slack.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace mantle {

inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t MonotonicMicros() { return MonotonicNanos() / 1000; }

// Sleeps for approximately `nanos`. `spin_tail_nanos` is the portion of the
// wait serviced by busy-polling; larger tails are more precise but burn CPU,
// which matters when hundreds of simulated clients wait concurrently.
void PreciseSleep(int64_t nanos, int64_t spin_tail_nanos = 0);

// Stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNanos()) {}
  void Reset() { start_ = MonotonicNanos(); }
  int64_t ElapsedNanos() const { return MonotonicNanos() - start_; }
  double ElapsedMicros() const { return static_cast<double>(ElapsedNanos()) / 1e3; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) / 1e9; }

 private:
  int64_t start_;
};

}  // namespace mantle

#endif  // SRC_COMMON_CLOCK_H_
