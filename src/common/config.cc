#include "src/common/config.h"

#include <cstdlib>
#include <cstring>

namespace mantle {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) {
    return fallback;
  }
  return parsed;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) {
    return fallback;
  }
  return parsed;
}

bool EnvBool(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0 && std::strcmp(v, "no") != 0;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return v;
}

}  // namespace mantle
