// Environment-variable configuration helpers for tests and benches.

#ifndef SRC_COMMON_CONFIG_H_
#define SRC_COMMON_CONFIG_H_

#include <cstdint>
#include <string>

namespace mantle {

int64_t EnvInt(const char* name, int64_t fallback);
double EnvDouble(const char* name, double fallback);
bool EnvBool(const char* name, bool fallback);
std::string EnvString(const char* name, const std::string& fallback);

}  // namespace mantle

#endif  // SRC_COMMON_CONFIG_H_
