// Thread-local operation deadline budget.
//
// A metadata operation entering the proxy layer opens a ScopedDeadline with
// its total time budget. Every blocking primitive underneath - RPC waits in
// ServerExecutor::Call, leader waits in RaftGroup, retry backoff loops -
// consults DeadlineBudget::RemainingNanos() and gives up with kTimeout
// instead of outliving the operation. ServerExecutor propagates the absolute
// deadline onto the worker thread that runs the RPC handler, so nested RPCs
// issued from inside a handler (e.g. a follower's ReadIndex query to the
// leader) inherit the same budget.

#ifndef SRC_COMMON_DEADLINE_H_
#define SRC_COMMON_DEADLINE_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "src/common/clock.h"

namespace mantle {

class DeadlineBudget {
 public:
  // Absolute monotonic deadline of the current operation; 0 = unlimited.
  static int64_t AbsoluteNanos() { return t_deadline; }

  static bool Limited() { return t_deadline != 0; }

  static int64_t RemainingNanos() {
    if (t_deadline == 0) {
      return std::numeric_limits<int64_t>::max();
    }
    return t_deadline - MonotonicNanos();
  }

  static bool Expired() { return t_deadline != 0 && MonotonicNanos() >= t_deadline; }

  // Clamps `nanos` (a relative wait) to the remaining budget. A non-positive
  // result means the budget is already spent.
  static int64_t Clamp(int64_t nanos) {
    if (t_deadline == 0) {
      return nanos;
    }
    return std::min(nanos, t_deadline - MonotonicNanos());
  }

 private:
  friend class ScopedDeadline;
  friend class ScopedAbsoluteDeadline;
  static inline thread_local int64_t t_deadline = 0;
};

// Opens a deadline of `budget_nanos` from now for the current thread. Nested
// scopes keep the tighter of the two deadlines. A zero/negative budget leaves
// the enclosing deadline (possibly unlimited) in force.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(int64_t budget_nanos) : saved_(DeadlineBudget::t_deadline) {
    if (budget_nanos > 0) {
      const int64_t absolute = MonotonicNanos() + budget_nanos;
      DeadlineBudget::t_deadline =
          saved_ == 0 ? absolute : std::min(saved_, absolute);
    }
  }
  ~ScopedDeadline() { DeadlineBudget::t_deadline = saved_; }

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  int64_t saved_;
};

// A deadline as an explicit value (absolute monotonic nanos; 0 = unlimited),
// for code that passes its time budget as a parameter (see obs/op_context.h)
// instead of reading the thread-local budget. The two interoperate:
// Deadline::After() starts from the ambient thread-local budget so an
// explicit deadline opened inside e.g. an RPC handler still respects the
// caller's propagated budget, and ScopedAbsoluteDeadline(d.absolute_nanos())
// re-publishes an explicit deadline to layers that still read the
// thread-local.
class Deadline {
 public:
  Deadline() = default;

  // The current thread-local deadline, captured as a value.
  static Deadline Ambient() { return Deadline(DeadlineBudget::AbsoluteNanos()); }

  static Deadline Unlimited() { return Deadline(0); }

  static Deadline AtAbsolute(int64_t absolute_nanos) { return Deadline(absolute_nanos); }

  // Now + budget, tightened by the ambient thread-local deadline if that is
  // already closer. A zero/negative budget yields the ambient deadline.
  static Deadline After(int64_t budget_nanos) {
    const int64_t ambient = DeadlineBudget::AbsoluteNanos();
    if (budget_nanos <= 0) {
      return Deadline(ambient);
    }
    const int64_t absolute = MonotonicNanos() + budget_nanos;
    return Deadline(ambient == 0 ? absolute : std::min(ambient, absolute));
  }

  int64_t absolute_nanos() const { return absolute_nanos_; }
  bool limited() const { return absolute_nanos_ != 0; }

  int64_t RemainingNanos() const {
    if (absolute_nanos_ == 0) {
      return std::numeric_limits<int64_t>::max();
    }
    return absolute_nanos_ - MonotonicNanos();
  }

  bool Expired() const {
    return absolute_nanos_ != 0 && MonotonicNanos() >= absolute_nanos_;
  }

  // Clamps `nanos` (a relative wait) to the remaining budget.
  int64_t Clamp(int64_t nanos) const {
    if (absolute_nanos_ == 0) {
      return nanos;
    }
    return std::min(nanos, absolute_nanos_ - MonotonicNanos());
  }

 private:
  explicit Deadline(int64_t absolute_nanos) : absolute_nanos_(absolute_nanos) {}
  int64_t absolute_nanos_ = 0;
};

// Installs an already-absolute deadline (deadline propagation onto an RPC
// handler's worker thread). Zero installs "unlimited".
class ScopedAbsoluteDeadline {
 public:
  explicit ScopedAbsoluteDeadline(int64_t absolute_nanos)
      : saved_(DeadlineBudget::t_deadline) {
    DeadlineBudget::t_deadline = absolute_nanos;
  }
  ~ScopedAbsoluteDeadline() { DeadlineBudget::t_deadline = saved_; }

  ScopedAbsoluteDeadline(const ScopedAbsoluteDeadline&) = delete;
  ScopedAbsoluteDeadline& operator=(const ScopedAbsoluteDeadline&) = delete;

 private:
  int64_t saved_;
};

}  // namespace mantle

#endif  // SRC_COMMON_DEADLINE_H_
