#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace mantle {

Histogram::Histogram() { Reset(); }

Histogram::Histogram(const Histogram& other) {
  Reset();
  Merge(other);
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this != &other) {
    Reset();
    Merge(other);
  }
  return *this;
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<int64_t>::max(), std::memory_order_relaxed);
}

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<int>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const int octave = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>((v >> (octave - 1)) & (kSubBuckets - 1));
  int index = (octave)*kSubBuckets + sub;
  if (index >= kBucketCount) {
    index = kBucketCount - 1;
  }
  return index;
}

int64_t Histogram::BucketUpperBound(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (octave == 0) {
    return sub;
  }
  return (static_cast<int64_t>(kSubBuckets + sub + 1) << (octave - 1)) - 1;
}

void Histogram::Record(int64_t value_nanos) {
  buckets_[BucketIndex(value_nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_nanos, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (value_nanos > prev &&
         !max_.compare_exchange_weak(prev, value_nanos, std::memory_order_relaxed)) {
  }
  prev = min_.load(std::memory_order_relaxed);
  while (value_nanos < prev &&
         !min_.compare_exchange_weak(prev, value_nanos, std::memory_order_relaxed)) {
  }
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  int64_t other_max = other.max_.load(std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (other_max > prev &&
         !max_.compare_exchange_weak(prev, other_max, std::memory_order_relaxed)) {
  }
  int64_t other_min = other.min_.load(std::memory_order_relaxed);
  prev = min_.load(std::memory_order_relaxed);
  while (other_min < prev &&
         !min_.compare_exchange_weak(prev, other_min, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  const int64_t m = min_.load(std::memory_order_relaxed);
  return m == std::numeric_limits<int64_t>::max() ? 0 : m;
}

double Histogram::Mean() const {
  const uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) / static_cast<double>(n);
}

int64_t Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(p / 100.0 * static_cast<double>(n) + 0.5));
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

std::vector<Histogram::CdfPoint> Histogram::Cdf() const {
  std::vector<CdfPoint> points;
  const uint64_t n = count();
  if (n == 0) {
    return points;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const uint64_t b = buckets_[i].load(std::memory_order_relaxed);
    if (b == 0) {
      continue;
    }
    seen += b;
    points.push_back({BucketUpperBound(i), static_cast<double>(seen) / static_cast<double>(n)});
  }
  return points;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "cnt=%llu mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count()), Mean() / 1e3,
                static_cast<double>(Percentile(50)) / 1e3,
                static_cast<double>(Percentile(99)) / 1e3, static_cast<double>(max()) / 1e3);
  return buf;
}

}  // namespace mantle
