// Log-bucketed latency histogram with percentile and CDF extraction.
//
// Buckets are power-of-two ranges subdivided linearly (HdrHistogram-lite),
// giving <= ~1.6% relative error across nanoseconds-to-minutes while staying
// a fixed-size array of atomics, safe for concurrent recording from workload
// threads.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mantle {

class Histogram {
 public:
  Histogram();
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(int64_t value_nanos);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t min() const;
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  // p in [0, 100].
  int64_t Percentile(double p) const;

  struct CdfPoint {
    int64_t value_nanos;
    double fraction;  // cumulative fraction of samples <= value_nanos
  };
  // Monotone CDF sampled at every non-empty bucket boundary.
  std::vector<CdfPoint> Cdf() const;

  // "cnt=... mean=...us p50=...us p99=...us max=...us"
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 44;  // covers up to ~2^48 ns (~3 days)
  static constexpr int kBucketCount = kOctaves * kSubBuckets;

  static int BucketIndex(int64_t value);
  static int64_t BucketUpperBound(int index);

  std::atomic<uint64_t> buckets_[kBucketCount];
  std::atomic<uint64_t> count_;
  std::atomic<int64_t> sum_;
  std::atomic<int64_t> max_;
  std::atomic<int64_t> min_;
};

}  // namespace mantle

#endif  // SRC_COMMON_HISTOGRAM_H_
