#include "src/common/logging.h"

#include <cstdio>
#include <cstring>
#include <mutex>

#include "src/common/config.h"

namespace mantle {

namespace {

std::atomic<int> g_level{[] {
  const std::string env = EnvString("MANTLE_LOG_LEVEL", "warning");
  if (env == "debug") {
    return static_cast<int>(LogLevel::kDebug);
  }
  if (env == "info") {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (env == "error") {
    return static_cast<int>(LogLevel::kError);
  }
  return static_cast<int>(LogLevel::kWarning);
}()};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool LogEnabled(LogLevel level) { return static_cast<int>(level) >= g_level.load(); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;
  static std::mutex io_mu;
  std::lock_guard<std::mutex> lock(io_mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line, message.c_str());
}

}  // namespace mantle
