// Minimal leveled logging to stderr. Default level is kWarning so tests and
// benches stay quiet; raise via SetLogLevel or MANTLE_LOG_LEVEL=debug|info.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>

namespace mantle {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace mantle

#define MANTLE_LOG(level)                                            \
  if (!::mantle::LogEnabled(::mantle::LogLevel::level)) {            \
  } else                                                             \
    ::mantle::LogStream(::mantle::LogLevel::level, __FILE__, __LINE__)

#define MANTLE_DLOG MANTLE_LOG(kDebug)
#define MANTLE_ILOG MANTLE_LOG(kInfo)
#define MANTLE_WLOG MANTLE_LOG(kWarning)
#define MANTLE_ELOG MANTLE_LOG(kError)

#endif  // SRC_COMMON_LOGGING_H_
