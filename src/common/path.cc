#include "src/common/path.h"

namespace mantle {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> components;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i > start) {
      components.emplace_back(path.substr(start, i - start));
    }
  }
  return components;
}

std::string JoinPath(const std::vector<std::string>& components) {
  if (components.empty()) {
    return "/";
  }
  std::string out;
  size_t total = 0;
  for (const auto& c : components) {
    total += c.size() + 1;
  }
  out.reserve(total);
  for (const auto& c : components) {
    out += '/';
    out += c;
  }
  return out;
}

std::string PathPrefix(const std::vector<std::string>& components, size_t n) {
  if (n == 0 || components.empty()) {
    return "/";
  }
  if (n > components.size()) {
    n = components.size();
  }
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    out += '/';
    out += components[i];
  }
  return out;
}

std::string ParentPath(std::string_view path) {
  auto components = SplitPath(path);
  if (components.empty()) {
    return "/";
  }
  components.pop_back();
  return JoinPath(components);
}

std::string BaseName(std::string_view path) {
  auto components = SplitPath(path);
  if (components.empty()) {
    return "";
  }
  return components.back();
}

size_t PathDepth(std::string_view path) { return SplitPath(path).size(); }

std::string NormalizePath(std::string_view path) { return JoinPath(SplitPath(path)); }

bool IsPathPrefix(std::string_view prefix, std::string_view path) {
  if (prefix == "/" || prefix.empty()) {
    return true;
  }
  if (path.size() < prefix.size()) {
    return false;
  }
  if (path.substr(0, prefix.size()) != prefix) {
    return false;
  }
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

bool IsValidPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return false;
  }
  if (path.find('\0') != std::string_view::npos) {
    return false;
  }
  return true;
}

}  // namespace mantle
