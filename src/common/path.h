// Object-path utilities.
//
// COSS object paths look like '/A/C/E/G/h.wav'. The root is '/', components
// never contain '/', and paths are always absolute. These helpers are the one
// place path syntax is interpreted; every service works on component vectors.

#ifndef SRC_COMMON_PATH_H_
#define SRC_COMMON_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace mantle {

// "/A/B/c" -> {"A", "B", "c"}; "/" -> {}. Ignores repeated and trailing '/'.
std::vector<std::string> SplitPath(std::string_view path);

// {"A", "B"} -> "/A/B"; {} -> "/".
std::string JoinPath(const std::vector<std::string>& components);

// Joins the first `n` components: PathPrefix({"A","B","C"}, 2) -> "/A/B".
std::string PathPrefix(const std::vector<std::string>& components, size_t n);

// "/A/B/c" -> "/A/B"; "/A" -> "/"; "/" -> "/".
std::string ParentPath(std::string_view path);

// "/A/B/c" -> "c"; "/" -> "".
std::string BaseName(std::string_view path);

// Number of components: "/A/B/c" -> 3, "/" -> 0.
size_t PathDepth(std::string_view path);

// Collapses repeated separators and strips a trailing one: "a//b/" -> "/a/b".
std::string NormalizePath(std::string_view path);

// True if `prefix` is '/' or equal to `path` or a proper path-prefix of it
// ("/A/B" is a prefix of "/A/B/C" but not of "/A/BC").
bool IsPathPrefix(std::string_view prefix, std::string_view path);

// Validates an absolute object path: non-empty, starts with '/', components
// non-empty and free of embedded NUL.
bool IsValidPath(std::string_view path);

}  // namespace mantle

#endif  // SRC_COMMON_PATH_H_
