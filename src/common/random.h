// Fast, seedable random number generation for workload drivers.
//
// SplitMix64 seeds Xoshiro256**; ZipfianGenerator produces the skewed access
// distributions used by the namespace-behaviour benches (hot directories,
// skewed depth access).

#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace mantle {

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // bias for bench-sized bounds is negligible.
    return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(hi >= lo);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

// Zipfian distribution over [0, n) with exponent theta, using the Gray et al.
// rejection-inversion-free formulation popularized by YCSB.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    return static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace mantle

#endif  // SRC_COMMON_RANDOM_H_
