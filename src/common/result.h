// Result<T>: a Status or a value, in the spirit of zx::result / absl::StatusOr.

#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace mantle {

template <typename T>
class Result {
 public:
  // Implicit construction from both arms keeps call sites terse:
  //   return Status::NotFound();   or   return value;
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "use Result(value) for the success arm");
  }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_ = Status::Ok();
  std::optional<T> value_;
};

// Propagates a non-OK status out of the current function.
#define MANTLE_RETURN_IF_ERROR(expr)        \
  do {                                      \
    ::mantle::Status _st = (expr);          \
    if (!_st.ok()) {                        \
      return _st;                           \
    }                                       \
  } while (0)

// Evaluates a Result<T> expression and either binds its value or returns the
// error. Usage: MANTLE_ASSIGN_OR_RETURN(auto id, ResolvePath(path));
#define MANTLE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define MANTLE_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define MANTLE_ASSIGN_OR_RETURN_UNIQ(a, b) MANTLE_ASSIGN_OR_RETURN_CAT(a, b)
#define MANTLE_ASSIGN_OR_RETURN(lhs, expr) \
  MANTLE_ASSIGN_OR_RETURN_IMPL(MANTLE_ASSIGN_OR_RETURN_UNIQ(_res_, __LINE__), lhs, expr)

}  // namespace mantle

#endif  // SRC_COMMON_RESULT_H_
