#include "src/common/status.h"

namespace mantle {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kNotADirectory:
      return "NotADirectory";
    case StatusCode::kNotEmpty:
      return "NotEmpty";
    case StatusCode::kLoopDetected:
      return "LoopDetected";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kWrongShard:
      return "WrongShard";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mantle
