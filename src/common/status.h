// Status and error-code plumbing shared by every Mantle module.
//
// Mantle modules do not throw exceptions across module boundaries; fallible
// operations return Status (or Result<T>, see src/common/result.h). The code
// set mirrors the failure modes of a COSS metadata service: path-resolution
// misses, transaction aborts, permission failures, rename-loop rejections.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mantle {

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,          // Path component or key does not exist.
  kAlreadyExists,     // Create/mkdir target already present.
  kAborted,           // Transaction aborted (lock conflict); caller may retry.
  kBusy,              // Resource (rename lock, latch) held by another request.
  kInvalidArgument,   // Malformed path or request.
  kPermissionDenied,  // Permission mask rejected the access.
  kNotADirectory,     // Path component resolved to an object, not a directory.
  kNotEmpty,          // rmdir on a non-empty directory.
  kLoopDetected,      // dirrename would create a cycle.
  kUnavailable,       // Server down / no leader elected.
  kTimeout,           // RPC or consensus deadline exceeded.
  kOverloaded,        // Admission control rejected the request; caller may retry.
  kWrongShard,        // Router used a stale shard placement; refresh and retry.
  kInternal,          // Invariant violation; indicates a bug.
};

// Returns a stable, human-readable name ("NotFound", "Aborted", ...).
std::string_view StatusCodeName(StatusCode code);

// Value-type status: a code plus an optional message. Copyable, cheap when OK
// (no allocation for the default-constructed OK value).
class Status {
 public:
  Status() = default;
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg = "") { return Status(StatusCode::kAborted, std::move(msg)); }
  static Status Busy(std::string msg = "") { return Status(StatusCode::kBusy, std::move(msg)); }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status PermissionDenied(std::string msg = "") {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status NotADirectory(std::string msg = "") {
    return Status(StatusCode::kNotADirectory, std::move(msg));
  }
  static Status NotEmpty(std::string msg = "") { return Status(StatusCode::kNotEmpty, std::move(msg)); }
  static Status LoopDetected(std::string msg = "") {
    return Status(StatusCode::kLoopDetected, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg = "") { return Status(StatusCode::kTimeout, std::move(msg)); }
  static Status Overloaded(std::string msg = "") {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status WrongShard(std::string msg = "") {
    return Status(StatusCode::kWrongShard, std::move(msg));
  }
  static Status Internal(std::string msg = "") { return Status(StatusCode::kInternal, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsLoopDetected() const { return code_ == StatusCode::kLoopDetected; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsWrongShard() const { return code_ == StatusCode::kWrongShard; }

  // True for failures the proxy layer is expected to retry (transaction
  // aborts, lock-bit conflicts, admission rejections, stale shard-placement
  // routes), as opposed to terminal errors. Retries against an overloaded
  // server are expected to pass through a retry budget so they cannot
  // amplify the overload.
  bool IsRetriable() const {
    return IsAborted() || IsBusy() || IsOverloaded() || IsWrongShard();
  }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mantle

#endif  // SRC_COMMON_STATUS_H_
