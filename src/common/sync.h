// Small synchronization primitives used across modules.

#ifndef SRC_COMMON_SYNC_H_
#define SRC_COMMON_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace mantle {

// Test-and-test-and-set spinlock for very short critical sections (index
// cache fill, histogram shards). Satisfies Lockable.
class SpinLock {
 public:
  void lock() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }
  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

class CountDownLatch {
 public:
  explicit CountDownLatch(int64_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) {
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this]() { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_;
};

}  // namespace mantle

#endif  // SRC_COMMON_SYNC_H_
