#include "src/common/thread_pool.h"

namespace mantle {

ThreadPool::ThreadPool(size_t num_workers, std::string name) : name_(std::move(name)) {
  if (num_workers == 0) {
    num_workers = 1;
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return false;
    }
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return;
    }
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Only reachable when shutting down with a drained queue.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace mantle
