// Fixed-size worker pool. The simulated cluster fabric builds its bounded
// per-server executors on top of this; workload drivers use it for client
// fan-out.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mantle {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn`; returns false if the pool is shutting down.
  bool Submit(std::function<void()> fn);

  // Enqueues a callable and returns a future for its result.
  template <typename Fn>
  auto SubmitWithResult(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (!Submit([task]() { (*task)(); })) {
      // Run inline if the pool is gone so the future is never abandoned.
      (*task)();
    }
    return future;
  }

  // Signals shutdown and joins all workers. Pending tasks are drained first.
  void Shutdown();

  // Blocks until the queue is empty and no worker is executing a task. Owners
  // of RPC-handler state call this before destruction: a deadline-expired
  // caller abandons its handler, which may still be queued here.
  void WaitIdle();

  size_t num_workers() const { return workers_.size(); }
  size_t QueueDepth() const;
  // Total tasks executed since construction.
  uint64_t completed_tasks() const { return completed_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop();

  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutting_down_ = false;
  std::atomic<uint64_t> completed_{0};
};

}  // namespace mantle

#endif  // SRC_COMMON_THREAD_POOL_H_
