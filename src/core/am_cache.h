// AM-Cache: the InfiniFS-style access-metadata cache (paper §6.1, Fig. 20).
//
// Maps directory-path prefixes to their ids so repeated resolutions skip
// already-known prefixes. In a COSS there is no cooperative client to host
// it, so the evaluation attaches it to the proxy process; rename/permission
// changes invalidate by prefix scan. Bounded and never promoted - a plain
// lookaside table.

#ifndef SRC_CORE_AM_CACHE_H_
#define SRC_CORE_AM_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/path.h"
#include "src/kv/meta_record.h"

namespace mantle {

class AmCache {
 public:
  explicit AmCache(size_t max_entries = 262'144) : max_entries_(max_entries) {}

  struct Hit {
    size_t levels = 0;  // number of path components the hit covers
    InodeId dir_id = kRootId;
  };

  // Longest cached prefix of `components` (trying deepest first).
  std::optional<Hit> LongestPrefix(const std::vector<std::string>& components,
                                   size_t max_levels) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (map_.empty()) {
      return std::nullopt;
    }
    for (size_t levels = max_levels; levels >= 1; --levels) {
      auto it = map_.find(PathPrefix(components, levels));
      if (it != map_.end()) {
        return Hit{levels, it->second};
      }
    }
    return std::nullopt;
  }

  void Insert(const std::string& prefix, InodeId id) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (map_.size() >= max_entries_) {
      return;
    }
    map_.emplace(prefix, id);
  }

  // Drops every cached prefix at or below `path`.
  void InvalidateSubtree(const std::string& path) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (auto it = map_.begin(); it != map_.end();) {
      if (IsPathPrefix(path, it->first)) {
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

  size_t Size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return map_.size();
  }

 private:
  const size_t max_entries_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, InodeId> map_;
};

}  // namespace mantle

#endif  // SRC_CORE_AM_CACHE_H_
