#include "src/core/mantle_service.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "src/admission/admission.h"
#include "src/common/path.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_export.h"

namespace mantle {

namespace {

// Per-op-type instruments, resolved once per op name (function-local static
// at each call site) so the hot path never touches the registry map.
struct OpMetrics {
  obs::HistogramMetric* latency;
  std::string latency_name;  // exemplar key linking buckets to trace ids
  obs::Counter* count;
  obs::Counter* failures;
  obs::Counter* retries;
};

OpMetrics MakeOpMetrics(const char* op) {
  auto& registry = obs::Metrics::Instance();
  const std::string base = std::string("core.op.") + op;
  return OpMetrics{registry.GetHistogram(base + ".latency_nanos"),
                   base + ".latency_nanos",
                   registry.GetCounter(base + ".count"),
                   registry.GetCounter(base + ".failures"),
                   registry.GetCounter("core.op.retries")};
}

// Records one op completion as the enclosing scope unwinds. Declare it after
// the OpResult it observes but before the op's root span, so it is destroyed
// first among the epilogue scopes yet after the root span closed - at which
// point it stitches the remote span subtrees into the op's trace and offers
// the completed trace to the flight recorder.
class OpRecorder {
 public:
  OpRecorder(const OpMetrics& metrics, const OpResult* result, Network* network,
             const OpContext* ctx)
      : metrics_(metrics), result_(result), network_(network), ctx_(ctx) {}
  ~OpRecorder() {
    metrics_.count->Add();
    const int64_t latency = timer_.ElapsedNanos();
    metrics_.latency->Record(latency);
    if (!result_->ok()) {
      metrics_.failures->Add();
    }
    if (result_->retries > 0) {
      metrics_.retries->Add(static_cast<uint64_t>(result_->retries));
    }
    obs::OpTrace* trace = OpContext::TraceOf(ctx_);
    if (trace != nullptr && network_ != nullptr) {
      network_->StitchTrace(trace);
      const bool deadline_exceeded = result_->status.code() == StatusCode::kTimeout;
      auto& recorder = obs::FlightRecorder::Instance();
      recorder.Offer(*trace, result_->ok(), deadline_exceeded);
      recorder.NoteExemplar(metrics_.latency_name, latency, trace->trace_id());
    }
  }

  OpRecorder(const OpRecorder&) = delete;
  OpRecorder& operator=(const OpRecorder&) = delete;

 private:
  const OpMetrics& metrics_;
  const OpResult* result_;
  Network* network_;
  const OpContext* ctx_;
  Stopwatch timer_;
};

}  // namespace

MantleService::MantleService(Network* network, MantleOptions options)
    : network_(network), options_(std::move(options)) {
  owned_tafdb_ = std::make_unique<TafDb>(network_, options_.tafdb);
  tafdb_ = owned_tafdb_.get();
  root_id_ = options_.id_base + kRootId;
  options_.index.node.root_id = root_id_;
  next_id_.store(root_id_);
  index_ = std::make_unique<IndexService>(network_, options_.namespace_name + "-index",
                                          options_.index);
  if (options_.enable_am_cache) {
    am_cache_ = std::make_unique<AmCache>();
  }
  tafdb_->LoadPut(AttrKey(root_id_), MetaValue{EntryType::kAttrPrimary, root_id_, kPermAll, 0,
                                               0, 0, 0});
  index_->Start();
}

MantleService::MantleService(Network* network, TafDb* shared_tafdb, MantleOptions options)
    : network_(network), options_(std::move(options)), tafdb_(shared_tafdb) {
  root_id_ = options_.id_base + kRootId;
  options_.index.node.root_id = root_id_;
  next_id_.store(root_id_);
  index_ = std::make_unique<IndexService>(network_, options_.namespace_name + "-index",
                                          options_.index);
  if (options_.enable_am_cache) {
    am_cache_ = std::make_unique<AmCache>();
  }
  tafdb_->LoadPut(AttrKey(root_id_), MetaValue{EntryType::kAttrPrimary, root_id_, kPermAll, 0,
                                               0, 0, 0});
  index_->Start();
}

MantleService::~MantleService() = default;

Result<IndexReplica::ResolveOutcome> MantleService::LookupParentCached(
    const std::vector<std::string>& components, const OpContext* ctx) {
  if (am_cache_ != nullptr && !components.empty()) {
    auto hit = am_cache_->LongestPrefix(components, components.size() - 1);
    if (hit.has_value() && hit->levels == components.size() - 1) {
      IndexReplica::ResolveOutcome outcome;
      outcome.dir_id = hit->dir_id;
      outcome.cache_hit = true;
      return outcome;
    }
  }
  auto outcome = index_->LookupParent(components, ctx);
  if (outcome.ok() && am_cache_ != nullptr && components.size() > 1) {
    am_cache_->Insert(PathPrefix(components, components.size() - 1), outcome->dir_id);
  }
  return outcome;
}

// --- lookups -----------------------------------------------------------------

OpResult MantleService::Lookup(const std::string& path) {
  OpContext ctx = MakeOpContext();
  return Lookup(ctx, path);
}

OpResult MantleService::Lookup(OpContext& ctx, const std::string& path) {
  OpResult result;
  static const OpMetrics metrics = MakeOpMetrics("lookup");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "lookup");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto outcome = LookupParentCached(components, &ctx);
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!outcome.ok()) {
    result.status = outcome.status();
    return result.FailAt(OpPhase::kLookup, outcome.status().message());
  }
  result.status = Status::Ok();
  return result;
}

// --- object operations ----------------------------------------------------------

OpResult MantleService::CreateObject(const std::string& path, uint64_t size) {
  OpContext ctx = MakeOpContext();
  return CreateObject(ctx, path, size);
}

OpResult MantleService::CreateObject(OpContext& ctx, const std::string& path, uint64_t size) {
  OpResult result;
  static const OpMetrics metrics = MakeOpMetrics("create_object");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "create_object");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return LookupParentCached(components, &ctx);
  }();
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kLookup, parent.status().message());
  }
  if ((parent->perm_mask & kPermWrite) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kLookup, components.back());
  }

  timer.Reset();
  obs::ScopedSpan execute_span(ctx.trace, "execute");
  const InodeId pid = parent->dir_id;
  const InodeId object_id = AllocateId();
  result.status = RetryTransaction(
      [&]() {
        obs::ScopedSpan txn_span(ctx.trace, "tafdb.txn");
        const uint64_t txn_id = tafdb_->NextTxnId();
        std::vector<WriteOp> ops;
        WriteOp insert;
        insert.kind = WriteOp::Kind::kPut;
        insert.expect = WriteOp::Expect::kMustNotExist;
        insert.key = EntryKey(pid, components.back());
        insert.value =
            MetaValue{EntryType::kObject, object_id, kPermAll, size, 0, txn_id, 0};
        ops.push_back(std::move(insert));
        ops.push_back(tafdb_->MakeAttrUpdate(pid, +1, /*bump_mtime=*/true, txn_id));
        return tafdb_->Execute(ops, txn_id);
      },
      options_.retry, &result.retries, &ctx);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!result.status.ok()) {
    result.FailAt(OpPhase::kExecute, components.back());
  }
  return result;
}

OpResult MantleService::DeleteObject(const std::string& path) {
  OpContext ctx = MakeOpContext();
  return DeleteObject(ctx, path);
}

OpResult MantleService::DeleteObject(OpContext& ctx, const std::string& path) {
  OpResult result;
  static const OpMetrics metrics = MakeOpMetrics("delete_object");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "delete_object");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return LookupParentCached(components, &ctx);
  }();
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kLookup, parent.status().message());
  }
  timer.Reset();
  obs::ScopedSpan execute_span(ctx.trace, "execute");
  const InodeId pid = parent->dir_id;
  result.status = RetryTransaction(
      [&]() {
        obs::ScopedSpan txn_span(ctx.trace, "tafdb.txn");
        const uint64_t txn_id = tafdb_->NextTxnId();
        std::vector<WriteOp> ops;
        WriteOp erase;
        erase.kind = WriteOp::Kind::kDelete;
        erase.expect = WriteOp::Expect::kMustBeObject;
        erase.key = EntryKey(pid, components.back());
        ops.push_back(std::move(erase));
        ops.push_back(tafdb_->MakeAttrUpdate(pid, -1, /*bump_mtime=*/true, txn_id));
        return tafdb_->Execute(ops, txn_id);
      },
      options_.retry, &result.retries, &ctx);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!result.status.ok()) {
    result.FailAt(OpPhase::kExecute, components.back());
  }
  return result;
}

StatResult MantleService::StatObject(const std::string& path) {
  OpContext ctx = MakeOpContext();
  return StatObject(ctx, path);
}

StatResult MantleService::StatObject(OpContext& ctx, const std::string& path) {
  StatResult result;
  static const OpMetrics metrics = MakeOpMetrics("stat_object");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "stat_object");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument(path);
    return result;
  }
  auto parent = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return LookupParentCached(components, &ctx);
  }();
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    result.FailAt(OpPhase::kLookup, parent.status().message());
    return result;
  }
  if ((parent->perm_mask & kPermRead) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    result.FailAt(OpPhase::kLookup, components.back());
    return result;
  }
  timer.Reset();
  obs::ScopedSpan execute_span(ctx.trace, "execute");
  auto row = tafdb_->Get(EntryKey(parent->dir_id, components.back()));
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!row.ok()) {
    result.status = row.status();
    result.FailAt(OpPhase::kExecute, components.back());
    return result;
  }
  result.info = StatInfo{row->id, row->IsDirectoryEntry(), row->size, 0, row->mtime,
                         row->permission};
  result.status = Status::Ok();
  return result;
}

// --- directory operations --------------------------------------------------------

StatResult MantleService::StatDir(const std::string& path) {
  OpContext ctx = MakeOpContext();
  return StatDir(ctx, path);
}

StatResult MantleService::StatDir(OpContext& ctx, const std::string& path) {
  StatResult result;
  static const OpMetrics metrics = MakeOpMetrics("stat_dir");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "stat_dir");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto dir = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return index_->LookupDir(components, &ctx);
  }();
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    result.FailAt(OpPhase::kLookup, dir.status().message());
    return result;
  }
  timer.Reset();
  obs::ScopedSpan execute_span(ctx.trace, "execute");
  auto attr = tafdb_->ReadDirAttr(dir->dir_id);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!attr.ok()) {
    result.status = attr.status();
    const std::string leaf = components.empty() ? "/" : components.back();
    result.FailAt(OpPhase::kExecute, leaf);
    return result;
  }
  result.info = StatInfo{dir->dir_id, true, 0, attr->child_count, attr->mtime, dir->perm_mask};
  result.status = Status::Ok();
  return result;
}

// --- batched reads ---------------------------------------------------------------
//
// The Mantle fast path: one IndexNode RPC resolves every parent under a
// single ReadIndex fence, then one TafDB MultiGet (one RPC per touched
// shard) reads the leaf rows. Per-entry results match what the singular op
// would have returned; the batch-level summary status only reflects
// whole-RPC failures (timeout/unavailable), never per-path outcomes.

namespace {

// A batch fails as a whole only when no entry succeeded and at least one
// entry carries an RPC-level failure code. NotFound/PermissionDenied/
// InvalidArgument are per-path verdicts, not batch failures.
Status BatchSummaryStatus(const MultiOpResult& batch) {
  Status rpc_failure = Status::Ok();
  bool saw_rpc_failure = false;
  for (const StatResult& entry : batch.results) {
    if (entry.ok()) {
      return Status::Ok();
    }
    const StatusCode code = entry.status.code();
    if (!saw_rpc_failure &&
        (code == StatusCode::kTimeout || code == StatusCode::kUnavailable ||
         code == StatusCode::kOverloaded)) {
      rpc_failure = entry.status;
      saw_rpc_failure = true;
    }
  }
  return saw_rpc_failure ? rpc_failure : Status::Ok();
}

obs::HistogramMetric* MultiStatBatchSizeHistogram() {
  static obs::HistogramMetric* hist =
      obs::Metrics::Instance().GetHistogram("mantle.multistat.batch_size");
  return hist;
}

}  // namespace

MultiOpResult MantleService::MultiStat(std::span<const std::string> paths) {
  OpContext ctx = MakeOpContext();
  return MultiStat(ctx, paths);
}

MultiOpResult MantleService::MultiLookup(std::span<const std::string> paths) {
  OpContext ctx = MakeOpContext();
  return MultiLookup(ctx, paths);
}

MultiOpResult MantleService::MultiStat(OpContext& ctx, std::span<const std::string> paths) {
  MultiOpResult batch;
  batch.results.resize(paths.size());
  if (paths.empty()) {
    return batch;
  }
  OpResult summary;
  static const OpMetrics metrics = MakeOpMetrics("multi_stat");
  OpRecorder recorder(metrics, &summary, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "multi_stat");
  ScopedRpcCounter rpcs;
  MultiStatBatchSizeHistogram()->Record(static_cast<int64_t>(paths.size()));
  Stopwatch timer;

  // Invalid paths fail locally and never join the batch RPC.
  std::vector<std::vector<std::string>> components(paths.size());
  std::vector<size_t> live;
  live.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    components[i] = SplitPath(paths[i]);
    if (components[i].empty()) {
      batch.results[i].status = Status::InvalidArgument(paths[i]);
      batch.results[i].FailAt(OpPhase::kLookup, paths[i]);
    } else {
      live.push_back(i);
    }
  }

  // Stage 1: ONE RPC resolves every parent under a single read fence.
  std::vector<std::vector<std::string>> lookup_paths;
  lookup_paths.reserve(live.size());
  for (size_t slot : live) {
    lookup_paths.push_back(components[slot]);
  }
  const auto outcomes = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return index_->ResolveBatch(lookup_paths, /*parent_only=*/true, &ctx);
  }();
  batch.breakdown.lookup_nanos = timer.ElapsedNanos();

  // Stage 2: the surviving leaf reads, grouped into one MultiGet.
  std::vector<MetaKey> keys;
  std::vector<size_t> key_slots;
  keys.reserve(live.size());
  key_slots.reserve(live.size());
  for (size_t j = 0; j < live.size(); ++j) {
    const size_t slot = live[j];
    StatResult& entry = batch.results[slot];
    if (!outcomes[j].ok()) {
      entry.status = outcomes[j].status();
      entry.FailAt(OpPhase::kLookup, outcomes[j].status().message());
      continue;
    }
    if ((outcomes[j]->perm_mask & kPermRead) == 0) {
      entry.status = Status::PermissionDenied(paths[slot]);
      entry.FailAt(OpPhase::kLookup, components[slot].back());
      continue;
    }
    keys.push_back(EntryKey(outcomes[j]->dir_id, components[slot].back()));
    key_slots.push_back(slot);
  }
  timer.Reset();
  if (!keys.empty()) {
    obs::ScopedSpan execute_span(ctx.trace, "execute");
    const auto rows = tafdb_->MultiGet(keys);
    for (size_t k = 0; k < key_slots.size(); ++k) {
      StatResult& entry = batch.results[key_slots[k]];
      if (!rows[k].ok()) {
        entry.status = rows[k].status();
        entry.FailAt(OpPhase::kExecute, components[key_slots[k]].back());
        continue;
      }
      const MetaValue& row = *rows[k];
      entry.info =
          StatInfo{row.id, row.IsDirectoryEntry(), row.size, 0, row.mtime, row.permission};
      entry.status = Status::Ok();
    }
  }
  batch.breakdown.execute_nanos = timer.ElapsedNanos();
  batch.rpcs = rpcs.count();
  summary.breakdown = batch.breakdown;
  summary.rpcs = batch.rpcs;
  summary.status = BatchSummaryStatus(batch);
  return batch;
}

MultiOpResult MantleService::MultiLookup(OpContext& ctx, std::span<const std::string> paths) {
  MultiOpResult batch;
  batch.results.resize(paths.size());
  if (paths.empty()) {
    return batch;
  }
  OpResult summary;
  static const OpMetrics metrics = MakeOpMetrics("multi_lookup");
  OpRecorder recorder(metrics, &summary, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "multi_lookup");
  ScopedRpcCounter rpcs;
  MultiStatBatchSizeHistogram()->Record(static_cast<int64_t>(paths.size()));
  Stopwatch timer;

  std::vector<std::vector<std::string>> components(paths.size());
  std::vector<size_t> live;
  live.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    components[i] = SplitPath(paths[i]);
    if (components[i].empty()) {
      batch.results[i].status = Status::InvalidArgument(paths[i]);
      batch.results[i].FailAt(OpPhase::kLookup, paths[i]);
    } else {
      live.push_back(i);
    }
  }

  std::vector<std::vector<std::string>> lookup_paths;
  lookup_paths.reserve(live.size());
  for (size_t slot : live) {
    lookup_paths.push_back(components[slot]);
  }
  const auto outcomes = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return index_->ResolveBatch(lookup_paths, /*parent_only=*/true, &ctx);
  }();
  batch.breakdown.lookup_nanos = timer.ElapsedNanos();

  for (size_t j = 0; j < live.size(); ++j) {
    StatResult& entry = batch.results[live[j]];
    if (!outcomes[j].ok()) {
      entry.status = outcomes[j].status();
      entry.FailAt(OpPhase::kLookup, outcomes[j].status().message());
      continue;
    }
    entry.status = Status::Ok();
  }
  batch.rpcs = rpcs.count();
  summary.breakdown = batch.breakdown;
  summary.rpcs = batch.rpcs;
  summary.status = BatchSummaryStatus(batch);
  return batch;
}

OpResult MantleService::Mkdir(const std::string& path) {
  OpContext ctx = MakeOpContext();
  return Mkdir(ctx, path);
}

OpResult MantleService::Mkdir(OpContext& ctx, const std::string& path) {
  OpResult result;
  static const OpMetrics metrics = MakeOpMetrics("mkdir");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "mkdir");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::AlreadyExists("/");
    return result;
  }
  auto parent = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return LookupParentCached(components, &ctx);
  }();
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!parent.ok()) {
    result.status = parent.status();
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kLookup, parent.status().message());
  }
  if ((parent->perm_mask & kPermWrite) == 0) {
    result.status = Status::PermissionDenied(path);
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kLookup, components.back());
  }

  timer.Reset();
  obs::ScopedSpan execute_span(ctx.trace, "execute");
  const InodeId pid = parent->dir_id;
  const InodeId dir_id = AllocateId();
  // TafDB first: the directory entry + its attribute primary + the parent's
  // attribute mutation, spanning shard(pid) and shard(dir_id) in general.
  result.status = RetryTransaction(
      [&]() {
        obs::ScopedSpan txn_span(ctx.trace, "tafdb.txn");
        const uint64_t txn_id = tafdb_->NextTxnId();
        std::vector<WriteOp> ops;
        WriteOp entry;
        entry.kind = WriteOp::Kind::kPut;
        entry.expect = WriteOp::Expect::kMustNotExist;
        entry.key = EntryKey(pid, components.back());
        entry.value = MetaValue{EntryType::kDirectory, dir_id, kPermAll, 0, 0, txn_id, 0};
        ops.push_back(std::move(entry));
        WriteOp attr;
        attr.kind = WriteOp::Kind::kPut;
        attr.expect = WriteOp::Expect::kMustNotExist;
        attr.key = AttrKey(dir_id);
        attr.value = MetaValue{EntryType::kAttrPrimary, dir_id, kPermAll, 0, 0, txn_id, 0};
        ops.push_back(std::move(attr));
        ops.push_back(tafdb_->MakeAttrUpdate(pid, +1, /*bump_mtime=*/true, txn_id));
        return tafdb_->Execute(ops, txn_id);
      },
      options_.retry, &result.retries, &ctx);
  if (result.status.ok()) {
    // Then refresh the IndexNode's access metadata through consensus.
    obs::ScopedSpan index_span(ctx.trace, "index.add_dir");
    result.status = index_->AddDir(pid, components.back(), dir_id, kPermAll);
  }
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!result.status.ok()) {
    result.FailAt(OpPhase::kExecute, components.back());
  }
  return result;
}

OpResult MantleService::Rmdir(const std::string& path) {
  OpContext ctx = MakeOpContext();
  return Rmdir(ctx, path);
}

OpResult MantleService::Rmdir(OpContext& ctx, const std::string& path) {
  OpResult result;
  static const OpMetrics metrics = MakeOpMetrics("rmdir");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "rmdir");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument("cannot remove the root");
    return result;
  }
  auto dir = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return index_->LookupDir(components, &ctx);
  }();
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kLookup, dir.status().message());
  }
  timer.Reset();
  obs::ScopedSpan execute_span(ctx.trace, "execute");
  const InodeId pid = dir->parent_id;
  const InodeId dir_id = dir->dir_id;
  auto has_children = tafdb_->HasChildren(dir_id);
  if (!has_children.ok()) {
    result.status = has_children.status();
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kExecute, components.back());
  }
  if (*has_children) {
    result.status = Status::NotEmpty(path);
    result.breakdown.execute_nanos = timer.ElapsedNanos();
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kExecute, components.back());
  }
  result.status = RetryTransaction(
      [&]() {
        obs::ScopedSpan txn_span(ctx.trace, "tafdb.txn");
        const uint64_t txn_id = tafdb_->NextTxnId();
        std::vector<WriteOp> ops;
        WriteOp entry;
        entry.kind = WriteOp::Kind::kDelete;
        entry.expect = WriteOp::Expect::kMustExist;
        entry.key = EntryKey(pid, components.back());
        ops.push_back(std::move(entry));
        WriteOp attr;
        attr.kind = WriteOp::Kind::kDelete;
        attr.key = AttrKey(dir_id);
        ops.push_back(std::move(attr));
        ops.push_back(tafdb_->MakeAttrUpdate(pid, -1, /*bump_mtime=*/true, txn_id));
        return tafdb_->Execute(ops, txn_id);
      },
      options_.retry, &result.retries, &ctx);
  if (result.status.ok()) {
    obs::ScopedSpan index_span(ctx.trace, "index.remove_dir");
    result.status = index_->RemoveDir(pid, components.back(), NormalizePath(path));
    if (am_cache_ != nullptr) {
      am_cache_->InvalidateSubtree(NormalizePath(path));
    }
  }
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!result.status.ok()) {
    result.FailAt(OpPhase::kExecute, components.back());
  }
  return result;
}

OpResult MantleService::RenameDir(const std::string& src_path, const std::string& dst_path) {
  OpContext ctx = MakeOpContext();
  return RenameDir(ctx, src_path, dst_path);
}

OpResult MantleService::RenameDir(OpContext& ctx, const std::string& src_path,
                                  const std::string& dst_path) {
  OpResult result;
  static const OpMetrics metrics = MakeOpMetrics("rename_dir");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "rename_dir");
  ScopedRpcCounter rpcs;
  const auto src_components = SplitPath(src_path);
  const auto dst_components = SplitPath(dst_path);
  if (src_components.empty() || dst_components.empty()) {
    result.status = Status::InvalidArgument("rename involving the root");
    return result;
  }
  std::vector<std::string> dst_parent(dst_components.begin(), dst_components.end() - 1);
  const std::string& dst_name = dst_components.back();
  const uint64_t uuid = NewUuid();
  // Assume phase 1+2 failed unless the transaction phase is reached below.
  OpPhase failing_phase = OpPhase::kLoopDetect;

  result.status = RetryTransaction(
      [&]() -> Status {
        // Phase 1+2 merged (Fig. 9 steps 1-7): resolution, RemovalList entry,
        // lock bit, and loop detection in a single RPC to the IndexNode
        // leader. Mantle reports zero lookup time for dirrename because it is
        // folded into loop detection (§6.3).
        failing_phase = OpPhase::kLoopDetect;
        Stopwatch loop_timer;
        auto prepared = [&] {
          obs::ScopedSpan prepare_span(ctx.trace, "index.rename_prepare");
          return index_->RenamePrepare(src_components, dst_parent, dst_name, uuid);
        }();
        result.breakdown.loop_detect_nanos += loop_timer.ElapsedNanos();
        if (!prepared.ok()) {
          return prepared.status();
        }

        // Phase 3 (steps 8a/8b): distributed transaction across TafDB shards.
        failing_phase = OpPhase::kExecute;
        obs::ScopedSpan execute_span(ctx.trace, "execute");
        Stopwatch exec_timer;
        const uint64_t txn_id = tafdb_->NextTxnId();
        std::vector<WriteOp> ops;
        WriteOp erase;
        erase.kind = WriteOp::Kind::kDelete;
        erase.expect = WriteOp::Expect::kMustExist;
        erase.key = EntryKey(prepared->src_pid, src_components.back());
        ops.push_back(std::move(erase));
        WriteOp insert;
        insert.kind = WriteOp::Kind::kPut;
        insert.expect = WriteOp::Expect::kMustNotExist;
        insert.key = EntryKey(prepared->dst_pid, dst_name);
        insert.value =
            MetaValue{EntryType::kDirectory, prepared->src_id, kPermAll, 0, 0, txn_id, 0};
        ops.push_back(std::move(insert));
        ops.push_back(tafdb_->MakeAttrUpdate(prepared->src_pid, -1, true, txn_id));
        if (prepared->dst_pid != prepared->src_pid) {
          ops.push_back(tafdb_->MakeAttrUpdate(prepared->dst_pid, +1, true, txn_id));
        }
        Status txn_status = [&] {
          obs::ScopedSpan txn_span(ctx.trace, "tafdb.txn");
          return tafdb_->Execute(ops, txn_id);
        }();
        if (!txn_status.ok()) {
          index_->RenameAbort(prepared->src_id, uuid);
          result.breakdown.execute_nanos += exec_timer.ElapsedNanos();
          return txn_status;
        }
        Status apply_status =
            index_->RenameCommit(prepared->src_pid, src_components.back(), prepared->dst_pid,
                                 dst_name, uuid, prepared->src_path);
        if (apply_status.ok() && am_cache_ != nullptr) {
          am_cache_->InvalidateSubtree(prepared->src_path);
        }
        result.breakdown.execute_nanos += exec_timer.ElapsedNanos();
        return apply_status;
      },
      options_.retry, &result.retries, &ctx);
  result.rpcs = rpcs.count();
  if (!result.status.ok()) {
    result.FailAt(failing_phase, src_components.back());
  }
  return result;
}

OpResult MantleService::ReadDir(const std::string& path, std::vector<std::string>* names) {
  OpContext ctx = MakeOpContext();
  return ReadDir(ctx, path, names);
}

OpResult MantleService::ReadDir(OpContext& ctx, const std::string& path,
                                std::vector<std::string>* names) {
  OpResult result;
  static const OpMetrics metrics = MakeOpMetrics("read_dir");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "read_dir");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  auto dir = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return index_->LookupDir(components, &ctx);
  }();
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kLookup, dir.status().message());
  }
  timer.Reset();
  obs::ScopedSpan execute_span(ctx.trace, "execute");
  auto listing = tafdb_->ListChildren(dir->dir_id);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!listing.ok()) {
    result.status = listing.status();
    const std::string leaf = components.empty() ? "/" : components.back();
    return result.FailAt(OpPhase::kExecute, leaf);
  }
  if (names != nullptr) {
    names->clear();
    names->reserve(listing->size());
    for (const auto& entry : *listing) {
      names->push_back(entry.key.name);
    }
  }
  result.status = Status::Ok();
  return result;
}

OpResult MantleService::ListObjects(const std::string& dir_path,
                                    const std::string& start_after, size_t max_entries,
                                    ListPage* out) {
  OpContext ctx = MakeOpContext();
  return ListObjects(ctx, dir_path, start_after, max_entries, out);
}

OpResult MantleService::ListObjects(OpContext& ctx, const std::string& dir_path,
                                    const std::string& start_after, size_t max_entries,
                                    ListPage* out) {
  OpResult result;
  static const OpMetrics metrics = MakeOpMetrics("list_objects");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "list_objects");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(dir_path);
  auto dir = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return index_->LookupDir(components, &ctx);
  }();
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kLookup, dir.status().message());
  }
  timer.Reset();
  obs::ScopedSpan execute_span(ctx.trace, "execute");
  // Fetch one extra row to learn whether the page is truncated.
  const size_t want = max_entries == 0 ? 0 : max_entries + 1;
  auto listing = tafdb_->ListChildrenAfter(dir->dir_id, start_after, want);
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!listing.ok()) {
    result.status = listing.status();
    const std::string leaf = components.empty() ? "/" : components.back();
    return result.FailAt(OpPhase::kExecute, leaf);
  }
  if (out != nullptr) {
    out->names.clear();
    out->truncated = max_entries != 0 && listing->size() > max_entries;
    const size_t take = out->truncated ? max_entries : listing->size();
    out->names.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out->names.push_back((*listing)[i].key.name);
    }
    out->next_start_after = out->names.empty() ? "" : out->names.back();
  }
  result.status = Status::Ok();
  return result;
}

OpResult MantleService::SetDirPermission(const std::string& path, uint32_t permission) {
  OpContext ctx = MakeOpContext();
  return SetDirPermission(ctx, path, permission);
}

OpResult MantleService::SetDirPermission(OpContext& ctx, const std::string& path,
                                         uint32_t permission) {
  OpResult result;
  static const OpMetrics metrics = MakeOpMetrics("set_dir_permission");
  OpRecorder recorder(metrics, &result, network_, &ctx);
  ScopedOpContext shim(ctx);
  obs::ScopedSpan op_span(ctx.trace, "set_dir_permission");
  ScopedRpcCounter rpcs;
  Stopwatch timer;
  const auto components = SplitPath(path);
  if (components.empty()) {
    result.status = Status::InvalidArgument("cannot setattr the root");
    return result;
  }
  auto dir = [&] {
    obs::ScopedSpan lookup_span(ctx.trace, "lookup");
    return index_->LookupDir(components, &ctx);
  }();
  result.breakdown.lookup_nanos = timer.ElapsedNanos();
  if (!dir.ok()) {
    result.status = dir.status();
    result.rpcs = rpcs.count();
    return result.FailAt(OpPhase::kLookup, dir.status().message());
  }
  timer.Reset();
  obs::ScopedSpan execute_span(ctx.trace, "execute");
  const InodeId pid = dir->parent_id;
  // Update the access-metadata row in TafDB, then replicate to the IndexNode
  // (which also invalidates cached prefixes through `path`).
  result.status = RetryTransaction(
      [&]() {
        obs::ScopedSpan txn_span(ctx.trace, "tafdb.txn");
        const uint64_t txn_id = tafdb_->NextTxnId();
        WriteOp update;
        update.kind = WriteOp::Kind::kPut;
        update.expect = WriteOp::Expect::kMustExist;
        update.key = EntryKey(pid, components.back());
        update.value =
            MetaValue{EntryType::kDirectory, dir->dir_id, permission, 0, 0, txn_id, 0};
        return tafdb_->Execute({update}, txn_id);
      },
      options_.retry, &result.retries, &ctx);
  if (result.status.ok()) {
    obs::ScopedSpan index_span(ctx.trace, "index.set_permission");
    result.status =
        index_->SetPermission(pid, components.back(), permission, NormalizePath(path));
    if (am_cache_ != nullptr) {
      am_cache_->InvalidateSubtree(NormalizePath(path));
    }
  }
  result.breakdown.execute_nanos = timer.ElapsedNanos();
  result.rpcs = rpcs.count();
  if (!result.status.ok()) {
    result.FailAt(OpPhase::kExecute, components.back());
  }
  return result;
}

MantleService::ConsistencyReport MantleService::FsckScan(FsckFindings& findings) {
  ConsistencyReport report;
  IndexReplica* leader = index_->LeaderReplica();
  if (leader == nullptr) {
    return report;
  }
  // Pass 1: every indexed directory has its TafDB rows.
  for (const auto& entry : leader->table().Export()) {
    ++report.dirs_checked;
    const std::string label =
        leader->table().PathOf(entry.id).value_or("(" + std::to_string(entry.pid) + "," +
                                                  entry.name + ")");
    auto row = tafdb_->LocalGet(EntryKey(entry.pid, entry.name));
    if (!row.has_value()) {
      report.missing_entry_row.push_back(label);
      findings.missing_entry.push_back({entry.pid, entry.name, entry.id, entry.permission});
    } else if (row->id != entry.id || !row->IsDirectoryEntry()) {
      report.id_mismatch.push_back(label);
      findings.id_mismatch.push_back({entry.pid, entry.name, entry.id, entry.permission});
    }
    if (!tafdb_->LocalGet(AttrKey(entry.id)).has_value()) {
      report.missing_attr_row.push_back(label);
      findings.missing_attr.push_back({entry.pid, entry.name, entry.id, entry.permission});
    }
  }
  // Pass 2: every directory entry row in this namespace is indexed. Ownership
  // is decided by walking the row's parent chain in the index: rows whose pid
  // is unknown to this namespace's index belong to another tenant. Delta rows
  // are collected here too (pass 3 below decides whether they are orphaned).
  IndexTable& table = leader->table();
  ShardMap* shards = tafdb_->shard_map();
  std::unordered_set<InodeId> delta_dirs;
  for (uint32_t i = 0; i < shards->num_shards(); ++i) {
    shards->ShardAt(i)->ForEach([&](const MetaKey& key, const MetaValue& value) {
      ++report.rows_scanned;
      if (key.ts != 0 && key.name == kAttrName) {
        delta_dirs.insert(key.pid);
        return;
      }
      if (key.ts != 0 || key.name == kAttrName || !value.IsDirectoryEntry()) {
        return;
      }
      const bool parent_known =
          key.pid == root_id_ || table.GetParent(key.pid).has_value();
      if (!parent_known) {
        return;  // another namespace's subtree
      }
      auto indexed = table.Lookup(key.pid, key.name);
      if (!indexed.has_value() || indexed->id != value.id) {
        report.unindexed_dir_row.push_back("(" + std::to_string(key.pid) + "," + key.name +
                                           ")");
        findings.unindexed.push_back({key.pid, key.name, value.id, value.permission});
      }
    });
  }
  // Pass 3: delta rows the compactor no longer tracks. A compactor crash
  // loses the in-memory pending set, stranding fully-written delta rows that
  // dirstat must keep merging forever. Scoped to this namespace's dirs.
  for (InodeId dir_id : delta_dirs) {
    const bool owned = dir_id == root_id_ || table.GetParent(dir_id).has_value();
    if (!owned || tafdb_->PendingCompactionContains(dir_id)) {
      continue;
    }
    report.orphaned_delta.push_back("dir " + std::to_string(dir_id));
    findings.orphaned_delta_dirs.push_back(dir_id);
  }
  return report;
}

MantleService::ConsistencyReport MantleService::Fsck() {
  FsckFindings findings;
  return FsckScan(findings);
}

MantleService::RepairReport MantleService::Fsck(const RepairOptions& options) {
  // Repair traffic is maintenance: under admission control it is shed before
  // foreground metadata ops.
  ScopedOpPriority background(OpPriority::kBackground);
  RepairReport report;
  FsckFindings findings;
  FsckScan(findings);

  static obs::Counter* entry_rows =
      obs::Metrics::Instance().GetCounter("fsck.repaired.entry_rows");
  static obs::Counter* ids = obs::Metrics::Instance().GetCounter("fsck.repaired.id_mismatch");
  static obs::Counter* attr_rows =
      obs::Metrics::Instance().GetCounter("fsck.repaired.attr_rows");
  static obs::Counter* indexed = obs::Metrics::Instance().GetCounter("fsck.repaired.dirs_indexed");
  static obs::Counter* deltas = obs::Metrics::Instance().GetCounter("fsck.repaired.delta_dirs");

  if (options.restore_entry_rows) {
    for (const auto& finding : findings.missing_entry) {
      tafdb_->LoadPut(EntryKey(finding.pid, finding.name),
                      MetaValue{EntryType::kDirectory, finding.id, finding.permission, 0, 0, 0, 0});
      ++report.entry_rows_restored;
    }
    entry_rows->Add(report.entry_rows_restored);
  }
  if (options.fix_id_mismatches) {
    for (const auto& finding : findings.id_mismatch) {
      tafdb_->LoadPut(EntryKey(finding.pid, finding.name),
                      MetaValue{EntryType::kDirectory, finding.id, finding.permission, 0, 0, 0, 0});
      ++report.ids_corrected;
    }
    ids->Add(report.ids_corrected);
  }
  if (options.restore_attr_rows) {
    for (const auto& finding : findings.missing_attr) {
      // Recount rather than trust anything cached: the children rows are the
      // durable truth for the directory's size.
      const int64_t child_count = static_cast<int64_t>(
          tafdb_->shard_map()->Route(finding.id)->ScanChildren(finding.id).size());
      tafdb_->LoadPut(AttrKey(finding.id), MetaValue{EntryType::kAttrPrimary, finding.id,
                                                     finding.permission, 0, child_count, 0, 0});
      ++report.attr_rows_restored;
    }
    attr_rows->Add(report.attr_rows_restored);
  }
  if (options.index_unindexed_dirs) {
    for (const auto& finding : findings.unindexed) {
      if (index_->AddDir(finding.pid, finding.name, finding.id, finding.permission).ok()) {
        ++report.dirs_indexed;
      }
    }
    indexed->Add(report.dirs_indexed);
  }
  if (options.compact_orphaned_deltas && !findings.orphaned_delta_dirs.empty()) {
    report.delta_dirs_compacted = findings.orphaned_delta_dirs.size();
    tafdb_->RecoverCompactionBacklog();
    tafdb_->CompactAllPending();
    deltas->Add(report.delta_dirs_compacted);
  }

  FsckFindings remaining;
  report.remaining = FsckScan(remaining);
  return report;
}

MantleService::IndexRebuildReport MantleService::RecoverIndexFromTafDb() {
  ScopedOpPriority background(OpPriority::kBackground);
  IndexRebuildReport report;
  // Collect this namespace's directory entry rows, then order them parents-
  // before-children by BFS from the root (LoadDir can only resolve a child
  // whose parent is already present). Collect-then-walk: Shard::ForEach holds
  // the shard's shared lock, so no nested shard reads from the callback. BFS
  // from the root also scopes the load to this tenant - rows whose parent
  // chain never reaches root_id_ belong to other namespaces in the shared
  // TafDB.
  struct DirRow {
    std::string name;
    InodeId id;
    uint32_t permission;
  };
  std::unordered_map<InodeId, std::vector<DirRow>> by_parent;
  ShardMap* shards = tafdb_->shard_map();
  for (uint32_t i = 0; i < shards->num_shards(); ++i) {
    shards->ShardAt(i)->ForEach([&](const MetaKey& key, const MetaValue& value) {
      if (key.ts != 0 || key.name == kAttrName || !value.IsDirectoryEntry()) {
        return;
      }
      by_parent[key.pid].push_back(DirRow{key.name, value.id, value.permission});
    });
  }
  std::vector<IndexTable::ExportedEntry> dirs;
  std::deque<InodeId> frontier;
  frontier.push_back(root_id_);
  while (!frontier.empty()) {
    const InodeId pid = frontier.front();
    frontier.pop_front();
    auto it = by_parent.find(pid);
    if (it == by_parent.end()) {
      continue;
    }
    for (const DirRow& row : it->second) {
      dirs.push_back({pid, row.name, row.id, row.permission});
      frontier.push_back(row.id);
    }
    by_parent.erase(it);  // corrupt-cycle guard: visit each parent once
  }
  index_->ColdStartRebuild(dirs);
  report.dirs_loaded = dirs.size();
  report.replicas_rebuilt = index_->num_replicas();
  static obs::Counter* rebuilds = obs::Metrics::Instance().GetCounter("index.rebuild.count");
  static obs::Counter* loaded = obs::Metrics::Instance().GetCounter("index.rebuild.dirs_loaded");
  rebuilds->Add();
  loaded->Add(report.dirs_loaded);
  return report;
}

// --- bulk loading -----------------------------------------------------------------

Result<InodeId> MantleService::LocalResolveParent(
    const std::vector<std::string>& components) const {
  IndexTable& table = index_->replica(0)->table();
  InodeId current = root_id_;
  for (size_t level = 0; level + 1 < components.size(); ++level) {
    auto entry = table.Lookup(current, components[level]);
    if (!entry.has_value()) {
      return Status::NotFound(PathPrefix(components, level + 1));
    }
    current = entry->id;
  }
  return current;
}

Status MantleService::BulkLoadOne(const BulkEntry& entry) {
  const auto components = SplitPath(entry.path);
  if (components.empty()) {
    // The root: always exists as a directory, never valid as an object.
    return entry.kind == BulkEntry::Kind::kDir ? Status::Ok()
                                               : Status::InvalidArgument(entry.path);
  }
  auto pid = LocalResolveParent(components);
  if (!pid.ok()) {
    return pid.status();
  }
  const InodeId id = AllocateId();
  if (entry.kind == BulkEntry::Kind::kDir) {
    tafdb_->LoadPut(EntryKey(*pid, components.back()),
                    MetaValue{EntryType::kDirectory, id, kPermAll, 0, 0, 0, 0});
    tafdb_->LoadPut(AttrKey(id),
                    MetaValue{EntryType::kAttrPrimary, id, kPermAll, 0, 0, 0, 0});
    tafdb_->LoadAdjustChildCount(*pid, +1);
    index_->LoadDir(*pid, components.back(), id, kPermAll);
  } else {
    tafdb_->LoadPut(EntryKey(*pid, components.back()),
                    MetaValue{EntryType::kObject, id, kPermAll, entry.size, 0, 0, 0});
    tafdb_->LoadAdjustChildCount(*pid, +1);
  }
  return Status::Ok();
}

Status MantleService::BulkLoad(const BulkEntry& entry) { return BulkLoadOne(entry); }

Status MantleService::BulkLoadMany(std::span<const BulkEntry> entries) {
  for (const BulkEntry& entry : entries) {
    Status status = BulkLoadOne(entry);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

// --- stats snapshot ---------------------------------------------------------------

std::string MantleService::DumpStats() {
  auto& registry = obs::Metrics::Instance();
  registry.GetGauge("tafdb.compaction.backlog")->Set(static_cast<int64_t>(tafdb_->PendingCompactions()));
  // Per-shard row/op gauges (tafdb.shard.<i>.rows / .ops plus the fleet
  // totals) - the raw signal the heat tracker smooths, published even with
  // placement off so a hot shard is visible before anything moves.
  {
    ShardMap* shards = tafdb_->shard_map();
    uint64_t total_rows = 0;
    uint64_t total_ops = 0;
    for (uint32_t i = 0; i < shards->num_shards(); ++i) {
      const Shard* shard = shards->ShardAt(i);
      const uint64_t rows = shard->Size();
      const uint64_t ops = shard->ops();
      const std::string prefix = "tafdb.shard." + std::to_string(i);
      registry.GetGauge(prefix + ".rows")->Set(static_cast<int64_t>(rows));
      registry.GetGauge(prefix + ".ops")->Set(static_cast<int64_t>(ops));
      total_rows += rows;
      total_ops += ops;
    }
    registry.GetGauge("tafdb.shard.rows")->Set(static_cast<int64_t>(total_rows));
    registry.GetGauge("tafdb.shard.ops")->Set(static_cast<int64_t>(total_ops));
    registry.GetGauge("placement.epoch")
        ->Set(static_cast<int64_t>(shards->placement().epoch()));
  }
  if (IndexReplica* leader = index_->LeaderReplica(); leader != nullptr) {
    registry.GetGauge("index.removal_list.depth")
        ->Set(static_cast<int64_t>(leader->removal_list().LiveCount()));
  }
  return registry.DumpJson();
}

std::string MantleService::DumpSlowTraces(size_t max_traces) {
  return obs::ToChromeTraceJson(obs::FlightRecorder::Instance().Slowest(max_traces));
}

}  // namespace mantle
