// MantleService: the paper's primary contribution, assembled.
//
// The proxy-side logic of Mantle (Fig. 5): single-RPC path lookups against
// the per-namespace IndexService, bulk metadata in the shared TafDB, delta
// records for contended directory attributes, and the IndexNode-coordinated
// cross-directory rename workflow of Fig. 9. Client (bench/application)
// threads play the role of the stateless proxy fleet.

#ifndef SRC_CORE_MANTLE_SERVICE_H_
#define SRC_CORE_MANTLE_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/admission/retry_budget.h"
#include "src/core/am_cache.h"
#include "src/core/metadata_service.h"
#include "src/core/retry.h"
#include "src/index/index_service.h"
#include "src/net/network.h"
#include "src/obs/op_context.h"
#include "src/tafdb/tafdb.h"

namespace mantle {

struct MantleOptions {
  TafDbOptions tafdb;
  IndexServiceOptions index;
  RetryOptions retry;
  // Client-wide retry/hedge token bucket shared by every op on this service
  // (this service is one "client" of the fabric). Disabled by default.
  RetryBudgetOptions retry_budget;
  // Total wall-clock budget per metadata operation (lookups, retries and all
  // nested RPCs share it); 0 = unlimited. Under an active fault plan a finite
  // budget guarantees every operation resolves - ok, retriable, kTimeout or
  // kUnavailable - instead of hanging on a dead or partitioned server.
  int64_t op_deadline_nanos = 0;
  std::string namespace_name = "ns";
  // Base of this namespace's inode-id space. The root gets `id_base + 1`;
  // every allocation stays above it. Namespaces sharing a TafDB must use
  // disjoint bases (e.g. tenant_index << 56).
  InodeId id_base = 0;
  // Attach an InfiniFS-style AM-Cache in front of the IndexNode (Fig. 20
  // study only; not part of Mantle's design).
  bool enable_am_cache = false;
};

class MantleService final : public MetadataService {
 public:
  // Owns a fresh TafDB fleet (the common single-namespace deployment).
  MantleService(Network* network, MantleOptions options);
  // Shares an existing TafDB across namespaces (paper §7: one TafDB per
  // cluster, one IndexNode per namespace).
  MantleService(Network* network, TafDb* shared_tafdb, MantleOptions options);
  ~MantleService() override;

  std::string name() const override { return "Mantle"; }

  // MetadataService entry points (source-compatible): each builds a default
  // OpContext (service-wide deadline, no trace) and delegates to the
  // explicit-context overload below.
  OpResult CreateObject(const std::string& path, uint64_t size) override;
  OpResult DeleteObject(const std::string& path) override;
  StatResult StatObject(const std::string& path) override;
  StatResult StatDir(const std::string& path) override;
  // Re-export the base out-param deprecation shims next to the overrides.
  using MetadataService::StatObject;
  using MetadataService::StatDir;
  OpResult Mkdir(const std::string& path) override;
  OpResult Rmdir(const std::string& path) override;
  OpResult RenameDir(const std::string& src_path, const std::string& dst_path) override;
  OpResult ReadDir(const std::string& path, std::vector<std::string>* names) override;
  OpResult SetDirPermission(const std::string& path, uint32_t permission) override;
  OpResult Lookup(const std::string& path) override;
  OpResult ListObjects(const std::string& dir_path, const std::string& start_after,
                       size_t max_entries, ListPage* out) override;

  // Explicit-context overloads: the caller owns the OpContext (deadline,
  // optional OpTrace, optional retry override) for this one op. The context
  // must outlive the call; a trace, when attached, collects the op's span
  // tree and must only be read after the op returns.
  OpResult CreateObject(OpContext& ctx, const std::string& path, uint64_t size);
  OpResult DeleteObject(OpContext& ctx, const std::string& path);
  StatResult StatObject(OpContext& ctx, const std::string& path);
  StatResult StatDir(OpContext& ctx, const std::string& path);
  OpResult Mkdir(OpContext& ctx, const std::string& path);
  OpResult Rmdir(OpContext& ctx, const std::string& path);
  OpResult RenameDir(OpContext& ctx, const std::string& src_path, const std::string& dst_path);
  OpResult ReadDir(OpContext& ctx, const std::string& path, std::vector<std::string>* names);
  OpResult SetDirPermission(OpContext& ctx, const std::string& path, uint32_t permission);
  OpResult Lookup(OpContext& ctx, const std::string& path);
  OpResult ListObjects(OpContext& ctx, const std::string& dir_path,
                       const std::string& start_after, size_t max_entries, ListPage* out);

  // Batched reads, Mantle fast path: ONE RPC to the IndexNode resolves every
  // path under a single ReadIndex fence, then ONE TafDB MultiGet (one RPC per
  // touched shard) reads the leaf rows. MultiLookup stops after the resolve.
  MultiOpResult MultiStat(std::span<const std::string> paths) override;
  MultiOpResult MultiLookup(std::span<const std::string> paths) override;
  MultiOpResult MultiStat(OpContext& ctx, std::span<const std::string> paths);
  MultiOpResult MultiLookup(OpContext& ctx, std::span<const std::string> paths);

  // The default context used by the compatibility entry points. When the
  // calling thread carries a ScopedTraceCapture (bench probes, the mdtest
  // driver's trace sampling), each op gets a fresh capture-owned OpTrace, so
  // untraced call sites gain tracing with no signature change.
  OpContext MakeOpContext() {
    OpContext ctx;
    ctx.deadline = Deadline::After(options_.op_deadline_nanos);
    ctx.retry_budget = &retry_budget_;
    if (obs::ScopedTraceCapture* capture = obs::ThreadTraceCapture()) {
      ctx.trace = &capture->NewTrace();
    }
    return ctx;
  }

  RetryBudget& retry_budget() { return retry_budget_; }

  Status BulkLoad(const BulkEntry& entry) override;
  Status BulkLoadMany(std::span<const BulkEntry> entries) override;

  // Publishes service-level gauges (compaction backlog, removal-list depth,
  // cache occupancy) into the metrics registry and returns the full registry
  // as JSON (see obs::Metrics::DumpJson for the schema).
  std::string DumpStats();

  // The slowest traces the flight recorder retained, as Chrome trace_event
  // JSON (load in chrome://tracing or Perfetto; per-trace critical-path
  // rollups ride along in "mantleTraceSummaries").
  std::string DumpSlowTraces(size_t max_traces = 16);

  TafDb* tafdb() { return tafdb_; }
  IndexService* index() { return index_.get(); }
  AmCache* am_cache() { return am_cache_.get(); }

  // --- consistency audit (fsck) ----------------------------------------------
  // Cross-checks the IndexNode's access metadata against TafDB: every indexed
  // directory must have a matching entry row and an attribute primary row,
  // and every directory row in this namespace's id space must be indexed.
  // Offline/diagnostic: reads structures directly, no RPC charges.
  struct ConsistencyReport {
    uint64_t dirs_checked = 0;
    uint64_t rows_scanned = 0;
    std::vector<std::string> missing_entry_row;  // indexed dir without a DB entry row
    std::vector<std::string> id_mismatch;        // entry row id differs from the index
    std::vector<std::string> missing_attr_row;   // directory without an attr primary
    std::vector<std::string> unindexed_dir_row;  // DB dir row absent from the index
    // Delta rows whose directory the compactor no longer tracks (a compactor
    // crash loses its in-memory pending set). Reported but excluded from
    // clean(): deltas are legitimately in flight during normal operation and
    // the pending set empties transiently mid-pass.
    std::vector<std::string> orphaned_delta;

    bool clean() const {
      return missing_entry_row.empty() && id_mismatch.empty() && missing_attr_row.empty() &&
             unindexed_dir_row.empty();
    }
  };
  ConsistencyReport Fsck();

  // Repair mode: re-runs the audit and fixes each divergence class in place.
  // The IndexNode (Raft-replicated) is authoritative for access metadata, so
  // entry-row damage heals from the index; unindexed TafDB dir rows (a crash
  // between the TafDB txn and the index propose) heal into the index.
  struct RepairOptions {
    bool restore_entry_rows = true;      // re-create missing entry rows from the index
    bool fix_id_mismatches = true;       // rewrite entry rows to the index's id
    bool restore_attr_rows = true;       // re-create attr primaries (child count recounted)
    bool index_unindexed_dirs = true;    // propose missing dirs into the index
    bool compact_orphaned_deltas = true; // re-pend and fold stranded delta rows
  };
  struct RepairReport {
    uint64_t entry_rows_restored = 0;
    uint64_t ids_corrected = 0;
    uint64_t attr_rows_restored = 0;
    uint64_t dirs_indexed = 0;
    uint64_t delta_dirs_compacted = 0;
    ConsistencyReport remaining;  // post-repair audit
  };
  RepairReport Fsck(const RepairOptions& options);

  // --- crash recovery ---------------------------------------------------------

  struct IndexRebuildReport {
    uint64_t dirs_loaded = 0;
    uint32_t replicas_rebuilt = 0;
  };

  // Crash-stops the entire IndexNode Raft group (total group loss - the one
  // failure replication cannot mask).
  void CrashIndexGroup() { index_->CrashGroup(); }

  // Cold-start rebuild from TafDB's durable rows: scans this namespace's
  // directory entry rows, orders parents before children, reloads every
  // replica and re-elects a leader. The namespace serves again on return.
  IndexRebuildReport RecoverIndexFromTafDb();

  // --- membership drills -------------------------------------------------------
  // (The unqualified RepairOptions here is the fsck struct above; the
  // supervisor's knobs are namespace-level mantle::RepairOptions.)

  // Crash-stops ONE IndexNode replica and marks its servers crashed, exactly
  // as an unplanned machine loss. Raft masks it; the repair supervisor (if
  // enabled) replaces it.
  void CrashIndexReplica(uint32_t id) { index_->CrashReplica(id); }
  // Starts autonomous replacement of dead IndexNode replicas.
  void EnableIndexAutoRepair(const mantle::RepairOptions& options = {}) {
    index_->EnableAutoRepair(options);
  }
  RepairSupervisor* index_repair() { return index_->repair(); }
  // Planned decommission of the IndexNode leader: transfer leadership, then
  // remove and crash-stop the old leader, with a bounded write stall.
  Status DecommissionIndexLeader() { return index_->DecommissionLeader(); }

  // --- placement drills --------------------------------------------------------
  // Mirror of the membership drills for the TafDB layer (src/placement/).

  // Starts the autonomous heat-aware rebalancer on this namespace's TafDB.
  void EnableShardAutoPlacement() { tafdb_->EnableAutoPlacement(); }
  void DisableShardAutoPlacement() { tafdb_->DisableAutoPlacement(); }
  // One live migration, synchronously (admin surgery / drills).
  Status MigrateTafDbShard(uint32_t shard_index, uint32_t target_server) {
    return tafdb_->placement().MigrateShard(shard_index, target_server);
  }
  PlacementSupervisor* shard_placement() { return &tafdb_->placement(); }

  Network* network() { return network_; }

 private:
  // Structured audit findings backing both Fsck overloads: the repair pass
  // needs (pid, name, id) tuples, not display labels.
  struct FsckFinding {
    InodeId pid = 0;
    std::string name;
    InodeId id = 0;  // index-side id for passes over the index, row id otherwise
    uint32_t permission = kPermAll;
  };
  struct FsckFindings {
    std::vector<FsckFinding> missing_entry;
    std::vector<FsckFinding> id_mismatch;
    std::vector<FsckFinding> missing_attr;
    std::vector<FsckFinding> unindexed;
    std::vector<InodeId> orphaned_delta_dirs;
  };
  ConsistencyReport FsckScan(FsckFindings& findings);
  InodeId AllocateId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }
  uint64_t NewUuid() { return next_uuid_.fetch_add(1, std::memory_order_relaxed) + 1; }

  // Resolves the parent of `path` locally on replica 0's IndexTable (bulk
  // loading only - no RPC, no latency).
  Result<InodeId> LocalResolveParent(const std::vector<std::string>& components) const;

  // Non-virtual BulkLoad body, so BulkLoadMany pays one virtual dispatch per
  // batch instead of one per entry.
  Status BulkLoadOne(const BulkEntry& entry);

  // LookupParent with the optional AM-Cache consulted first (Fig. 20).
  Result<IndexReplica::ResolveOutcome> LookupParentCached(
      const std::vector<std::string>& components, const OpContext* ctx);

  Network* network_;
  MantleOptions options_;
  RetryBudget retry_budget_{options_.retry_budget};
  std::unique_ptr<TafDb> owned_tafdb_;
  TafDb* tafdb_;
  std::unique_ptr<IndexService> index_;
  std::unique_ptr<AmCache> am_cache_;
  InodeId root_id_ = kRootId;
  std::atomic<InodeId> next_id_{kRootId};  // first allocation returns root + 1
  std::atomic<uint64_t> next_uuid_{0};
};

}  // namespace mantle

#endif  // SRC_CORE_MANTLE_SERVICE_H_
