// MetadataService: the system-agnostic operation interface.
//
// Mantle and all three baselines (Tectonic, InfiniFS, LocoFS) implement this
// interface, so workloads, tests, and benches drive every system identically.
// Operations return an OpResult carrying the paper's three-phase latency
// breakdown (lookup / loop detection / execution, Fig. 13 & 15), the RPC
// count, and the retry count.

#ifndef SRC_CORE_METADATA_SERVICE_H_
#define SRC_CORE_METADATA_SERVICE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/kv/meta_record.h"

namespace mantle {

struct OpBreakdown {
  int64_t lookup_nanos = 0;
  int64_t loop_detect_nanos = 0;
  int64_t execute_nanos = 0;
  int64_t total_nanos() const { return lookup_nanos + loop_detect_nanos + execute_nanos; }
};

struct OpResult {
  Status status;
  OpBreakdown breakdown;
  int64_t rpcs = 0;
  int retries = 0;

  bool ok() const { return status.ok(); }
};

struct StatInfo {
  InodeId id = 0;
  bool is_dir = false;
  uint64_t size = 0;
  int64_t child_count = 0;
  uint64_t mtime = 0;
  uint32_t permission = kPermAll;
};

class MetadataService {
 public:
  virtual ~MetadataService() = default;

  virtual std::string name() const = 0;

  // --- object operations ---------------------------------------------------

  virtual OpResult CreateObject(const std::string& path, uint64_t size) = 0;
  virtual OpResult DeleteObject(const std::string& path) = 0;
  virtual OpResult StatObject(const std::string& path, StatInfo* out = nullptr) = 0;

  // --- directory operations --------------------------------------------------

  virtual OpResult StatDir(const std::string& path, StatInfo* out = nullptr) = 0;
  virtual OpResult Mkdir(const std::string& path) = 0;
  virtual OpResult Rmdir(const std::string& path) = 0;
  virtual OpResult RenameDir(const std::string& src_path, const std::string& dst_path) = 0;
  virtual OpResult ReadDir(const std::string& path, std::vector<std::string>* names) = 0;
  virtual OpResult SetDirPermission(const std::string& path, uint32_t permission) = 0;

  // --- paged listing (the COSS LIST API shape) ----------------------------------

  struct ListPage {
    std::vector<std::string> names;  // name-ordered child entries
    bool truncated = false;          // more entries follow
    std::string next_start_after;    // continuation token (last returned name)
  };

  // Lists up to `max_entries` children of `dir_path` with names strictly
  // after `start_after`, in name order. The default implementation reads the
  // whole directory and slices - correct for every system; Mantle overrides
  // it with server-side paging.
  virtual OpResult ListObjects(const std::string& dir_path, const std::string& start_after,
                               size_t max_entries, ListPage* out) {
    std::vector<std::string> names;
    OpResult result = ReadDir(dir_path, &names);
    if (!result.ok() || out == nullptr) {
      return result;
    }
    std::sort(names.begin(), names.end());
    out->names.clear();
    out->truncated = false;
    for (const auto& name : names) {
      if (!start_after.empty() && name <= start_after) {
        continue;
      }
      if (max_entries != 0 && out->names.size() == max_entries) {
        out->truncated = true;
        break;
      }
      out->names.push_back(name);
    }
    out->truncated = out->truncated && !out->names.empty();
    out->next_start_after = out->names.empty() ? "" : out->names.back();
    return result;
  }

  // --- path resolution only (Fig. 17-19 microbenches) --------------------------

  // Resolves the parent directory of `path` (the first step of every
  // metadata operation).
  virtual OpResult Lookup(const std::string& path) = 0;

  // --- bulk population (pre-serving; bypasses RPC latency) ---------------------

  virtual Status BulkLoadDir(const std::string& path) = 0;
  virtual Status BulkLoadObject(const std::string& path, uint64_t size) = 0;
};

}  // namespace mantle

#endif  // SRC_CORE_METADATA_SERVICE_H_
