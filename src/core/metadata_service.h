// MetadataService: the system-agnostic operation interface.
//
// Mantle and all three baselines (Tectonic, InfiniFS, LocoFS) implement this
// interface, so workloads, tests, and benches drive every system identically.
// Operations return an OpResult carrying the paper's three-phase latency
// breakdown (lookup / loop detection / execution, Fig. 13 & 15), the RPC
// count, and the retry count.

#ifndef SRC_CORE_METADATA_SERVICE_H_
#define SRC_CORE_METADATA_SERVICE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/kv/meta_record.h"

namespace mantle {

struct OpBreakdown {
  int64_t lookup_nanos = 0;
  int64_t loop_detect_nanos = 0;
  int64_t execute_nanos = 0;
  int64_t total_nanos() const { return lookup_nanos + loop_detect_nanos + execute_nanos; }
};

// Which phase of an operation produced its (non-ok) status. Stable,
// machine-readable: callers switch on this instead of string-matching
// Status::message().
enum class OpPhase : uint8_t {
  kNone = 0,     // op succeeded, or failed before any phase ran (bad argument)
  kLookup,       // path resolution (index lookup / cache walk)
  kLoopDetect,   // rename loop detection + lock acquisition
  kExecute,      // the TafDB transaction / replicated index mutation
};

inline const char* OpPhaseName(OpPhase phase) {
  switch (phase) {
    case OpPhase::kLookup:
      return "lookup";
    case OpPhase::kLoopDetect:
      return "loop_detect";
    case OpPhase::kExecute:
      return "execute";
    case OpPhase::kNone:
      break;
  }
  return "none";
}

struct OpResult {
  Status status;
  OpBreakdown breakdown;
  int64_t rpcs = 0;
  int retries = 0;
  // Typed error payload, meaningful only when !status.ok(): the phase that
  // failed and the path component (lookup: the deepest prefix that failed to
  // resolve; execute: the leaf entry the transaction touched).
  OpPhase failed_phase = OpPhase::kNone;
  std::string failed_component;

  bool ok() const { return status.ok(); }

  // Tags a failure with its phase + component and returns `*this` so error
  // paths read `return result.FailAt(OpPhase::kLookup, path);`.
  OpResult& FailAt(OpPhase phase, std::string component) {
    failed_phase = phase;
    failed_component = std::move(component);
    return *this;
  }
};

// One entry of a bulk-population batch (pre-serving load; bypasses RPC
// latency). Directories must be created before their children.
struct BulkEntry {
  enum class Kind : uint8_t { kDir, kObject };
  Kind kind = Kind::kObject;
  std::string path;
  uint64_t size = 0;

  static BulkEntry Dir(std::string path) {
    BulkEntry entry;
    entry.kind = Kind::kDir;
    entry.path = std::move(path);
    return entry;
  }
  static BulkEntry Object(std::string path, uint64_t size = 0) {
    BulkEntry entry;
    entry.kind = Kind::kObject;
    entry.path = std::move(path);
    entry.size = size;
    return entry;
  }
};

struct StatInfo {
  InodeId id = 0;
  bool is_dir = false;
  uint64_t size = 0;
  int64_t child_count = 0;
  uint64_t mtime = 0;
  uint32_t permission = kPermAll;
};

// Value-carrying stat result: the OpResult (status, breakdown, rpcs) plus the
// attributes themselves. `info` is meaningful only when ok(). Deriving from
// OpResult keeps every existing `OpResult r = svc->StatObject(p)` call site
// compiling (the info slice drops) while new code reads `r.info` directly.
struct StatResult : OpResult {
  StatInfo info;
};

// Result of a batched read (MultiStat / MultiLookup): one StatResult per
// input path, in input order, plus the batch-level aggregates. Per-entry
// `rpcs`/`breakdown` are zero on fast paths that amortize round trips across
// the whole batch - the aggregate fields here are the meaningful ones.
struct MultiOpResult {
  std::vector<StatResult> results;  // results.size() == paths.size()
  OpBreakdown breakdown;            // aggregate across the batch
  int64_t rpcs = 0;                 // round trips the whole batch needed
  int retries = 0;

  bool all_ok() const {
    for (const StatResult& r : results) {
      if (!r.ok()) {
        return false;
      }
    }
    return true;
  }
  size_t ok_count() const {
    size_t n = 0;
    for (const StatResult& r : results) {
      n += r.ok() ? 1 : 0;
    }
    return n;
  }
};

class MetadataService {
 public:
  virtual ~MetadataService() = default;

  virtual std::string name() const = 0;

  // --- object operations ---------------------------------------------------

  virtual OpResult CreateObject(const std::string& path, uint64_t size) = 0;
  virtual OpResult DeleteObject(const std::string& path) = 0;
  virtual StatResult StatObject(const std::string& path) = 0;

  // Deprecation shim for the old out-param signature. Non-virtual, no default
  // argument (a default would make single-argument calls ambiguous);
  // implementations override the value-returning virtual above and re-export
  // this shim with `using MetadataService::StatObject;`.
  OpResult StatObject(const std::string& path, StatInfo* out) {
    StatResult result = StatObject(path);
    if (out != nullptr && result.ok()) {
      *out = result.info;
    }
    return std::move(static_cast<OpResult&>(result));
  }

  // --- directory operations --------------------------------------------------

  virtual StatResult StatDir(const std::string& path) = 0;

  // Deprecation shim, as for StatObject.
  OpResult StatDir(const std::string& path, StatInfo* out) {
    StatResult result = StatDir(path);
    if (out != nullptr && result.ok()) {
      *out = result.info;
    }
    return std::move(static_cast<OpResult&>(result));
  }
  virtual OpResult Mkdir(const std::string& path) = 0;
  virtual OpResult Rmdir(const std::string& path) = 0;
  virtual OpResult RenameDir(const std::string& src_path, const std::string& dst_path) = 0;
  virtual OpResult ReadDir(const std::string& path, std::vector<std::string>* names) = 0;
  virtual OpResult SetDirPermission(const std::string& path, uint32_t permission) = 0;

  // --- paged listing (the COSS LIST API shape) ----------------------------------

  struct ListPage {
    std::vector<std::string> names;  // name-ordered child entries
    bool truncated = false;          // more entries follow
    std::string next_start_after;    // continuation token (last returned name)
  };

  // Lists up to `max_entries` children of `dir_path` with names strictly
  // after `start_after`, in name order. The default implementation reads the
  // whole directory and slices - correct for every system; Mantle overrides
  // it with server-side paging.
  //
  // Contract (the COSS LIST shape, which the override must match): a page
  // holding exactly the last `max_entries` entries reports truncated=false -
  // `truncated` is "more entries follow", not "the page is full". A
  // continuation from the final entry yields an empty page, truncated=false,
  // empty next_start_after.
  virtual OpResult ListObjects(const std::string& dir_path, const std::string& start_after,
                               size_t max_entries, ListPage* out) {
    std::vector<std::string> names;
    OpResult result = ReadDir(dir_path, &names);
    if (!result.ok() || out == nullptr) {
      return result;
    }
    std::sort(names.begin(), names.end());
    auto first = start_after.empty()
                     ? names.begin()
                     : std::upper_bound(names.begin(), names.end(), start_after);
    const size_t available = static_cast<size_t>(names.end() - first);
    const size_t take = max_entries == 0 ? available : std::min(available, max_entries);
    out->names.assign(first, first + static_cast<ptrdiff_t>(take));
    out->truncated = max_entries != 0 && available > max_entries;
    out->next_start_after = out->names.empty() ? "" : out->names.back();
    return result;
  }

  // --- path resolution only (Fig. 17-19 microbenches) --------------------------

  // Resolves the parent directory of `path` (the first step of every
  // metadata operation).
  virtual OpResult Lookup(const std::string& path) = 0;

  // --- batched reads -----------------------------------------------------------
  //
  // Contract (which every override must preserve):
  //   * results.size() == paths.size(), in input order;
  //   * each entry's status/info is equivalent to the singular op on the same
  //     path against the same namespace state (per-entry rpcs/breakdown may
  //     be zero when the batch amortizes them);
  //   * the aggregate rpcs/breakdown cover the whole batch;
  //   * an empty batch returns an empty result and performs no RPCs.
  // The defaults loop the singular ops - correct for every system; fast paths
  // (Mantle's single-RPC batch resolve + sharded MultiGet, LocoFS's grouped
  // dirserver resolve) override them.

  virtual MultiOpResult MultiStat(std::span<const std::string> paths) {
    MultiOpResult batch;
    batch.results.reserve(paths.size());
    for (const std::string& path : paths) {
      batch.results.push_back(StatObject(path));
      AggregateInto(batch, batch.results.back());
    }
    return batch;
  }

  virtual MultiOpResult MultiLookup(std::span<const std::string> paths) {
    MultiOpResult batch;
    batch.results.reserve(paths.size());
    for (const std::string& path : paths) {
      StatResult entry;
      static_cast<OpResult&>(entry) = Lookup(path);
      batch.results.push_back(std::move(entry));
      AggregateInto(batch, batch.results.back());
    }
    return batch;
  }

  // --- bulk population (pre-serving; bypasses RPC latency) ---------------------

  // Loads one pre-existing entry without charging RPCs or latency.
  virtual Status BulkLoad(const BulkEntry& entry) = 0;

  // Batched population: one API call for a whole namespace slice. The default
  // loops BulkLoad; implementations may override to amortize per-entry
  // dispatch. Stops at the first failure.
  virtual Status BulkLoadMany(std::span<const BulkEntry> entries) {
    for (const BulkEntry& entry : entries) {
      Status status = BulkLoad(entry);
      if (!status.ok()) {
        return status;
      }
    }
    return Status::Ok();
  }

  // Convenience wrappers over BulkLoad (source compatibility for older call
  // sites; intentionally non-virtual).
  Status BulkLoadDir(const std::string& path) { return BulkLoad(BulkEntry::Dir(path)); }
  Status BulkLoadObject(const std::string& path, uint64_t size) {
    return BulkLoad(BulkEntry::Object(path, size));
  }

 protected:
  // Folds one entry's cost into the batch aggregates (looped defaults and
  // fallback arms of fast-path overrides).
  static void AggregateInto(MultiOpResult& batch, const OpResult& entry) {
    batch.breakdown.lookup_nanos += entry.breakdown.lookup_nanos;
    batch.breakdown.loop_detect_nanos += entry.breakdown.loop_detect_nanos;
    batch.breakdown.execute_nanos += entry.breakdown.execute_nanos;
    batch.rpcs += entry.rpcs;
    batch.retries += entry.retries;
  }
};

}  // namespace mantle

#endif  // SRC_CORE_METADATA_SERVICE_H_
