// Retry policy for transaction aborts and rename-lock conflicts.
//
// Proxies retry retriable failures (kAborted, kBusy) with capped exponential
// backoff plus jitter - the behaviour whose cost explodes under shared-
// directory contention in the DBtable architecture (paper §3.2). The loop is
// bounded twice: by `max_attempts` and by the calling operation's deadline
// (taken from the OpContext when supplied, else the ambient budget) - a
// retrier never sleeps past the operation's deadline, and an exhausted budget
// surfaces kTimeout instead of burning further attempts.

#ifndef SRC_CORE_RETRY_H_
#define SRC_CORE_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>

#include "src/admission/retry_budget.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/op_context.h"

namespace mantle {

struct RetryOptions {
  int max_attempts = 256;
  int64_t base_backoff_nanos = 50'000;   // 50 us
  int64_t max_backoff_nanos = 5'000'000; // 5 ms
};

// Seeds each thread's backoff RNG from its own identity. A shared constant
// seed would make every concurrent retrier draw identical "jitter" and back
// off in lockstep - re-colliding on every attempt (thundering herd).
inline uint64_t PerThreadJitterSeed() {
  uint64_t state = static_cast<uint64_t>(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  state ^= 0xfeedbeefULL;
  return SplitMix64(state);
}

// Runs `attempt()` until it returns a non-retriable status, attempts are
// exhausted, the operation's deadline runs out, or the client's retry budget
// (OpContext::retry_budget, when present) runs dry. `retries` (optional)
// receives the number of re-executions. `ctx` (optional) supplies the
// deadline, a per-op RetryOptions override, and the budget; without it the
// ambient thread-local budget bounds the loop and `options` is used as-is.
//
// Exhaustion is tagged: running out of attempts or budget returns
// kOverloaded (and bumps `retry.exhausted`), running out of deadline returns
// kTimeout - both distinguishable from a single raw failure, with the last
// raw status preserved in the message.
template <typename Fn>
Status RetryTransaction(Fn&& attempt, const RetryOptions& options, int* retries,
                        const OpContext* ctx = nullptr) {
  thread_local Rng rng{PerThreadJitterSeed()};
  static obs::Counter* exhausted_metric = obs::Metrics::Instance().GetCounter("retry.exhausted");
  const RetryOptions& policy =
      (ctx != nullptr && ctx->retry_override != nullptr) ? *ctx->retry_override : options;
  const Deadline deadline = OpContext::DeadlineOf(ctx);
  RetryBudget* budget = OpContext::BudgetOf(ctx);
  Status status;
  for (int attempt_index = 0; attempt_index < policy.max_attempts; ++attempt_index) {
    status = attempt();
    if (!status.IsRetriable()) {
      if (retries != nullptr) {
        *retries = attempt_index;
      }
      if (status.ok() && budget != nullptr) {
        budget->RecordSuccess();
      }
      return status;
    }
    if (deadline.Expired()) {
      if (retries != nullptr) {
        *retries = attempt_index;
      }
      return Status::Timeout("retry deadline exhausted; last: " + status.ToString());
    }
    if (budget != nullptr && !budget->TrySpendRetry()) {
      if (retries != nullptr) {
        *retries = attempt_index;
      }
      exhausted_metric->Add();
      return Status::Overloaded("retry budget exhausted; last: " + status.ToString());
    }
    const int shift = std::min(attempt_index, 6);
    const int64_t ceiling =
        std::min(policy.base_backoff_nanos << shift, policy.max_backoff_nanos);
    const int64_t backoff =
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(ceiling)) + 1);
    PreciseSleep(deadline.Clamp(backoff));
  }
  if (retries != nullptr) {
    *retries = policy.max_attempts;
  }
  exhausted_metric->Add();
  return Status::Overloaded("retry attempts exhausted (" + std::to_string(policy.max_attempts) +
                            "); last: " + status.ToString());
}

}  // namespace mantle

#endif  // SRC_CORE_RETRY_H_
