// Retry policy for transaction aborts and rename-lock conflicts.
//
// Proxies retry retriable failures (kAborted, kBusy) with capped exponential
// backoff plus jitter - the behaviour whose cost explodes under shared-
// directory contention in the DBtable architecture (paper §3.2).

#ifndef SRC_CORE_RETRY_H_
#define SRC_CORE_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace mantle {

struct RetryOptions {
  int max_attempts = 256;
  int64_t base_backoff_nanos = 50'000;   // 50 us
  int64_t max_backoff_nanos = 5'000'000; // 5 ms
};

// Runs `attempt()` until it returns a non-retriable status or attempts are
// exhausted. `retries` (optional) receives the number of re-executions.
template <typename Fn>
Status RetryTransaction(Fn&& attempt, const RetryOptions& options, int* retries) {
  thread_local Rng rng{0xfeedbeef};
  Status status;
  for (int attempt_index = 0; attempt_index < options.max_attempts; ++attempt_index) {
    status = attempt();
    if (!status.IsRetriable()) {
      if (retries != nullptr) {
        *retries = attempt_index;
      }
      return status;
    }
    const int shift = std::min(attempt_index, 6);
    const int64_t ceiling =
        std::min(options.base_backoff_nanos << shift, options.max_backoff_nanos);
    PreciseSleep(static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(ceiling)) + 1));
  }
  if (retries != nullptr) {
    *retries = options.max_attempts;
  }
  return status;
}

}  // namespace mantle

#endif  // SRC_CORE_RETRY_H_
