// Retry policy for transaction aborts and rename-lock conflicts.
//
// Proxies retry retriable failures (kAborted, kBusy) with capped exponential
// backoff plus jitter - the behaviour whose cost explodes under shared-
// directory contention in the DBtable architecture (paper §3.2). The loop is
// bounded twice: by `max_attempts` and by the calling operation's
// DeadlineBudget - a retrier never sleeps past the operation's deadline, and
// an exhausted budget surfaces kTimeout instead of burning further attempts.

#ifndef SRC_CORE_RETRY_H_
#define SRC_CORE_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>

#include "src/common/clock.h"
#include "src/common/deadline.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace mantle {

struct RetryOptions {
  int max_attempts = 256;
  int64_t base_backoff_nanos = 50'000;   // 50 us
  int64_t max_backoff_nanos = 5'000'000; // 5 ms
};

// Seeds each thread's backoff RNG from its own identity. A shared constant
// seed would make every concurrent retrier draw identical "jitter" and back
// off in lockstep - re-colliding on every attempt (thundering herd).
inline uint64_t PerThreadJitterSeed() {
  uint64_t state = static_cast<uint64_t>(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  state ^= 0xfeedbeefULL;
  return SplitMix64(state);
}

// Runs `attempt()` until it returns a non-retriable status, attempts are
// exhausted, or the operation's deadline budget runs out. `retries`
// (optional) receives the number of re-executions.
template <typename Fn>
Status RetryTransaction(Fn&& attempt, const RetryOptions& options, int* retries) {
  thread_local Rng rng{PerThreadJitterSeed()};
  Status status;
  for (int attempt_index = 0; attempt_index < options.max_attempts; ++attempt_index) {
    status = attempt();
    if (!status.IsRetriable()) {
      if (retries != nullptr) {
        *retries = attempt_index;
      }
      return status;
    }
    if (DeadlineBudget::Expired()) {
      if (retries != nullptr) {
        *retries = attempt_index;
      }
      return Status::Timeout("retry budget exhausted; last: " + status.ToString());
    }
    const int shift = std::min(attempt_index, 6);
    const int64_t ceiling =
        std::min(options.base_backoff_nanos << shift, options.max_backoff_nanos);
    const int64_t backoff =
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(ceiling)) + 1);
    PreciseSleep(DeadlineBudget::Clamp(backoff));
  }
  if (retries != nullptr) {
    *retries = options.max_attempts;
  }
  return status;
}

}  // namespace mantle

#endif  // SRC_CORE_RETRY_H_
