#include "src/index/command.h"

#include <cstring>
#include <vector>

namespace mantle {

namespace {

void PutU64(std::string& out, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  out.append(buf, 8);
}

void PutU32(std::string& out, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  out.append(buf, 4);
}

void PutString(std::string& out, const std::string& value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out.append(value);
}

bool GetU64(const std::string& in, size_t& pos, uint64_t& value) {
  if (pos + 8 > in.size()) {
    return false;
  }
  std::memcpy(&value, in.data() + pos, 8);
  pos += 8;
  return true;
}

bool GetU32(const std::string& in, size_t& pos, uint32_t& value) {
  if (pos + 4 > in.size()) {
    return false;
  }
  std::memcpy(&value, in.data() + pos, 4);
  pos += 4;
  return true;
}

bool GetString(const std::string& in, size_t& pos, std::string& value) {
  uint32_t length = 0;
  if (!GetU32(in, pos, length) || pos + length > in.size()) {
    return false;
  }
  value.assign(in.data() + pos, length);
  pos += length;
  return true;
}

}  // namespace

std::string EncodeIndexCommand(const IndexCommand& command) {
  std::string out;
  out.reserve(64 + command.name.size() + command.dst_name.size() + command.inval_path.size());
  out.push_back(static_cast<char>(command.type));
  PutU64(out, command.pid);
  PutString(out, command.name);
  PutU64(out, command.id);
  PutU32(out, command.permission);
  PutU64(out, command.dst_pid);
  PutString(out, command.dst_name);
  PutU64(out, command.uuid);
  PutString(out, command.inval_path);
  return out;
}

Result<IndexCommand> DecodeIndexCommand(const std::string& payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("empty command");
  }
  IndexCommand command;
  command.type = static_cast<IndexCommandType>(payload[0]);
  size_t pos = 1;
  uint64_t u64 = 0;
  uint32_t u32 = 0;
  if (!GetU64(payload, pos, u64)) {
    return Status::InvalidArgument("truncated command");
  }
  command.pid = u64;
  if (!GetString(payload, pos, command.name)) {
    return Status::InvalidArgument("truncated command");
  }
  if (!GetU64(payload, pos, u64)) {
    return Status::InvalidArgument("truncated command");
  }
  command.id = u64;
  if (!GetU32(payload, pos, u32)) {
    return Status::InvalidArgument("truncated command");
  }
  command.permission = u32;
  if (!GetU64(payload, pos, u64)) {
    return Status::InvalidArgument("truncated command");
  }
  command.dst_pid = u64;
  if (!GetString(payload, pos, command.dst_name)) {
    return Status::InvalidArgument("truncated command");
  }
  if (!GetU64(payload, pos, u64)) {
    return Status::InvalidArgument("truncated command");
  }
  command.uuid = u64;
  if (!GetString(payload, pos, command.inval_path)) {
    return Status::InvalidArgument("truncated command");
  }
  return command;
}

std::string EncodeIndexSnapshot(const std::vector<SnapshotEntry>& entries) {
  std::string out;
  out.reserve(24 * entries.size() + 8);
  PutU64(out, entries.size());
  for (const auto& entry : entries) {
    PutU64(out, entry.pid);
    PutString(out, entry.name);
    PutU64(out, entry.id);
    PutU32(out, entry.permission);
  }
  return out;
}

Result<std::vector<SnapshotEntry>> DecodeIndexSnapshot(const std::string& payload) {
  size_t pos = 0;
  uint64_t count = 0;
  if (!GetU64(payload, pos, count)) {
    return Status::InvalidArgument("truncated snapshot header");
  }
  std::vector<SnapshotEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SnapshotEntry entry;
    uint64_t u64 = 0;
    uint32_t u32 = 0;
    if (!GetU64(payload, pos, u64)) {
      return Status::InvalidArgument("truncated snapshot entry");
    }
    entry.pid = u64;
    if (!GetString(payload, pos, entry.name)) {
      return Status::InvalidArgument("truncated snapshot entry");
    }
    if (!GetU64(payload, pos, u64)) {
      return Status::InvalidArgument("truncated snapshot entry");
    }
    entry.id = u64;
    if (!GetU32(payload, pos, u32)) {
      return Status::InvalidArgument("truncated snapshot entry");
    }
    entry.permission = u32;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string EncodeApplyStatus(const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  out.append(status.message());
  return out;
}

Status DecodeApplyStatus(const std::string& payload) {
  if (payload.empty()) {
    return Status::Internal("empty apply result");
  }
  return Status(static_cast<StatusCode>(payload[0]), payload.substr(1));
}

}  // namespace mantle
