// Serialized commands replicated through the IndexNode Raft group.
//
// Mutations and their cache-invalidation paths travel together in one log
// entry (paper §5.1.3: "operations requiring cache invalidation append the
// full paths of affected directories to the Raft logs"), so every replica -
// leader, follower, learner - invalidates its local TopDirPathCache at apply
// time.

#ifndef SRC_INDEX_COMMAND_H_
#define SRC_INDEX_COMMAND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/kv/meta_record.h"

namespace mantle {

enum class IndexCommandType : uint8_t {
  kAddDir = 1,         // insert (pid, name) -> (id, permission)
  kRemoveDir = 2,      // remove (pid, name); inval_path purges the exact prefix
  kRenameDir = 3,      // move (pid, name) -> (dst_pid, dst_name); inval_path = old subtree
  kSetPermission = 4,  // update permission; inval_path = affected subtree
};

struct IndexCommand {
  IndexCommandType type = IndexCommandType::kAddDir;
  InodeId pid = 0;
  std::string name;
  InodeId id = 0;
  uint32_t permission = kPermAll;
  InodeId dst_pid = 0;
  std::string dst_name;
  uint64_t uuid = 0;  // rename-lock identity for release at apply
  std::string inval_path;
};

std::string EncodeIndexCommand(const IndexCommand& command);
Result<IndexCommand> DecodeIndexCommand(const std::string& payload);

// Apply results travel back to the proposer as strings; encode a Status.
std::string EncodeApplyStatus(const Status& status);
Status DecodeApplyStatus(const std::string& payload);

// Snapshot payloads: a length-prefixed sequence of directory entries.
struct SnapshotEntry {
  InodeId pid = 0;
  std::string name;
  InodeId id = 0;
  uint32_t permission = kPermAll;
};
std::string EncodeIndexSnapshot(const std::vector<SnapshotEntry>& entries);
Result<std::vector<SnapshotEntry>> DecodeIndexSnapshot(const std::string& payload);

}  // namespace mantle

#endif  // SRC_INDEX_COMMAND_H_
