#include "src/index/index_replica.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/path.h"

namespace mantle {

IndexReplica::IndexReplica(Network* network, IndexNodeOptions options)
    : network_(network), options_(options), table_(options.root_id),
      cache_(options.cache_max_entries) {
  invalidator_ = std::make_unique<Invalidator>(&removal_list_, &prefix_tree_, &cache_,
                                               options_.invalidator_interval_nanos,
                                               options_.start_invalidator);
}

IndexReplica::~IndexReplica() = default;

Result<IndexReplica::ResolveOutcome> IndexReplica::ResolveDir(
    const std::vector<std::string>& components) {
  return ResolveInternal(components, components.size(), components.size());
}

Result<IndexReplica::ResolveOutcome> IndexReplica::ResolveParent(
    const std::vector<std::string>& components) {
  if (components.empty()) {
    return Status::InvalidArgument("path has no parent");
  }
  return ResolveInternal(components, components.size() - 1, components.size());
}

Result<IndexReplica::ResolveOutcome> IndexReplica::ResolveInternal(
    const std::vector<std::string>& components, size_t resolve_levels, size_t full_depth) {
  int probes = 0;
  bool cache_hit = false;
  const std::string path = JoinPath(components);

  // Step 1 (Fig. 7): consult RemovalList. Non-empty entries that prefix this
  // path force a cache bypass so in-flight renames can't serve stale hits.
  bool bypass_cache = !options_.enable_path_cache;
  if (!bypass_cache && !removal_list_.Empty() && removal_list_.ContainsPrefixOf(path)) {
    bypass_cache = true;
  }
  const uint64_t version_before = removal_list_.version();

  // The cached prefix keeps `truncate_k` levels of distance from the leaf.
  size_t prefix_len = 0;
  if (!bypass_cache && full_depth > static_cast<size_t>(options_.truncate_k)) {
    prefix_len = full_depth - static_cast<size_t>(options_.truncate_k);
  }
  prefix_len = std::min(prefix_len, resolve_levels);

  InodeId current = options_.root_id;
  uint32_t mask = kPermAll;
  size_t start_level = 0;
  std::string prefix;
  if (prefix_len > 0) {
    prefix = PathPrefix(components, prefix_len);
    ++probes;  // hash probe into TopDirPathCache
    if (auto hit = cache_.Lookup(prefix)) {
      current = hit->dir_id;
      mask &= hit->permission_mask;
      start_level = prefix_len;
      cache_hit = true;
    }
  }

  // Step 3: level-by-level walk of the remaining components in IndexTable.
  InodeId prefix_id = options_.root_id;
  uint32_t prefix_mask = kPermAll;
  InodeId parent = options_.root_id;
  for (size_t level = start_level; level < resolve_levels; ++level) {
    parent = current;
    auto entry = table_.Lookup(current, components[level]);
    ++probes;
    if (!entry.has_value()) {
      network_->ChargeMemIndexAccess(probes);
      return Status::NotFound(PathPrefix(components, level + 1));
    }
    mask &= entry->permission;
    if ((entry->permission & kPermTraverse) == 0) {
      network_->ChargeMemIndexAccess(probes);
      return Status::PermissionDenied(PathPrefix(components, level + 1));
    }
    current = entry->id;
    if (level + 1 == prefix_len) {
      prefix_id = current;
      prefix_mask = mask;
    }
  }

  // Cache fill: only when the prefix was walked from the table and
  // RemovalList saw no concurrent modification (timestamp validation).
  if (!bypass_cache && !cache_hit && prefix_len > 0 && start_level < prefix_len) {
    if (removal_list_.version() == version_before) {
      if (cache_.TryInsert(prefix, PathCacheEntry{prefix_id, prefix_mask})) {
        prefix_tree_.Insert(prefix);
      }
    }
  }

  network_->ChargeMemIndexAccess(probes);
  return ResolveOutcome{current, parent, mask, probes, cache_hit};
}

std::string IndexReplica::Apply(uint64_t index, const std::string& payload) {
  auto decoded = DecodeIndexCommand(payload);
  if (!decoded.ok()) {
    return EncodeApplyStatus(decoded.status());
  }
  const IndexCommand& command = *decoded;
  Status status;
  switch (command.type) {
    case IndexCommandType::kAddDir:
      status = ApplyAddDir(command);
      break;
    case IndexCommandType::kRemoveDir:
      status = ApplyRemoveDir(command);
      break;
    case IndexCommandType::kRenameDir:
      status = ApplyRenameDir(command);
      break;
    case IndexCommandType::kSetPermission:
      status = ApplySetPermission(command);
      break;
    default:
      status = Status::InvalidArgument("unknown index command");
      break;
  }
  return EncodeApplyStatus(status);
}

std::string IndexReplica::Snapshot() {
  std::vector<SnapshotEntry> entries;
  for (const auto& exported : table_.Export()) {
    entries.push_back(SnapshotEntry{exported.pid, exported.name, exported.id,
                                    exported.permission});
  }
  std::string encoded = EncodeIndexSnapshot(entries);
  // An empty table still yields a non-empty header, keeping the machine
  // snapshottable before any directory exists.
  return encoded;
}

void IndexReplica::Restore(const std::string& snapshot) {
  auto decoded = DecodeIndexSnapshot(snapshot);
  if (!decoded.ok()) {
    MANTLE_WLOG << "snapshot restore failed: " << decoded.status();
    return;
  }
  table_.Reset();
  // Insert parents before children: entries whose pid is not yet known are
  // deferred until their parent lands (ids are only resolvable in order).
  std::vector<SnapshotEntry> pending(decoded->begin(), decoded->end());
  size_t last_size = pending.size() + 1;
  while (!pending.empty() && pending.size() < last_size) {
    last_size = pending.size();
    std::vector<SnapshotEntry> deferred;
    for (auto& entry : pending) {
      if (!table_.Insert(entry.pid, entry.name, entry.id, entry.permission).ok()) {
        deferred.push_back(std::move(entry));
      }
    }
    pending = std::move(deferred);
  }
  if (!pending.empty()) {
    MANTLE_WLOG << "snapshot restore left " << pending.size() << " orphan entries";
  }
  // Cached resolutions predate the restored state: drop them wholesale.
  for (const std::string& prefix : prefix_tree_.RemoveSubtree("/")) {
    cache_.Erase(prefix);
  }
}

Status IndexReplica::ApplyAddDir(const IndexCommand& command) {
  return table_.Insert(command.pid, command.name, command.id, command.permission);
}

Status IndexReplica::ApplyRemoveDir(const IndexCommand& command) {
  Status status = table_.Remove(command.pid, command.name);
  // rmdir needs no RemovalList round trip (paper §5.1.2): an empty directory
  // has no cached descendants. We still drop the exact prefix so a future
  // same-name mkdir can't inherit a stale id mapping.
  if (!command.inval_path.empty()) {
    cache_.Erase(command.inval_path);
    prefix_tree_.Remove(command.inval_path);
  }
  return status;
}

Status IndexReplica::ApplyRenameDir(const IndexCommand& command) {
  Status status =
      table_.Rename(command.pid, command.name, command.dst_pid, command.dst_name);
  bool leader_initiated = false;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_renames_.find(command.uuid);
    if (it != pending_renames_.end()) {
      // This replica ran RenamePrepare: its RemovalList already carries the
      // entry; completing it lets the Invalidator retire it after the purge.
      removal_list_.MarkDone(it->second);
      pending_renames_.erase(it);
      leader_initiated = true;
    }
  }
  if (!leader_initiated && !command.inval_path.empty()) {
    // Followers/learners learn the invalidation from the log itself.
    QueueInvalidation(command.inval_path);
  }
  return status;
}

Status IndexReplica::ApplySetPermission(const IndexCommand& command) {
  Status status = table_.SetPermission(command.pid, command.name, command.permission);
  if (!command.inval_path.empty()) {
    QueueInvalidation(command.inval_path);
  }
  return status;
}

void IndexReplica::QueueInvalidation(const std::string& path) {
  RemovalList::Token token = removal_list_.Insert(path);
  removal_list_.MarkDone(token);
}

Result<IndexReplica::RenamePrepared> IndexReplica::RenamePrepare(
    const std::vector<std::string>& src_components,
    const std::vector<std::string>& dst_parent_components, const std::string& dst_name,
    uint64_t uuid) {
  if (src_components.empty()) {
    return Status::InvalidArgument("cannot rename the root");
  }
  if (uuid == 0 || dst_name.empty()) {
    return Status::InvalidArgument("rename requires a nonzero uuid and a destination name");
  }
  // Resolve the source's parent, then the source itself.
  auto src_parent = ResolveParent(src_components);
  if (!src_parent.ok()) {
    return src_parent.status();
  }
  const InodeId src_pid = src_parent->dir_id;
  auto src_entry = table_.Lookup(src_pid, src_components.back());
  network_->ChargeMemIndexAccess(1);
  if (!src_entry.has_value()) {
    return Status::NotFound(JoinPath(src_components));
  }
  const InodeId src_id = src_entry->id;

  auto dst_parent = ResolveDir(dst_parent_components);
  if (!dst_parent.ok()) {
    return dst_parent.status();
  }
  const InodeId dst_pid = dst_parent->dir_id;
  if (table_.Lookup(dst_pid, dst_name).has_value()) {
    return Status::AlreadyExists(dst_name);
  }

  // Step 4 (Fig. 9): shield the subtree from stale cache hits.
  std::string src_path = JoinPath(src_components);
  RemovalList::Token token = removal_list_.Insert(src_path);

  // Step 5: lock the source via its lock bit. Same-uuid reacquisition is the
  // proxy-failover path (§5.3).
  if (!table_.TryLockDir(src_id, uuid)) {
    removal_list_.MarkDone(token);
    return Status::Busy("rename lock held on " + src_path);
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_renames_[uuid] = token;
  }

  auto release = [this, src_id, uuid, token]() {
    table_.UnlockDir(src_id, uuid);
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_renames_.find(uuid);
    if (it != pending_renames_.end()) {
      removal_list_.MarkDone(it->second);
      pending_renames_.erase(it);
    }
  };

  // Loop detection + lock-bit scan, validated against the table's mutation
  // version. The two reads are individually consistent but not atomic as a
  // pair: a rename that commits (and releases its lock bit) between them can
  // restructure the tree after our loop check passed yet before our scan saw
  // its lock - the TOCTOU that once let two opposing renames both commit and
  // form a cycle. An unchanged version across the whole section proves no
  // apply-thread mutation interleaved, so the pair is as-if atomic.
  constexpr int kMaxValidationRetries = 16;
  for (int attempt = 0;; ++attempt) {
    const uint64_t version_before = table_.mutation_version();

    // The destination parent must not live under the source.
    if (table_.IsSelfOrAncestor(src_id, dst_pid)) {
      release();
      return Status::LoopDetected(JoinPath(dst_parent_components) + " is under " + src_path);
    }

    // Step 6: examine lock bits from the least common ancestor of src and dst
    // down to the destination. A foreign lock there means a concurrent rename
    // could invalidate our loop check - abort and retry.
    const auto src_chain = table_.AncestorChain(src_id);
    std::unordered_set<InodeId> src_ancestors(src_chain.begin(), src_chain.end());
    const auto dst_chain = table_.AncestorChain(dst_pid);
    // Ancestor hops are parent-pointer dereferences, far cheaper than the
    // hashed IndexTable probes of resolution: charge them at quarter weight.
    network_->ChargeService(static_cast<int64_t>(src_chain.size() + dst_chain.size()) *
                            network_->options().mem_index_access_nanos / 4);
    for (InodeId ancestor : dst_chain) {
      if (src_ancestors.contains(ancestor)) {
        break;  // reached the LCA; locks above it cannot move dst relative to src
      }
      const uint64_t owner = table_.LockOwner(ancestor);
      if (owner != 0 && owner != uuid) {
        release();
        return Status::Busy("conflicting rename on ancestor of destination");
      }
    }

    if (table_.mutation_version() == version_before) {
      break;
    }
    if (attempt >= kMaxValidationRetries) {
      // Pathological mutation churn; bail out and let the proxy retry.
      release();
      return Status::Busy("index mutated throughout rename validation");
    }
  }

  return RenamePrepared{src_pid, src_id, dst_pid, std::move(src_path)};
}

void IndexReplica::RenameAbort(InodeId src_id, uint64_t uuid) {
  table_.UnlockDir(src_id, uuid);
  std::lock_guard<std::mutex> lock(pending_mu_);
  auto it = pending_renames_.find(uuid);
  if (it != pending_renames_.end()) {
    removal_list_.MarkDone(it->second);
    pending_renames_.erase(it);
  }
}

void IndexReplica::LoadDir(InodeId pid, const std::string& name, InodeId id,
                           uint32_t permission) {
  Status status = table_.Insert(pid, name, id, permission);
  if (!status.ok()) {
    MANTLE_WLOG << "LoadDir failed for " << name << ": " << status;
  }
}

void IndexReplica::ResetForRebuild() {
  {
    // In-flight renames died with the group: their lock bits vanish with the
    // table, and marking the RemovalList entries done lets the Invalidator
    // retire them instead of pinning removal-list versions forever.
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto& [uuid, token] : pending_renames_) {
      removal_list_.MarkDone(token);
    }
    pending_renames_.clear();
  }
  table_.Reset();
  // Cached resolutions predate the rebuilt state: drop them wholesale.
  for (const std::string& prefix : prefix_tree_.RemoveSubtree("/")) {
    cache_.Erase(prefix);
  }
}

}  // namespace mantle
