// IndexReplica: one replica of the per-namespace IndexNode.
//
// Combines the paper's Fig. 6 data structures - IndexTable, TopDirPathCache,
// PrefixTree, RemovalList - with the Invalidator thread and the Raft state
// machine that keeps every replica's structures identical. The leader replica
// additionally coordinates cross-directory renames (lock bits + loop
// detection, §5.2.2).

#ifndef SRC_INDEX_INDEX_REPLICA_H_
#define SRC_INDEX_INDEX_REPLICA_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/index/command.h"
#include "src/index/index_table.h"
#include "src/index/invalidator.h"
#include "src/index/prefix_tree.h"
#include "src/index/removal_list.h"
#include "src/index/top_dir_path_cache.h"
#include "src/net/network.h"
#include "src/raft/state_machine.h"

namespace mantle {

struct IndexNodeOptions {
  // Inode id of this namespace's root (namespaces sharing a TafDB use
  // disjoint id spaces, paper §7).
  InodeId root_id = kRootId;
  // Levels truncated from the leaf before consulting TopDirPathCache; the
  // paper settles on k = 3 (Fig. 18).
  int truncate_k = 3;
  bool enable_path_cache = true;
  size_t cache_max_entries = 0;  // 0 = unlimited
  int64_t invalidator_interval_nanos = 1'000'000;  // 1 ms
  bool start_invalidator = true;
};

class IndexReplica final : public StateMachine {
 public:
  IndexReplica(Network* network, IndexNodeOptions options);
  ~IndexReplica() override;

  // --- Raft state machine ------------------------------------------------------
  std::string Apply(uint64_t index, const std::string& command) override;
  std::string Snapshot() override;
  void Restore(const std::string& snapshot) override;

  // --- path resolution (runs on the replica's server executor) ----------------

  struct ResolveOutcome {
    InodeId dir_id = kRootId;      // directory the requested levels resolve to
    InodeId parent_id = kRootId;   // directory one level above dir_id (valid
                                   // whenever at least one level was walked)
    uint32_t perm_mask = kPermAll; // AND of permissions along the path
    int table_probes = 0;          // IndexTable levels walked
    bool cache_hit = false;
  };

  // Resolves all components as directories.
  Result<ResolveOutcome> ResolveDir(const std::vector<std::string>& components);
  // Resolves all but the final component (the leaf may be an object, which
  // lives only in TafDB); returns the parent directory.
  Result<ResolveOutcome> ResolveParent(const std::vector<std::string>& components);

  // --- rename coordination (leader replica; single RPC, paper Fig. 9) ---------

  struct RenamePrepared {
    InodeId src_pid = 0;
    InodeId src_id = 0;
    InodeId dst_pid = 0;
    std::string src_path;  // full source path (RemovalList entry)
  };
  // Resolves both paths, registers the source in RemovalList, takes the
  // rename lock bit, and runs loop detection - all leader-local.
  Result<RenamePrepared> RenamePrepare(const std::vector<std::string>& src_components,
                                       const std::vector<std::string>& dst_parent_components,
                                       const std::string& dst_name, uint64_t uuid);
  // Abandons a prepared rename (txn aborted): releases the lock and lets the
  // Invalidator retire the RemovalList entry.
  void RenameAbort(InodeId src_id, uint64_t uuid);

  // --- bulk loading (pre-serving; applied identically to every replica) -------
  void LoadDir(InodeId pid, const std::string& name, InodeId id, uint32_t permission);

  // Cold-start rebuild: clears every in-memory structure (IndexTable, path
  // cache, prefix tree, in-flight rename registrations) back to the bare
  // root. The caller re-populates via LoadDir from a TafDB scan before the
  // replica rejoins serving. Only valid while the owning Raft node is down.
  void ResetForRebuild();

  // --- introspection ------------------------------------------------------------
  IndexTable& table() { return table_; }
  TopDirPathCache& cache() { return cache_; }
  RemovalList& removal_list() { return removal_list_; }
  PrefixTree& prefix_tree() { return prefix_tree_; }
  Invalidator& invalidator() { return *invalidator_; }
  const IndexNodeOptions& options() const { return options_; }

 private:
  Result<ResolveOutcome> ResolveInternal(const std::vector<std::string>& components,
                                         size_t resolve_levels, size_t full_depth);

  Status ApplyAddDir(const IndexCommand& command);
  Status ApplyRemoveDir(const IndexCommand& command);
  Status ApplyRenameDir(const IndexCommand& command);
  Status ApplySetPermission(const IndexCommand& command);

  // Queues `path`'s subtree for invalidation; entry is already "done" because
  // the mutation has committed by apply time.
  void QueueInvalidation(const std::string& path);

  Network* network_;
  IndexNodeOptions options_;
  IndexTable table_;
  TopDirPathCache cache_;
  PrefixTree prefix_tree_;
  RemovalList removal_list_;
  std::unique_ptr<Invalidator> invalidator_;

  // Leader-side in-flight renames: uuid -> RemovalList token, so the apply
  // path can mark the right entry done.
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, RemovalList::Token> pending_renames_;
};

}  // namespace mantle

#endif  // SRC_INDEX_INDEX_REPLICA_H_
