#include "src/index/index_service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "src/admission/retry_budget.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mantle {

IndexService::IndexService(Network* network, const std::string& name, IndexServiceOptions options)
    : network_(network), name_(name), options_(options) {
  group_ = std::make_unique<RaftGroup>(
      network_, name, options_.num_voters, options_.num_learners,
      [this](uint32_t id) -> std::unique_ptr<StateMachine> {
        auto replica = std::make_unique<IndexReplica>(network_, options_.node);
        // Called both at construction and at runtime (AddLearnerReplica / the
        // repair supervisor growing the group), so the table must stretch.
        std::lock_guard<std::mutex> lock(replicas_mu_);
        if (id >= replicas_.size()) {
          replicas_.resize(id + 1, nullptr);
        }
        replicas_[id] = replica.get();
        return replica;
      },
      options_.raft);
}

RaftNode* IndexService::PickReadReplica() {
  RaftNode* leader = group_->WaitForLeader();
  if (!options_.follower_read) {
    return leader;
  }
  // Leader-first: only offload once the leader's executor is busy - the same
  // ServerExecutor::Busy predicate admission control rejects on, so "offload
  // to a follower" and "start shedding" describe one load level. A zero
  // threshold means no leader preference at all (always busy).
  if (leader != nullptr &&
      !leader->server()->Busy(static_cast<int>(options_.offload_queue_threshold))) {
    return leader;
  }
  static obs::Counter* offloaded = obs::Metrics::Instance().GetCounter("index.read.offload");
  offloaded->Add();
  // Only current members serve reads: a removed-but-still-running corpse would
  // never pass its read fence (the leader stopped replicating to it), so
  // skipping it here saves the doomed RPC.
  const RaftConfig config = leader != nullptr ? leader->config() : group_->CommittedConfig();
  const uint32_t total = group_->num_nodes();
  for (uint32_t attempt = 0; attempt < total; ++attempt) {
    const uint32_t id =
        static_cast<uint32_t>(read_rr_.fetch_add(1, std::memory_order_relaxed) % total);
    RaftNode* node = group_->node(id);
    if (node != nullptr && !node->IsDown() && config.IsMember(id)) {
      return node;
    }
  }
  return leader;
}

RaftNode* IndexService::PickHedgeReplica(const RaftNode* primary) {
  const RaftConfig config = group_->CommittedConfig();
  const uint32_t total = group_->num_nodes();
  for (uint32_t attempt = 0; attempt < total; ++attempt) {
    const uint32_t id =
        static_cast<uint32_t>(read_rr_.fetch_add(1, std::memory_order_relaxed) % total);
    RaftNode* node = group_->node(id);
    if (node != nullptr && node != primary && !node->IsDown() && config.IsMember(id)) {
      return node;
    }
  }
  return nullptr;
}

Result<IndexReplica::ResolveOutcome> IndexService::ResolveOn(
    RaftNode* node, const std::shared_ptr<const std::vector<std::string>>& components,
    bool parent_only, const StartedFlag& started) {
  IndexReplica* replica = this->replica(node->id());
  // Deadline-aware call: the handler may be abandoned on timeout, so it owns
  // its inputs (shared_ptr) instead of borrowing the caller's stack.
  return node->server()->Call(
      [node, replica, components, parent_only,
       started]() -> Result<IndexReplica::ResolveOutcome> {
        if (started != nullptr) {
          // Close the coalescer's join window BEFORE taking the fence: every
          // joiner attached strictly earlier than the fence point, so the
          // shared result is at least as fresh as any joiner's own fence.
          started->store(true, std::memory_order_release);
        }
        if (node->role() != RaftRole::kLeader) {
          // Follower read: fence on the leader's commit index so the local
          // state is at least as fresh as any write acknowledged before this
          // lookup.
          auto fence = node->FollowerReadFence();
          if (!fence.ok()) {
            return fence.status();
          }
        }
        return parent_only ? replica->ResolveParent(*components)
                           : replica->ResolveDir(*components);
      },
      [](const Status& fault) -> Result<IndexReplica::ResolveOutcome> { return fault; });
}

std::future<Result<IndexReplica::ResolveOutcome>> IndexService::IssueResolveAsync(
    RaftNode* node, const std::shared_ptr<const std::vector<std::string>>& components,
    bool parent_only, const StartedFlag& started, bool duplicate) {
  IndexReplica* replica = this->replica(node->id());
  auto handler = [node, replica, components, parent_only,
                  started]() -> Result<IndexReplica::ResolveOutcome> {
    if (started != nullptr) {
      started->store(true, std::memory_order_release);
    }
    if (node->role() != RaftRole::kLeader) {
      auto fence = node->FollowerReadFence();
      if (!fence.ok()) {
        return fence.status();
      }
    }
    return parent_only ? replica->ResolveParent(*components)
                       : replica->ResolveDir(*components);
  };
  auto on_fault = [](const Status& fault) -> Result<IndexReplica::ResolveOutcome> {
    return fault;
  };
  // A hedge is a duplicate of the primary's in-flight RPC: it overlaps the
  // same round trip, so it must not inflate the op's per-thread RPC count.
  return duplicate ? node->server()->CallAsyncDuplicate(handler, on_fault)
                   : node->server()->CallAsync(handler, on_fault);
}

std::vector<Result<IndexReplica::ResolveOutcome>> IndexService::ResolveBatchOn(
    RaftNode* node, const std::shared_ptr<const std::vector<std::vector<std::string>>>& paths,
    bool parent_only) {
  using R = Result<IndexReplica::ResolveOutcome>;
  IndexReplica* replica = this->replica(node->id());
  // Admission judges this one RPC at the batch's true weight.
  ScopedOpCost cost(static_cast<int>(paths->size()));
  return node->server()->Call(
      [this, node, replica, paths, parent_only]() -> std::vector<R> {
        if (node->role() != RaftRole::kLeader) {
          // ONE fence covers the whole batch: every path then resolves
          // against state at least as fresh as the fence point.
          auto fence = node->FollowerReadFence();
          if (!fence.ok()) {
            return std::vector<R>(paths->size(), R(fence.status()));
          }
        }
        std::vector<R> out;
        out.reserve(paths->size());
        // Intra-batch dedup: batched stats cluster in few directories, so
        // resolve each distinct walk once and reuse the outcome (one hash
        // probe) for its duplicates. A parent_only resolve only walks
        // components[0..n-2], so siblings share a memo slot. Safe under the
        // single fence above - every duplicate would walk identical state.
        std::unordered_map<std::string, size_t> memo;
        memo.reserve(paths->size());
        for (const std::vector<std::string>& components : *paths) {
          const size_t walked =
              parent_only && !components.empty() ? components.size() - 1 : components.size();
          std::string key;
          for (size_t i = 0; i < walked; ++i) {
            key.append(components[i]);
            key.push_back('/');
          }
          // Memo hits cost a probe into a request-local map, negligible next
          // to the modeled shared-index accesses, so they are not charged.
          if (auto it = memo.find(key); it != memo.end()) {
            out.push_back(out[it->second]);
            continue;
          }
          memo.emplace(std::move(key), out.size());
          out.push_back(parent_only ? replica->ResolveParent(components)
                                    : replica->ResolveDir(components));
        }
        return out;
      },
      [paths](const Status& fault) { return std::vector<R>(paths->size(), R(fault)); });
}

std::vector<Result<IndexReplica::ResolveOutcome>> IndexService::ResolveBatch(
    const std::vector<std::vector<std::string>>& paths, bool parent_only,
    const OpContext* ctx) {
  using R = Result<IndexReplica::ResolveOutcome>;
  std::vector<R> results(paths.size(), R(Status::Unavailable("indexnode has no live replica")));
  if (paths.empty()) {
    return results;
  }
  obs::ScopedSpan span(OpContext::TraceOf(ctx), "index.resolve_batch");
  static obs::Counter* batches = obs::Metrics::Instance().GetCounter("index.batch.count");
  static obs::Counter* batch_paths = obs::Metrics::Instance().GetCounter("index.batch.paths");
  batches->Add();
  batch_paths->Add(paths.size());
  RaftNode* primary = PickReadReplica();
  if (primary == nullptr) {
    return results;
  }
  auto owned = std::make_shared<const std::vector<std::vector<std::string>>>(paths);
  results = ResolveBatchOn(primary, owned, parent_only);
  // A whole-RPC failure (timeout, fence refusal, crash) poisons every entry
  // with the same retriable code; per-path misses are ordinary NotFounds and
  // never trigger fallback.
  auto rpc_failed = [](const std::vector<R>& batch) {
    for (const R& entry : batch) {
      if (entry.ok() || (entry.status().code() != StatusCode::kTimeout &&
                         entry.status().code() != StatusCode::kUnavailable)) {
        return false;
      }
    }
    return true;
  };
  if (!rpc_failed(results)) {
    return results;
  }
  RaftNode* leader = group_->leader();
  std::vector<RaftNode*> fallbacks;
  for (uint32_t id = 0; id < group_->num_nodes(); ++id) {
    RaftNode* node = group_->node(id);
    if (node != primary && node != leader && !node->IsDown()) {
      fallbacks.push_back(node);
    }
  }
  if (leader != nullptr && leader != primary) {
    fallbacks.push_back(leader);
  }
  const Deadline deadline = OpContext::DeadlineOf(ctx);
  for (RaftNode* node : fallbacks) {
    if (deadline.Expired()) {
      return results;
    }
    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* degraded = obs::Metrics::Instance().GetCounter("index.read.degraded");
    degraded->Add();
    results = ResolveBatchOn(node, owned, parent_only);
    if (!rpc_failed(results)) {
      return results;
    }
  }
  return results;
}

Result<IndexReplica::ResolveOutcome> IndexService::ResolveHedged(
    RaftNode* primary, const std::shared_ptr<const std::vector<std::string>>& components,
    bool parent_only, const OpContext* ctx, const StartedFlag& started) {
  using R = Result<IndexReplica::ResolveOutcome>;
  static obs::Counter* issued = obs::Metrics::Instance().GetCounter("hedge.issued");
  static obs::Counter* won = obs::Metrics::Instance().GetCounter("hedge.won");
  static obs::Counter* denied = obs::Metrics::Instance().GetCounter("hedge.denied");

  const int64_t wait_nanos = DeadlineBudget::Clamp(network_->options().default_rpc_deadline_nanos);
  if (wait_nanos <= 0) {
    network_->NoteCallerTimeout();
    return R(Status::Timeout("deadline exhausted before hedged lookup"));
  }
  const int64_t start_nanos = MonotonicNanos();
  const int64_t deadline_nanos = start_nanos + wait_nanos;
  auto primary_future =
      IssueResolveAsync(primary, components, parent_only, started, /*duplicate=*/false);
  // CallAsync counts the RPC but leaves the RTT to the caller; a hedge later
  // overlaps this same round trip instead of charging a second one (and, as a
  // duplicate, does not count against the op's RPC tally either).
  network_->InjectDelay();

  auto settle = [&](R result, RaftNode* responder, bool was_hedge) {
    responder->server()->RecordOutcome(result.ok() ? Status::Ok() : result.status());
    if (result.ok()) {
      read_latency_.Record(MonotonicNanos() - start_nanos);
      if (was_hedge) {
        won->Add();
      }
    }
    return result;
  };

  // Hedge point: the observed hedge-quantile latency, clamped. Zero until the
  // estimator has warmed up - then the primary gets the whole deadline.
  int64_t hedge_delay =
      read_latency_.Quantile(options_.hedge.quantile, options_.hedge.min_samples);
  if (hedge_delay > 0) {
    hedge_delay = std::clamp(hedge_delay, options_.hedge.min_delay_nanos,
                             options_.hedge.max_delay_nanos);
  }
  const bool can_hedge = hedge_delay > 0 && hedge_delay < wait_nanos && group_->num_nodes() > 1;
  const int64_t first_wait = can_hedge ? hedge_delay : wait_nanos;
  if (primary_future.wait_for(std::chrono::nanoseconds(first_wait)) ==
      std::future_status::ready) {
    return settle(primary_future.get(), primary, /*was_hedge=*/false);
  }
  RaftNode* hedge_node = can_hedge ? PickHedgeReplica(primary) : nullptr;
  RetryBudget* budget = OpContext::BudgetOf(ctx);
  if (hedge_node != nullptr && budget != nullptr && !budget->TrySpendHedge()) {
    denied->Add();
    hedge_node = nullptr;
  }
  if (hedge_node == nullptr) {
    // No hedge available (cold estimator, lone replica, or budget dry): just
    // wait out the primary.
    const int64_t rest = deadline_nanos - MonotonicNanos();
    if (rest > 0 && primary_future.wait_for(std::chrono::nanoseconds(rest)) ==
                        std::future_status::ready) {
      return settle(primary_future.get(), primary, /*was_hedge=*/false);
    }
    primary->server()->RecordOutcome(Status::Timeout());
    network_->NoteCallerTimeout();
    return R(Status::Timeout("lookup on " + primary->server()->name() + " timed out"));
  }
  issued->Add();
  if (obs::OpTrace* trace = obs::CurrentThreadTrace()) {
    // Instant marker: a duplicate resolve is now racing the primary. The
    // duplicate's server-side spans stitch in on their own via the depot.
    const int64_t now = MonotonicNanos();
    trace->AddClosedSpan("hedge.fire." + hedge_node->server()->name(), now, now,
                         obs::SpanKind::kLogic, hedge_node->server()->name());
  }
  auto hedge_future =
      IssueResolveAsync(hedge_node, components, parent_only, started, /*duplicate=*/true);
  // First answer wins. Poll both futures on a fine quantum; the abandoned
  // handler owns its captures, so dropping its future is safe.
  constexpr auto kZero = std::chrono::nanoseconds::zero();
  const int64_t quantum = std::max<int64_t>(network_->options().rtt_nanos / 4, 20'000);
  while (true) {
    if (primary_future.wait_for(kZero) == std::future_status::ready) {
      return settle(primary_future.get(), primary, /*was_hedge=*/false);
    }
    if (hedge_future.wait_for(kZero) == std::future_status::ready) {
      return settle(hedge_future.get(), hedge_node, /*was_hedge=*/true);
    }
    const int64_t rest = deadline_nanos - MonotonicNanos();
    if (rest <= 0) {
      primary->server()->RecordOutcome(Status::Timeout());
      network_->NoteCallerTimeout();
      return R(Status::Timeout("hedged lookup timed out on both replicas"));
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(std::min(rest, quantum)));
  }
}

Result<IndexReplica::ResolveOutcome> IndexService::Resolve(
    const std::vector<std::string>& components, bool parent_only, const OpContext* ctx) {
  if (!options_.coalesce.enable) {
    return ResolveUncoalesced(components, parent_only, ctx, nullptr);
  }
  static obs::Counter* hit = obs::Metrics::Instance().GetCounter("index.coalesce.hit");
  static obs::Counter* lead = obs::Metrics::Instance().GetCounter("index.coalesce.leader");
  // Registry key: mode byte + joined components. Consistency mode is uniform
  // across one IndexService (follower_read/hedging are service-wide options),
  // so identical keys imply identical consistency.
  std::string key = parent_only ? "p" : "d";
  for (const std::string& component : components) {
    key += '/';
    key += component;
  }
  std::shared_ptr<InflightResolve> record;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(coalesce_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // Join only while the in-flight resolve has not started: once its
      // handler runs (and fences), a late joiner could receive a result older
      // than its own fence point. Past the window, resolve independently.
      if (!it->second->started->load(std::memory_order_acquire)) {
        record = it->second;
      }
    } else if (inflight_.size() < options_.coalesce.max_inflight) {
      record = std::make_shared<InflightResolve>();
      record->future = record->promise.get_future().share();
      record->started = std::make_shared<std::atomic<bool>>(false);
      inflight_.emplace(key, record);
      leader = true;
    }
  }
  if (record == nullptr) {
    // Registry full or join window closed: uncoalesced singular resolve.
    return ResolveUncoalesced(components, parent_only, ctx, nullptr);
  }
  if (!leader) {
    // Waiter: share the leader's in-flight resolution. No RPC is issued from
    // this thread, so the op's RPC count gains nothing.
    hit->Add();
    obs::ScopedSpan join_span(OpContext::TraceOf(ctx), "coalesce.join");
    const int64_t wait_nanos =
        DeadlineBudget::Clamp(network_->options().default_rpc_deadline_nanos);
    if (wait_nanos <= 0 || record->future.wait_for(std::chrono::nanoseconds(wait_nanos)) !=
                               std::future_status::ready) {
      network_->NoteCallerTimeout();
      return Status::Timeout("coalesced lookup: leader did not finish in time");
    }
    return record->future.get();
  }
  lead->Add();
  Result<IndexReplica::ResolveOutcome> result =
      ResolveUncoalesced(components, parent_only, ctx, record->started);
  {
    std::lock_guard<std::mutex> lock(coalesce_mu_);
    inflight_.erase(key);
  }
  record->promise.set_value(result);
  return result;
}

Result<IndexReplica::ResolveOutcome> IndexService::ResolveUncoalesced(
    const std::vector<std::string>& components, bool parent_only, const OpContext* ctx,
    const StartedFlag& started) {
  obs::ScopedSpan span(OpContext::TraceOf(ctx), "index.resolve");
  RaftNode* primary = PickReadReplica();
  if (primary == nullptr) {
    if (started != nullptr) {
      started->store(true, std::memory_order_release);
    }
    return Status::Unavailable("indexnode has no live replica");
  }
  auto owned = std::make_shared<const std::vector<std::string>>(components);
  Result<IndexReplica::ResolveOutcome> result =
      options_.hedge.enable ? ResolveHedged(primary, owned, parent_only, ctx, started)
                            : ResolveOn(primary, owned, parent_only, started);
  if (result.ok() || (result.status().code() != StatusCode::kTimeout &&
                      result.status().code() != StatusCode::kUnavailable)) {
    return result;
  }
  // Graceful degradation: the chosen replica timed out, crashed, or could not
  // fence. Fall back to the remaining live replicas, the leader last (it can
  // always serve without a fence).
  RaftNode* leader = group_->leader();
  std::vector<RaftNode*> fallbacks;
  for (uint32_t id = 0; id < group_->num_nodes(); ++id) {
    RaftNode* node = group_->node(id);
    if (node != primary && node != leader && !node->IsDown()) {
      fallbacks.push_back(node);
    }
  }
  if (leader != nullptr && leader != primary) {
    fallbacks.push_back(leader);
  }
  const Deadline deadline = OpContext::DeadlineOf(ctx);
  for (RaftNode* node : fallbacks) {
    if (deadline.Expired()) {
      return Status::Timeout("lookup: deadline exhausted during replica fallback");
    }
    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* degraded = obs::Metrics::Instance().GetCounter("index.read.degraded");
    degraded->Add();
    result = ResolveOn(node, owned, parent_only, started);
    if (result.ok() || (result.status().code() != StatusCode::kTimeout &&
                        result.status().code() != StatusCode::kUnavailable)) {
      return result;
    }
  }
  return result;
}

Status IndexService::ProposeCommand(const IndexCommand& command) {
  auto result = group_->Propose(EncodeIndexCommand(command));
  if (!result.ok()) {
    return result.status();
  }
  return DecodeApplyStatus(*result);
}

Status IndexService::AddDir(InodeId pid, const std::string& name, InodeId id,
                            uint32_t permission) {
  IndexCommand command;
  command.type = IndexCommandType::kAddDir;
  command.pid = pid;
  command.name = name;
  command.id = id;
  command.permission = permission;
  return ProposeCommand(command);
}

Status IndexService::RemoveDir(InodeId pid, const std::string& name,
                               const std::string& full_path) {
  IndexCommand command;
  command.type = IndexCommandType::kRemoveDir;
  command.pid = pid;
  command.name = name;
  command.inval_path = full_path;
  return ProposeCommand(command);
}

Status IndexService::RenameCommit(InodeId src_pid, const std::string& src_name, InodeId dst_pid,
                                  const std::string& dst_name, uint64_t uuid,
                                  const std::string& inval_path) {
  IndexCommand command;
  command.type = IndexCommandType::kRenameDir;
  command.pid = src_pid;
  command.name = src_name;
  command.dst_pid = dst_pid;
  command.dst_name = dst_name;
  command.uuid = uuid;
  command.inval_path = inval_path;
  return ProposeCommand(command);
}

Status IndexService::SetPermission(InodeId pid, const std::string& name, uint32_t permission,
                                   const std::string& inval_path) {
  IndexCommand command;
  command.type = IndexCommandType::kSetPermission;
  command.pid = pid;
  command.name = name;
  command.permission = permission;
  command.inval_path = inval_path;
  return ProposeCommand(command);
}

Result<IndexReplica::RenamePrepared> IndexService::RenamePrepare(
    const std::vector<std::string>& src_components,
    const std::vector<std::string>& dst_parent_components, const std::string& dst_name,
    uint64_t uuid) {
  RaftNode* node = group_->WaitForLeader();
  if (node == nullptr) {
    return Status::Unavailable("indexnode has no leader");
  }
  IndexReplica* replica = this->replica(node->id());
  return node->server()->Call([replica, &src_components, &dst_parent_components, &dst_name,
                               uuid]() {
    return replica->RenamePrepare(src_components, dst_parent_components, dst_name, uuid);
  });
}

void IndexService::RenameAbort(InodeId src_id, uint64_t uuid) {
  RaftNode* node = group_->WaitForLeader();
  if (node == nullptr) {
    return;
  }
  IndexReplica* replica = this->replica(node->id());
  node->server()->Call([replica, src_id, uuid]() {
    replica->RenameAbort(src_id, uuid);
    return 0;
  });
}

void IndexService::LoadDir(InodeId pid, const std::string& name, InodeId id,
                           uint32_t permission) {
  std::vector<IndexReplica*> replicas;
  {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    replicas = replicas_;
  }
  for (IndexReplica* replica : replicas) {
    if (replica != nullptr) {
      replica->LoadDir(pid, name, id, permission);
    }
  }
}

Result<uint32_t> IndexService::AddLearnerReplica(int64_t timeout_nanos) {
  return group_->AddLearner(timeout_nanos);
}

Status IndexService::PromoteLearnerReplica(uint32_t id, uint64_t max_lag_entries,
                                           int64_t timeout_nanos) {
  return group_->PromoteLearner(id, max_lag_entries, timeout_nanos);
}

Status IndexService::RemoveReplica(uint32_t id, int64_t timeout_nanos) {
  MANTLE_RETURN_IF_ERROR(group_->RemoveNode(id, timeout_nanos));
  group_->DecommissionNode(id);
  return Status::Ok();
}

Status IndexService::DecommissionLeader(int64_t timeout_nanos) {
  RaftNode* leader = group_->WaitForLeader();
  if (leader == nullptr) {
    return Status::Unavailable("indexnode has no leader to decommission");
  }
  // RemoveNode transfers leadership away before committing the removal, so
  // the stall is one TimeoutNow round, not a full election timeout.
  return RemoveReplica(leader->id(), timeout_nanos);
}

void IndexService::CrashReplica(uint32_t id) {
  RaftNode* node = group_->node(id);
  if (node == nullptr) {
    return;
  }
  node->Stop();
  // The "<name>-<id>" prefix rule covers the client server and its "-raft"
  // consensus sibling in one shot, same as an unplanned machine loss.
  network_->faults().CrashServer(name_ + "-" + std::to_string(id));
}

void IndexService::EnableAutoRepair(const RepairOptions& options) {
  if (supervisor_ == nullptr) {
    supervisor_ = std::make_unique<RepairSupervisor>(group_.get(), options);
  }
  supervisor_->Start();
}

void IndexService::CrashGroup() {
  for (uint32_t id = 0; id < group_->num_nodes(); ++id) {
    group_->node(id)->Stop();
  }
  // The group-name prefix rule covers every "<name>-<id>" and
  // "<name>-<id>-raft" server in one shot.
  network_->faults().CrashServer(name_);
}

void IndexService::ColdStartRebuild(const std::vector<IndexTable::ExportedEntry>& dirs) {
  // The committed membership lives only in the log and snapshot, both of
  // which the wipe destroys - capture it first and seed it back so the
  // rebuilt group comes up with the post-surgery config, not the boot one.
  const RaftConfig config = group_->CommittedConfig();
  const uint32_t total = group_->num_nodes();
  for (uint32_t id = 0; id < total; ++id) {
    RaftNode* node = group_->node(id);
    if (!node->IsDown()) {
      node->Stop();
    }
  }
  // Deadline-abandoned resolve handlers may still be queued on the dead
  // servers; let them run against the old structures before the wipe.
  for (uint32_t id = 0; id < total; ++id) {
    group_->node(id)->server()->Drain();
    group_->node(id)->raft_server()->Drain();
  }
  for (uint32_t id = 0; id < total; ++id) {
    group_->node(id)->WipeState();
    group_->node(id)->SeedConfig(config);
  }
  for (uint32_t id = 0; id < total; ++id) {
    // Removed corpses stay down; reloading them would only feed state to a
    // node that never serves again.
    if (!config.IsMember(id)) {
      continue;
    }
    IndexReplica* target = replica(id);
    if (target == nullptr) {
      continue;
    }
    target->ResetForRebuild();
    for (const auto& dir : dirs) {
      target->LoadDir(dir.pid, dir.name, dir.id, dir.permission);
    }
  }
  // RestartServer clears only the exact rule key, so undo both the group
  // prefix rule CrashGroup installs and any per-node rules tests added.
  network_->faults().RestartServer(name_);
  for (uint32_t id = 0; id < total; ++id) {
    const std::string node_name = name_ + "-" + std::to_string(id);
    network_->faults().RestartServer(node_name);
    network_->faults().RestartServer(node_name + "-raft");
  }
  for (uint32_t id = 0; id < total; ++id) {
    if (config.IsMember(id)) {
      group_->node(id)->Restart();
    }
  }
  group_->Start();
}

IndexReplica* IndexService::LeaderReplica() {
  RaftNode* node = group_->WaitForLeader();
  return node == nullptr ? nullptr : replica(node->id());
}

}  // namespace mantle
