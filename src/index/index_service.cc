#include "src/index/index_service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "src/admission/retry_budget.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mantle {

IndexService::IndexService(Network* network, const std::string& name, IndexServiceOptions options)
    : network_(network), name_(name), options_(options) {
  const uint32_t total = options_.num_voters + options_.num_learners;
  replicas_.resize(total, nullptr);
  group_ = std::make_unique<RaftGroup>(
      network_, name, options_.num_voters, options_.num_learners,
      [this](uint32_t id) -> std::unique_ptr<StateMachine> {
        auto replica = std::make_unique<IndexReplica>(network_, options_.node);
        replicas_[id] = replica.get();
        return replica;
      },
      options_.raft);
}

RaftNode* IndexService::PickReadReplica() {
  RaftNode* leader = group_->WaitForLeader();
  if (!options_.follower_read) {
    return leader;
  }
  // Leader-first: only offload once the leader's executor is busy - the same
  // ServerExecutor::Busy predicate admission control rejects on, so "offload
  // to a follower" and "start shedding" describe one load level. A zero
  // threshold means no leader preference at all (always busy).
  if (leader != nullptr &&
      !leader->server()->Busy(static_cast<int>(options_.offload_queue_threshold))) {
    return leader;
  }
  static obs::Counter* offloaded = obs::Metrics::Instance().GetCounter("index.read.offload");
  offloaded->Add();
  const uint32_t total = group_->num_nodes();
  for (uint32_t attempt = 0; attempt < total; ++attempt) {
    const uint32_t id =
        static_cast<uint32_t>(read_rr_.fetch_add(1, std::memory_order_relaxed) % total);
    RaftNode* node = group_->node(id);
    if (!node->IsDown()) {
      return node;
    }
  }
  return leader;
}

RaftNode* IndexService::PickHedgeReplica(const RaftNode* primary) {
  const uint32_t total = group_->num_nodes();
  for (uint32_t attempt = 0; attempt < total; ++attempt) {
    const uint32_t id =
        static_cast<uint32_t>(read_rr_.fetch_add(1, std::memory_order_relaxed) % total);
    RaftNode* node = group_->node(id);
    if (node != primary && !node->IsDown()) {
      return node;
    }
  }
  return nullptr;
}

Result<IndexReplica::ResolveOutcome> IndexService::ResolveOn(
    RaftNode* node, const std::shared_ptr<const std::vector<std::string>>& components,
    bool parent_only) {
  IndexReplica* replica = replicas_[node->id()];
  // Deadline-aware call: the handler may be abandoned on timeout, so it owns
  // its inputs (shared_ptr) instead of borrowing the caller's stack.
  return node->server()->Call(
      [node, replica, components, parent_only]() -> Result<IndexReplica::ResolveOutcome> {
        if (node->role() != RaftRole::kLeader) {
          // Follower read: fence on the leader's commit index so the local
          // state is at least as fresh as any write acknowledged before this
          // lookup.
          auto fence = node->FollowerReadFence();
          if (!fence.ok()) {
            return fence.status();
          }
        }
        return parent_only ? replica->ResolveParent(*components)
                           : replica->ResolveDir(*components);
      },
      [](const Status& fault) -> Result<IndexReplica::ResolveOutcome> { return fault; });
}

std::future<Result<IndexReplica::ResolveOutcome>> IndexService::IssueResolveAsync(
    RaftNode* node, const std::shared_ptr<const std::vector<std::string>>& components,
    bool parent_only) {
  IndexReplica* replica = replicas_[node->id()];
  return node->server()->CallAsync(
      [node, replica, components, parent_only]() -> Result<IndexReplica::ResolveOutcome> {
        if (node->role() != RaftRole::kLeader) {
          auto fence = node->FollowerReadFence();
          if (!fence.ok()) {
            return fence.status();
          }
        }
        return parent_only ? replica->ResolveParent(*components)
                           : replica->ResolveDir(*components);
      },
      [](const Status& fault) -> Result<IndexReplica::ResolveOutcome> { return fault; });
}

Result<IndexReplica::ResolveOutcome> IndexService::ResolveHedged(
    RaftNode* primary, const std::shared_ptr<const std::vector<std::string>>& components,
    bool parent_only, const OpContext* ctx) {
  using R = Result<IndexReplica::ResolveOutcome>;
  static obs::Counter* issued = obs::Metrics::Instance().GetCounter("hedge.issued");
  static obs::Counter* won = obs::Metrics::Instance().GetCounter("hedge.won");
  static obs::Counter* denied = obs::Metrics::Instance().GetCounter("hedge.denied");

  const int64_t wait_nanos = DeadlineBudget::Clamp(network_->options().default_rpc_deadline_nanos);
  if (wait_nanos <= 0) {
    network_->NoteCallerTimeout();
    return R(Status::Timeout("deadline exhausted before hedged lookup"));
  }
  const int64_t start_nanos = MonotonicNanos();
  const int64_t deadline_nanos = start_nanos + wait_nanos;
  auto primary_future = IssueResolveAsync(primary, components, parent_only);
  // CallAsync counts the RPC but leaves the RTT to the caller; a hedge later
  // overlaps this same round trip instead of charging a second one.
  network_->InjectDelay();

  auto settle = [&](R result, RaftNode* responder, bool was_hedge) {
    responder->server()->RecordOutcome(result.ok() ? Status::Ok() : result.status());
    if (result.ok()) {
      read_latency_.Record(MonotonicNanos() - start_nanos);
      if (was_hedge) {
        won->Add();
      }
    }
    return result;
  };

  // Hedge point: the observed hedge-quantile latency, clamped. Zero until the
  // estimator has warmed up - then the primary gets the whole deadline.
  int64_t hedge_delay =
      read_latency_.Quantile(options_.hedge.quantile, options_.hedge.min_samples);
  if (hedge_delay > 0) {
    hedge_delay = std::clamp(hedge_delay, options_.hedge.min_delay_nanos,
                             options_.hedge.max_delay_nanos);
  }
  const bool can_hedge = hedge_delay > 0 && hedge_delay < wait_nanos && group_->num_nodes() > 1;
  const int64_t first_wait = can_hedge ? hedge_delay : wait_nanos;
  if (primary_future.wait_for(std::chrono::nanoseconds(first_wait)) ==
      std::future_status::ready) {
    return settle(primary_future.get(), primary, /*was_hedge=*/false);
  }
  RaftNode* hedge_node = can_hedge ? PickHedgeReplica(primary) : nullptr;
  RetryBudget* budget = OpContext::BudgetOf(ctx);
  if (hedge_node != nullptr && budget != nullptr && !budget->TrySpendHedge()) {
    denied->Add();
    hedge_node = nullptr;
  }
  if (hedge_node == nullptr) {
    // No hedge available (cold estimator, lone replica, or budget dry): just
    // wait out the primary.
    const int64_t rest = deadline_nanos - MonotonicNanos();
    if (rest > 0 && primary_future.wait_for(std::chrono::nanoseconds(rest)) ==
                        std::future_status::ready) {
      return settle(primary_future.get(), primary, /*was_hedge=*/false);
    }
    primary->server()->RecordOutcome(Status::Timeout());
    network_->NoteCallerTimeout();
    return R(Status::Timeout("lookup on " + primary->server()->name() + " timed out"));
  }
  issued->Add();
  if (obs::OpTrace* trace = obs::CurrentThreadTrace()) {
    // Instant marker: a duplicate resolve is now racing the primary. The
    // duplicate's server-side spans stitch in on their own via the depot.
    const int64_t now = MonotonicNanos();
    trace->AddClosedSpan("hedge.fire." + hedge_node->server()->name(), now, now,
                         obs::SpanKind::kLogic, hedge_node->server()->name());
  }
  auto hedge_future = IssueResolveAsync(hedge_node, components, parent_only);
  // First answer wins. Poll both futures on a fine quantum; the abandoned
  // handler owns its captures, so dropping its future is safe.
  constexpr auto kZero = std::chrono::nanoseconds::zero();
  const int64_t quantum = std::max<int64_t>(network_->options().rtt_nanos / 4, 20'000);
  while (true) {
    if (primary_future.wait_for(kZero) == std::future_status::ready) {
      return settle(primary_future.get(), primary, /*was_hedge=*/false);
    }
    if (hedge_future.wait_for(kZero) == std::future_status::ready) {
      return settle(hedge_future.get(), hedge_node, /*was_hedge=*/true);
    }
    const int64_t rest = deadline_nanos - MonotonicNanos();
    if (rest <= 0) {
      primary->server()->RecordOutcome(Status::Timeout());
      network_->NoteCallerTimeout();
      return R(Status::Timeout("hedged lookup timed out on both replicas"));
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(std::min(rest, quantum)));
  }
}

Result<IndexReplica::ResolveOutcome> IndexService::Resolve(
    const std::vector<std::string>& components, bool parent_only, const OpContext* ctx) {
  obs::ScopedSpan span(OpContext::TraceOf(ctx), "index.resolve");
  RaftNode* primary = PickReadReplica();
  if (primary == nullptr) {
    return Status::Unavailable("indexnode has no live replica");
  }
  auto owned = std::make_shared<const std::vector<std::string>>(components);
  Result<IndexReplica::ResolveOutcome> result =
      options_.hedge.enable ? ResolveHedged(primary, owned, parent_only, ctx)
                            : ResolveOn(primary, owned, parent_only);
  if (result.ok() || (result.status().code() != StatusCode::kTimeout &&
                      result.status().code() != StatusCode::kUnavailable)) {
    return result;
  }
  // Graceful degradation: the chosen replica timed out, crashed, or could not
  // fence. Fall back to the remaining live replicas, the leader last (it can
  // always serve without a fence).
  RaftNode* leader = group_->leader();
  std::vector<RaftNode*> fallbacks;
  for (uint32_t id = 0; id < group_->num_nodes(); ++id) {
    RaftNode* node = group_->node(id);
    if (node != primary && node != leader && !node->IsDown()) {
      fallbacks.push_back(node);
    }
  }
  if (leader != nullptr && leader != primary) {
    fallbacks.push_back(leader);
  }
  const Deadline deadline = OpContext::DeadlineOf(ctx);
  for (RaftNode* node : fallbacks) {
    if (deadline.Expired()) {
      return Status::Timeout("lookup: deadline exhausted during replica fallback");
    }
    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* degraded = obs::Metrics::Instance().GetCounter("index.read.degraded");
    degraded->Add();
    result = ResolveOn(node, owned, parent_only);
    if (result.ok() || (result.status().code() != StatusCode::kTimeout &&
                        result.status().code() != StatusCode::kUnavailable)) {
      return result;
    }
  }
  return result;
}

Status IndexService::ProposeCommand(const IndexCommand& command) {
  auto result = group_->Propose(EncodeIndexCommand(command));
  if (!result.ok()) {
    return result.status();
  }
  return DecodeApplyStatus(*result);
}

Status IndexService::AddDir(InodeId pid, const std::string& name, InodeId id,
                            uint32_t permission) {
  IndexCommand command;
  command.type = IndexCommandType::kAddDir;
  command.pid = pid;
  command.name = name;
  command.id = id;
  command.permission = permission;
  return ProposeCommand(command);
}

Status IndexService::RemoveDir(InodeId pid, const std::string& name,
                               const std::string& full_path) {
  IndexCommand command;
  command.type = IndexCommandType::kRemoveDir;
  command.pid = pid;
  command.name = name;
  command.inval_path = full_path;
  return ProposeCommand(command);
}

Status IndexService::RenameCommit(InodeId src_pid, const std::string& src_name, InodeId dst_pid,
                                  const std::string& dst_name, uint64_t uuid,
                                  const std::string& inval_path) {
  IndexCommand command;
  command.type = IndexCommandType::kRenameDir;
  command.pid = src_pid;
  command.name = src_name;
  command.dst_pid = dst_pid;
  command.dst_name = dst_name;
  command.uuid = uuid;
  command.inval_path = inval_path;
  return ProposeCommand(command);
}

Status IndexService::SetPermission(InodeId pid, const std::string& name, uint32_t permission,
                                   const std::string& inval_path) {
  IndexCommand command;
  command.type = IndexCommandType::kSetPermission;
  command.pid = pid;
  command.name = name;
  command.permission = permission;
  command.inval_path = inval_path;
  return ProposeCommand(command);
}

Result<IndexReplica::RenamePrepared> IndexService::RenamePrepare(
    const std::vector<std::string>& src_components,
    const std::vector<std::string>& dst_parent_components, const std::string& dst_name,
    uint64_t uuid) {
  RaftNode* node = group_->WaitForLeader();
  if (node == nullptr) {
    return Status::Unavailable("indexnode has no leader");
  }
  IndexReplica* replica = replicas_[node->id()];
  return node->server()->Call([replica, &src_components, &dst_parent_components, &dst_name,
                               uuid]() {
    return replica->RenamePrepare(src_components, dst_parent_components, dst_name, uuid);
  });
}

void IndexService::RenameAbort(InodeId src_id, uint64_t uuid) {
  RaftNode* node = group_->WaitForLeader();
  if (node == nullptr) {
    return;
  }
  IndexReplica* replica = replicas_[node->id()];
  node->server()->Call([replica, src_id, uuid]() {
    replica->RenameAbort(src_id, uuid);
    return 0;
  });
}

void IndexService::LoadDir(InodeId pid, const std::string& name, InodeId id,
                           uint32_t permission) {
  for (IndexReplica* replica : replicas_) {
    replica->LoadDir(pid, name, id, permission);
  }
}

void IndexService::CrashGroup() {
  for (uint32_t id = 0; id < group_->num_nodes(); ++id) {
    group_->node(id)->Stop();
  }
  // The group-name prefix rule covers every "<name>-<id>" and
  // "<name>-<id>-raft" server in one shot.
  network_->faults().CrashServer(name_);
}

void IndexService::ColdStartRebuild(const std::vector<IndexTable::ExportedEntry>& dirs) {
  const uint32_t total = group_->num_nodes();
  for (uint32_t id = 0; id < total; ++id) {
    RaftNode* node = group_->node(id);
    if (!node->IsDown()) {
      node->Stop();
    }
  }
  // Deadline-abandoned resolve handlers may still be queued on the dead
  // servers; let them run against the old structures before the wipe.
  for (uint32_t id = 0; id < total; ++id) {
    group_->node(id)->server()->Drain();
    group_->node(id)->raft_server()->Drain();
  }
  for (uint32_t id = 0; id < total; ++id) {
    group_->node(id)->WipeState();
  }
  for (IndexReplica* replica : replicas_) {
    replica->ResetForRebuild();
    for (const auto& dir : dirs) {
      replica->LoadDir(dir.pid, dir.name, dir.id, dir.permission);
    }
  }
  // RestartServer clears only the exact rule key, so undo both the group
  // prefix rule CrashGroup installs and any per-node rules tests added.
  network_->faults().RestartServer(name_);
  for (uint32_t id = 0; id < total; ++id) {
    const std::string node_name = name_ + "-" + std::to_string(id);
    network_->faults().RestartServer(node_name);
    network_->faults().RestartServer(node_name + "-raft");
  }
  for (uint32_t id = 0; id < total; ++id) {
    group_->node(id)->Restart();
  }
  group_->Start();
}

IndexReplica* IndexService::LeaderReplica() {
  RaftNode* node = group_->WaitForLeader();
  return node == nullptr ? nullptr : replicas_[node->id()];
}

}  // namespace mantle
