#include "src/index/index_service.h"

#include <memory>

#include "src/obs/metrics.h"

namespace mantle {

IndexService::IndexService(Network* network, const std::string& name, IndexServiceOptions options)
    : network_(network), name_(name), options_(options) {
  const uint32_t total = options_.num_voters + options_.num_learners;
  replicas_.resize(total, nullptr);
  group_ = std::make_unique<RaftGroup>(
      network_, name, options_.num_voters, options_.num_learners,
      [this](uint32_t id) -> std::unique_ptr<StateMachine> {
        auto replica = std::make_unique<IndexReplica>(network_, options_.node);
        replicas_[id] = replica.get();
        return replica;
      },
      options_.raft);
}

RaftNode* IndexService::PickReadReplica() {
  RaftNode* leader = group_->WaitForLeader();
  if (!options_.follower_read) {
    return leader;
  }
  // Leader-first: only offload once the leader's executor is backlogged.
  // A zero threshold means no leader preference at all.
  if (options_.offload_queue_threshold > 0 && leader != nullptr &&
      leader->server()->queue_depth() < options_.offload_queue_threshold) {
    return leader;
  }
  const uint32_t total = group_->num_nodes();
  for (uint32_t attempt = 0; attempt < total; ++attempt) {
    const uint32_t id =
        static_cast<uint32_t>(read_rr_.fetch_add(1, std::memory_order_relaxed) % total);
    RaftNode* node = group_->node(id);
    if (!node->IsDown()) {
      return node;
    }
  }
  return leader;
}

Result<IndexReplica::ResolveOutcome> IndexService::ResolveOn(
    RaftNode* node, const std::shared_ptr<const std::vector<std::string>>& components,
    bool parent_only) {
  IndexReplica* replica = replicas_[node->id()];
  // Deadline-aware call: the handler may be abandoned on timeout, so it owns
  // its inputs (shared_ptr) instead of borrowing the caller's stack.
  return node->server()->Call(
      [node, replica, components, parent_only]() -> Result<IndexReplica::ResolveOutcome> {
        if (node->role() != RaftRole::kLeader) {
          // Follower read: fence on the leader's commit index so the local
          // state is at least as fresh as any write acknowledged before this
          // lookup.
          auto fence = node->FollowerReadFence();
          if (!fence.ok()) {
            return fence.status();
          }
        }
        return parent_only ? replica->ResolveParent(*components)
                           : replica->ResolveDir(*components);
      },
      [](const Status& fault) -> Result<IndexReplica::ResolveOutcome> { return fault; });
}

Result<IndexReplica::ResolveOutcome> IndexService::Resolve(
    const std::vector<std::string>& components, bool parent_only, const OpContext* ctx) {
  obs::ScopedSpan span(OpContext::TraceOf(ctx), "index.resolve");
  RaftNode* primary = PickReadReplica();
  if (primary == nullptr) {
    return Status::Unavailable("indexnode has no live replica");
  }
  auto owned = std::make_shared<const std::vector<std::string>>(components);
  Result<IndexReplica::ResolveOutcome> result = ResolveOn(primary, owned, parent_only);
  if (result.ok() || (result.status().code() != StatusCode::kTimeout &&
                      result.status().code() != StatusCode::kUnavailable)) {
    return result;
  }
  // Graceful degradation: the chosen replica timed out, crashed, or could not
  // fence. Fall back to the remaining live replicas, the leader last (it can
  // always serve without a fence).
  RaftNode* leader = group_->leader();
  std::vector<RaftNode*> fallbacks;
  for (uint32_t id = 0; id < group_->num_nodes(); ++id) {
    RaftNode* node = group_->node(id);
    if (node != primary && node != leader && !node->IsDown()) {
      fallbacks.push_back(node);
    }
  }
  if (leader != nullptr && leader != primary) {
    fallbacks.push_back(leader);
  }
  const Deadline deadline = OpContext::DeadlineOf(ctx);
  for (RaftNode* node : fallbacks) {
    if (deadline.Expired()) {
      return Status::Timeout("lookup: deadline exhausted during replica fallback");
    }
    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* degraded = obs::Metrics::Instance().GetCounter("index.read.degraded");
    degraded->Add();
    result = ResolveOn(node, owned, parent_only);
    if (result.ok() || (result.status().code() != StatusCode::kTimeout &&
                        result.status().code() != StatusCode::kUnavailable)) {
      return result;
    }
  }
  return result;
}

Status IndexService::ProposeCommand(const IndexCommand& command) {
  auto result = group_->Propose(EncodeIndexCommand(command));
  if (!result.ok()) {
    return result.status();
  }
  return DecodeApplyStatus(*result);
}

Status IndexService::AddDir(InodeId pid, const std::string& name, InodeId id,
                            uint32_t permission) {
  IndexCommand command;
  command.type = IndexCommandType::kAddDir;
  command.pid = pid;
  command.name = name;
  command.id = id;
  command.permission = permission;
  return ProposeCommand(command);
}

Status IndexService::RemoveDir(InodeId pid, const std::string& name,
                               const std::string& full_path) {
  IndexCommand command;
  command.type = IndexCommandType::kRemoveDir;
  command.pid = pid;
  command.name = name;
  command.inval_path = full_path;
  return ProposeCommand(command);
}

Status IndexService::RenameCommit(InodeId src_pid, const std::string& src_name, InodeId dst_pid,
                                  const std::string& dst_name, uint64_t uuid,
                                  const std::string& inval_path) {
  IndexCommand command;
  command.type = IndexCommandType::kRenameDir;
  command.pid = src_pid;
  command.name = src_name;
  command.dst_pid = dst_pid;
  command.dst_name = dst_name;
  command.uuid = uuid;
  command.inval_path = inval_path;
  return ProposeCommand(command);
}

Status IndexService::SetPermission(InodeId pid, const std::string& name, uint32_t permission,
                                   const std::string& inval_path) {
  IndexCommand command;
  command.type = IndexCommandType::kSetPermission;
  command.pid = pid;
  command.name = name;
  command.permission = permission;
  command.inval_path = inval_path;
  return ProposeCommand(command);
}

Result<IndexReplica::RenamePrepared> IndexService::RenamePrepare(
    const std::vector<std::string>& src_components,
    const std::vector<std::string>& dst_parent_components, const std::string& dst_name,
    uint64_t uuid) {
  RaftNode* node = group_->WaitForLeader();
  if (node == nullptr) {
    return Status::Unavailable("indexnode has no leader");
  }
  IndexReplica* replica = replicas_[node->id()];
  return node->server()->Call([replica, &src_components, &dst_parent_components, &dst_name,
                               uuid]() {
    return replica->RenamePrepare(src_components, dst_parent_components, dst_name, uuid);
  });
}

void IndexService::RenameAbort(InodeId src_id, uint64_t uuid) {
  RaftNode* node = group_->WaitForLeader();
  if (node == nullptr) {
    return;
  }
  IndexReplica* replica = replicas_[node->id()];
  node->server()->Call([replica, src_id, uuid]() {
    replica->RenameAbort(src_id, uuid);
    return 0;
  });
}

void IndexService::LoadDir(InodeId pid, const std::string& name, InodeId id,
                           uint32_t permission) {
  for (IndexReplica* replica : replicas_) {
    replica->LoadDir(pid, name, id, permission);
  }
}

void IndexService::CrashGroup() {
  for (uint32_t id = 0; id < group_->num_nodes(); ++id) {
    group_->node(id)->Stop();
  }
  // The group-name prefix rule covers every "<name>-<id>" and
  // "<name>-<id>-raft" server in one shot.
  network_->faults().CrashServer(name_);
}

void IndexService::ColdStartRebuild(const std::vector<IndexTable::ExportedEntry>& dirs) {
  const uint32_t total = group_->num_nodes();
  for (uint32_t id = 0; id < total; ++id) {
    RaftNode* node = group_->node(id);
    if (!node->IsDown()) {
      node->Stop();
    }
  }
  // Deadline-abandoned resolve handlers may still be queued on the dead
  // servers; let them run against the old structures before the wipe.
  for (uint32_t id = 0; id < total; ++id) {
    group_->node(id)->server()->Drain();
    group_->node(id)->raft_server()->Drain();
  }
  for (uint32_t id = 0; id < total; ++id) {
    group_->node(id)->WipeState();
  }
  for (IndexReplica* replica : replicas_) {
    replica->ResetForRebuild();
    for (const auto& dir : dirs) {
      replica->LoadDir(dir.pid, dir.name, dir.id, dir.permission);
    }
  }
  // RestartServer clears only the exact rule key, so undo both the group
  // prefix rule CrashGroup installs and any per-node rules tests added.
  network_->faults().RestartServer(name_);
  for (uint32_t id = 0; id < total; ++id) {
    const std::string node_name = name_ + "-" + std::to_string(id);
    network_->faults().RestartServer(node_name);
    network_->faults().RestartServer(node_name + "-raft");
  }
  for (uint32_t id = 0; id < total; ++id) {
    group_->node(id)->Restart();
  }
  group_->Start();
}

IndexReplica* IndexService::LeaderReplica() {
  RaftNode* node = group_->WaitForLeader();
  return node == nullptr ? nullptr : replicas_[node->id()];
}

}  // namespace mantle
