// IndexService: the per-namespace IndexNode as a replicated service.
//
// Wraps a Raft group whose state machines are IndexReplicas and provides the
// operations the Mantle proxy uses:
//   * single-RPC path lookups, optionally load-balanced across followers and
//     learners behind a ReadIndex fence (paper §5.1.3);
//   * replicated directory mutations (add/remove/rename/setperm), each log
//     entry carrying its cache-invalidation path;
//   * leader-coordinated rename prepare/abort (lock bits + loop detection).

#ifndef SRC_INDEX_INDEX_SERVICE_H_
#define SRC_INDEX_INDEX_SERVICE_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/admission/hedge.h"
#include "src/index/index_replica.h"
#include "src/obs/op_context.h"
#include "src/raft/group.h"
#include "src/repair/repair_supervisor.h"

namespace mantle {

// Singleflight lookup coalescing: concurrent identical lookups (same path
// components, same parent-vs-dir mode) share ONE in-flight resolution and its
// result. Joiners report zero extra RPCs; the consistency rule is that a
// joiner only attaches while the leader's resolve handler has not yet started
// (and therefore has not yet taken its read fence), so the shared result is
// never older than what the joiner's own fence would have returned.
struct CoalesceOptions {
  bool enable = false;  // off = seed behaviour, bit for bit
  // In-flight registry bound. Lookups arriving while the registry is full (or
  // whose key is registered but already past its join window) bypass
  // coalescing and resolve on their own.
  size_t max_inflight = 256;
};

struct IndexServiceOptions {
  uint32_t num_voters = 3;
  uint32_t num_learners = 0;
  // Serve lookups from followers/learners (with ReadIndex fences) when the
  // leader is under heavy load (paper §5.1.3: "we offload path resolution
  // requests to idle IndexNode followers when the leader node is under heavy
  // load").
  bool follower_read = false;
  // Leader executor queue depth at which lookups offload to replicas. Zero
  // disables the leader-first preference entirely (pure round-robin; used by
  // tests and aggressive-offload experiments). The predicate is the shared
  // ServerExecutor::Busy signal, the same one admission control reads.
  size_t offload_queue_threshold = 2;
  // Hedged reads ("tail at scale"): when the chosen replica has not answered
  // within the observed hedge-quantile latency, issue the lookup to a second
  // replica and take the first answer. Hedges spend the caller's retry-budget
  // tokens, so hedging self-disables when the client is out of budget.
  HedgeOptions hedge;
  CoalesceOptions coalesce;
  RaftOptions raft;
  IndexNodeOptions node;
};

class IndexService {
 public:
  IndexService(Network* network, const std::string& name, IndexServiceOptions options);

  IndexService(const IndexService&) = delete;
  IndexService& operator=(const IndexService&) = delete;

  // Elects the initial leader; call before serving.
  void Start() { group_->Start(); }

  // --- lookups (one RPC to the chosen replica) --------------------------------
  // `ctx` (optional) supplies the caller's deadline and trace; without it the
  // ambient thread-local budget applies and no spans are recorded.

  Result<IndexReplica::ResolveOutcome> LookupDir(const std::vector<std::string>& components,
                                                 const OpContext* ctx = nullptr) {
    return Resolve(components, /*parent_only=*/false, ctx);
  }
  Result<IndexReplica::ResolveOutcome> LookupParent(const std::vector<std::string>& components,
                                                    const OpContext* ctx = nullptr) {
    return Resolve(components, /*parent_only=*/true, ctx);
  }

  // --- batched lookups (ONE RPC for the whole batch) ---------------------------
  // Resolves every path on a single chosen replica under a single ReadIndex
  // fence (the batch analogue of the paper's one-RPC lookup). Results come
  // back in input order; each entry is what the singular lookup would have
  // returned. Falls back to other replicas on a whole-RPC failure, like
  // Resolve. Admission control sees the batch at its true cost.
  std::vector<Result<IndexReplica::ResolveOutcome>> ResolveBatch(
      const std::vector<std::vector<std::string>>& paths, bool parent_only,
      const OpContext* ctx = nullptr);

  // --- replicated mutations ------------------------------------------------------

  Status AddDir(InodeId pid, const std::string& name, InodeId id, uint32_t permission);
  Status RemoveDir(InodeId pid, const std::string& name, const std::string& full_path);
  Status RenameCommit(InodeId src_pid, const std::string& src_name, InodeId dst_pid,
                      const std::string& dst_name, uint64_t uuid, const std::string& inval_path);
  Status SetPermission(InodeId pid, const std::string& name, uint32_t permission,
                       const std::string& inval_path);

  // --- rename coordination (leader-local, one RPC) -----------------------------

  Result<IndexReplica::RenamePrepared> RenamePrepare(
      const std::vector<std::string>& src_components,
      const std::vector<std::string>& dst_parent_components, const std::string& dst_name,
      uint64_t uuid);
  void RenameAbort(InodeId src_id, uint64_t uuid);

  // --- bulk loading (applies to every replica; pre-serving only) ----------------
  void LoadDir(InodeId pid, const std::string& name, InodeId id, uint32_t permission);

  // --- runtime membership & autonomous repair -----------------------------------

  // Grows the group by one learner replica: fresh servers on the fabric, a
  // fresh IndexReplica from the construction-time factory, snapshot-forced
  // catch-up (bulk-loaded state is not in the log). Returns the new node id.
  Result<uint32_t> AddLearnerReplica(int64_t timeout_nanos = 15'000'000'000);
  // Promotes learner `id` to voter once its replication lag is within
  // `max_lag_entries` of the leader's last log index.
  Status PromoteLearnerReplica(uint32_t id, uint64_t max_lag_entries = 16,
                               int64_t timeout_nanos = 15'000'000'000);
  // Commits the config dropping `id` (leadership is transferred away first if
  // `id` leads) and crash-stops the corpse.
  Status RemoveReplica(uint32_t id, int64_t timeout_nanos = 15'000'000'000);
  // Planned decommission of the current leader: transfer + remove, with the
  // write stall bounded by one TimeoutNow round instead of an election timeout.
  Status DecommissionLeader(int64_t timeout_nanos = 15'000'000'000);
  // Drill primitive: crash-stops replica `id` and marks both of its servers
  // crashed in the fault plan, exactly as an unplanned node loss would. The
  // repair supervisor (if enabled) notices via peer_down streaks and replaces
  // it.
  void CrashReplica(uint32_t id);
  // Starts the autonomous repair supervisor over this group's health signals.
  // Idempotent; options are taken on first call.
  void EnableAutoRepair(const RepairOptions& options = {});
  RepairSupervisor* repair() { return supervisor_.get(); }

  // --- crash recovery (total group loss) ---------------------------------------

  // Crash-stops every replica and marks all of the group's servers crashed in
  // the fault plan. Models simultaneous loss of the whole IndexNode group -
  // the one failure Raft cannot mask and snapshots cannot heal.
  void CrashGroup();

  // Cold-start rebuild after CrashGroup: wipes every node's Raft state back
  // to a blank disk, reloads every replica's structures from `dirs` (a TafDB
  // scan, parents before children), clears the crash rules, restarts the
  // nodes and re-elects a leader. The group serves again when this returns.
  void ColdStartRebuild(const std::vector<IndexTable::ExportedEntry>& dirs);

  // --- introspection --------------------------------------------------------------
  RaftGroup* group() { return group_.get(); }
  IndexReplica* replica(uint32_t id) const {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    return id < replicas_.size() ? replicas_[id] : nullptr;
  }
  uint32_t num_replicas() const { return group_->num_nodes(); }
  IndexReplica* LeaderReplica();
  const IndexServiceOptions& options() const { return options_; }
  // Lookups that fell back to another replica after the first choice timed
  // out, crashed, or failed its read fence.
  uint64_t degraded_reads() const { return degraded_reads_.load(std::memory_order_relaxed); }
  // Observed read-latency window feeding the hedge delay.
  const LatencyEstimator& read_latency() const { return read_latency_; }

 private:
  // Join-window flag shared between a coalescing leader and its resolve
  // handlers: set (release) by whichever handler runs first, immediately
  // before it takes its read fence. Joiners only attach while it is false,
  // which guarantees the fence is taken AFTER every join - the shared result
  // can never be older than a joiner's own fence point. Null = uncoalesced.
  using StartedFlag = std::shared_ptr<std::atomic<bool>>;

  // One in-flight coalescable resolution.
  struct InflightResolve {
    std::promise<Result<IndexReplica::ResolveOutcome>> promise;
    std::shared_future<Result<IndexReplica::ResolveOutcome>> future;
    StartedFlag started;
  };

  Result<IndexReplica::ResolveOutcome> Resolve(const std::vector<std::string>& components,
                                               bool parent_only, const OpContext* ctx);
  // The pre-coalescing resolve pipeline (replica choice, hedging, fallback).
  Result<IndexReplica::ResolveOutcome> ResolveUncoalesced(
      const std::vector<std::string>& components, bool parent_only, const OpContext* ctx,
      const StartedFlag& started);
  Result<IndexReplica::ResolveOutcome> ResolveOn(
      RaftNode* node, const std::shared_ptr<const std::vector<std::string>>& components,
      bool parent_only, const StartedFlag& started);
  // Non-blocking resolve on `node` (the hedged-read primitive). The caller
  // owns the RTT charge and must report the consumed outcome to the node's
  // server via RecordOutcome. `duplicate` marks the RPC as a hedge copy of an
  // in-flight request: it counts fleet-wide but not against the calling op.
  std::future<Result<IndexReplica::ResolveOutcome>> IssueResolveAsync(
      RaftNode* node, const std::shared_ptr<const std::vector<std::string>>& components,
      bool parent_only, const StartedFlag& started, bool duplicate);
  // Resolve with a hedge: primary first, a second replica after the derived
  // hedge delay, first answer wins.
  Result<IndexReplica::ResolveOutcome> ResolveHedged(
      RaftNode* primary, const std::shared_ptr<const std::vector<std::string>>& components,
      bool parent_only, const OpContext* ctx, const StartedFlag& started);
  // One batch RPC to `node`: fence once (on followers), then resolve every
  // path against the replica's local structures.
  std::vector<Result<IndexReplica::ResolveOutcome>> ResolveBatchOn(
      RaftNode* node,
      const std::shared_ptr<const std::vector<std::vector<std::string>>>& paths,
      bool parent_only);
  Status ProposeCommand(const IndexCommand& command);
  RaftNode* PickReadReplica();
  RaftNode* PickHedgeReplica(const RaftNode* primary);

  Network* network_;
  std::string name_;
  IndexServiceOptions options_;
  // Guards replicas_: the group's state-machine factory appends at runtime
  // when AddLearnerReplica (or the repair supervisor) grows the group.
  mutable std::mutex replicas_mu_;
  std::vector<IndexReplica*> replicas_;
  std::unique_ptr<RaftGroup> group_;
  // Declared after group_ so it stops (and joins its scan thread) before the
  // group it supervises is torn down.
  std::unique_ptr<RepairSupervisor> supervisor_;
  std::atomic<uint64_t> read_rr_{0};
  std::atomic<uint64_t> degraded_reads_{0};
  LatencyEstimator read_latency_;

  // Singleflight registry, keyed by mode + joined components. Bounded by
  // options_.coalesce.max_inflight; entries live from leader registration to
  // result publication.
  std::mutex coalesce_mu_;
  std::unordered_map<std::string, std::shared_ptr<InflightResolve>> inflight_;
};

}  // namespace mantle

#endif  // SRC_INDEX_INDEX_SERVICE_H_
