#include "src/index/index_table.h"

#include "src/common/path.h"

namespace mantle {

IndexTable::IndexTable(InodeId root_id) : root_id_(root_id) {
  // The root is implicit: it has no parent entry. Seed the reverse map so
  // PathOf/IsSelfOrAncestor terminate at it.
  by_id_[root_id_] = ReverseEntry{kNoParent, "", kPermAll};
}

std::optional<IndexEntry> IndexTable::Lookup(InodeId pid, const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(PairKey{pid, name});
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<IndexTable::ParentLink> IndexTable::GetParent(InodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end() || id == root_id_) {
    return std::nullopt;
  }
  return ParentLink{it->second.pid, it->second.name, it->second.permission};
}

std::optional<std::string> IndexTable::PathOf(InodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> reversed;
  InodeId current = id;
  while (current != root_id_) {
    auto it = by_id_.find(current);
    if (it == by_id_.end()) {
      return std::nullopt;
    }
    reversed.push_back(it->second.name);
    current = it->second.pid;
  }
  std::vector<std::string> components(reversed.rbegin(), reversed.rend());
  return JoinPath(components);
}

bool IndexTable::IsSelfOrAncestor(InodeId ancestor, InodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  InodeId current = id;
  for (;;) {
    if (current == ancestor) {
      return true;
    }
    if (current == root_id_) {
      return false;
    }
    auto it = by_id_.find(current);
    if (it == by_id_.end()) {
      return false;
    }
    current = it->second.pid;
  }
}

std::vector<InodeId> IndexTable::AncestorChain(InodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<InodeId> chain;
  InodeId current = id;
  for (;;) {
    chain.push_back(current);
    if (current == root_id_) {
      break;
    }
    auto it = by_id_.find(current);
    if (it == by_id_.end()) {
      break;
    }
    current = it->second.pid;
  }
  return chain;
}

size_t IndexTable::Size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

std::vector<IndexTable::ExportedEntry> IndexTable::Export() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ExportedEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back(ExportedEntry{key.pid, key.name, entry.id, entry.permission});
  }
  return out;
}

void IndexTable::Reset() {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    entries_.clear();
    by_id_.clear();
    by_id_[root_id_] = ReverseEntry{kNoParent, "", kPermAll};
    BumpVersionLocked();
  }
  std::lock_guard<std::mutex> lock(lock_mu_);
  rename_locks_.clear();
}

Status IndexTable::Insert(InodeId pid, const std::string& name, InodeId id, uint32_t permission) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(PairKey{pid, name}, IndexEntry{id, permission});
  if (!inserted) {
    return Status::AlreadyExists(name);
  }
  by_id_[id] = ReverseEntry{pid, name, permission};
  BumpVersionLocked();
  return Status::Ok();
}

Status IndexTable::Remove(InodeId pid, const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(PairKey{pid, name});
  if (it == entries_.end()) {
    return Status::NotFound(name);
  }
  const InodeId id = it->second.id;
  entries_.erase(it);
  by_id_.erase(id);
  BumpVersionLocked();
  lock.unlock();
  ClearLock(id);
  return Status::Ok();
}

Status IndexTable::Rename(InodeId src_pid, const std::string& src_name, InodeId dst_pid,
                          const std::string& dst_name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto src = entries_.find(PairKey{src_pid, src_name});
  if (src == entries_.end()) {
    return Status::NotFound(src_name);
  }
  if (entries_.find(PairKey{dst_pid, dst_name}) != entries_.end()) {
    return Status::AlreadyExists(dst_name);
  }
  const IndexEntry moved = src->second;
  entries_.erase(src);
  entries_[PairKey{dst_pid, dst_name}] = moved;
  by_id_[moved.id] = ReverseEntry{dst_pid, dst_name, moved.permission};
  BumpVersionLocked();
  lock.unlock();
  ClearLock(moved.id);
  return Status::Ok();
}

Status IndexTable::SetPermission(InodeId pid, const std::string& name, uint32_t permission) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(PairKey{pid, name});
  if (it == entries_.end()) {
    return Status::NotFound(name);
  }
  it->second.permission = permission;
  by_id_[it->second.id].permission = permission;
  BumpVersionLocked();
  return Status::Ok();
}

bool IndexTable::TryLockDir(InodeId id, uint64_t uuid) {
  std::lock_guard<std::mutex> lock(lock_mu_);
  auto [it, inserted] = rename_locks_.try_emplace(id, uuid);
  return inserted || it->second == uuid;
}

bool IndexTable::IsLocked(InodeId id) const {
  std::lock_guard<std::mutex> lock(lock_mu_);
  return rename_locks_.find(id) != rename_locks_.end();
}

uint64_t IndexTable::LockOwner(InodeId id) const {
  std::lock_guard<std::mutex> lock(lock_mu_);
  auto it = rename_locks_.find(id);
  return it == rename_locks_.end() ? 0 : it->second;
}

void IndexTable::UnlockDir(InodeId id, uint64_t uuid) {
  std::lock_guard<std::mutex> lock(lock_mu_);
  auto it = rename_locks_.find(id);
  if (it != rename_locks_.end() && it->second == uuid) {
    rename_locks_.erase(it);
  }
}

void IndexTable::ClearLock(InodeId id) {
  std::lock_guard<std::mutex> lock(lock_mu_);
  rename_locks_.erase(id);
}

}  // namespace mantle
