// IndexTable: the per-namespace directory access-metadata index (Fig. 6).
//
// Holds one ~80-byte entry per directory: (pid, dirname) -> (id, permission)
// plus a reverse map id -> (pid, dirname) for ancestor walks (rename loop
// detection) and full-path reconstruction. Objects are NOT indexed here;
// object rows live only in TafDB - that is the paper's fine-grained metadata
// division.
//
// Concurrency: lookups take a shared lock; mutations take an exclusive lock.
// Mutations arrive solely from the Raft apply thread (single writer), so
// writer-writer contention is structurally absent and readers stay wait-free
// in practice. The rename lock bits are a separate leader-local map because
// they are transient coordination state, not replicated metadata.

#ifndef SRC_INDEX_INDEX_TABLE_H_
#define SRC_INDEX_INDEX_TABLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/kv/meta_record.h"

namespace mantle {

struct IndexEntry {
  InodeId id = 0;
  uint32_t permission = kPermAll;
};

class IndexTable {
 public:
  // `root_id` is the namespace root's inode id; namespaces sharing one TafDB
  // use disjoint id spaces with distinct roots (paper §7).
  explicit IndexTable(InodeId root_id = kRootId);

  InodeId root_id() const { return root_id_; }

  // --- lookups (shared lock) --------------------------------------------------

  std::optional<IndexEntry> Lookup(InodeId pid, const std::string& name) const;
  // Reverse lookup: parent id + name + permission of directory `id`.
  struct ParentLink {
    InodeId pid = 0;
    std::string name;
    uint32_t permission = kPermAll;
  };
  std::optional<ParentLink> GetParent(InodeId id) const;
  // Reconstructs the absolute path of directory `id` ("/" for the root);
  // nullopt if the id is unknown.
  std::optional<std::string> PathOf(InodeId id) const;
  // True if `ancestor` appears on the parent chain of `id` (inclusive).
  bool IsSelfOrAncestor(InodeId ancestor, InodeId id) const;
  // Ids on the chain from `id` up to (and including) the root.
  std::vector<InodeId> AncestorChain(InodeId id) const;

  size_t Size() const;

  // Monotone counter bumped by every successful structural mutation (Insert,
  // Remove, Rename, SetPermission, Reset). Multi-read validation sections -
  // e.g. rename loop detection followed by the ancestor lock-bit scan - take
  // a snapshot before the first read and retry if it moved by the last, which
  // closes the TOCTOU window between reads without holding the table lock
  // across the whole section.
  uint64_t mutation_version() const {
    return mutation_version_.load(std::memory_order_acquire);
  }

  // Snapshot support: every entry as (pid, name, id, permission).
  struct ExportedEntry {
    InodeId pid;
    std::string name;
    InodeId id;
    uint32_t permission;
  };
  std::vector<ExportedEntry> Export() const;
  // Clears all entries (and rename locks) back to the bare root.
  void Reset();

  // --- mutations (exclusive lock; Raft apply thread only) ----------------------

  Status Insert(InodeId pid, const std::string& name, InodeId id, uint32_t permission);
  Status Remove(InodeId pid, const std::string& name);
  Status Rename(InodeId src_pid, const std::string& src_name, InodeId dst_pid,
                const std::string& dst_name);
  Status SetPermission(InodeId pid, const std::string& name, uint32_t permission);

  // --- rename lock bits (leader-local, keyed by directory id) ------------------

  // Locks `id` for a rename identified by `uuid`. Re-acquisition with the same
  // uuid succeeds (proxy-failover idempotence, paper §5.3).
  bool TryLockDir(InodeId id, uint64_t uuid);
  bool IsLocked(InodeId id) const;
  // Lock holder's uuid, or 0.
  uint64_t LockOwner(InodeId id) const;
  void UnlockDir(InodeId id, uint64_t uuid);
  // Releases whatever lock `id` holds (invoked when the entry is removed or
  // renamed away - "the rename lock is automatically released when the access
  // metadata of the source directory is deleted").
  void ClearLock(InodeId id);

 private:
  struct PairKey {
    InodeId pid;
    std::string name;
    bool operator==(const PairKey& other) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& key) const {
      return std::hash<uint64_t>()(key.pid) * 1315423911u ^ std::hash<std::string>()(key.name);
    }
  };

  struct ReverseEntry {
    InodeId pid;
    std::string name;
    uint32_t permission;
  };

  void BumpVersionLocked() {
    mutation_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  const InodeId root_id_;
  std::atomic<uint64_t> mutation_version_{0};
  mutable std::shared_mutex mu_;
  std::unordered_map<PairKey, IndexEntry, PairKeyHash> entries_;
  std::unordered_map<InodeId, ReverseEntry> by_id_;

  mutable std::mutex lock_mu_;
  std::unordered_map<InodeId, uint64_t> rename_locks_;
};

}  // namespace mantle

#endif  // SRC_INDEX_INDEX_TABLE_H_
