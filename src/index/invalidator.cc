#include "src/index/invalidator.h"

#include <chrono>

#include "src/admission/admission.h"
#include "src/common/clock.h"
#include "src/obs/metrics.h"

namespace mantle {

Invalidator::Invalidator(RemovalList* removal_list, PrefixTree* prefix_tree,
                         TopDirPathCache* cache, int64_t interval_nanos, bool start_thread)
    : removal_list_(removal_list),
      prefix_tree_(prefix_tree),
      cache_(cache),
      interval_nanos_(interval_nanos) {
  if (start_thread) {
    thread_ = std::thread([this]() { Loop(); });
  }
}

Invalidator::~Invalidator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

size_t Invalidator::RunPassNow() {
  std::lock_guard<std::mutex> pass_lock(pass_mu_);
  Stopwatch timer;
  const size_t purged = removal_list_->RunMaintenancePass([this](const std::string& path) {
    for (const std::string& prefix : prefix_tree_->RemoveSubtree(path)) {
      cache_->Erase(prefix);
      prefixes_invalidated_.fetch_add(1, std::memory_order_relaxed);
    }
  });
  passes_.fetch_add(1, std::memory_order_relaxed);
  static obs::HistogramMetric* pass_nanos =
      obs::Metrics::Instance().GetHistogram("index.invalidator.pass_nanos");
  pass_nanos->Record(timer.ElapsedNanos());
  static obs::Gauge* depth = obs::Metrics::Instance().GetGauge("index.removal_list.depth");
  depth->Set(static_cast<int64_t>(removal_list_->LiveCount()));
  return purged;
}

void Invalidator::Loop() {
  // Invalidation sweeps are maintenance traffic: shed first under admission
  // control.
  ScopedOpPriority background(OpPriority::kBackground);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::nanoseconds(interval_nanos_));
    if (stopping_) {
      return;
    }
    lock.unlock();
    RunPassNow();
    lock.lock();
  }
}

}  // namespace mantle
