// Invalidator: the background cache-coherence mechanism (paper §5.1.2).
//
// A single thread periodically drains RemovalList: for every live entry it
// removes the entry's subtree from the PrefixTree, erases the collected
// prefixes from TopDirPathCache, and - once the originating modification has
// finished - retires the entry. Running invalidation off the lookup path is
// what keeps lookups non-blocking under heavy directory-modification load.

#ifndef SRC_INDEX_INVALIDATOR_H_
#define SRC_INDEX_INVALIDATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/index/prefix_tree.h"
#include "src/index/removal_list.h"
#include "src/index/top_dir_path_cache.h"

namespace mantle {

class Invalidator {
 public:
  Invalidator(RemovalList* removal_list, PrefixTree* prefix_tree, TopDirPathCache* cache,
              int64_t interval_nanos, bool start_thread);
  ~Invalidator();

  Invalidator(const Invalidator&) = delete;
  Invalidator& operator=(const Invalidator&) = delete;

  // One synchronous maintenance pass (tests and deterministic drains).
  // Returns the number of RemovalList entries whose subtrees were purged.
  size_t RunPassNow();

  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  uint64_t prefixes_invalidated() const {
    return prefixes_invalidated_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  RemovalList* removal_list_;
  PrefixTree* prefix_tree_;
  TopDirPathCache* cache_;
  int64_t interval_nanos_;

  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> prefixes_invalidated_{0};

  // RemovalList's reclamation assumes a single remover; serializes the
  // background thread against RunPassNow callers.
  std::mutex pass_mu_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace mantle

#endif  // SRC_INDEX_INVALIDATOR_H_
