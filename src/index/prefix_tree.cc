#include "src/index/prefix_tree.h"

#include <mutex>

#include "src/common/path.h"

namespace mantle {

PrefixTree::PrefixTree() : root_(std::make_unique<TreeNode>()) {}

void PrefixTree::Insert(std::string_view path) {
  const auto components = SplitPath(path);
  std::unique_lock<std::shared_mutex> lock(mu_);
  TreeNode* node = root_.get();
  for (const auto& component : components) {
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      it = node->children.emplace(component, std::make_unique<TreeNode>()).first;
    }
    node = it->second.get();
  }
  if (!node->terminal) {
    node->terminal = true;
    ++size_;
  }
}

bool PrefixTree::Contains(std::string_view path) const {
  const auto components = SplitPath(path);
  std::shared_lock<std::shared_mutex> lock(mu_);
  const TreeNode* node = root_.get();
  for (const auto& component : components) {
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return false;
    }
    node = it->second.get();
  }
  return node->terminal;
}

void PrefixTree::Collect(const TreeNode& node, std::string& scratch,
                         std::vector<std::string>& out) {
  if (node.terminal) {
    out.push_back(scratch.empty() ? "/" : scratch);
  }
  for (const auto& [name, child] : node.children) {
    const size_t mark = scratch.size();
    scratch += '/';
    scratch += name;
    Collect(*child, scratch, out);
    scratch.resize(mark);
  }
}

std::vector<std::string> PrefixTree::RemoveSubtree(std::string_view path) {
  const auto components = SplitPath(path);
  std::vector<std::string> removed;
  std::unique_lock<std::shared_mutex> lock(mu_);
  TreeNode* parent = nullptr;
  TreeNode* node = root_.get();
  const std::string* link_name = nullptr;
  for (const auto& component : components) {
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return removed;
    }
    parent = node;
    link_name = &it->first;
    node = it->second.get();
  }
  std::string scratch = PathPrefix(components, components.size());
  if (scratch == "/") {
    scratch.clear();
  }
  Collect(*node, scratch, removed);
  size_ -= removed.size();
  if (parent != nullptr) {
    parent->children.erase(*link_name);
  } else {
    // Removing the root subtree clears everything.
    root_ = std::make_unique<TreeNode>();
    size_ = 0;
  }
  return removed;
}

std::vector<std::string> PrefixTree::CollectSubtree(std::string_view path) const {
  const auto components = SplitPath(path);
  std::vector<std::string> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  const TreeNode* node = root_.get();
  for (const auto& component : components) {
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return out;
    }
    node = it->second.get();
  }
  std::string scratch = PathPrefix(components, components.size());
  if (scratch == "/") {
    scratch.clear();
  }
  Collect(*node, scratch, out);
  return out;
}

void PrefixTree::Remove(std::string_view path) {
  const auto components = SplitPath(path);
  std::unique_lock<std::shared_mutex> lock(mu_);
  TreeNode* node = root_.get();
  for (const auto& component : components) {
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return;
    }
    node = it->second.get();
  }
  if (node->terminal) {
    node->terminal = false;
    --size_;
  }
}

size_t PrefixTree::Size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return size_;
}

}  // namespace mantle
