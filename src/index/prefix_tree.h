// PrefixTree: a radix tree over path components that mirrors every prefix
// currently stored in TopDirPathCache (paper §5.1.2).
//
// TopDirPathCache is a hash table and cannot answer "all cached entries under
// /A/B" when /A/B is renamed; the PrefixTree provides that range query. It is
// kept in sync by the cache owner: every cache fill inserts here, every
// invalidation removes the affected subtree here and erases the collected
// paths from the cache.
//
// Readers (subtree collection, membership probes) take a shared lock; writers
// take an exclusive lock. Neither sits on the lookup fast path - only cache
// fills and invalidations touch the tree.

#ifndef SRC_INDEX_PREFIX_TREE_H_
#define SRC_INDEX_PREFIX_TREE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mantle {

class PrefixTree {
 public:
  PrefixTree();

  PrefixTree(const PrefixTree&) = delete;
  PrefixTree& operator=(const PrefixTree&) = delete;

  // Marks `path` as cached. Idempotent.
  void Insert(std::string_view path);

  // True if `path` is marked.
  bool Contains(std::string_view path) const;

  // All marked paths equal to or beneath `path`, removing them from the tree.
  // Returns the removed paths (the caller erases them from TopDirPathCache).
  std::vector<std::string> RemoveSubtree(std::string_view path);

  // Same collection without removal (diagnostics/tests).
  std::vector<std::string> CollectSubtree(std::string_view path) const;

  // Removes one exact marked path if present.
  void Remove(std::string_view path);

  // Number of marked paths.
  size_t Size() const;

 private:
  struct TreeNode {
    bool terminal = false;
    std::map<std::string, std::unique_ptr<TreeNode>, std::less<>> children;
  };

  static void Collect(const TreeNode& node, std::string& scratch,
                      std::vector<std::string>& out);

  mutable std::shared_mutex mu_;
  std::unique_ptr<TreeNode> root_;
  size_t size_ = 0;
};

}  // namespace mantle

#endif  // SRC_INDEX_PREFIX_TREE_H_
