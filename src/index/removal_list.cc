#include "src/index/removal_list.h"

#include <mutex>
#include <thread>

#include "src/common/path.h"

namespace mantle {

namespace {
// Per-thread RNG for tower heights; seeds diverge by thread identity.
thread_local Rng t_height_rng{0xb10c'd1ce ^
                              std::hash<std::thread::id>{}(std::this_thread::get_id())};
}  // namespace

RemovalList::RemovalList() { head_ = new Node("", 0, kMaxHeight); }

RemovalList::~RemovalList() {
  // Single-threaded teardown: free the whole chain plus retirees.
  Node* node = Unmark(head_->next[0].load(std::memory_order_relaxed));
  while (node != nullptr) {
    Node* next = Unmark(node->next[0].load(std::memory_order_relaxed));
    delete node;
    node = next;
  }
  delete head_;
  for (Node* retiree : retired_) {
    delete retiree;
  }
}

int RemovalList::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && (t_height_rng.Next() & 3) == 0) {
    ++height;
  }
  return height;
}

void RemovalList::FindPosition(uint64_t seq, Node* preds[kMaxHeight],
                               Node* succs[kMaxHeight]) const {
  Node* pred = head_;
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    Node* curr = Unmark(pred->next[level].load(std::memory_order_seq_cst));
    while (curr != nullptr) {
      Node* next = curr->next[level].load(std::memory_order_seq_cst);
      if (IsMarked(next)) {
        // Dead node: skip it (physical unlink is the Invalidator's job).
        curr = Unmark(next);
        continue;
      }
      if (curr->seq >= seq) {
        break;
      }
      pred = curr;
      curr = Unmark(next);
    }
    preds[level] = pred;
    succs[level] = curr;
  }
}

RemovalList::Token RemovalList::Insert(std::string path) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const int height = RandomHeight();
  Node* node = new Node(std::move(path), seq, height);
  inserts_.fetch_add(1, std::memory_order_relaxed);

  // Inserts traverse the list like readers do, so they register in the same
  // quiescence counter: reclamation must never free a node mid-FindPosition.
  active_readers_.fetch_add(1, std::memory_order_seq_cst);
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  // Level 0 first: once linked there, the node is live.
  for (;;) {
    FindPosition(seq, preds, succs);
    node->next[0].store(succs[0], std::memory_order_relaxed);
    Node* expected = succs[0];
    if (preds[0]->next[0].compare_exchange_strong(expected, node, std::memory_order_seq_cst)) {
      break;
    }
  }
  // Upper levels are best-effort: a lost race just leaves a shorter tower.
  for (int level = 1; level < height; ++level) {
    for (;;) {
      FindPosition(seq, preds, succs);
      node->next[level].store(succs[level], std::memory_order_relaxed);
      Node* expected = succs[level];
      if (IsMarked(node->next[level].load(std::memory_order_seq_cst))) {
        break;  // concurrently deleted already
      }
      if (preds[level]->next[level].compare_exchange_strong(expected, node,
                                                            std::memory_order_seq_cst)) {
        break;
      }
    }
  }
  active_readers_.fetch_sub(1, std::memory_order_seq_cst);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return node;
}

void RemovalList::MarkDone(Token token) {
  static_cast<Node*>(token)->done.store(true, std::memory_order_release);
}

bool RemovalList::ContainsPrefixOf(std::string_view path) const {
  active_readers_.fetch_add(1, std::memory_order_seq_cst);
  bool found = false;
  Node* curr = Unmark(head_->next[0].load(std::memory_order_seq_cst));
  while (curr != nullptr) {
    Node* next = curr->next[0].load(std::memory_order_seq_cst);
    if (!IsMarked(next) && IsPathPrefix(curr->path, path)) {
      found = true;
      break;
    }
    curr = Unmark(next);
  }
  active_readers_.fetch_sub(1, std::memory_order_seq_cst);
  return found;
}

bool RemovalList::Empty() const {
  return Unmark(head_->next[0].load(std::memory_order_seq_cst)) == nullptr;
}

size_t RemovalList::LiveCount() const {
  active_readers_.fetch_add(1, std::memory_order_seq_cst);
  size_t count = 0;
  Node* curr = Unmark(head_->next[0].load(std::memory_order_seq_cst));
  while (curr != nullptr) {
    Node* next = curr->next[0].load(std::memory_order_seq_cst);
    if (!IsMarked(next)) {
      ++count;
    }
    curr = Unmark(next);
  }
  active_readers_.fetch_sub(1, std::memory_order_seq_cst);
  return count;
}

void RemovalList::UnlinkAndRetire(Node* node) {
  // Phase 1: mark every level's next pointer so racing inserts fail their CAS
  // rather than linking behind a dead node.
  for (int level = node->height - 1; level >= 0; --level) {
    Node* next = node->next[level].load(std::memory_order_seq_cst);
    while (!IsMarked(next)) {
      if (node->next[level].compare_exchange_weak(next, Mark(next), std::memory_order_seq_cst)) {
        break;
      }
    }
  }
  // Phase 2: swing predecessors past the node at every level.
  for (int level = node->height - 1; level >= 0; --level) {
    for (;;) {
      Node* pred = head_;
      Node* curr = Unmark(pred->next[level].load(std::memory_order_seq_cst));
      while (curr != nullptr && curr != node) {
        Node* next = curr->next[level].load(std::memory_order_seq_cst);
        if (!IsMarked(next)) {
          pred = curr;
        }
        curr = Unmark(next);
      }
      if (curr != node) {
        break;  // already unlinked at this level
      }
      Node* expected = node;
      Node* successor = Unmark(node->next[level].load(std::memory_order_seq_cst));
      if (pred->next[level].compare_exchange_strong(expected, successor,
                                                    std::memory_order_seq_cst)) {
        break;
      }
      // An insert raced in between pred and node; rescan.
    }
  }
  retired_.push_back(node);
  removals_.fetch_add(1, std::memory_order_relaxed);
}

void RemovalList::ReclaimQuiescent() {
  if (retired_.empty()) {
    return;
  }
  // Single-remover quiescence: retirees were unlinked before this check, so a
  // zero reading of the reader counter (seq_cst on both sides) proves no
  // traversal can still reference them.
  if (active_readers_.load(std::memory_order_seq_cst) != 0) {
    return;
  }
  reclaimed_.fetch_add(retired_.size(), std::memory_order_relaxed);
  for (Node* node : retired_) {
    delete node;
  }
  retired_.clear();
}

size_t RemovalList::RunMaintenancePass(const std::function<void(const std::string&)>& purge) {
  size_t purged_count = 0;
  active_readers_.fetch_add(1, std::memory_order_seq_cst);
  Node* curr = Unmark(head_->next[0].load(std::memory_order_seq_cst));
  std::vector<Node*> removable;
  while (curr != nullptr) {
    Node* next = curr->next[0].load(std::memory_order_seq_cst);
    if (!IsMarked(next)) {
      if (!curr->purged.load(std::memory_order_acquire)) {
        purge(curr->path);
        curr->purged.store(true, std::memory_order_release);
        ++purged_count;
      } else if (curr->done.load(std::memory_order_acquire)) {
        removable.push_back(curr);
      }
    }
    curr = Unmark(next);
  }
  active_readers_.fetch_sub(1, std::memory_order_seq_cst);
  for (Node* node : removable) {
    UnlinkAndRetire(node);
  }
  ReclaimQuiescent();
  return purged_count;
}

RemovalList::Stats RemovalList::stats() const {
  return Stats{inserts_.load(std::memory_order_relaxed), removals_.load(std::memory_order_relaxed),
               reclaimed_.load(std::memory_order_relaxed)};
}

}  // namespace mantle
