// RemovalList: a lock-free skiplist of directory paths undergoing
// modification (paper §5.1.2).
//
// Lookup requests scan it on entry; a hit means some prefix of the requested
// path is being renamed/re-permissioned, so the lookup must bypass
// TopDirPathCache. The list is empty almost always, so the scan is one atomic
// load in the common case.
//
// Concurrency design:
//   * Inserts are lock-free (CAS per level, keys are monotonically increasing
//     sequence numbers so inserts append near the tail).
//   * Readers traverse level 0 wait-free. Every traversal - reads and the
//     insert position scans alike - registers in an active-traverser counter.
//   * The single Invalidator thread is the only physical remover: it marks a
//     dead node's next pointers (Harris-style tagging, so racing inserts
//     retry instead of resurrecting the node), unlinks it, and retires it.
//     Retired nodes are freed only after the active-traverser counter has
//     been observed at zero, at which point no traversal can still hold them.

#ifndef SRC_INDEX_REMOVAL_LIST_H_
#define SRC_INDEX_REMOVAL_LIST_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/random.h"

namespace mantle {

class RemovalList {
 public:
  static constexpr int kMaxHeight = 4;

  RemovalList();
  ~RemovalList();

  RemovalList(const RemovalList&) = delete;
  RemovalList& operator=(const RemovalList&) = delete;

  // Opaque handle to an inserted entry.
  using Token = void*;

  // Records that `path`'s subtree is being modified. Bumps the version.
  Token Insert(std::string path);

  // The underlying modification committed (or aborted); once the Invalidator
  // has also purged the caches, the entry becomes removable.
  void MarkDone(Token token);

  // True if any live entry's path is '/' , equal to, or a path-prefix of
  // `path`. Wait-free with respect to inserts.
  bool ContainsPrefixOf(std::string_view path) const;

  // Fast emptiness probe (may transiently report non-empty during sweeps).
  bool Empty() const;

  // Monotone counter bumped by every Insert; lookups snapshot it before
  // resolution and discard the cache fill if it moved (paper's timestamp
  // conflict detection).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  size_t LiveCount() const;

  // --- Invalidator interface (single caller thread) ---------------------------

  // One maintenance pass: every live entry not yet purged gets `purge(path)`
  // invoked and is marked purged; every entry that is both purged and done is
  // unlinked and retired; safely reclaimable retirees are freed.
  // Returns the number of entries purged during this pass.
  size_t RunMaintenancePass(const std::function<void(const std::string&)>& purge);

  struct Stats {
    uint64_t inserts = 0;
    uint64_t removals = 0;
    uint64_t reclaimed = 0;
  };
  Stats stats() const;

 private:
  struct Node {
    explicit Node(std::string p, uint64_t s, int h) : path(std::move(p)), seq(s), height(h) {
      for (auto& n : next) {
        n.store(nullptr, std::memory_order_relaxed);
      }
    }
    std::string path;
    uint64_t seq;
    int height;
    std::atomic<bool> purged{false};
    std::atomic<bool> done{false};
    std::atomic<Node*> next[kMaxHeight];
  };

  static Node* Unmark(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<uintptr_t>(p) & ~uintptr_t{1});
  }
  static Node* Mark(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<uintptr_t>(p) | uintptr_t{1});
  }
  static bool IsMarked(Node* p) { return (reinterpret_cast<uintptr_t>(p) & 1) != 0; }

  int RandomHeight();
  // Finds preds/succs for `seq` at every level, skipping marked nodes.
  void FindPosition(uint64_t seq, Node* preds[kMaxHeight], Node* succs[kMaxHeight]) const;
  void UnlinkAndRetire(Node* node);
  void ReclaimQuiescent();

  Node* head_;
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> version_{0};
  mutable std::atomic<int64_t> active_readers_{0};

  // Retired nodes awaiting a zero-reader observation. Touched only by the
  // Invalidator thread (and the destructor).
  std::vector<Node*> retired_;

  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> removals_{0};
  std::atomic<uint64_t> reclaimed_{0};
};

}  // namespace mantle

#endif  // SRC_INDEX_REMOVAL_LIST_H_
