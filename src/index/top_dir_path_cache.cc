#include "src/index/top_dir_path_cache.h"

#include <mutex>

#include "src/obs/metrics.h"

namespace mantle {

TopDirPathCache::TopDirPathCache(size_t max_entries) : max_entries_(max_entries) {}

std::optional<PathCacheEntry> TopDirPathCache::Lookup(std::string_view prefix) const {
  const CacheShard& shard = shards_[ShardFor(prefix)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(std::string(prefix));
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* miss_metric = obs::Metrics::Instance().GetCounter("index.cache.miss");
    miss_metric->Add();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* hit_metric = obs::Metrics::Instance().GetCounter("index.cache.hit");
  hit_metric->Add();
  return it->second;
}

bool TopDirPathCache::TryInsert(std::string_view prefix, const PathCacheEntry& entry) {
  if (max_entries_ != 0 && size_.load(std::memory_order_relaxed) >= max_entries_) {
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  CacheShard& shard = shards_[ShardFor(prefix)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.emplace(std::string(prefix), entry);
  if (!inserted) {
    return false;
  }
  shard.bytes += it->first.size() + sizeof(PathCacheEntry) + 48;  // node overhead estimate
  size_.fetch_add(1, std::memory_order_relaxed);
  fills_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TopDirPathCache::Erase(std::string_view prefix) {
  CacheShard& shard = shards_[ShardFor(prefix)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(std::string(prefix));
  if (it == shard.map.end()) {
    return;
  }
  shard.bytes -= it->first.size() + sizeof(PathCacheEntry) + 48;
  shard.map.erase(it);
  size_.fetch_sub(1, std::memory_order_relaxed);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

size_t TopDirPathCache::Size() const { return size_.load(std::memory_order_relaxed); }

TopDirPathCache::CacheStats TopDirPathCache::stats() const {
  return CacheStats{hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
                    fills_.load(std::memory_order_relaxed),
                    rejected_full_.load(std::memory_order_relaxed),
                    invalidations_.load(std::memory_order_relaxed)};
}

size_t TopDirPathCache::MemoryBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

}  // namespace mantle
