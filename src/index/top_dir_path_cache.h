// TopDirPathCache: the static path-prefix resolution cache (paper §5.1.1).
//
// Maps a truncated path prefix (the full path minus its final k components)
// to the directory id it resolves to and the intersected permission mask
// along that prefix (Lazy-Hybrid style). The cache is *static*: entries are
// installed after a miss and never promoted/demoted; staleness is handled
// exclusively by the Invalidator, never by the read path.
//
// Implementation: a sharded hash map with per-shard reader-writer locks -
// reads are the hot path and proceed fully in parallel.

#ifndef SRC_INDEX_TOP_DIR_PATH_CACHE_H_
#define SRC_INDEX_TOP_DIR_PATH_CACHE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/kv/meta_record.h"

namespace mantle {

struct PathCacheEntry {
  InodeId dir_id = 0;
  uint32_t permission_mask = kPermAll;  // AND of permissions along the prefix
};

class TopDirPathCache {
 public:
  // `max_entries` caps memory (0 = unlimited). The cache rejects fills once
  // full rather than evicting: stability is the design point.
  explicit TopDirPathCache(size_t max_entries = 0);

  TopDirPathCache(const TopDirPathCache&) = delete;
  TopDirPathCache& operator=(const TopDirPathCache&) = delete;

  std::optional<PathCacheEntry> Lookup(std::string_view prefix) const;

  // Installs `entry` unless the prefix is already present or the cache is
  // full. Returns true if the entry was inserted.
  bool TryInsert(std::string_view prefix, const PathCacheEntry& entry);

  // Removes one prefix. Idempotent.
  void Erase(std::string_view prefix);

  size_t Size() const;

  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fills = 0;
    uint64_t rejected_full = 0;
    uint64_t invalidations = 0;
  };
  CacheStats stats() const;

  // Approximate bytes held (entries + key strings); drives the Fig. 18
  // memory-vs-k study.
  size_t MemoryBytes() const;

 private:
  static constexpr size_t kShards = 16;

  struct CacheShard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, PathCacheEntry> map;
    size_t bytes = 0;
  };

  size_t ShardFor(std::string_view prefix) const {
    return std::hash<std::string_view>{}(prefix) % kShards;
  }

  const size_t max_entries_;
  CacheShard shards_[kShards];
  std::atomic<size_t> size_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> fills_{0};
  std::atomic<uint64_t> rejected_full_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace mantle

#endif  // SRC_INDEX_TOP_DIR_PATH_CACHE_H_
