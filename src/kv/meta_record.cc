#include "src/kv/meta_record.h"

namespace mantle {

std::string MetaKey::ToString() const {
  std::string out = "(" + std::to_string(pid) + ", " + name + ", " + std::to_string(ts) + ")";
  return out;
}

std::string_view EntryTypeName(EntryType type) {
  switch (type) {
    case EntryType::kDirectory:
      return "dir";
    case EntryType::kObject:
      return "obj";
    case EntryType::kAttrPrimary:
      return "attr";
    case EntryType::kAttrDelta:
      return "delta";
  }
  return "?";
}

}  // namespace mantle
