// MetaTable record model.
//
// Every hierarchical namespace maps to one logical table whose rows are keyed
// by (pid, name, ts):
//   * (pid, child_name, 0)   -> access metadata of a child entry (dir/object).
//   * (dir_id, "/_ATTR", 0)  -> primary attribute row of directory dir_id
//                               (child count, mtime, size stats).
//   * (dir_id, "/_ATTR", ts) -> delta record appended by a directory mutation
//                               at transaction timestamp ts (Mantle, Fig. 8).
// Partitioning is by hash(pid), so a directory's children and its own
// attribute row colocate on one shard, while the attribute rows of its child
// directories land wherever their ids hash - which is exactly why mkdir spans
// two shards in the DBtable architecture (paper Fig. 2).

#ifndef SRC_KV_META_RECORD_H_
#define SRC_KV_META_RECORD_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace mantle {

using InodeId = uint64_t;

// The root directory's inode id. Its attribute row is (kRootId, "/_ATTR", 0).
inline constexpr InodeId kRootId = 1;
// pid value used for the root's (virtual) parent.
inline constexpr InodeId kNoParent = 0;

// Name of attribute rows. '/' cannot appear in a real component name, so this
// never collides with a child entry.
inline constexpr std::string_view kAttrName = "/_ATTR";

// Permission bits (per directory/object; lookups intersect along the path).
inline constexpr uint32_t kPermRead = 0x4;
inline constexpr uint32_t kPermWrite = 0x2;
inline constexpr uint32_t kPermTraverse = 0x1;
inline constexpr uint32_t kPermAll = kPermRead | kPermWrite | kPermTraverse;

struct MetaKey {
  InodeId pid = 0;
  std::string name;
  uint64_t ts = 0;  // 0 = primary row; >0 = delta record

  friend auto operator<=>(const MetaKey& a, const MetaKey& b) = default;

  std::string ToString() const;
};

enum class EntryType : uint8_t {
  kDirectory,   // access metadata of a child directory
  kObject,      // access metadata of an object
  kAttrPrimary, // directory attribute primary row (ts == 0)
  kAttrDelta,   // directory attribute delta row (ts > 0)
};

std::string_view EntryTypeName(EntryType type);

struct MetaValue {
  EntryType type = EntryType::kObject;
  InodeId id = 0;           // inode id of the entry this row describes
  uint32_t permission = kPermAll;
  uint64_t size = 0;        // object size in bytes (objects only)
  int64_t child_count = 0;  // attr rows: absolute count (primary) or delta
  uint64_t mtime = 0;       // logical modification clock
  uint64_t version = 0;     // bumped on every in-place update
  InodeId parent = 0;       // attr rows: owning directory's parent (reverse
                            // link for distributed loop detection)

  bool IsDirectoryEntry() const { return type == EntryType::kDirectory; }
  bool IsObjectEntry() const { return type == EntryType::kObject; }
};

// Hash used for shard routing: shard = Hash(pid) % num_shards, keeping a
// directory's children and attribute rows on one shard.
inline uint64_t RouteHash(InodeId pid) {
  uint64_t x = pid + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline MetaKey EntryKey(InodeId pid, std::string name) { return MetaKey{pid, std::move(name), 0}; }
inline MetaKey AttrKey(InodeId dir_id) { return MetaKey{dir_id, std::string(kAttrName), 0}; }
inline MetaKey DeltaKey(InodeId dir_id, uint64_t ts) {
  return MetaKey{dir_id, std::string(kAttrName), ts};
}

}  // namespace mantle

#endif  // SRC_KV_META_RECORD_H_
