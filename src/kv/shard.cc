#include "src/kv/shard.h"

namespace mantle {

std::optional<MetaValue> Shard::Get(const MetaKey& key) const {
  NoteOp();
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<Shard::Entry> Shard::ScanChildren(InodeId pid, size_t limit) const {
  NoteOp();
  std::vector<Entry> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto it = rows_.lower_bound(MetaKey{pid, "", 0}); it != rows_.end(); ++it) {
    if (it->first.pid != pid) {
      break;
    }
    if (it->first.name == kAttrName) {
      continue;
    }
    out.push_back({it->first, it->second});
    if (limit != 0 && out.size() >= limit) {
      break;
    }
  }
  return out;
}

std::vector<Shard::Entry> Shard::ScanChildrenAfter(InodeId pid, const std::string& start_after,
                                                   size_t limit) const {
  NoteOp();
  std::vector<Entry> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = start_after.empty()
                ? rows_.lower_bound(MetaKey{pid, "", 0})
                : rows_.upper_bound(MetaKey{pid, start_after, UINT64_MAX});
  for (; it != rows_.end(); ++it) {
    if (it->first.pid != pid) {
      break;
    }
    if (it->first.name == kAttrName) {
      continue;
    }
    out.push_back({it->first, it->second});
    if (limit != 0 && out.size() >= limit) {
      break;
    }
  }
  return out;
}

std::vector<Shard::Entry> Shard::ScanDeltas(InodeId dir_id) const {
  std::vector<Entry> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto it = rows_.lower_bound(MetaKey{dir_id, std::string(kAttrName), 1}); it != rows_.end();
       ++it) {
    if (it->first.pid != dir_id || it->first.name != kAttrName) {
      break;
    }
    out.push_back({it->first, it->second});
  }
  return out;
}

std::vector<Shard::Entry> Shard::ScanRange(const MetaKey& after, size_t limit) const {
  std::vector<Entry> out;
  out.reserve(limit);
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto it = rows_.upper_bound(after); it != rows_.end(); ++it) {
    out.push_back({it->first, it->second});
    if (limit != 0 && out.size() >= limit) {
      break;
    }
  }
  return out;
}

bool Shard::HasChildren(InodeId pid) const {
  NoteOp();
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto it = rows_.lower_bound(MetaKey{pid, "", 0}); it != rows_.end(); ++it) {
    if (it->first.pid != pid) {
      return false;
    }
    if (it->first.name != kAttrName) {
      return true;
    }
  }
  return false;
}

std::optional<MetaValue> Shard::ReadAttrMerged(InodeId dir_id) const {
  NoteOp();
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto primary = rows_.find(AttrKey(dir_id));
  if (primary == rows_.end()) {
    return std::nullopt;
  }
  MetaValue merged = primary->second;
  for (auto it = rows_.upper_bound(AttrKey(dir_id)); it != rows_.end(); ++it) {
    if (it->first.pid != dir_id || it->first.name != kAttrName) {
      break;
    }
    merged.child_count += it->second.child_count;
    if (it->second.mtime > merged.mtime) {
      merged.mtime = it->second.mtime;
    }
  }
  return merged;
}

size_t Shard::Size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return rows_.size();
}

void Shard::ForEach(const std::function<void(const MetaKey&, const MetaValue&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [key, value] : rows_) {
    fn(key, value);
  }
}

bool Shard::TryLockKey(const MetaKey& key, uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(lock_mu_);
  // Fence / retirement first: a migration cutover in progress must not admit
  // new prepared locks (the drain below the fence is what makes the cutover
  // safe under concurrent 2PC). Not counted as a lock conflict - this is
  // placement backpressure, not data contention.
  if (write_fenced_.load(std::memory_order_acquire) ||
      retired_.load(std::memory_order_acquire)) {
    return false;
  }
  auto [it, inserted] = key_locks_.try_emplace(key, txn_id);
  if (inserted || it->second == txn_id) {
    return true;
  }
  lock_conflicts_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

uint64_t Shard::LockHolder(const MetaKey& key) const {
  std::lock_guard<std::mutex> lock(lock_mu_);
  auto it = key_locks_.find(key);
  return it == key_locks_.end() ? 0 : it->second;
}

void Shard::UnlockKey(const MetaKey& key, uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(lock_mu_);
  auto it = key_locks_.find(key);
  if (it != key_locks_.end() && it->second == txn_id) {
    key_locks_.erase(it);
  }
}

size_t Shard::HeldLockCount() const {
  std::lock_guard<std::mutex> lock(lock_mu_);
  return key_locks_.size();
}

Status Shard::CheckPreconditionLocked(const WriteOp& op) const {
  if (op.expect == WriteOp::Expect::kNone) {
    return Status::Ok();
  }
  auto it = rows_.find(op.key);
  const bool exists = it != rows_.end();
  switch (op.expect) {
    case WriteOp::Expect::kMustExist:
      if (!exists) {
        return Status::NotFound(op.key.ToString());
      }
      break;
    case WriteOp::Expect::kMustNotExist:
      if (exists) {
        return Status::AlreadyExists(op.key.ToString());
      }
      break;
    case WriteOp::Expect::kMustBeObject:
      if (!exists) {
        return Status::NotFound(op.key.ToString());
      }
      if (!it->second.IsObjectEntry()) {
        return Status::NotFound(op.key.ToString() + " is not an object");
      }
      break;
    case WriteOp::Expect::kNone:
      break;
  }
  return Status::Ok();
}

Status Shard::CheckPrecondition(const WriteOp& op) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return CheckPreconditionLocked(op);
}

Status Shard::CheckAndApply(const std::vector<WriteOp>& ops,
                            const std::function<void()>& while_locked) {
  NoteOp();
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Checked under the exclusive latch: the migrator's final catch-up round
  // also takes it, so an apply that saw the fence down has fully mutated (and
  // dirty-captured) the rows before the final copy runs - nothing can slip
  // between the fence and the cutover.
  if (retired_.load(std::memory_order_acquire)) {
    return Status::WrongShard("shard " + std::to_string(shard_id_) + " moved; epoch " +
                              std::to_string(retired_epoch()));
  }
  if (write_fenced_.load(std::memory_order_acquire)) {
    return Status::Busy("shard " + std::to_string(shard_id_) + " write-fenced for migration");
  }
  if (while_locked) {
    while_locked();
  }
  for (const auto& op : ops) {
    Status status = CheckPreconditionLocked(op);
    if (!status.ok()) {
      return status;
    }
  }
  ApplyOpsLocked(ops);
  return Status::Ok();
}

void Shard::ApplyOps(const std::vector<WriteOp>& ops) {
  NoteOp();
  std::unique_lock<std::shared_mutex> lock(mu_);
  ApplyOpsLocked(ops);
}

void Shard::NoteDirtyLocked(const MetaKey& key) {
  if (capture_enabled_) {
    dirty_keys_.insert(key);
  }
}

void Shard::ApplyOpsLocked(const std::vector<WriteOp>& ops) {
  for (const auto& op : ops) {
    NoteDirtyLocked(op.key);
    switch (op.kind) {
      case WriteOp::Kind::kPut: {
        MetaValue value = op.value;
        auto it = rows_.find(op.key);
        value.version = (it != rows_.end()) ? it->second.version + 1 : 1;
        rows_[op.key] = value;
        break;
      }
      case WriteOp::Kind::kDelete:
        rows_.erase(op.key);
        break;
      case WriteOp::Kind::kAddChildCount: {
        auto [it, inserted] = rows_.try_emplace(op.key);
        if (inserted) {
          it->second.type = op.key.ts == 0 ? EntryType::kAttrPrimary : EntryType::kAttrDelta;
        }
        it->second.child_count += op.count_delta;
        if (op.bump_mtime) {
          ++it->second.mtime;
        }
        ++it->second.version;
        break;
      }
    }
  }
}

void Shard::LoadPut(const MetaKey& key, const MetaValue& value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  NoteDirtyLocked(key);
  rows_[key] = value;
}

void Shard::LoadErase(const MetaKey& key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  NoteDirtyLocked(key);
  rows_.erase(key);
}

Status Shard::CompactDeltas(InodeId dir_id, const std::vector<uint64_t>& consumed, int64_t fold,
                            uint64_t max_mtime) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Same fence discipline as CheckAndApply: validated under the latch so a
  // fold can never land between the final catch-up copy and the cutover.
  if (retired_.load(std::memory_order_acquire)) {
    return Status::WrongShard("shard " + std::to_string(shard_id_) + " moved; epoch " +
                              std::to_string(retired_epoch()));
  }
  if (write_fenced_.load(std::memory_order_acquire)) {
    return Status::Busy("shard " + std::to_string(shard_id_) + " write-fenced for migration");
  }
  auto primary = rows_.find(AttrKey(dir_id));
  if (primary == rows_.end()) {
    // Directory disappeared (rmdir raced ahead); drop the deltas anyway.
    for (uint64_t ts : consumed) {
      const MetaKey key = DeltaKey(dir_id, ts);
      NoteDirtyLocked(key);
      rows_.erase(key);
    }
    return Status::Ok();
  }
  NoteDirtyLocked(primary->first);
  primary->second.child_count += fold;
  if (max_mtime > primary->second.mtime) {
    primary->second.mtime = max_mtime;
  }
  ++primary->second.version;
  for (uint64_t ts : consumed) {
    const MetaKey key = DeltaKey(dir_id, ts);
    NoteDirtyLocked(key);
    rows_.erase(key);
  }
  return Status::Ok();
}

void Shard::BeginMigrationCapture() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  capture_enabled_ = true;
  dirty_keys_.clear();
}

std::vector<MetaKey> Shard::TakeDirtyKeys() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<MetaKey> out;
  out.reserve(dirty_keys_.size());
  for (auto& key : dirty_keys_) {
    out.push_back(key);
  }
  dirty_keys_.clear();
  return out;
}

void Shard::EndMigrationCapture() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  capture_enabled_ = false;
  dirty_keys_.clear();
}

}  // namespace mantle
