// One ordered shard of the MetaTable.
//
// A shard is an ordered map from MetaKey to MetaValue guarded by a
// reader-writer lock, with a per-key write-lock table used by the transaction
// layer (src/txn) for two-phase commit. Reads never take write locks;
// conflicting writers fail TryLockKey and abort their transaction, which is
// the contention behaviour the paper measures in §3.2.
//
// For heat-aware placement (src/placement/) a shard additionally exposes:
//   * cheap cumulative counters (ops served, lock conflicts) sampled by the
//     ShardHeatTracker;
//   * a migration surface: dirty-key capture for delta catch-up rounds, a
//     write fence for the cutover window, and a retired flag that makes any
//     stale router bounce with kWrongShard instead of reading or mutating a
//     superseded copy of the data.
// A shard object is authoritative until Retire() is called; after that the
// replacement object installed in the ShardMap is the only writable copy.

#ifndef SRC_KV_SHARD_H_
#define SRC_KV_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/kv/meta_record.h"

namespace mantle {

// A buffered mutation applied atomically at transaction commit.
struct WriteOp {
  enum class Kind : uint8_t { kPut, kDelete, kAddChildCount };
  // Preconditions validated while the key lock is held (prepare phase).
  // kMustBeObject additionally requires the existing row to describe an
  // object (guards object deletion against directory entries).
  enum class Expect : uint8_t { kNone, kMustExist, kMustNotExist, kMustBeObject };

  Kind kind = Kind::kPut;
  Expect expect = Expect::kNone;
  MetaKey key;
  MetaValue value;          // payload for kPut
  int64_t count_delta = 0;  // for kAddChildCount: in-place child_count += delta
  bool bump_mtime = false;  // for kAddChildCount: also advance mtime
};

class Shard {
 public:
  explicit Shard(uint32_t shard_id) : shard_id_(shard_id) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  uint32_t shard_id() const { return shard_id_; }

  // --- reads ---------------------------------------------------------------

  std::optional<MetaValue> Get(const MetaKey& key) const;

  struct Entry {
    MetaKey key;
    MetaValue value;
  };

  // All primary rows with the given pid (a directory listing), in name order,
  // excluding attribute and delta rows. `limit` of 0 means unlimited.
  std::vector<Entry> ScanChildren(InodeId pid, size_t limit = 0) const;
  // Paged variant: entries with name strictly greater than `start_after`.
  std::vector<Entry> ScanChildrenAfter(InodeId pid, const std::string& start_after,
                                       size_t limit) const;

  // All delta rows (ts > 0) for the directory's attribute.
  std::vector<Entry> ScanDeltas(InodeId dir_id) const;

  // Generic paged snapshot read over the whole key space: up to `limit` rows
  // with key strictly greater than `after` (migration bulk copy).
  std::vector<Entry> ScanRange(const MetaKey& after, size_t limit) const;

  // True if the directory has at least one child entry row.
  bool HasChildren(InodeId pid) const;

  // Atomically reads the attribute primary row of `dir_id` and folds all live
  // delta rows into it (child_count sums, mtime maxes). Returns nullopt if the
  // primary row does not exist. This is the dirstat read path when delta
  // records are active (paper §5.2.1: "dirstat operations must scan delta
  // records to compute accurate results").
  std::optional<MetaValue> ReadAttrMerged(InodeId dir_id) const;

  size_t Size() const;

  // Visits every row under a shared lock (diagnostics / consistency audits).
  void ForEach(const std::function<void(const MetaKey&, const MetaValue&)>& fn) const;

  // --- transactional write support ------------------------------------------

  // Attempts to lock `key` on behalf of `txn_id`. Re-entrant for the same
  // transaction. Returns false on conflict (another transaction holds it) or
  // while the shard is write-fenced / retired for migration cutover (the
  // caller's transaction aborts retriably; the retry re-routes).
  bool TryLockKey(const MetaKey& key, uint64_t txn_id);
  void UnlockKey(const MetaKey& key, uint64_t txn_id);
  // Transaction currently holding `key`'s write lock, or 0. Crash recovery
  // keys commit redelivery off this: a participant still holding an intent's
  // locks was prepared but never received the decision.
  uint64_t LockHolder(const MetaKey& key) const;
  // Prepared locks currently held (migration cutover drains this to zero
  // before committing the new placement, so no 2PC transaction ever spans a
  // shard move).
  size_t HeldLockCount() const;

  // Validates `op`'s precondition; caller must hold the key lock.
  Status CheckPrecondition(const WriteOp& op) const;

  // Applies buffered ops; caller must hold all key locks. Infallible given
  // validated preconditions (kAddChildCount on a missing key creates it).
  void ApplyOps(const std::vector<WriteOp>& ops);

  // Validates all preconditions and applies the ops under one exclusive latch
  // acquisition - atomic, never aborts, serializes with other writers. Used
  // by the relaxed-consistency and single-shard-atomic-primitive baselines.
  // `while_locked` (optional) runs holding the latch and models the row-write
  // CPU cost, so contended rows serialize at the storage-engine rate.
  // Returns kBusy while write-fenced and kWrongShard once retired; both are
  // retriable and the retry re-routes through the current placement.
  Status CheckAndApply(const std::vector<WriteOp>& ops,
                       const std::function<void()>& while_locked = {});

  // Non-transactional single put used by bulk loading and by the migration
  // copy stream (preserves the row's version verbatim).
  void LoadPut(const MetaKey& key, const MetaValue& value);
  // Non-transactional erase (migration copy stream: the source deleted the
  // row after it was snapshotted).
  void LoadErase(const MetaKey& key);

  // Removes delta rows [dir_id] with ts in `consumed` and folds `fold` into
  // the primary attribute row, holding the shard latch so the primary cannot
  // vanish mid-compaction (paper §5.2.1). Returns kBusy while write-fenced
  // and kWrongShard once retired (the compactor re-pends the directory and
  // the next pass routes to the current shard object).
  Status CompactDeltas(InodeId dir_id, const std::vector<uint64_t>& consumed, int64_t fold,
                       uint64_t max_mtime);

  // --- migration surface (src/placement/) -----------------------------------

  // Starts recording the key of every row mutated on this shard. The copy
  // protocol begins capture BEFORE the bulk snapshot scan, so any row that
  // changes mid-scan is re-copied by a catch-up round.
  void BeginMigrationCapture();
  // Drains the captured dirty-key set (one catch-up round's worth).
  std::vector<MetaKey> TakeDirtyKeys();
  void EndMigrationCapture();

  // Write fence for the cutover window: new lock acquisitions and atomic
  // applies fail retriably; phase-two commits of already-prepared
  // transactions still proceed (their mutations are dirty-captured).
  void SetWriteFence(bool fenced) { write_fenced_.store(fenced, std::memory_order_release); }
  bool WriteFenced() const { return write_fenced_.load(std::memory_order_acquire); }

  // Marks this object superseded by the placement epoch `epoch`. Stale
  // routers holding this pointer get kWrongShard from every guarded entry
  // point and must re-resolve through the ShardMap.
  void Retire(uint64_t epoch) {
    retired_epoch_.store(epoch, std::memory_order_release);
    retired_.store(true, std::memory_order_release);
  }
  bool IsRetired() const { return retired_.load(std::memory_order_acquire); }
  uint64_t retired_epoch() const { return retired_epoch_.load(std::memory_order_acquire); }

  // --- stats -----------------------------------------------------------------
  uint64_t lock_conflicts() const { return lock_conflicts_.load(std::memory_order_relaxed); }
  // Cumulative data-path operations served (reads, scans, applied writes);
  // the ShardHeatTracker turns deltas of this into an op-rate EMA.
  uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }

 private:
  Status CheckPreconditionLocked(const WriteOp& op) const;
  void ApplyOpsLocked(const std::vector<WriteOp>& ops);
  // Records a mutated key while capture is active. Caller holds mu_ exclusive.
  void NoteDirtyLocked(const MetaKey& key);
  void NoteOp() const { ops_.fetch_add(1, std::memory_order_relaxed); }

  struct KeyHash {
    size_t operator()(const MetaKey& k) const {
      return std::hash<uint64_t>()(k.pid) ^ (std::hash<std::string>()(k.name) << 1) ^
             std::hash<uint64_t>()(k.ts);
    }
  };

  uint32_t shard_id_;
  mutable std::shared_mutex mu_;
  std::map<MetaKey, MetaValue> rows_;
  // Migration dirty-key capture; guarded by mu_ exclusive (every mutation
  // path holds it).
  bool capture_enabled_ = false;
  std::unordered_set<MetaKey, KeyHash> dirty_keys_;

  mutable std::mutex lock_mu_;
  std::unordered_map<MetaKey, uint64_t, KeyHash> key_locks_;

  std::atomic<uint64_t> lock_conflicts_{0};
  mutable std::atomic<uint64_t> ops_{0};
  std::atomic<bool> write_fenced_{false};
  std::atomic<bool> retired_{false};
  std::atomic<uint64_t> retired_epoch_{0};
};

}  // namespace mantle

#endif  // SRC_KV_SHARD_H_
