#include "src/net/fault_injector.h"

#include <chrono>
#include <functional>

#include "src/common/random.h"
#include "src/obs/metrics.h"

namespace mantle {

namespace {

// Stable 64-bit hash of a string (FNV-1a); std::hash is not guaranteed stable
// across implementations and the injector's determinism contract is.
uint64_t HashName(const std::string& name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  link_seq_.clear();
}

bool FaultInjector::Matches(const std::string& prefix, const std::string& name) {
  if (name.size() < prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return name.size() == prefix.size() || name[prefix.size()] == '-';
}

void FaultInjector::SetRule(const std::string& server_prefix, const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[server_prefix] = rule;
  RefreshActiveLocked();
  pause_cv_.notify_all();  // a rule change may clear a pause
}

void FaultInjector::ClearRule(const std::string& server_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.erase(server_prefix);
  RefreshActiveLocked();
  pause_cv_.notify_all();
}

void FaultInjector::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  partitions_.clear();
  RefreshActiveLocked();
  pause_cv_.notify_all();
}

void FaultInjector::CrashServer(const std::string& server_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[server_prefix].crashed = true;
  RefreshActiveLocked();
}

void FaultInjector::RestartServer(const std::string& server_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(server_prefix);
  if (it != rules_.end()) {
    it->second.crashed = false;
  }
  RefreshActiveLocked();
}

void FaultInjector::PauseServer(const std::string& server_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[server_prefix].paused = true;
  RefreshActiveLocked();
}

void FaultInjector::ResumeServer(const std::string& server_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(server_prefix);
  if (it != rules_.end()) {
    it->second.paused = false;
  }
  RefreshActiveLocked();
  pause_cv_.notify_all();
}

void FaultInjector::Partition(const std::string& partition_name,
                              std::vector<std::string> members) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_[partition_name] = std::move(members);
  RefreshActiveLocked();
}

void FaultInjector::Heal(const std::string& partition_name) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.erase(partition_name);
  RefreshActiveLocked();
}

void FaultInjector::HealAll() {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.clear();
  RefreshActiveLocked();
}

void FaultInjector::RefreshActiveLocked() {
  active_.store(!rules_.empty() || !partitions_.empty(), std::memory_order_release);
}

const FaultRule* FaultInjector::FindRuleLocked(const std::string& name) const {
  for (const auto& [prefix, rule] : rules_) {
    if (Matches(prefix, name)) {
      return &rule;
    }
  }
  return nullptr;
}

bool FaultInjector::PartitionedLocked(const std::string& origin,
                                      const std::string& destination) const {
  for (const auto& [name, members] : partitions_) {
    bool origin_inside = false;
    bool destination_inside = false;
    for (const auto& prefix : members) {
      origin_inside = origin_inside || Matches(prefix, origin);
      destination_inside = destination_inside || Matches(prefix, destination);
    }
    if (origin_inside != destination_inside) {
      return true;
    }
  }
  return false;
}

double FaultInjector::NextLinkDrawLocked(const std::string& origin,
                                         const std::string& destination) {
  const std::string link = origin + "\x1f" + destination;
  const uint64_t seq = link_seq_[link]++;
  uint64_t state = seed_ ^ HashName(link) ^ (seq * 0x9e3779b97f4a7c15ULL);
  const uint64_t draw = SplitMix64(state);
  return static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
}

FaultInjector::Decision FaultInjector::Preflight(const std::string& origin,
                                                 const std::string& destination) {
  if (!active()) {
    return Decision{Status::Ok(), 0};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (PartitionedLocked(origin, destination)) {
    stats_.rpcs_partitioned.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* partitioned = obs::Metrics::Instance().GetCounter("net.fault.partitioned");
    partitioned->Add();
    return Decision{Status::Timeout("partitioned: " + origin + " -/- " + destination), 0};
  }
  const FaultRule* rule = FindRuleLocked(destination);
  if (rule == nullptr) {
    return Decision{Status::Ok(), 0};
  }
  if (rule->crashed) {
    stats_.rpcs_crash_rejected.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* crash_rejected =
        obs::Metrics::Instance().GetCounter("net.fault.crash_rejected");
    crash_rejected->Add();
    return Decision{Status::Unavailable("server crashed: " + destination), 0};
  }
  Decision decision{Status::Ok(), 0};
  if (rule->drop_probability > 0.0 &&
      NextLinkDrawLocked(origin, destination) < rule->drop_probability) {
    stats_.rpcs_dropped.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* drops = obs::Metrics::Instance().GetCounter("net.fault.drops");
    drops->Add();
    return Decision{Status::Timeout("rpc dropped to " + destination), 0};
  }
  if (rule->delay_probability > 0.0 &&
      NextLinkDrawLocked(origin, destination) < rule->delay_probability) {
    int64_t extra = rule->delay_nanos;
    if (rule->delay_jitter_nanos > 0) {
      extra += static_cast<int64_t>(NextLinkDrawLocked(origin, destination) *
                                    static_cast<double>(rule->delay_jitter_nanos));
    }
    if (extra > 0) {
      stats_.rpcs_delayed.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* delays = obs::Metrics::Instance().GetCounter("net.fault.delays");
      delays->Add();
      decision.extra_delay_nanos = extra;
    }
  }
  return decision;
}

bool FaultInjector::HandlerEntry(const std::string& destination) {
  if (!active()) {
    return true;
  }
  std::unique_lock<std::mutex> lock(mu_);
  // Pause matches exactly, not by prefix: pausing "ns-index-0" must stall the
  // service port only, never "ns-index-0-raft" alongside it (a SIGSTOPped
  // process stops one port set, and tests that pause a node's service port
  // rely on its raft port staying live). Crash/drop/delay/partition rules
  // keep the prefix semantics.
  auto paused_at = [this](const std::string& name) {
    auto it = rules_.find(name);
    return it != rules_.end() && it->second.paused;
  };
  if (!paused_at(destination)) {
    return true;
  }
  stats_.pause_waits.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* pause_waits = obs::Metrics::Instance().GetCounter("net.fault.pause_waits");
  pause_waits->Add();
  pause_cv_.wait(lock, [this, &destination, &paused_at]() {
    return shutdown_ || !paused_at(destination);
  });
  return !shutdown_;
}

void FaultInjector::NoteTimeout() {
  stats_.rpcs_timed_out.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* timeouts = obs::Metrics::Instance().GetCounter("net.fault.timeouts");
  timeouts->Add();
}

void FaultInjector::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  pause_cv_.notify_all();
}

}  // namespace mantle
