// FaultInjector: a deterministic, per-server fault plan for the simulated
// cluster fabric.
//
// Every RPC the fabric carries consults the injector twice:
//   * Preflight (caller side, before the handler is enqueued): probabilistic
//     drops, latency spikes/jitter, crashed destinations and named partitions
//     all resolve here. A dropped or partitioned RPC surfaces kTimeout (the
//     message is lost and the caller's deadline expires); a crashed server
//     surfaces kUnavailable (connection refused).
//   * HandlerEntry (server side, as the handler starts): a paused server
//     blocks its workers until resumed, so queued work stalls exactly as it
//     would behind a SIGSTOPped process, while callers time out on their
//     deadlines.
//
// Determinism: probabilistic decisions are a pure function of
// (seed, origin, destination, per-link sequence number) - no global RNG
// state shared across links. Replaying the same per-link RPC sequence with
// the same seed reproduces the same drop/delay pattern regardless of what
// unrelated links (Raft heartbeats, compactor traffic) do in between.
//
// Rules are keyed by server-name prefix: a rule for "ns-index-0" governs the
// servers "ns-index-0" and "ns-index-0-raft", so one line of chaos script
// covers both of a Raft node's service ports. The one exception is `paused`,
// which matches exactly: PauseServer("ns-index-0") stalls only that server's
// workers, leaving "ns-index-0-raft" live (pause emulates SIGSTOP on one
// port's handler pool, and pausing a raft port by accident would halt
// elections and fences the test never asked to halt).

#ifndef SRC_NET_FAULT_INJECTOR_H_
#define SRC_NET_FAULT_INJECTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mantle {

// Injected-fault counters, exposed through Network for bench reports.
struct FaultStats {
  std::atomic<uint64_t> rpcs_dropped{0};        // probabilistic drops
  std::atomic<uint64_t> rpcs_delayed{0};        // latency spikes applied
  std::atomic<uint64_t> rpcs_crash_rejected{0};  // destination crashed
  std::atomic<uint64_t> rpcs_partitioned{0};    // origin/destination separated
  std::atomic<uint64_t> rpcs_timed_out{0};      // caller-side deadline expiry
  std::atomic<uint64_t> pause_waits{0};         // handlers stalled by a pause

  uint64_t injected_faults() const {
    return rpcs_dropped.load(std::memory_order_relaxed) +
           rpcs_crash_rejected.load(std::memory_order_relaxed) +
           rpcs_partitioned.load(std::memory_order_relaxed);
  }
};

// Per-server (prefix-matched) fault plan.
struct FaultRule {
  double drop_probability = 0.0;    // P(RPC silently lost)
  double delay_probability = 0.0;   // P(latency spike)
  int64_t delay_nanos = 0;          // spike base
  int64_t delay_jitter_nanos = 0;   // + uniform[0, jitter)
  bool crashed = false;             // connection refused until restart
  bool paused = false;              // handlers stall until resume
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0x5eedfab1eULL) : seed_(seed) {}

  // Re-seeds and forgets all per-link sequence numbers (fresh replay).
  void Reseed(uint64_t seed);

  // --- fault plan -------------------------------------------------------------
  void SetRule(const std::string& server_prefix, const FaultRule& rule);
  void ClearRule(const std::string& server_prefix);
  // Removes every rule and partition and unblocks paused handlers.
  void ClearAll();

  void CrashServer(const std::string& server_prefix);
  void RestartServer(const std::string& server_prefix);
  void PauseServer(const std::string& server_prefix);
  void ResumeServer(const std::string& server_prefix);

  // Isolates `members` (prefixes) from every server outside the set. RPCs
  // crossing the cut are lost in both directions. Multiple named partitions
  // may coexist.
  void Partition(const std::string& partition_name, std::vector<std::string> members);
  void Heal(const std::string& partition_name);
  void HealAll();

  // --- fabric hooks -----------------------------------------------------------

  // Caller-side verdict for one RPC. On success, `extra_delay_nanos` carries
  // the injected latency spike the caller must charge (already clamped to be
  // non-negative; the fabric clamps it against the caller's deadline).
  struct Decision {
    Status status;
    int64_t extra_delay_nanos = 0;
  };
  Decision Preflight(const std::string& origin, const std::string& destination);

  // Server-side hook run as a handler starts: blocks while the destination is
  // paused. Returns false if the injector shut down while waiting (fabric
  // teardown) - the handler should proceed so queued futures resolve.
  bool HandlerEntry(const std::string& destination);

  // Unblocks every pause-waiter permanently (called by Network's destructor
  // ahead of executor shutdown so drained handlers cannot deadlock).
  void Shutdown();

  // Records a caller-side deadline expiry (the fabric observes these; the
  // injector merely owns the counter block).
  void NoteTimeout();

  const FaultStats& stats() const { return stats_; }

  // True when any rule or partition is active (lock-free fast path).
  bool active() const { return active_.load(std::memory_order_acquire); }

 private:
  // True if `name` is `prefix` or starts with `prefix` + '-'.
  static bool Matches(const std::string& prefix, const std::string& name);

  // Deterministic per-link uniform draw in [0, 1). Requires mu_ held (bumps
  // the link's sequence number).
  double NextLinkDrawLocked(const std::string& origin, const std::string& destination);

  const FaultRule* FindRuleLocked(const std::string& name) const;
  bool PartitionedLocked(const std::string& origin, const std::string& destination) const;
  void RefreshActiveLocked();

  mutable std::mutex mu_;
  std::condition_variable pause_cv_;
  uint64_t seed_;
  std::map<std::string, FaultRule> rules_;
  std::map<std::string, std::vector<std::string>> partitions_;
  std::map<std::string, uint64_t> link_seq_;
  bool shutdown_ = false;
  std::atomic<bool> active_{false};
  FaultStats stats_;
};

}  // namespace mantle

#endif  // SRC_NET_FAULT_INJECTOR_H_
