#include "src/net/network.h"

namespace mantle {

namespace {
thread_local int64_t t_rpc_count = 0;

const std::string& EmptyOrigin() {
  static const std::string empty;
  return empty;
}

thread_local const std::string* t_origin = nullptr;
}  // namespace

ScopedNetOrigin::ScopedNetOrigin(const std::string& server_name) : saved_(t_origin) {
  t_origin = &server_name;
}

ScopedNetOrigin::~ScopedNetOrigin() { t_origin = saved_; }

ServerExecutor::ServerExecutor(Network* network, std::string name, size_t workers)
    : network_(network),
      name_(std::move(name)),
      pool_(workers, name_),
      admission_(name_, network->options().admission, static_cast<int>(workers)),
      breaker_(network->options().breaker) {
  auto& registry = obs::Metrics::Instance();
  calls_metric_ = registry.GetCounter("net.server." + name_ + ".calls");
  call_latency_metric_ = registry.GetHistogram("net.server." + name_ + ".call_nanos");
}

Network::Network(NetworkOptions options)
    : options_(options), faults_(options.fault_seed) {}

Network::~Network() {
  // Unblock any handler stalled on a paused server before the executor pools
  // drain their queues; otherwise teardown would deadlock on the pause gate.
  faults_.Shutdown();
}

ServerExecutor* Network::AddServer(const std::string& name, size_t workers) {
  // Servers can be added at runtime (dynamic Raft membership allocates fresh
  // replicas), so the table is guarded; entries are never removed, keeping
  // ServerExecutor pointers stable for their holders.
  std::lock_guard<std::mutex> lock(servers_mu_);
  servers_.push_back(std::make_unique<ServerExecutor>(this, name, workers));
  return servers_.back().get();
}

std::vector<ServerExecutor*> Network::SnapshotServers() const {
  std::lock_guard<std::mutex> lock(servers_mu_);
  std::vector<ServerExecutor*> out;
  out.reserve(servers_.size());
  for (const auto& server : servers_) {
    out.push_back(server.get());
  }
  return out;
}

void Network::NoteRpc() {
  ++t_rpc_count;
  total_rpcs_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* rpc_count = obs::Metrics::Instance().GetCounter("net.rpc.count");
  rpc_count->Add();
}

void Network::NoteDuplicateRpc() {
  total_rpcs_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* rpc_count = obs::Metrics::Instance().GetCounter("net.rpc.count");
  rpc_count->Add();
  static obs::Counter* dup_count = obs::Metrics::Instance().GetCounter("net.rpc.duplicate");
  dup_count->Add();
}

void Network::ChargeRtt() { ChargeRtt(1.0); }

void Network::ChargeRtt(double scale) {
  NoteRpc();
  InjectDelay(scale);
}

void Network::InjectDelay(double scale) {
  if (options_.zero_latency) {
    return;
  }
  // Wire time observed by whichever trace this thread is recording into
  // (caller-side rtt charges, fan-out shared waits, handler-nested charges).
  obs::ScopedSpan wire(obs::CurrentThreadTrace(), "net.rtt", {}, obs::SpanKind::kWire);
  PreciseSleep(static_cast<int64_t>(static_cast<double>(options_.rtt_nanos) * scale),
               options_.spin_tail_nanos);
}

void Network::ChargeService(int64_t nanos) {
  if (options_.zero_latency || nanos <= 0) {
    return;
  }
  PreciseSleep(nanos, options_.spin_tail_nanos);
}

Status Network::PreflightRpc(const std::string& destination) {
  if (!faults_.active()) {
    return Status::Ok();
  }
  FaultInjector::Decision decision = faults_.Preflight(ThreadOrigin(), destination);
  if (!decision.status.ok()) {
    return decision.status;
  }
  if (decision.extra_delay_nanos > 0) {
    // A latency spike larger than the remaining budget is indistinguishable
    // from a lost message: sleep out the budget and report timeout.
    const int64_t allowed = DeadlineBudget::Clamp(decision.extra_delay_nanos);
    if (allowed < decision.extra_delay_nanos) {
      if (allowed > 0) {
        PreciseSleep(allowed, options_.spin_tail_nanos);
      }
      NoteCallerTimeout();
      return Status::Timeout("injected delay outlived deadline to " + destination);
    }
    PreciseSleep(decision.extra_delay_nanos, options_.spin_tail_nanos);
  }
  return Status::Ok();
}

void Network::StitchTrace(obs::OpTrace* trace) {
  if (trace == nullptr || trace->spans().empty()) {
    return;
  }
  std::vector<obs::SpanBatch> pending;
  for (ServerExecutor* server : SnapshotServers()) {
    for (auto& batch : server->depot().Claim(trace->trace_id())) {
      pending.push_back(std::move(batch));
    }
  }
  // A nested hop's batch can only graft once its parent hop's batch has, and
  // batches arrive in arbitrary per-server order - iterate to a fixpoint.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending.begin(); it != pending.end();) {
      if (trace->Graft(it->spans, it->parent_span_uid)) {
        it = pending.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  if (!pending.empty()) {
    // Anchorless batches: the hop they hang under never completed (it timed
    // out upstream and its own batch never deposited). Count, don't guess.
    static obs::Counter* unanchored =
        obs::Metrics::Instance().GetCounter("trace.stitch.unanchored");
    unanchored->Add(pending.size());
  }
}

size_t Network::UnclaimedSpanBatches() const {
  size_t total = 0;
  for (ServerExecutor* server : SnapshotServers()) {
    total += server->depot().UnclaimedCount();
  }
  return total;
}

ServerExecutor* Network::FindServer(const std::string& name) const {
  std::lock_guard<std::mutex> lock(servers_mu_);
  for (const auto& server : servers_) {
    if (server->name() == name) {
      return server.get();
    }
  }
  return nullptr;
}

int64_t Network::ThreadRpcCount() { return t_rpc_count; }

void Network::ResetThreadRpcCount() { t_rpc_count = 0; }

const std::string& Network::ThreadOrigin() {
  return t_origin == nullptr ? EmptyOrigin() : *t_origin;
}

}  // namespace mantle
