#include "src/net/network.h"

namespace mantle {

namespace {
thread_local int64_t t_rpc_count = 0;
}  // namespace

ServerExecutor::ServerExecutor(Network* network, std::string name, size_t workers)
    : network_(network), name_(std::move(name)), pool_(workers, name_) {}

Network::Network(NetworkOptions options) : options_(options) {}

ServerExecutor* Network::AddServer(const std::string& name, size_t workers) {
  servers_.push_back(std::make_unique<ServerExecutor>(this, name, workers));
  return servers_.back().get();
}

void Network::NoteRpc() {
  ++t_rpc_count;
  total_rpcs_.fetch_add(1, std::memory_order_relaxed);
}

void Network::ChargeRtt() { ChargeRtt(1.0); }

void Network::ChargeRtt(double scale) {
  NoteRpc();
  InjectDelay(scale);
}

void Network::InjectDelay(double scale) {
  if (options_.zero_latency) {
    return;
  }
  PreciseSleep(static_cast<int64_t>(static_cast<double>(options_.rtt_nanos) * scale),
               options_.spin_tail_nanos);
}

void Network::ChargeService(int64_t nanos) {
  if (options_.zero_latency || nanos <= 0) {
    return;
  }
  PreciseSleep(nanos, options_.spin_tail_nanos);
}

int64_t Network::ThreadRpcCount() { return t_rpc_count; }

void Network::ResetThreadRpcCount() { t_rpc_count = 0; }

}  // namespace mantle
