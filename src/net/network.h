// Simulated cluster fabric.
//
// Every logical machine in the evaluation topology (TafDB nodes, IndexNode
// leader/followers/learners, the LocoFS directory server, the InfiniFS rename
// coordinator) is a ServerExecutor: a named, bounded thread pool. An RPC from
// a client thread to a server
//   1. charges the configured round-trip latency on the caller's thread,
//   2. consults the FaultInjector (drops, latency spikes, crashes, named
//      partitions - all deterministic per link under a fixed seed),
//   3. enqueues the handler on the destination server's pool (real queueing
//      delay under load -> CPU-ceiling effects), and
//   4. waits for the handler's result, bounded by the tighter of the per-RPC
//      deadline and the calling operation's remaining DeadlineBudget. An
//      expired wait surfaces Status::Timeout through the caller-supplied
//      fault translator instead of hanging.
//
// Per-thread RPC counters let services report how many round trips an
// operation needed (the paper's central lookup metric), per-server task
// counters expose utilization, and FaultStats report injected-fault and
// timeout rates for the chaos benches.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/admission/admission.h"
#include "src/admission/circuit_breaker.h"
#include "src/common/clock.h"
#include "src/common/deadline.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/net/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/obs/span_depot.h"
#include "src/obs/trace.h"

namespace mantle {

struct NetworkOptions {
  // Full round-trip latency charged per RPC. The paper's testbed is 25 Gbps
  // Ethernet with "single RPC plus tens of microseconds" service floors; we
  // default to 80 us and scale everything relative to it.
  int64_t rtt_nanos = 80'000;
  // Portion of each injected wait that is busy-polled for precision. Zero by
  // default: the harness may run on few cores and spinning would starve the
  // very threads being simulated.
  int64_t spin_tail_nanos = 0;
  // Modeled CPU cost of one storage-engine row access on a TafDB server.
  // Handlers sleep this long while *occupying a bounded executor worker*, so
  // a server with W workers saturates at W / cost ops/s - that is how
  // single-node CPU ceilings (LocoFS's directory server, IndexNode before
  // TopDirPathCache) reproduce on arbitrary host hardware.
  int64_t db_row_access_nanos = 20'000;
  // Modeled CPU cost of one in-memory index probe (IndexTable level, LocoFS
  // dirserver hash lookup, TopDirPathCache hit).
  int64_t mem_index_access_nanos = 4'000;
  // When true, RPCs charge no latency (fast unit tests); counters still work.
  bool zero_latency = false;
  // Cap on how long a deadline-aware RPC waits for its handler when the
  // calling operation carries no tighter DeadlineBudget. Generous by design:
  // it exists so no RPC can hang forever, not to shape normal latency.
  int64_t default_rpc_deadline_nanos = 10'000'000'000;  // 10 s
  // Seed for the fault injector's deterministic per-link decisions.
  uint64_t fault_seed = 0x5eedfab1eULL;
  // Overload protection, applied to every server on this network. Both
  // default to disabled (unbounded queues, no breaker) - the seed behaviour.
  AdmissionOptions admission;
  BreakerOptions breaker;
};

class Network;

// RAII: tags the current thread as originating RPCs from `server_name` (used
// for partition membership checks). Server workers get this automatically;
// Raft node threads install it for the node they belong to. Threads with no
// origin are external clients (the proxy fleet).
class ScopedNetOrigin {
 public:
  explicit ScopedNetOrigin(const std::string& server_name);
  ~ScopedNetOrigin();

  ScopedNetOrigin(const ScopedNetOrigin&) = delete;
  ScopedNetOrigin& operator=(const ScopedNetOrigin&) = delete;

 private:
  const std::string* saved_;
};

// One logical server with a fixed CPU budget (worker count).
class ServerExecutor {
 public:
  ServerExecutor(Network* network, std::string name, size_t workers);

  // Synchronous RPC: charge one RTT, run `handler` on this server, return its
  // result. Handler runs on a server worker; the calling thread blocks until
  // the handler finishes (fault-plan preflight failures - crashed or
  // partitioned destination, dropped request - short-circuit when the return
  // type can carry a Status; other return types stay fault-blind).
  template <typename Fn>
  auto Call(Fn&& handler) -> decltype(handler());

  // Deadline-aware synchronous RPC. `on_fault(status)` translates an injected
  // fault or an expired deadline into the handler's return type, so callers
  // keep their native result shape (e.g. AppendEntriesReply with peer_down).
  // `deadline_nanos` (0 = options().default_rpc_deadline_nanos) bounds the
  // wait; the operation's DeadlineBudget tightens it further. IMPORTANT: a
  // timed-out handler may still run later, so handlers passed here must own
  // their captures (no references to caller stack frames).
  template <typename Fn, typename FaultFn>
  auto Call(Fn&& handler, FaultFn&& on_fault, int64_t deadline_nanos = 0)
      -> decltype(handler());

  // Asynchronous RPC: counts the RPC and enqueues the handler, but does not
  // charge the RTT (callers issuing a parallel fan-out charge it once via
  // Network::ChargeRtt and then wait on all futures). The no-translator form
  // is delivery-reliable: the fault plan cannot drop it (used for 2PC
  // phase-two decisions, which a real coordinator retries until delivered).
  template <typename Fn>
  auto CallAsync(Fn&& handler) -> std::future<decltype(handler())>;

  // Fault-aware asynchronous RPC: preflight failures resolve the returned
  // future immediately with `on_fault(status)`.
  template <typename Fn, typename FaultFn>
  auto CallAsync(Fn&& handler, FaultFn&& on_fault) -> std::future<decltype(handler())>;

  // Fault-aware asynchronous RPC for a *duplicate* of an in-flight request
  // (hedged reads). The duplicate overlaps the original's round trip, so it
  // counts toward the fleet-wide RPC total but NOT the calling operation's
  // per-thread counter: OpResult::rpcs reports round trips the op needed, and
  // a hedge winner must not double-count the loser.
  template <typename Fn, typename FaultFn>
  auto CallAsyncDuplicate(Fn&& handler, FaultFn&& on_fault)
      -> std::future<decltype(handler())>;

  // Runs `handler` on this server without charging network latency. Models
  // server-local work initiated by the server itself (compaction, apply
  // threads are separate; this is for intra-chassis hops).
  template <typename Fn>
  auto CallLocal(Fn&& handler) -> decltype(handler());

  // Blocks until every queued and in-flight handler has finished. Owners of
  // handler-referenced state (Raft nodes, TafDB shards) drain before freeing
  // it: a deadline-expired caller abandons its handler, which may still be
  // queued here. Requires the server not be paused by the fault plan.
  void Drain() { pool_.WaitIdle(); }

  const std::string& name() const { return name_; }
  size_t workers() const { return pool_.num_workers(); }
  uint64_t completed_tasks() const { return pool_.completed_tasks(); }
  size_t queue_depth() const { return pool_.QueueDepth(); }
  Network* network() const { return network_; }

  // The repo-wide definition of "this server is busy": queue depth at or
  // beyond `threshold` (<= 0 means always busy). IndexService follower-read
  // offload and the admission policy both read this predicate.
  bool Busy(int threshold) const {
    return AdmissionController::QueueBusy(static_cast<int>(pool_.QueueDepth()), threshold);
  }

  AdmissionController& admission() { return admission_; }
  CircuitBreaker& breaker() { return breaker_; }

  // Finished span subtrees recorded by traced handlers on this server, held
  // until the owning op's StitchTrace claims them (or they age out as
  // orphans - the fate of spans whose caller timed out).
  obs::SpanDepot& depot() { return depot_; }

  // Feeds this server's circuit breaker with an RPC outcome observed by a
  // caller. Only overload signals (kOverloaded, kTimeout) count as breaker
  // failures; every other code proves the destination is answering. Callers
  // that consume fault-aware CallAsync futures directly (e.g. hedged reads)
  // must report the consumed outcome here themselves - the async path cannot
  // observe it.
  void RecordOutcome(const Status& status) {
    if (status.IsOverloaded() || status.code() == StatusCode::kTimeout) {
      breaker_.RecordFailure(MonotonicNanos());
    } else {
      breaker_.RecordSuccess();
    }
  }

 private:
  // Decorates a handler with the server-side fabric hooks: pause gate,
  // RPC-origin tagging, propagation of the caller's absolute deadline onto
  // the worker thread, and (for sheddable handlers on admission-enabled
  // servers) expired-work shedding: a handler whose deadline lapsed while
  // queued returns a poisoned Timeout instead of burning a worker.
  template <typename Fn>
  auto Wrap(Fn&& handler, int64_t absolute_deadline_nanos, bool sheddable = false);

  // Caller-observed latency of synchronous RPCs to this server (queueing +
  // handler service time), recorded on every exit path.
  class ScopedRpcTimer {
   public:
    explicit ScopedRpcTimer(ServerExecutor* server) : server_(server) {
      server_->calls_metric_->Add();
    }
    ~ScopedRpcTimer() { server_->call_latency_metric_->Record(timer_.ElapsedNanos()); }

    ScopedRpcTimer(const ScopedRpcTimer&) = delete;
    ScopedRpcTimer& operator=(const ScopedRpcTimer&) = delete;

   private:
    ServerExecutor* server_;
    Stopwatch timer_;
  };

  // Admission verdict for enqueuing one more handler right now, at the
  // calling thread's priority tier and cost (batch RPCs tag their scope with
  // ScopedOpCost so they are charged their true weight). Gated before reading
  // the queue depth so a disabled controller costs the hot path nothing
  // (QueueDepth locks the pool).
  Status AdmitCall() {
    if (!admission_.enabled()) {
      return Status::Ok();
    }
    return admission_.Admit(static_cast<int>(pool_.QueueDepth()), CurrentOpPriority(),
                            CurrentOpCost());
  }

  // Shared body of the fault-aware CallAsync variants (everything after the
  // RPC has been counted).
  template <typename Fn, typename FaultFn>
  auto CallAsyncCounted(Fn&& handler, FaultFn&& on_fault) -> std::future<decltype(handler())>;

  Network* network_;
  std::string name_;
  ThreadPool pool_;
  AdmissionController admission_;
  CircuitBreaker breaker_;
  obs::SpanDepot depot_;
  // Per-link instruments (net.server.<name>.*), resolved once at construction.
  obs::Counter* calls_metric_;
  obs::HistogramMetric* call_latency_metric_;
};

class Network {
 public:
  explicit Network(NetworkOptions options = {});
  ~Network();

  ServerExecutor* AddServer(const std::string& name, size_t workers);

  // Sleeps one round trip on the calling thread and bumps the thread's RPC
  // counter.
  void ChargeRtt();
  // Charges a scaled round trip (e.g. 0.5 for the RDMA proof-of-concept knob).
  void ChargeRtt(double scale);
  // Sleeps a scaled round trip without bumping RPC counters. Used for
  // parallel fan-outs: the caller issues CallAsync to N servers (each counts
  // one RPC) and then waits a single shared round trip.
  void InjectDelay(double scale = 1.0);

  // Modeled handler CPU: sleeps `nanos` on the calling (server worker)
  // thread. Call from inside RPC handlers only - holding the worker slot is
  // what creates the capacity ceiling.
  void ChargeService(int64_t nanos);
  // Convenience units derived from the options.
  void ChargeDbRowAccess(int64_t rows = 1) { ChargeService(rows * options_.db_row_access_nanos); }
  void ChargeMemIndexAccess(int64_t probes = 1) {
    ChargeService(probes * options_.mem_index_access_nanos);
  }

  // --- fault plan ------------------------------------------------------------

  FaultInjector& faults() { return faults_; }
  const FaultStats& fault_stats() const { return faults_.stats(); }

  // Caller-side fault verdict for an RPC from the current thread's origin to
  // `destination`: applies partitions, crashes, probabilistic drops and
  // latency spikes (spikes sleep here, clamped to the operation's remaining
  // DeadlineBudget). Components that route to servers without going through
  // ServerExecutor::Call (e.g. RaftGroup::Propose) call this directly.
  Status PreflightRpc(const std::string& destination);

  // Records a caller-side deadline expiry in the fault stats.
  void NoteCallerTimeout() { faults_.NoteTimeout(); }

  // --- distributed tracing ---------------------------------------------------

  // Claims every span batch deposited for `trace` across this network's
  // server depots and grafts them under the caller-side spans they hang off.
  // Nested hops (a handler's own RPCs) graft iteratively. Call from the op's
  // owning thread at op end; batches that deposit later (handler outlived a
  // timed-out caller) simply stay in their depot as orphans.
  void StitchTrace(obs::OpTrace* trace);

  // Batches currently sitting unclaimed across all server depots.
  size_t UnclaimedSpanBatches() const;

  ServerExecutor* FindServer(const std::string& name) const;

  const NetworkOptions& options() const { return options_; }
  void set_rtt_nanos(int64_t rtt_nanos) { options_.rtt_nanos = rtt_nanos; }

  uint64_t total_rpcs() const { return total_rpcs_.load(std::memory_order_relaxed); }

  // --- per-thread RPC accounting -------------------------------------------
  // Services wrap each metadata operation in a ScopedRpcCounter to report the
  // number of round trips that operation needed.
  static int64_t ThreadRpcCount();
  static void ResetThreadRpcCount();

  // Name of the server the current thread originates RPCs from ("" = client).
  static const std::string& ThreadOrigin();

 private:
  friend class ServerExecutor;
  friend class ScopedNetOrigin;
  void NoteRpc();
  // A duplicate of an in-flight RPC (hedge): fleet-total only, never the
  // issuing thread's counter.
  void NoteDuplicateRpc();

  // Stable pointer copy of the server table for iteration without the lock.
  std::vector<ServerExecutor*> SnapshotServers() const;

  NetworkOptions options_;
  FaultInjector faults_;
  // Guards servers_ - AddServer runs at runtime when a Raft group allocates a
  // replacement replica. Entries are append-only; pointers stay stable.
  mutable std::mutex servers_mu_;
  std::vector<std::unique_ptr<ServerExecutor>> servers_;
  std::atomic<uint64_t> total_rpcs_{0};
};

// RAII: zeroes the calling thread's RPC counter on construction and exposes
// the count accumulated during its lifetime.
class ScopedRpcCounter {
 public:
  ScopedRpcCounter() { Network::ResetThreadRpcCount(); }
  int64_t count() const { return Network::ThreadRpcCount(); }
};

// --- template implementations ----------------------------------------------

template <typename Fn>
auto ServerExecutor::Wrap(Fn&& handler, int64_t absolute_deadline_nanos, bool sheddable) {
  // Captured on the caller's thread at enqueue time: the propagation record
  // for the caller's trace (if any), the timestamp that starts the queue-wait
  // segment, and the caller's priority tier (which names it).
  const obs::TraceContext tctx = obs::CurrentTraceContext();
  const int64_t enqueue_nanos = tctx.sampled ? MonotonicNanos() : 0;
  const OpPriority enqueue_priority =
      tctx.sampled ? CurrentOpPriority() : OpPriority::kForeground;
  return [this, absolute_deadline_nanos, sheddable, tctx, enqueue_nanos, enqueue_priority,
          fn = std::forward<Fn>(handler)]() mutable {
    using R = decltype(fn());
    if (absolute_deadline_nanos > 0 && MonotonicNanos() >= absolute_deadline_nanos) {
      // The caller has already given up on this handler. Shed it if the
      // result type can carry the poison and the path opted in (delivery-
      // reliable calls and raft traffic never shed); otherwise count the
      // wasted execution so the overload drill can see it.
      if constexpr (std::is_constructible_v<R, Status>) {
        if (sheddable && admission_.enabled()) {
          admission_.RecordShedExpired();
          if (tctx.sampled) {
            // The handler never ran: its whole fabric life was queue wait.
            obs::OpTrace dropped;
            dropped.AddClosedSpan(std::string("queue.shed.") + OpPriorityName(enqueue_priority),
                                  enqueue_nanos, MonotonicNanos(), obs::SpanKind::kQueue, name_);
            depot_.Deposit({tctx.trace_id, tctx.parent_span_uid, dropped.TakeSpans()});
          }
          return R(Status::Timeout("shed: deadline expired while queued on " + name_));
        }
      }
      admission_.RecordExpiredExecuted();
    }
    network_->faults().HandlerEntry(name_);
    ScopedNetOrigin origin(name_);
    ScopedAbsoluteDeadline deadline(absolute_deadline_nanos);
    // A traced handler records its fabric segments - queue wait (including
    // any pause-gate stall, measured from enqueue to here) and service time -
    // plus everything it opens itself into a handler-local trace, deposited
    // on completion. It never touches the caller's trace: if the caller timed
    // out and died, the deposit just goes unclaimed. See Network::StitchTrace.
    std::optional<obs::OpTrace> remote;
    std::optional<obs::ScopedThreadTrace> install;
    int service_span = -1;
    if (tctx.sampled) {
      remote.emplace();
      remote->AddClosedSpan(std::string("queue.") + OpPriorityName(enqueue_priority),
                            enqueue_nanos, MonotonicNanos(), obs::SpanKind::kQueue, name_);
      service_span = remote->Begin("service", obs::SpanKind::kService, name_);
      install.emplace(&*remote);
    }
    Stopwatch service_timer;
    auto finish = [&]() {
      admission_.RecordServiceTime(service_timer.ElapsedNanos());
      if (remote.has_value()) {
        install.reset();  // uninstall before the spans move out
        remote->End(service_span);
        depot_.Deposit({tctx.trace_id, tctx.parent_span_uid, remote->TakeSpans()});
      }
    };
    if constexpr (std::is_void_v<R>) {
      fn();
      finish();
    } else {
      R result = fn();
      finish();
      return result;
    }
  };
}

template <typename Fn>
auto ServerExecutor::Call(Fn&& handler) -> decltype(handler()) {
  using R = decltype(handler());
  ScopedRpcTimer rpc_timer(this);
  // The rpc span's self time (duration minus the grafted queue/service
  // segments and nested wire charges) is reply-wait and fabric overhead -
  // wire, from the caller's perspective.
  obs::ScopedSpan rpc_span(obs::CurrentThreadTrace(), "rpc.", name_, obs::SpanKind::kWire);
  network_->ChargeRtt();
  if constexpr (std::is_constructible_v<R, Status>) {
    Status pre = network_->PreflightRpc(name_);
    if (!pre.ok()) {
      return R(std::move(pre));
    }
    Status admit = AdmitCall();
    if (!admit.ok()) {
      return R(std::move(admit));
    }
  }
  auto future =
      pool_.SubmitWithResult(Wrap(std::forward<Fn>(handler), DeadlineBudget::AbsoluteNanos()));
  return future.get();
}

template <typename Fn, typename FaultFn>
auto ServerExecutor::Call(Fn&& handler, FaultFn&& on_fault, int64_t deadline_nanos)
    -> decltype(handler()) {
  ScopedRpcTimer rpc_timer(this);
  obs::ScopedSpan rpc_span(obs::CurrentThreadTrace(), "rpc.", name_, obs::SpanKind::kWire);
  if (!breaker_.Allow(MonotonicNanos())) {
    return on_fault(Status::Overloaded("breaker open for " + name_));
  }
  network_->ChargeRtt();
  Status pre = network_->PreflightRpc(name_);
  if (!pre.ok()) {
    RecordOutcome(pre);
    return on_fault(std::move(pre));
  }
  Status admit = AdmitCall();
  if (!admit.ok()) {
    RecordOutcome(admit);
    return on_fault(std::move(admit));
  }
  const int64_t cap =
      deadline_nanos > 0 ? deadline_nanos : network_->options().default_rpc_deadline_nanos;
  const int64_t wait_nanos = DeadlineBudget::Clamp(cap);
  if (wait_nanos <= 0) {
    network_->NoteCallerTimeout();
    return on_fault(Status::Timeout("deadline exhausted before rpc to " + name_));
  }
  auto future = pool_.SubmitWithResult(
      Wrap(std::forward<Fn>(handler), MonotonicNanos() + wait_nanos, /*sheddable=*/true));
  if (future.wait_for(std::chrono::nanoseconds(wait_nanos)) != std::future_status::ready) {
    RecordOutcome(Status::Timeout());
    network_->NoteCallerTimeout();
    return on_fault(Status::Timeout("rpc to " + name_ + " timed out"));
  }
  RecordOutcome(Status::Ok());
  return future.get();
}

template <typename Fn>
auto ServerExecutor::CallAsync(Fn&& handler) -> std::future<decltype(handler())> {
  network_->NoteRpc();
  return pool_.SubmitWithResult(
      Wrap(std::forward<Fn>(handler), DeadlineBudget::AbsoluteNanos()));
}

template <typename Fn, typename FaultFn>
auto ServerExecutor::CallAsync(Fn&& handler, FaultFn&& on_fault)
    -> std::future<decltype(handler())> {
  network_->NoteRpc();
  return CallAsyncCounted(std::forward<Fn>(handler), std::forward<FaultFn>(on_fault));
}

template <typename Fn, typename FaultFn>
auto ServerExecutor::CallAsyncDuplicate(Fn&& handler, FaultFn&& on_fault)
    -> std::future<decltype(handler())> {
  network_->NoteDuplicateRpc();
  return CallAsyncCounted(std::forward<Fn>(handler), std::forward<FaultFn>(on_fault));
}

template <typename Fn, typename FaultFn>
auto ServerExecutor::CallAsyncCounted(Fn&& handler, FaultFn&& on_fault)
    -> std::future<decltype(handler())> {
  using R = decltype(handler());
  auto fail_fast = [&](Status status) {
    std::promise<R> ready;
    ready.set_value(on_fault(std::move(status)));
    return ready.get_future();
  };
  if (!breaker_.Allow(MonotonicNanos())) {
    return fail_fast(Status::Overloaded("breaker open for " + name_));
  }
  Status pre = network_->PreflightRpc(name_);
  if (!pre.ok()) {
    RecordOutcome(pre);
    return fail_fast(std::move(pre));
  }
  Status admit = AdmitCall();
  if (!admit.ok()) {
    RecordOutcome(admit);
    return fail_fast(std::move(admit));
  }
  return pool_.SubmitWithResult(
      Wrap(std::forward<Fn>(handler), DeadlineBudget::AbsoluteNanos(), /*sheddable=*/true));
}

template <typename Fn>
auto ServerExecutor::CallLocal(Fn&& handler) -> decltype(handler()) {
  // Intra-chassis: no wire segment; queue/service still graft underneath.
  obs::ScopedSpan local_span(obs::CurrentThreadTrace(), "local.", name_, obs::SpanKind::kLogic);
  auto future =
      pool_.SubmitWithResult(Wrap(std::forward<Fn>(handler), DeadlineBudget::AbsoluteNanos()));
  return future.get();
}

}  // namespace mantle

#endif  // SRC_NET_NETWORK_H_
