// Simulated cluster fabric.
//
// Every logical machine in the evaluation topology (TafDB nodes, IndexNode
// leader/followers/learners, the LocoFS directory server, the InfiniFS rename
// coordinator) is a ServerExecutor: a named, bounded thread pool. An RPC from
// a client thread to a server
//   1. charges the configured round-trip latency on the caller's thread,
//   2. enqueues the handler on the destination server's pool (real queueing
//      delay under load -> CPU-ceiling effects), and
//   3. blocks on the handler's result.
//
// Per-thread RPC counters let services report how many round trips an
// operation needed (the paper's central lookup metric), and per-server task
// counters expose utilization for the benches.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/thread_pool.h"

namespace mantle {

struct NetworkOptions {
  // Full round-trip latency charged per RPC. The paper's testbed is 25 Gbps
  // Ethernet with "single RPC plus tens of microseconds" service floors; we
  // default to 80 us and scale everything relative to it.
  int64_t rtt_nanos = 80'000;
  // Portion of each injected wait that is busy-polled for precision. Zero by
  // default: the harness may run on few cores and spinning would starve the
  // very threads being simulated.
  int64_t spin_tail_nanos = 0;
  // Modeled CPU cost of one storage-engine row access on a TafDB server.
  // Handlers sleep this long while *occupying a bounded executor worker*, so
  // a server with W workers saturates at W / cost ops/s - that is how
  // single-node CPU ceilings (LocoFS's directory server, IndexNode before
  // TopDirPathCache) reproduce on arbitrary host hardware.
  int64_t db_row_access_nanos = 20'000;
  // Modeled CPU cost of one in-memory index probe (IndexTable level, LocoFS
  // dirserver hash lookup, TopDirPathCache hit).
  int64_t mem_index_access_nanos = 4'000;
  // When true, RPCs charge no latency (fast unit tests); counters still work.
  bool zero_latency = false;
};

class Network;

// One logical server with a fixed CPU budget (worker count).
class ServerExecutor {
 public:
  ServerExecutor(Network* network, std::string name, size_t workers);

  // Synchronous RPC: charge one RTT, run `handler` on this server, return its
  // result. Handler runs on a server worker; the calling thread blocks.
  template <typename Fn>
  auto Call(Fn&& handler) -> decltype(handler());

  // Asynchronous RPC: counts the RPC and enqueues the handler, but does not
  // charge the RTT (callers issuing a parallel fan-out charge it once via
  // Network::ChargeRtt and then wait on all futures).
  template <typename Fn>
  auto CallAsync(Fn&& handler) -> std::future<decltype(handler())>;

  // Runs `handler` on this server without charging network latency. Models
  // server-local work initiated by the server itself (compaction, apply
  // threads are separate; this is for intra-chassis hops).
  template <typename Fn>
  auto CallLocal(Fn&& handler) -> decltype(handler());

  const std::string& name() const { return name_; }
  size_t workers() const { return pool_.num_workers(); }
  uint64_t completed_tasks() const { return pool_.completed_tasks(); }
  size_t queue_depth() const { return pool_.QueueDepth(); }
  Network* network() const { return network_; }

 private:
  Network* network_;
  std::string name_;
  ThreadPool pool_;
};

class Network {
 public:
  explicit Network(NetworkOptions options = {});

  ServerExecutor* AddServer(const std::string& name, size_t workers);

  // Sleeps one round trip on the calling thread and bumps the thread's RPC
  // counter.
  void ChargeRtt();
  // Charges a scaled round trip (e.g. 0.5 for the RDMA proof-of-concept knob).
  void ChargeRtt(double scale);
  // Sleeps a scaled round trip without bumping RPC counters. Used for
  // parallel fan-outs: the caller issues CallAsync to N servers (each counts
  // one RPC) and then waits a single shared round trip.
  void InjectDelay(double scale = 1.0);

  // Modeled handler CPU: sleeps `nanos` on the calling (server worker)
  // thread. Call from inside RPC handlers only - holding the worker slot is
  // what creates the capacity ceiling.
  void ChargeService(int64_t nanos);
  // Convenience units derived from the options.
  void ChargeDbRowAccess(int64_t rows = 1) { ChargeService(rows * options_.db_row_access_nanos); }
  void ChargeMemIndexAccess(int64_t probes = 1) {
    ChargeService(probes * options_.mem_index_access_nanos);
  }

  const NetworkOptions& options() const { return options_; }
  void set_rtt_nanos(int64_t rtt_nanos) { options_.rtt_nanos = rtt_nanos; }

  uint64_t total_rpcs() const { return total_rpcs_.load(std::memory_order_relaxed); }

  // --- per-thread RPC accounting -------------------------------------------
  // Services wrap each metadata operation in a ScopedRpcCounter to report the
  // number of round trips that operation needed.
  static int64_t ThreadRpcCount();
  static void ResetThreadRpcCount();

 private:
  friend class ServerExecutor;
  void NoteRpc();

  NetworkOptions options_;
  std::vector<std::unique_ptr<ServerExecutor>> servers_;
  std::atomic<uint64_t> total_rpcs_{0};
};

// RAII: zeroes the calling thread's RPC counter on construction and exposes
// the count accumulated during its lifetime.
class ScopedRpcCounter {
 public:
  ScopedRpcCounter() { Network::ResetThreadRpcCount(); }
  int64_t count() const { return Network::ThreadRpcCount(); }
};

// --- template implementations ----------------------------------------------

template <typename Fn>
auto ServerExecutor::Call(Fn&& handler) -> decltype(handler()) {
  network_->ChargeRtt();
  auto future = pool_.SubmitWithResult(std::forward<Fn>(handler));
  return future.get();
}

template <typename Fn>
auto ServerExecutor::CallAsync(Fn&& handler) -> std::future<decltype(handler())> {
  network_->NoteRpc();
  return pool_.SubmitWithResult(std::forward<Fn>(handler));
}

template <typename Fn>
auto ServerExecutor::CallLocal(Fn&& handler) -> decltype(handler()) {
  auto future = pool_.SubmitWithResult(std::forward<Fn>(handler));
  return future.get();
}

}  // namespace mantle

#endif  // SRC_NET_NETWORK_H_
