#include "src/obs/critical_path.h"

#include <algorithm>
#include <map>

namespace mantle {
namespace obs {

namespace {

struct Walker {
  const std::vector<OpTrace::Span>& spans;
  const std::vector<std::vector<int>>& children;
  int64_t root_end;
  std::map<std::pair<std::string, int>, int64_t>& totals;

  int64_t EndOf(const OpTrace::Span& span) const {
    return span.end_nanos == 0 ? root_end : span.end_nanos;
  }

  void Attribute(const OpTrace::Span& span, int64_t nanos) {
    if (nanos > 0) {
      totals[{span.server, static_cast<int>(span.kind)}] += nanos;
    }
  }

  // Partitions [window_start, window_end) of span `idx` between its children
  // (recursively) and its own self time.
  void Walk(int idx, int64_t window_start, int64_t window_end) {
    const OpTrace::Span& span = spans[idx];
    int64_t cursor = window_start;
    for (int child_idx : children[idx]) {
      const OpTrace::Span& child = spans[child_idx];
      const int64_t child_start = std::max(child.start_nanos, cursor);
      const int64_t child_end = std::min(EndOf(child), window_end);
      if (child_end <= child_start) {
        continue;  // fully outside the window or covered by an earlier sibling
      }
      Attribute(span, child_start - cursor);  // gap before this child: self time
      Walk(child_idx, child_start, child_end);
      cursor = child_end;
    }
    Attribute(span, window_end - cursor);  // tail after the last child
  }
};

}  // namespace

PathAttribution AnalyzeCriticalPath(const std::vector<OpTrace::Span>& spans) {
  PathAttribution result;
  int root = -1;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == -1) {
      root = static_cast<int>(i);
      break;
    }
  }
  if (root < 0 || spans[root].end_nanos == 0) {
    return result;
  }
  result.root_nanos = spans[root].DurationNanos();

  std::vector<std::vector<int>> children(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const int parent = spans[i].parent;
    if (parent >= 0 && parent < static_cast<int>(spans.size())) {
      children[parent].push_back(static_cast<int>(i));
    }
  }
  for (auto& list : children) {
    std::sort(list.begin(), list.end(), [&spans](int a, int b) {
      return spans[a].start_nanos < spans[b].start_nanos;
    });
  }

  std::map<std::pair<std::string, int>, int64_t> totals;
  Walker walker{spans, children, spans[root].end_nanos, totals};
  walker.Walk(root, spans[root].start_nanos, spans[root].end_nanos);

  for (const auto& [key, nanos] : totals) {
    PathAttribution::Hop hop;
    hop.server = key.first;
    hop.kind = static_cast<SpanKind>(key.second);
    hop.nanos = nanos;
    switch (hop.kind) {
      case SpanKind::kQueue:
        result.queue_nanos += nanos;
        break;
      case SpanKind::kService:
        result.service_nanos += nanos;
        break;
      case SpanKind::kWire:
        result.wire_nanos += nanos;
        break;
      case SpanKind::kLogic:
        result.logic_nanos += nanos;
        break;
    }
    result.hops.push_back(std::move(hop));
  }
  std::sort(result.hops.begin(), result.hops.end(),
            [](const PathAttribution::Hop& a, const PathAttribution::Hop& b) {
              return a.nanos > b.nanos;
            });
  return result;
}

int64_t TotalDurationOfNamed(const std::vector<OpTrace::Span>& spans, std::string_view name) {
  int64_t total = 0;
  for (const OpTrace::Span& span : spans) {
    if (span.name == name) {
      total += span.DurationNanos();
    }
  }
  return total;
}

}  // namespace obs
}  // namespace mantle
