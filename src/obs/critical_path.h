// Critical-path analysis over a stitched span tree.
//
// Attributes every nanosecond of the root span to exactly one (server, kind)
// pair: a span's children claim the sub-intervals they cover (clipped to the
// parent and walked in start order; where siblings overlap - hedged
// duplicates racing - the earlier-starting span keeps the overlap and the
// later one contributes only its uncovered tail), and whatever no child
// covers is the span's own self time, attributed to its (server, kind).
// The partition is exact by construction: attributions sum to the root
// duration, which is what lets check.sh assert queue+service+wire+logic
// reconciles with the root and lets the benches cross-check trace-derived
// breakdowns against hand-instrumented ones.

#ifndef SRC_OBS_CRITICAL_PATH_H_
#define SRC_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace.h"

namespace mantle {
namespace obs {

struct PathAttribution {
  struct Hop {
    std::string server;  // "" = client/proxy thread
    SpanKind kind = SpanKind::kLogic;
    int64_t nanos = 0;
  };

  int64_t root_nanos = 0;
  // Rollups by kind (each the sum of the matching hops).
  int64_t queue_nanos = 0;
  int64_t service_nanos = 0;
  int64_t wire_nanos = 0;
  int64_t logic_nanos = 0;
  // Per-(server, kind) attribution, largest first. Sums to root_nanos.
  std::vector<Hop> hops;

  int64_t AttributedNanos() const {
    return queue_nanos + service_nanos + wire_nanos + logic_nanos;
  }
};

// Analyzes the tree rooted at the first root span (parent == -1). Spans with
// end_nanos == 0 (left open by a timed-out op) are treated as ending at the
// root's end. Returns a zero attribution for an empty or open-rooted trace.
PathAttribution AnalyzeCriticalPath(const std::vector<OpTrace::Span>& spans);

// Sum of the durations of every span named `name` (closed spans only).
// The benches use this to map trace spans onto hand-instrumented phases
// ("lookup", "execute", "index.rename_prepare").
int64_t TotalDurationOfNamed(const std::vector<OpTrace::Span>& spans, std::string_view name);

}  // namespace obs
}  // namespace mantle

#endif  // SRC_OBS_CRITICAL_PATH_H_
