#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <unordered_set>

#include "src/obs/metrics.h"

namespace mantle {
namespace obs {

FlightRecorder& FlightRecorder::Instance() {
  // Never destroyed: bench atexit hooks export from it during shutdown.
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  errors_.clear();
  slow_.clear();
  recent_.clear();
  window_.clear();
  exemplars_.clear();
  offered_ = 0;
}

void FlightRecorder::Reset() { Configure(Options{}); }

int64_t FlightRecorder::SlowThresholdLocked() const {
  if (window_.size() < options_.min_samples) {
    return INT64_MAX;
  }
  std::vector<int64_t> sorted(window_.begin(), window_.end());
  std::sort(sorted.begin(), sorted.end());
  size_t rank = static_cast<size_t>(options_.slow_quantile * static_cast<double>(sorted.size()));
  rank = std::min(rank, sorted.size() - 1);
  return sorted[rank];
}

void FlightRecorder::PushLocked(std::deque<RecordedTrace>& ring, size_t capacity,
                                RecordedTrace trace) {
  static Counter* evicted = Metrics::Instance().GetCounter("trace.recorder.evicted");
  if (capacity == 0) {
    return;
  }
  if (ring.size() >= capacity) {
    ring.pop_front();
    evicted->Add();
  }
  ring.push_back(std::move(trace));
}

void FlightRecorder::Offer(const OpTrace& trace, bool ok, bool deadline_exceeded) {
  static Counter* offered = Metrics::Instance().GetCounter("trace.recorder.offered");
  static Counter* kept_error = Metrics::Instance().GetCounter("trace.recorder.kept.error");
  static Counter* kept_slow = Metrics::Instance().GetCounter("trace.recorder.kept.slow");
  if (trace.spans().empty()) {
    return;
  }
  RecordedTrace rec;
  rec.trace_id = trace.trace_id();
  rec.op = trace.spans().front().name;
  rec.ok = ok;
  rec.deadline_exceeded = deadline_exceeded;
  // ElapsedNanos, not RootDurationNanos: when an outer caller opened the
  // trace before this op (nested root), the root span is still open here and
  // the tail-sampling decision needs the duration *so far*.
  rec.duration_nanos = trace.ElapsedNanos();

  std::lock_guard<std::mutex> lock(mu_);
  ++offered_;
  offered->Add();
  const int64_t slow_threshold = SlowThresholdLocked();
  window_.push_back(rec.duration_nanos);
  while (window_.size() > options_.quantile_window) {
    window_.pop_front();
  }
  if (!ok || deadline_exceeded) {
    rec.keep_reason = "error";
    rec.spans = trace.spans();
    kept_error->Add();
    PushLocked(errors_, options_.error_capacity, std::move(rec));
    return;
  }
  if (rec.duration_nanos >= slow_threshold) {
    rec.keep_reason = "slow";
    rec.spans = trace.spans();
    kept_slow->Add();
    PushLocked(slow_, options_.slow_capacity, std::move(rec));
    return;
  }
  rec.keep_reason = "recent";
  rec.spans = trace.spans();
  PushLocked(recent_, options_.recent_capacity, std::move(rec));
}

bool FlightRecorder::Contains(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto* ring : {&errors_, &slow_, &recent_}) {
    for (const RecordedTrace& rec : *ring) {
      if (rec.trace_id == trace_id) {
        return true;
      }
    }
  }
  return false;
}

size_t FlightRecorder::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_.size() + slow_.size() + recent_.size();
}

uint64_t FlightRecorder::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

std::vector<RecordedTrace> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RecordedTrace> out;
  std::unordered_set<uint64_t> seen;
  for (const auto* ring : {&errors_, &slow_, &recent_}) {
    for (const RecordedTrace& rec : *ring) {
      if (seen.insert(rec.trace_id).second) {
        out.push_back(rec);
      }
    }
  }
  return out;
}

std::vector<RecordedTrace> FlightRecorder::Slowest(size_t n) const {
  std::vector<RecordedTrace> all = Snapshot();
  std::sort(all.begin(), all.end(), [](const RecordedTrace& a, const RecordedTrace& b) {
    return a.duration_nanos > b.duration_nanos;
  });
  if (all.size() > n) {
    all.resize(n);
  }
  return all;
}

void FlightRecorder::NoteExemplar(const std::string& histogram, int64_t value_nanos,
                                  uint64_t trace_id) {
  TraceExemplar exemplar;
  exemplar.bucket = HistogramMetric::BucketIndex(value_nanos);
  exemplar.bucket_upper_bound_nanos = HistogramMetric::BucketUpperBound(exemplar.bucket);
  exemplar.value_nanos = value_nanos;
  exemplar.trace_id = trace_id;
  std::lock_guard<std::mutex> lock(mu_);
  exemplars_[histogram][exemplar.bucket] = exemplar;
}

std::vector<TraceExemplar> FlightRecorder::Exemplars(const std::string& histogram) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceExemplar> out;
  auto it = exemplars_.find(histogram);
  if (it == exemplars_.end()) {
    return out;
  }
  out.reserve(it->second.size());
  for (const auto& [bucket, exemplar] : it->second) {
    out.push_back(exemplar);
  }
  return out;
}

}  // namespace obs
}  // namespace mantle
