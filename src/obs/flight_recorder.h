// Tail-sampled flight recorder: a bounded in-memory store of *complete*
// stitched traces, biased toward the ops worth explaining.
//
// Every finished traced op is offered; the recorder keeps it when it is
//   * an error or deadline-exceeded op (always kept, own ring),
//   * slower than the rolling slow-quantile of recently offered ops
//     (tail sampling proper), or
//   * otherwise, as "recent" context in a small ring that churns fast.
//
// Alongside the rings it keeps histogram exemplars: for each
// (histogram, bucket) it remembers the last trace id whose recorded value
// landed in that bucket, so a latency histogram's p99 bucket links directly
// to a concrete trace that explains it.
//
// Process-global like obs::Metrics, for the same reason: instrumented call
// sites live in layers with no shared handle to thread through. Reset()
// between bench cells / tests.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace mantle {
namespace obs {

struct RecordedTrace {
  uint64_t trace_id = 0;
  std::string op;  // root span name
  bool ok = true;
  bool deadline_exceeded = false;
  int64_t duration_nanos = 0;
  std::string keep_reason;  // "error" | "slow" | "recent"
  std::vector<OpTrace::Span> spans;
};

// One (histogram, bucket) -> trace id link.
struct TraceExemplar {
  int bucket = 0;
  int64_t bucket_upper_bound_nanos = 0;
  int64_t value_nanos = 0;
  uint64_t trace_id = 0;
};

class FlightRecorder {
 public:
  struct Options {
    size_t error_capacity = 64;
    size_t slow_capacity = 64;
    size_t recent_capacity = 32;
    // Rolling window of root durations the slow threshold is derived from.
    size_t quantile_window = 128;
    // An op slower than this quantile of the window is tail-kept. Applied
    // only once the window holds `min_samples` ops.
    double slow_quantile = 0.90;
    size_t min_samples = 16;
  };

  static FlightRecorder& Instance();

  // Replaces the policy and clears all retained traces.
  void Configure(const Options& options);
  void Reset();

  // Offers a finished op's trace. Copies the spans if kept.
  void Offer(const OpTrace& trace, bool ok, bool deadline_exceeded);

  bool Contains(uint64_t trace_id) const;
  size_t Size() const;
  uint64_t offered() const;

  // Every retained trace (errors, slow tail, recent), deduplicated.
  std::vector<RecordedTrace> Snapshot() const;
  // The n slowest retained traces, slowest first.
  std::vector<RecordedTrace> Slowest(size_t n) const;

  // Links `value` (recorded into histogram `name`) to the trace. Call next to
  // the HistogramMetric::Record of the same value.
  void NoteExemplar(const std::string& histogram, int64_t value_nanos, uint64_t trace_id);
  std::vector<TraceExemplar> Exemplars(const std::string& histogram) const;

 private:
  FlightRecorder() = default;

  int64_t SlowThresholdLocked() const;
  void PushLocked(std::deque<RecordedTrace>& ring, size_t capacity, RecordedTrace trace);

  mutable std::mutex mu_;
  Options options_;
  std::deque<RecordedTrace> errors_;
  std::deque<RecordedTrace> slow_;
  std::deque<RecordedTrace> recent_;
  std::deque<int64_t> window_;  // recent root durations, offer order
  uint64_t offered_ = 0;
  std::map<std::string, std::map<int, TraceExemplar>> exemplars_;
};

}  // namespace obs
}  // namespace mantle

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
