#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace mantle {
namespace obs {

namespace {

bool ReadMetricsEnabledEnv() {
  const char* value = std::getenv("MANTLE_METRICS");
  if (value == nullptr || value[0] == '\0') {
    return true;
  }
  return !(std::strcmp(value, "off") == 0 || std::strcmp(value, "OFF") == 0 ||
           std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0 ||
           std::strcmp(value, "no") == 0);
}

std::atomic<size_t> g_next_cell{0};

void AtomicMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<int64_t>& slot, int64_t value) {
  int64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void AppendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

bool MetricsEnabled() {
  static const bool enabled = ReadMetricsEnabledEnv();
  return enabled;
}

size_t ThreadCellIndex(size_t cells) {
  thread_local const size_t assigned = g_next_cell.fetch_add(1, std::memory_order_relaxed);
  return assigned % cells;
}

// --- HistogramSnapshot -------------------------------------------------------

int64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0 || buckets.empty()) {
    return 0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 100.0) {
    p = 100.0;
  }
  // Rank of the target sample, 1-based; ceil so p=0 maps to the first sample.
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      int64_t bound = HistogramMetric::BucketUpperBound(static_cast<int>(i));
      return std::min(bound, max);
    }
  }
  return max;
}

// --- HistogramMetric ---------------------------------------------------------

HistogramMetric::HistogramMetric() : cells_(new Cell[kCells]) {
  for (size_t c = 0; c < kCells; ++c) {
    for (int b = 0; b < kBucketCount; ++b) {
      cells_[c].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

int HistogramMetric::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  // Values below 2^kSubBucketBits land in octave 0 linearly.
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  int octave = msb - kSubBucketBits + 1;
  if (octave >= kOctaves) {
    octave = kOctaves - 1;
    return octave * kSubBuckets + (kSubBuckets - 1);
  }
  // Linear position within the octave, using the kSubBucketBits bits below
  // the leading bit.
  const int sub = static_cast<int>((static_cast<uint64_t>(value) >> (msb - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  return octave * kSubBuckets + sub;
}

int64_t HistogramMetric::BucketUpperBound(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (octave == 0) {
    return sub;
  }
  // Octave o >= 1 spans [2^(o+B-1), 2^(o+B)); each sub-bucket is
  // 2^(o-1) wide.
  const int64_t base = int64_t{1} << (octave + kSubBucketBits - 1);
  const int64_t width = int64_t{1} << (octave - 1);
  return base + width * (sub + 1) - 1;
}

void HistogramMetric::Record(int64_t value) {
  if (!MetricsEnabled()) {
    return;
  }
  if (value < 0) {
    value = 0;
  }
  Cell& cell = cells_[ThreadCellIndex(kCells)];
  cell.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMax(cell.max, value);
  AtomicMin(cell.min, value);
}

HistogramSnapshot HistogramMetric::Aggregate() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBucketCount, 0);
  int64_t min_seen = INT64_MAX;
  for (size_t c = 0; c < kCells; ++c) {
    const Cell& cell = cells_[c];
    snap.count += cell.count.load(std::memory_order_relaxed);
    snap.sum += cell.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, cell.max.load(std::memory_order_relaxed));
    min_seen = std::min(min_seen, cell.min.load(std::memory_order_relaxed));
    for (int b = 0; b < kBucketCount; ++b) {
      snap.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  snap.min = (snap.count == 0) ? 0 : min_seen;
  return snap;
}

void HistogramMetric::Reset() {
  for (size_t c = 0; c < kCells; ++c) {
    Cell& cell = cells_[c];
    for (int b = 0; b < kBucketCount; ++b) {
      cell.buckets[b].store(0, std::memory_order_relaxed);
    }
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
    cell.max.store(0, std::memory_order_relaxed);
    cell.min.store(INT64_MAX, std::memory_order_relaxed);
  }
}

// --- Metrics -----------------------------------------------------------------

Metrics& Metrics::Instance() {
  static Metrics* instance = new Metrics();  // leaked: outlives all recorders
  return *instance;
}

Counter* Metrics::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* Metrics::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

HistogramMetric* Metrics::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<HistogramMetric>()).first;
  }
  return it->second.get();
}

void Metrics::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

uint64_t Metrics::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

int64_t Metrics::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Value();
}

HistogramSnapshot Metrics::HistogramValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : it->second->Aggregate();
}

std::string Metrics::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n";
  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    ";
    AppendJsonString(out, name);
    out << ": " << counter->Value();
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    ";
    AppendJsonString(out, name);
    out << ": " << gauge->Value();
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap = histogram->Aggregate();
    out << (first ? "\n" : ",\n") << "    ";
    AppendJsonString(out, name);
    out << ": {\"count\": " << snap.count << ", \"mean\": " << static_cast<int64_t>(snap.Mean())
        << ", \"min\": " << snap.min << ", \"p50\": " << snap.Percentile(50)
        << ", \"p90\": " << snap.Percentile(90) << ", \"p99\": " << snap.Percentile(99)
        << ", \"max\": " << snap.max << "}";
    first = false;
  }
  out << (first ? "}\n" : "\n  }\n");
  out << "}\n";
  return out.str();
}

}  // namespace obs
}  // namespace mantle
