// Process-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms, exported as one stable JSON document.
//
// Design constraints (this registry sits on every hot path in the system):
//   * Recording is lock-free: counters and histograms are sharded into
//     cache-line-isolated cells, each thread pinned to one cell round-robin,
//     so concurrent recorders touch disjoint atomics (relaxed ordering).
//     Aggregation happens only on scrape.
//   * Instruments are never deallocated: a pointer obtained from the registry
//     stays valid for the process lifetime, so call sites cache it in a
//     function-local static and pay one registry lookup ever.
//   * TSan-clean: all shared state is std::atomic; registration (cold path)
//     is mutex-protected.
//   * `MANTLE_METRICS=off` (or `0`) disables recording globally; instruments
//     still exist and scrape as zero, so consumers need no special casing.
//
// Naming convention: `layer.component.metric`, e.g. `index.cache.hit`,
// `net.rpc.count`, `tafdb.txn.abort`, `core.op.mkdir.latency_nanos`.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mantle {
namespace obs {

// Returns a small per-thread cell index in [0, cells); threads are assigned
// round-robin on first use so recorders spread evenly across cells.
size_t ThreadCellIndex(size_t cells);

// True unless the environment disabled metrics (MANTLE_METRICS=off|0|false).
// Evaluated once per process; the result is a cached branch on the hot path.
bool MetricsEnabled();

// --- counter -----------------------------------------------------------------

class Counter {
 public:
  static constexpr size_t kCells = 16;

  void Add(uint64_t delta = 1) {
    if (!MetricsEnabled()) {
      return;
    }
    cells_[ThreadCellIndex(kCells)].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Cell& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kCells];
};

// --- gauge -------------------------------------------------------------------

// A last-writer-wins instantaneous value (queue depths, backlog sizes).
// Add/Sub support callers that maintain the level incrementally.
class Gauge {
 public:
  void Set(int64_t value) {
    if (!MetricsEnabled()) {
      return;
    }
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!MetricsEnabled()) {
      return;
    }
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(int64_t delta) { Add(-delta); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// --- log-bucketed histogram --------------------------------------------------

// Aggregated view of a histogram at scrape time.
struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  std::vector<uint64_t> buckets;  // log-bucketed occupancy (see HistogramCell)

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  // p in [0, 100]; returns the upper bound of the bucket holding the
  // p-th-percentile sample. Monotone in p by construction.
  int64_t Percentile(double p) const;
};

// Power-of-two octaves subdivided linearly (HdrHistogram-lite, ~6% relative
// error), sharded into per-thread cells like Counter.
class HistogramMetric {
 public:
  static constexpr int kSubBucketBits = 4;  // 16 linear sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 44;  // covers up to ~2^47 ns (~1.6 days)
  static constexpr int kBucketCount = kOctaves * kSubBuckets;
  static constexpr size_t kCells = 8;

  HistogramMetric();

  void Record(int64_t value);

  HistogramSnapshot Aggregate() const;
  void Reset();

  static int BucketIndex(int64_t value);
  static int64_t BucketUpperBound(int index);

 private:
  struct Cell {
    std::atomic<uint64_t> buckets[kBucketCount];
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
    std::atomic<int64_t> min{INT64_MAX};
  };
  std::unique_ptr<Cell[]> cells_;
};

// --- registry ----------------------------------------------------------------

class Metrics {
 public:
  // The process-wide registry. Never destroyed (background threads may record
  // during static teardown).
  static Metrics& Instance();

  // Idempotent lookup-or-create; returned pointers are valid forever.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  HistogramMetric* GetHistogram(std::string_view name);

  // Zeroes every registered instrument (bench cells reuse the registry).
  void ResetAll();

  // The full registry as a JSON object with three sections ("counters",
  // "gauges", "histograms"), keys sorted lexicographically - the stable
  // schema BENCH_* reports and DumpStats embed. One key per line.
  std::string DumpJson() const;

  // Convenience scrapes (0 / empty snapshot when the name is unregistered).
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  HistogramSnapshot HistogramValue(std::string_view name) const;

 private:
  Metrics() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace mantle

#endif  // SRC_OBS_METRICS_H_
