// Explicit per-operation context.
//
// OpContext carries everything that used to travel through thread-locals for
// a single metadata operation: its deadline, an optional trace, and an
// optional retry-policy override. Core and index code take `const OpContext&`
// (or a nullable pointer) instead of consulting DeadlineBudget directly; the
// net/raft/txn layers below still read the thread-local budget, which
// ScopedOpContext keeps in sync.
//
// Ownership rules:
//   * OpContext is created on the op's calling thread and lives on its stack
//     for the duration of the op; callees borrow it by reference and must not
//     retain it past their return.
//   * `trace` (when non-null) is owned by the caller and is single-threaded:
//     spans may only be opened/closed on the op's calling thread. RPC
//     handlers (which can outlive a timed-out caller) record into their own
//     handler-local traces, stitched back via the SpanDepot - see
//     src/obs/trace.h.
//   * `retry_override` (when non-null) outlives the op; it replaces the
//     service-wide RetryOptions for this op only.

#ifndef SRC_OBS_OP_CONTEXT_H_
#define SRC_OBS_OP_CONTEXT_H_

#include "src/common/deadline.h"
#include "src/obs/trace.h"

namespace mantle {

struct RetryOptions;  // src/core/retry.h
class RetryBudget;    // src/admission/retry_budget.h

struct OpContext {
  Deadline deadline;
  obs::OpTrace* trace = nullptr;
  const RetryOptions* retry_override = nullptr;
  // Client-wide retry/hedge token bucket (owned by the service, shared across
  // all its ops). Null = unbudgeted (seed behaviour).
  RetryBudget* retry_budget = nullptr;

  // Null-safe accessors for code handed an `const OpContext* ctx` that may be
  // absent (public compatibility entry points pass nullptr and fall back to
  // the ambient thread-local deadline).
  static Deadline DeadlineOf(const OpContext* ctx) {
    return ctx == nullptr ? Deadline::Ambient() : ctx->deadline;
  }
  static obs::OpTrace* TraceOf(const OpContext* ctx) {
    return ctx == nullptr ? nullptr : ctx->trace;
  }
  static RetryBudget* BudgetOf(const OpContext* ctx) {
    return ctx == nullptr ? nullptr : ctx->retry_budget;
  }
};

// Publishes ctx.deadline to the thread-local DeadlineBudget and ctx.trace as
// the thread's recording trace, for the layers below core/index (net RPC
// waits, raft leader waits, txn coordination) that consume ambient context.
// Install once at the top of each op.
class ScopedOpContext {
 public:
  explicit ScopedOpContext(const OpContext& ctx)
      : shim_(ctx.deadline.absolute_nanos()), trace_shim_(ctx.trace) {}

 private:
  ScopedAbsoluteDeadline shim_;
  obs::ScopedThreadTrace trace_shim_;
};

}  // namespace mantle

#endif  // SRC_OBS_OP_CONTEXT_H_
