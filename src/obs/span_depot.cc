#include "src/obs/span_depot.h"

#include "src/obs/metrics.h"

namespace mantle {
namespace obs {

void SpanDepot::Deposit(SpanBatch batch) {
  static Counter* deposited = Metrics::Instance().GetCounter("trace.depot.deposited");
  static Counter* orphaned = Metrics::Instance().GetCounter("trace.depot.orphaned");
  std::lock_guard<std::mutex> lock(mu_);
  ++deposited_;
  deposited->Add();
  if (batches_.size() >= capacity_) {
    batches_.pop_front();
    ++evicted_;
    orphaned->Add();
  }
  batches_.push_back(std::move(batch));
}

std::vector<SpanBatch> SpanDepot::Claim(uint64_t trace_id) {
  static Counter* claimed = Metrics::Instance().GetCounter("trace.depot.claimed");
  std::vector<SpanBatch> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = batches_.begin(); it != batches_.end();) {
    if (it->trace_id == trace_id) {
      out.push_back(std::move(*it));
      it = batches_.erase(it);
    } else {
      ++it;
    }
  }
  claimed_ += out.size();
  if (!out.empty()) {
    claimed->Add(out.size());
  }
  return out;
}

size_t SpanDepot::UnclaimedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_.size();
}

std::vector<SpanBatch> SpanDepot::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {batches_.begin(), batches_.end()};
}

uint64_t SpanDepot::deposited() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deposited_;
}

uint64_t SpanDepot::claimed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return claimed_;
}

uint64_t SpanDepot::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

}  // namespace obs
}  // namespace mantle
