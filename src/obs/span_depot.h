// Server-local buffer of finished handler span subtrees.
//
// A traced RPC handler records queue/service/nested spans into a
// handler-local OpTrace and deposits the finished spans here, tagged with the
// originating trace id and the caller-side span uid they hang under. The
// caller's op thread claims matching batches at op end (Network::StitchTrace)
// and grafts them into its own trace.
//
// This indirection is what makes the orphan rule trivial: a handler whose
// caller timed out deposits like any other, but nobody ever claims the batch.
// It ages out of the bounded ring without the handler ever having touched the
// dead caller's trace. The ring is sized for "traces in flight", not history;
// eviction of an unclaimed batch is the expected fate of orphans.

#ifndef SRC_OBS_SPAN_DEPOT_H_
#define SRC_OBS_SPAN_DEPOT_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/obs/trace.h"

namespace mantle {
namespace obs {

struct SpanBatch {
  uint64_t trace_id = 0;
  // Caller-side anchor span (OpTrace::Graft target); 0 = root level.
  uint64_t parent_span_uid = 0;
  std::vector<OpTrace::Span> spans;
};

class SpanDepot {
 public:
  explicit SpanDepot(size_t capacity = 256) : capacity_(capacity) {}

  SpanDepot(const SpanDepot&) = delete;
  SpanDepot& operator=(const SpanDepot&) = delete;

  // Appends a finished batch; evicts the oldest unclaimed batch when full.
  void Deposit(SpanBatch batch);

  // Removes and returns every batch recorded for `trace_id`.
  std::vector<SpanBatch> Claim(uint64_t trace_id);

  // Batches deposited but not (yet) claimed - orphans-in-waiting.
  size_t UnclaimedCount() const;
  // Copies the unclaimed batches (test/debug inspection).
  std::vector<SpanBatch> Snapshot() const;

  uint64_t deposited() const;
  uint64_t claimed() const;
  // Unclaimed batches that aged out of the ring (the terminal orphan count).
  uint64_t evicted() const;

 private:
  mutable std::mutex mu_;
  std::deque<SpanBatch> batches_;
  const size_t capacity_;
  uint64_t deposited_ = 0;
  uint64_t claimed_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace obs
}  // namespace mantle

#endif  // SRC_OBS_SPAN_DEPOT_H_
