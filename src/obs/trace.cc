#include "src/obs/trace.h"

#include <atomic>
#include <sstream>

namespace mantle {
namespace obs {

namespace {

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NextSpanUid() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

thread_local OpTrace* t_current_trace = nullptr;
thread_local ScopedTraceCapture* t_capture = nullptr;

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kLogic:
      return "logic";
    case SpanKind::kQueue:
      return "queue";
    case SpanKind::kService:
      return "service";
    case SpanKind::kWire:
      return "wire";
  }
  return "logic";
}

OpTrace::OpTrace() : trace_id_(NextTraceId()) {}

int OpTrace::Begin(std::string name, SpanKind kind, std::string server) {
  Span span;
  span.name = std::move(name);
  span.start_nanos = MonotonicNanos();
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = static_cast<int>(open_.size());
  span.uid = NextSpanUid();
  span.kind = kind;
  span.server = std::move(server);
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(id);
  return id;
}

void OpTrace::End(int id) {
  if (id < 0 || id >= static_cast<int>(spans_.size())) {
    return;
  }
  const int64_t now = MonotonicNanos();
  // Close any nested spans the caller forgot (early returns inside a span).
  while (!open_.empty()) {
    const int top = open_.back();
    open_.pop_back();
    if (spans_[top].end_nanos == 0) {
      spans_[top].end_nanos = now;
    }
    if (top == id) {
      return;
    }
  }
}

int OpTrace::AddClosedSpan(std::string name, int64_t start_nanos, int64_t end_nanos,
                           SpanKind kind, std::string server) {
  Span span;
  span.name = std::move(name);
  span.start_nanos = start_nanos;
  span.end_nanos = end_nanos;
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = static_cast<int>(open_.size());
  span.uid = NextSpanUid();
  span.kind = kind;
  span.server = std::move(server);
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  return id;
}

std::vector<OpTrace::Span> OpTrace::TakeSpans() {
  open_.clear();
  std::vector<Span> out;
  out.swap(spans_);
  return out;
}

int OpTrace::IndexOfUid(uint64_t uid) const {
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].uid == uid) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool OpTrace::Graft(std::vector<Span>& batch_spans, uint64_t parent_uid) {
  int anchor = -1;
  if (parent_uid != 0) {
    anchor = IndexOfUid(parent_uid);
    if (anchor < 0) {
      return false;
    }
  }
  const int base = static_cast<int>(spans_.size());
  const int depth_shift = anchor >= 0 ? spans_[anchor].depth + 1 : 0;
  spans_.reserve(spans_.size() + batch_spans.size());
  for (Span& span : batch_spans) {
    span.parent = span.parent < 0 ? anchor : base + span.parent;
    span.depth += depth_shift;
    spans_.push_back(std::move(span));
  }
  batch_spans.clear();
  return true;
}

std::string OpTrace::Render() const {
  std::ostringstream out;
  for (const Span& span : spans_) {
    for (int i = 0; i < span.depth; ++i) {
      out << "  ";
    }
    out << span.name;
    if (!span.server.empty()) {
      out << " @" << span.server;
    }
    out << "  " << span.DurationNanos() << "ns\n";
  }
  return out.str();
}

OpTrace* CurrentThreadTrace() { return t_current_trace; }

TraceContext CurrentTraceContext() {
  if (t_current_trace == nullptr) {
    return TraceContext{};
  }
  return TraceContext{t_current_trace->trace_id(), t_current_trace->OpenSpanUid(), true};
}

ScopedThreadTrace::ScopedThreadTrace(OpTrace* trace) : saved_(t_current_trace) {
  if (trace != nullptr) {
    t_current_trace = trace;
  }
}

ScopedThreadTrace::~ScopedThreadTrace() { t_current_trace = saved_; }

ScopedTraceCapture::ScopedTraceCapture() : saved_(t_capture) { t_capture = this; }

ScopedTraceCapture::~ScopedTraceCapture() { t_capture = saved_; }

ScopedTraceCapture* ThreadTraceCapture() { return t_capture; }

}  // namespace obs
}  // namespace mantle
