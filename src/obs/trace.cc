#include "src/obs/trace.h"

#include <sstream>

namespace mantle {
namespace obs {

int OpTrace::Begin(std::string name) {
  Span span;
  span.name = std::move(name);
  span.start_nanos = MonotonicNanos();
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = static_cast<int>(open_.size());
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(id);
  return id;
}

void OpTrace::End(int id) {
  if (id < 0 || id >= static_cast<int>(spans_.size())) {
    return;
  }
  const int64_t now = MonotonicNanos();
  // Close any nested spans the caller forgot (early returns inside a span).
  while (!open_.empty()) {
    const int top = open_.back();
    open_.pop_back();
    if (spans_[top].end_nanos == 0) {
      spans_[top].end_nanos = now;
    }
    if (top == id) {
      return;
    }
  }
}

std::string OpTrace::Render() const {
  std::ostringstream out;
  for (const Span& span : spans_) {
    for (int i = 0; i < span.depth; ++i) {
      out << "  ";
    }
    out << span.name << "  " << span.DurationNanos() << "ns\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace mantle
