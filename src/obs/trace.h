// Request-scoped trace spans.
//
// An OpTrace belongs to exactly one in-flight metadata operation and records
// a tree of timed spans (op root -> lookup -> index.resolve -> ...). It is
// NOT thread-safe by design: spans must be opened and closed on the op's
// calling thread only. Server-side RPC handlers may outlive a timed-out
// caller (see src/net/network.h), so handlers must never touch the caller's
// trace - cross-thread activity is visible through metrics instead.
//
// All of the API is null-safe: passing a nullptr OpTrace* (tracing disabled)
// makes every call a no-op, so instrumented code needs no branches.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"

namespace mantle {
namespace obs {

class OpTrace {
 public:
  struct Span {
    std::string name;
    int64_t start_nanos = 0;
    int64_t end_nanos = 0;  // 0 while the span is still open
    int parent = -1;        // index into spans(); -1 for the root
    int depth = 0;

    int64_t DurationNanos() const {
      return end_nanos == 0 ? 0 : end_nanos - start_nanos;
    }
  };

  explicit OpTrace(std::string op_name) { Begin(std::move(op_name)); }
  OpTrace() = default;

  OpTrace(const OpTrace&) = delete;
  OpTrace& operator=(const OpTrace&) = delete;

  // Opens a span as a child of the innermost open span; returns its id.
  int Begin(std::string name);
  // Closes span `id` (and any children left open inside it).
  void End(int id);

  const std::vector<Span>& spans() const { return spans_; }

  // Total duration of the first (root) span, 0 if absent or still open.
  int64_t RootDurationNanos() const {
    return spans_.empty() ? 0 : spans_.front().DurationNanos();
  }

  // Human-readable indented rendering ("name  123456ns" per line).
  std::string Render() const;

 private:
  std::vector<Span> spans_;
  std::vector<int> open_;  // stack of open span ids
};

// RAII span; tolerates trace == nullptr.
class ScopedSpan {
 public:
  ScopedSpan(OpTrace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) {
      id_ = trace_->Begin(name);
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->End(id_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  OpTrace* trace_;
  int id_ = -1;
};

}  // namespace obs
}  // namespace mantle

#endif  // SRC_OBS_TRACE_H_
