// Request-scoped trace spans with cross-RPC propagation.
//
// An OpTrace belongs to exactly one in-flight metadata operation and records
// a tree of timed spans (op root -> lookup -> rpc.tafdb-0 -> ...). Each
// OpTrace is still single-threaded: spans are opened and closed on exactly
// one thread at a time. Distribution works by *copying subtrees between
// traces*, never by sharing one:
//
//   * The op's calling thread owns the root OpTrace (via OpContext).
//   * ScopedThreadTrace publishes "the trace this thread is currently
//     recording into" as a thread-local; instrumented code anywhere below
//     (raft propose, txn phases, fabric wire charges) reads it with
//     CurrentThreadTrace() and needs no plumbed parameter.
//   * When a traced thread enqueues an RPC, ServerExecutor::Wrap captures a
//     TraceContext{trace_id, parent_span_uid, sampled} by value. The server
//     worker records its own handler-local OpTrace (queue/service segments
//     plus whatever the handler opens) and deposits the finished spans into
//     the server's SpanDepot. It never touches the caller's trace, so a
//     handler outliving a timed-out caller is safe: its spans simply stay in
//     the depot as orphans.
//   * Network::StitchTrace sweeps the depots at op end and Grafts every
//     deposited subtree under the caller-side span it hung off (matched by
//     span uid). Hedged duplicates and retries stitch the same way - each
//     enqueue captured its own parent uid.
//
// All of the client-facing API is null-safe: passing a nullptr OpTrace*
// (tracing disabled) makes every call a no-op, so instrumented code needs no
// branches, and the fabric's fast path pays one thread-local read.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"

namespace mantle {
namespace obs {

// What a span's *self time* (duration not covered by child spans) was spent
// on. The critical-path analyzer aggregates by (server, kind).
enum class SpanKind : uint8_t {
  kLogic = 0,    // caller-side computation (path walk, cache probes)
  kQueue = 1,    // waiting in a server's bounded executor queue (or pause gate)
  kService = 2,  // handler running on a server worker
  kWire = 3,     // network round trips, injected delays, reply waits
};

const char* SpanKindName(SpanKind kind);

// The per-RPC propagation record. Captured by value on the caller thread at
// enqueue time; `parent_span_uid` anchors the server-side subtree when the
// depot batch is stitched back.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_uid = 0;
  bool sampled = false;
};

class OpTrace {
 public:
  struct Span {
    std::string name;
    int64_t start_nanos = 0;
    int64_t end_nanos = 0;  // 0 while the span is still open
    int parent = -1;        // index into spans(); -1 for a root
    int depth = 0;
    uint64_t uid = 0;  // process-unique; stitch anchor for remote subtrees
    SpanKind kind = SpanKind::kLogic;
    std::string server;  // recording server; "" = client/proxy thread

    int64_t DurationNanos() const {
      return end_nanos == 0 ? 0 : end_nanos - start_nanos;
    }
  };

  explicit OpTrace(std::string op_name) : OpTrace() { Begin(std::move(op_name)); }
  OpTrace();

  OpTrace(const OpTrace&) = delete;
  OpTrace& operator=(const OpTrace&) = delete;

  // Process-unique id shared by every span batch belonging to this op.
  uint64_t trace_id() const { return trace_id_; }

  // Opens a span as a child of the innermost open span; returns its id.
  int Begin(std::string name) { return Begin(std::move(name), SpanKind::kLogic, {}); }
  int Begin(std::string name, SpanKind kind, std::string server);
  // Closes span `id` (and any children left open inside it).
  void End(int id);

  // Records an already-finished interval as a child of the innermost open
  // span (queue segments are only known once the handler starts).
  int AddClosedSpan(std::string name, int64_t start_nanos, int64_t end_nanos, SpanKind kind,
                    std::string server);

  const std::vector<Span>& spans() const { return spans_; }

  // Moves the recorded spans out (for depositing into a SpanDepot); the trace
  // is left empty.
  std::vector<Span> TakeSpans();

  // Uid of the innermost open span (the parent a nested RPC would stitch
  // under); 0 when nothing is open.
  uint64_t OpenSpanUid() const { return open_.empty() ? 0 : spans_[open_.back()].uid; }

  // Appends a remote subtree under the span with uid `parent_uid` (0 = attach
  // at root level), fixing up parent indices and depths. `batch_spans` use
  // batch-local parent indices (-1 for batch roots). Consumes the batch and
  // returns true on success; returns false (batch untouched) when the anchor
  // is not in this trace.
  bool Graft(std::vector<Span>& batch_spans, uint64_t parent_uid);

  // Total duration of the first (root) span, 0 if absent or still open.
  int64_t RootDurationNanos() const {
    return spans_.empty() ? 0 : spans_.front().DurationNanos();
  }

  // Like RootDurationNanos, but usable mid-flight: while the root span is
  // still open this returns "elapsed so far" instead of 0. Sampling decisions
  // (flight-recorder tail policy) use this; final reporting should prefer
  // RootDurationNanos.
  int64_t ElapsedNanos() const {
    if (spans_.empty()) {
      return 0;
    }
    const Span& root = spans_.front();
    const int64_t end = root.end_nanos != 0 ? root.end_nanos : MonotonicNanos();
    return end - root.start_nanos;
  }

  // Human-readable indented rendering ("name @server  123456ns" per line).
  std::string Render() const;

 private:
  int IndexOfUid(uint64_t uid) const;

  uint64_t trace_id_;
  std::vector<Span> spans_;
  std::vector<int> open_;  // stack of open span ids
};

// RAII span; tolerates trace == nullptr.
class ScopedSpan {
 public:
  ScopedSpan(OpTrace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) {
      id_ = trace_->Begin(name);
    }
  }
  // Names the span "<prefix><server>" (the concatenation is skipped when
  // tracing is off, keeping the fabric's untraced path allocation-free).
  ScopedSpan(OpTrace* trace, const char* prefix, const std::string& server, SpanKind kind)
      : trace_(trace) {
    if (trace_ != nullptr) {
      id_ = trace_->Begin(std::string(prefix) + server, kind, server);
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->End(id_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  OpTrace* trace_;
  int id_ = -1;
};

// --- thread-local propagation ----------------------------------------------

// The trace the current thread is recording into (nullptr = untraced).
OpTrace* CurrentThreadTrace();

// Propagation record for an RPC enqueued by the current thread right now.
TraceContext CurrentTraceContext();

// RAII: installs `trace` as the current thread's recording target for its
// scope. Installed by ScopedOpContext on op threads and by the fabric on
// server workers running a traced handler.
class ScopedThreadTrace {
 public:
  explicit ScopedThreadTrace(OpTrace* trace);
  ~ScopedThreadTrace();

  ScopedThreadTrace(const ScopedThreadTrace&) = delete;
  ScopedThreadTrace& operator=(const ScopedThreadTrace&) = delete;

 private:
  OpTrace* saved_;
};

// --- opt-in trace capture for untraced entry points -------------------------

// Benches and the mdtest driver call the compatibility MetadataService entry
// points, which build their own OpContext internally. A ScopedTraceCapture
// installed on the calling thread makes MantleService::MakeOpContext attach a
// fresh OpTrace (owned by the capture) to every op started in its scope - one
// complete, stitched trace per operation, with zero signature changes.
class ScopedTraceCapture {
 public:
  ScopedTraceCapture();
  ~ScopedTraceCapture();

  ScopedTraceCapture(const ScopedTraceCapture&) = delete;
  ScopedTraceCapture& operator=(const ScopedTraceCapture&) = delete;

  // Allocates the trace for one op; stable address for the op's lifetime.
  OpTrace& NewTrace() { return traces_.emplace_back(); }

  std::deque<OpTrace>& traces() { return traces_; }

 private:
  ScopedTraceCapture* saved_;
  std::deque<OpTrace> traces_;
};

// The innermost capture installed on this thread (nullptr = none).
ScopedTraceCapture* ThreadTraceCapture();

}  // namespace obs
}  // namespace mantle

#endif  // SRC_OBS_TRACE_H_
