#include "src/obs/trace_export.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "src/obs/critical_path.h"

namespace mantle {
namespace obs {

namespace {

void AppendEscaped(std::ostringstream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

// Microsecond timestamps with nanosecond precision, as chrome expects.
void AppendMicros(std::ostringstream& out, int64_t nanos) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(nanos / 1000),
                static_cast<long long>(nanos % 1000));
  out << buf;
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<RecordedTrace>& traces) {
  // Stable pid per server row; 1 is the client/proxy fleet.
  std::map<std::string, int> pids;
  pids[""] = 1;
  for (const RecordedTrace& trace : traces) {
    for (const OpTrace::Span& span : trace.spans) {
      pids.emplace(span.server, 0);
    }
  }
  int next_pid = 1;
  for (auto& [server, pid] : pids) {
    pid = next_pid++;
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[";
  bool first_event = true;
  auto event_sep = [&]() {
    if (!first_event) {
      out << ",";
    }
    first_event = false;
    out << "\n";
  };

  for (const auto& [server, pid] : pids) {
    event_sep();
    out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"";
    AppendEscaped(out, server.empty() ? std::string("client") : server);
    out << "\"}}";
  }

  int tid = 0;
  for (const RecordedTrace& trace : traces) {
    ++tid;  // one thread row per trace so concurrent ops do not interleave
    for (const OpTrace::Span& span : trace.spans) {
      const int64_t end =
          span.end_nanos != 0
              ? span.end_nanos
              : (trace.spans.empty() ? span.start_nanos : trace.spans.front().end_nanos);
      event_sep();
      out << "{\"ph\":\"X\",\"name\":\"";
      AppendEscaped(out, span.name);
      out << "\",\"cat\":\"" << SpanKindName(span.kind) << "\",\"pid\":" << pids[span.server]
          << ",\"tid\":" << tid << ",\"ts\":";
      AppendMicros(out, span.start_nanos);
      out << ",\"dur\":";
      AppendMicros(out, end > span.start_nanos ? end - span.start_nanos : 0);
      out << ",\"args\":{\"trace_id\":" << trace.trace_id << ",\"op\":\"";
      AppendEscaped(out, trace.op);
      out << "\",\"keep\":\"" << trace.keep_reason << "\"}}";
    }
  }
  out << "\n],\n\"mantleTraceSummaries\":[";

  bool first_summary = true;
  for (const RecordedTrace& trace : traces) {
    const PathAttribution path = AnalyzeCriticalPath(trace.spans);
    std::set<std::string> servers;
    for (const OpTrace::Span& span : trace.spans) {
      if (!span.server.empty()) {
        servers.insert(span.server);
      }
    }
    if (!first_summary) {
      out << ",";
    }
    first_summary = false;
    out << "\n{\"trace_id\":" << trace.trace_id << ",\"op\":\"";
    AppendEscaped(out, trace.op);
    out << "\",\"ok\":" << (trace.ok ? "true" : "false")
        << ",\"deadline_exceeded\":" << (trace.deadline_exceeded ? "true" : "false")
        << ",\"keep\":\"" << trace.keep_reason << "\",\"duration_nanos\":" << trace.duration_nanos
        << ",\"root_nanos\":" << path.root_nanos << ",\"queue_nanos\":" << path.queue_nanos
        << ",\"service_nanos\":" << path.service_nanos << ",\"wire_nanos\":" << path.wire_nanos
        << ",\"logic_nanos\":" << path.logic_nanos << ",\"servers\":[";
    bool first_server = true;
    for (const std::string& server : servers) {
      if (!first_server) {
        out << ",";
      }
      first_server = false;
      out << "\"";
      AppendEscaped(out, server);
      out << "\"";
    }
    out << "]}";
  }
  out << "\n]}\n";
  return out.str();
}

bool WriteChromeTraceFile(const std::string& path, const std::vector<RecordedTrace>& traces) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string json = ToChromeTraceJson(traces);
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return written == json.size();
}

}  // namespace obs
}  // namespace mantle
