// Chrome trace_event JSON export for recorded traces.
//
// The output loads directly in chrome://tracing and Perfetto: each simulated
// server is a process row (metadata "process_name" events), each trace gets
// its own thread row within the servers it touched, and every span becomes a
// complete ("ph":"X") event with its kind as the category. Alongside the
// standard "traceEvents" array the document carries a "mantleTraceSummaries"
// array (per-trace critical-path rollups) that tooling - check.sh's trace
// smoke in particular - can consume without re-deriving the tree. Viewers
// ignore unknown top-level keys.

#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"

namespace mantle {
namespace obs {

std::string ToChromeTraceJson(const std::vector<RecordedTrace>& traces);

// Writes ToChromeTraceJson of the given traces to `path`; returns false on
// I/O failure.
bool WriteChromeTraceFile(const std::string& path, const std::vector<RecordedTrace>& traces);

}  // namespace obs
}  // namespace mantle

#endif  // SRC_OBS_TRACE_EXPORT_H_
