#include "src/placement/heat_tracker.h"

#include <string>

#include "src/common/clock.h"
#include "src/obs/metrics.h"

namespace mantle {

ShardHeatTracker::ShardHeatTracker(uint32_t num_shards, HeatTrackerOptions options)
    : options_(options),
      heat_(num_shards),
      last_ops_(num_shards, 0),
      last_conflicts_(num_shards, 0) {}

void ShardHeatTracker::Sample(const std::function<const Shard*(uint32_t)>& shard_at) {
  const int64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  const double elapsed_sec =
      last_sample_nanos_ == 0 ? 0.0 : static_cast<double>(now - last_sample_nanos_) / 1e9;
  auto& registry = obs::Metrics::Instance();
  uint64_t total_rows = 0;
  uint64_t total_ops = 0;
  for (uint32_t i = 0; i < heat_.size(); ++i) {
    const Shard* shard = shard_at(i);
    const uint64_t ops = shard->ops();
    const uint64_t conflicts = shard->lock_conflicts();
    ShardHeat& h = heat_[i];
    h.rows = shard->Size();
    h.ops_total = ops;
    // A counter below its baseline means the shard OBJECT changed since the
    // last sample (a migration cutover installed a replacement whose counters
    // restart at zero). Re-baseline without updating the EMAs: a wrapped
    // unsigned delta would otherwise read as an astronomically hot shard and
    // send the supervisor chasing phantom hotspots it just created.
    if (elapsed_sec > 0 && ops >= last_ops_[i] && conflicts >= last_conflicts_[i]) {
      const double op_rate = static_cast<double>(ops - last_ops_[i]) / elapsed_sec;
      const double conflict_rate =
          static_cast<double>(conflicts - last_conflicts_[i]) / elapsed_sec;
      h.op_rate += options_.alpha * (op_rate - h.op_rate);
      h.conflict_rate += options_.alpha * (conflict_rate - h.conflict_rate);
    }
    last_ops_[i] = ops;
    last_conflicts_[i] = conflicts;
    total_rows += h.rows;
    total_ops += ops;

    const std::string prefix = "tafdb.shard." + std::to_string(i);
    registry.GetGauge(prefix + ".rows")->Set(static_cast<int64_t>(h.rows));
    registry.GetGauge(prefix + ".ops")->Set(static_cast<int64_t>(ops));
    registry.GetGauge(prefix + ".op_rate")->Set(static_cast<int64_t>(h.op_rate));
    registry.GetGauge(prefix + ".conflict_rate")->Set(static_cast<int64_t>(h.conflict_rate));
  }
  registry.GetGauge("tafdb.shard.rows")->Set(static_cast<int64_t>(total_rows));
  registry.GetGauge("tafdb.shard.ops")->Set(static_cast<int64_t>(total_ops));
  last_sample_nanos_ = now;
  ++samples_;
}

ShardHeatTracker::ShardHeat ShardHeatTracker::Heat(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return heat_[shard];
}

double ShardHeatTracker::Score(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ShardHeat& h = heat_[shard];
  return h.op_rate + options_.conflict_weight * h.conflict_rate;
}

std::vector<double> ShardHeatTracker::ServerScores(const PlacementTable& table) const {
  std::vector<double> scores(table.num_servers(), 0.0);
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t i = 0; i < heat_.size(); ++i) {
    const ShardHeat& h = heat_[i];
    scores[table.Get(i).server] += h.op_rate + options_.conflict_weight * h.conflict_rate;
  }
  return scores;
}

}  // namespace mantle
