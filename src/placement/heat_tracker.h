// Per-shard load estimation for heat-aware placement.
//
// Each kv::Shard exports two cheap cumulative counters (ops served, lock
// conflicts) and its row count. The tracker samples them periodically, turns
// counter deltas into rates, and smooths the rates with an exponential moving
// average so one bursty poll interval does not trigger a migration. The
// PlacementSupervisor aggregates per-shard heat into per-server heat through
// the PlacementTable and moves shards off servers whose heat skew exceeds its
// threshold.
//
// The tracker sits below the txn layer on purpose: it reads shards through an
// index->Shard* accessor instead of depending on ShardMap, so mantle_txn can
// itself link the placement core (ShardMap embeds a PlacementTable).

#ifndef SRC_PLACEMENT_HEAT_TRACKER_H_
#define SRC_PLACEMENT_HEAT_TRACKER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/kv/shard.h"
#include "src/placement/placement_table.h"

namespace mantle {

struct HeatTrackerOptions {
  // EMA smoothing factor per sample: rate_ema += alpha * (rate - rate_ema).
  double alpha = 0.3;
  // Weight of one lock conflict per second relative to one op per second in
  // the scalar heat score. Conflicts mark contended (not merely busy)
  // shards, which benefit most from moving to an idle server.
  double conflict_weight = 25.0;
};

class ShardHeatTracker {
 public:
  struct ShardHeat {
    double op_rate = 0.0;        // EMA, ops/second
    double conflict_rate = 0.0;  // EMA, lock conflicts/second
    uint64_t rows = 0;           // last sampled row count
    uint64_t ops_total = 0;      // last sampled cumulative op counter
  };

  explicit ShardHeatTracker(uint32_t num_shards, HeatTrackerOptions options = {});

  // Polls every shard's cumulative counters through `shard_at` (which must
  // return the CURRENT object for the index - retired sources keep their
  // counters but stop accumulating). Elapsed time since the previous sample
  // is measured on the monotonic clock. The first sample only establishes
  // baselines. Also refreshes the tafdb.shard.* gauges.
  void Sample(const std::function<const Shard*(uint32_t)>& shard_at);

  ShardHeat Heat(uint32_t shard) const;

  // Scalar heat score of one shard: op_rate + conflict_weight * conflict_rate.
  double Score(uint32_t shard) const;

  // Sum of shard scores per server under the given placement.
  std::vector<double> ServerScores(const PlacementTable& table) const;

  uint32_t num_shards() const { return static_cast<uint32_t>(heat_.size()); }
  uint64_t samples() const { return samples_; }

 private:
  const HeatTrackerOptions options_;
  mutable std::mutex mu_;
  std::vector<ShardHeat> heat_;        // guarded by mu_
  std::vector<uint64_t> last_ops_;      // cumulative counter baselines
  std::vector<uint64_t> last_conflicts_;
  int64_t last_sample_nanos_ = 0;
  uint64_t samples_ = 0;
};

}  // namespace mantle

#endif  // SRC_PLACEMENT_HEAT_TRACKER_H_
