#include "src/placement/placement_supervisor.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/admission/admission.h"
#include "src/common/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mantle {

PlacementSupervisor::PlacementSupervisor(ShardMap* shards, Network* network,
                                         PlacementSupervisorOptions options)
    : shards_(shards),
      network_(network),
      options_(options),
      heat_(shards->num_shards(), options.heat),
      migrator_(shards, network, options.migration),
      rng_(options.seed) {}

PlacementSupervisor::~PlacementSupervisor() { Stop(); }

void PlacementSupervisor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return;
  }
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void PlacementSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      return;
    }
    started_ = false;
    stopping_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void PlacementSupervisor::SampleHeat() {
  ShardMap* shards = shards_;
  heat_.Sample([shards](uint32_t index) -> const Shard* { return shards->ShardAt(index); });
  stats_.samples.fetch_add(1, std::memory_order_relaxed);
}

PlacementSupervisor::Plan PlacementSupervisor::PickMove() {
  static obs::Counter* vetoes = obs::Metrics::Instance().GetCounter("placement.breaker_vetoes");
  Plan plan;
  const std::vector<double> scores = heat_.ServerScores(shards_->placement());
  if (scores.size() < 2) {
    return plan;
  }
  double total = 0;
  for (double s : scores) {
    total += s;
  }
  const double mean = total / static_cast<double>(scores.size());
  uint32_t hot = 0;
  uint32_t cool = 0;
  for (uint32_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[hot]) {
      hot = i;
    }
    if (scores[i] < scores[cool]) {
      cool = i;
    }
  }
  if (scores[hot] < options_.min_hot_score ||
      (mean > 0 && scores[hot] < mean * options_.skew_threshold)) {
    return plan;
  }
  // Breaker-awareness: a server already tripping its breaker is in distress;
  // bulk copy traffic toward or away from it would make things worse. Use
  // the passive state() - Allow() would consume half-open probe slots.
  const auto breaker_open = [this](uint32_t server) {
    CircuitBreaker& breaker = shards_->servers()[server]->breaker();
    return breaker.state() == CircuitBreaker::State::kOpen;
  };
  if (breaker_open(hot) || breaker_open(cool)) {
    vetoes->Add();
    stats_.breaker_vetoes.fetch_add(1, std::memory_order_relaxed);
    return plan;
  }
  // Hottest shard currently living on the hot server. Moving the single
  // hottest shard is deliberately conservative: one move per cooldown, and
  // the EMA re-evaluates before the next.
  const std::vector<uint32_t> resident = shards_->placement().ShardsOn(hot);
  if (resident.empty()) {
    return plan;
  }
  uint32_t best = resident[0];
  double best_score = -1;
  for (uint32_t shard : resident) {
    const double score = heat_.Score(shard);
    if (score > best_score) {
      best_score = score;
      best = shard;
    }
  }
  plan.shard = best;
  plan.target_server = cool;
  plan.viable = hot != cool;
  return plan;
}

Status PlacementSupervisor::RebalanceOnce() {
  static obs::Counter* rebalances = obs::Metrics::Instance().GetCounter("placement.rebalance.attempts");
  ScopedOpPriority background(OpPriority::kBackground);
  obs::ScopedSpan span(obs::CurrentThreadTrace(), "placement.rebalance");
  rebalances->Add();
  SampleHeat();
  const Plan plan = PickMove();
  if (!plan.viable) {
    return Status::NotFound("placement: no profitable move");
  }
  Status status = migrator_.Migrate(plan.shard, plan.target_server);
  if (status.ok()) {
    stats_.migrations.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.migration_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void PlacementSupervisor::Loop() {
  static obs::Counter* skew_metric = obs::Metrics::Instance().GetCounter("placement.skew_detected");
  ScopedOpPriority background(OpPriority::kBackground);
  while (!stopping_.load(std::memory_order_acquire)) {
    SampleHeat();
    const int64_t now = MonotonicNanos();
    if (now >= cooldown_until_) {
      const Plan plan = PickMove();
      if (!plan.viable) {
        confirm_deadline_ = 0;
      } else if (confirm_deadline_ == 0) {
        // Skew must persist for the window (plus jitter) before data moves.
        const int64_t jitter =
            static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(
                std::max<int64_t>(1, options_.confirm_window_nanos / 4))));
        confirm_deadline_ = now + options_.confirm_window_nanos + jitter;
        skew_metric->Add();
        stats_.skew_detected.fetch_add(1, std::memory_order_relaxed);
      } else if (now >= confirm_deadline_) {
        confirm_deadline_ = 0;
        Status status = migrator_.Migrate(plan.shard, plan.target_server);
        if (status.ok()) {
          stats_.migrations.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats_.migration_failures.fetch_add(1, std::memory_order_relaxed);
        }
        cooldown_until_ = MonotonicNanos() + options_.cooldown_nanos;
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::nanoseconds(options_.poll_interval_nanos),
                 [this] { return stopping_.load(std::memory_order_acquire); });
  }
}

}  // namespace mantle
