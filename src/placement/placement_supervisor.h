// Autonomous heat-aware rebalancing of TafDB shards.
//
// The supervisor periodically samples every shard's heat (ShardHeatTracker),
// aggregates it into per-server heat through the PlacementTable, and - when
// one server's heat exceeds the fleet mean by the skew threshold for a full
// confirmation window - migrates that server's hottest shard to the coolest
// server. Mirrors the RepairSupervisor discipline from src/repair/: one
// background thread, seeded-deterministic jitter so concurrent supervisors
// never stampede, one action at a time with a cooldown between actions, and
// breaker-awareness (a migration is never launched toward or away from a
// server whose circuit breaker is open - it is already in distress).
//
// All planning work runs at OpPriority::kBackground so the admission
// controller sheds it before foreground traffic, and every decision emits
// placement.* metrics and trace spans.

#ifndef SRC_PLACEMENT_PLACEMENT_SUPERVISOR_H_
#define SRC_PLACEMENT_PLACEMENT_SUPERVISOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/placement/heat_tracker.h"
#include "src/placement/shard_migrator.h"
#include "src/txn/shard_map.h"

namespace mantle {

struct PlacementSupervisorOptions {
  int64_t poll_interval_nanos = 20'000'000;  // heat-sample cadence
  // A server is "hot" when its heat exceeds the fleet mean by this factor
  // (mean * threshold). 0 disables skew detection (drills only).
  double skew_threshold = 1.6;
  // The skew must persist this long (plus seeded jitter) before a migration
  // launches, so one bursty poll interval cannot trigger data movement.
  int64_t confirm_window_nanos = 100'000'000;
  // Pause after every migration (commit or abort) before the next one is
  // considered: placement changes are expensive and their effect on the heat
  // signal needs time to show up in the EMAs.
  int64_t cooldown_nanos = 250'000'000;
  // Ignore servers whose heat is below this absolute score even if the skew
  // ratio trips (an idle fleet has meaningless ratios).
  double min_hot_score = 50.0;
  uint64_t seed = 0x5eedba1aULL;  // drives the deterministic confirm jitter
  MigrationOptions migration;
  HeatTrackerOptions heat;
};

struct PlacementSupervisorStats {
  std::atomic<uint64_t> samples{0};           // heat polls taken
  std::atomic<uint64_t> skew_detected{0};     // confirmation windows opened
  std::atomic<uint64_t> migrations{0};        // migrations committed
  std::atomic<uint64_t> migration_failures{0};
  std::atomic<uint64_t> breaker_vetoes{0};    // moves skipped: breaker open
};

class PlacementSupervisor {
 public:
  PlacementSupervisor(ShardMap* shards, Network* network,
                      PlacementSupervisorOptions options = {});
  ~PlacementSupervisor();

  PlacementSupervisor(const PlacementSupervisor&) = delete;
  PlacementSupervisor& operator=(const PlacementSupervisor&) = delete;

  void Start();
  void Stop();

  // One rebalancing step, synchronously: sample heat, pick the hottest
  // server's hottest shard and the coolest server, migrate. The loop calls
  // this after a confirmed skew; drills call it directly. Returns NotFound
  // when no move is warranted (no hot server / nowhere cooler to go).
  Status RebalanceOnce();

  // Direct migration entry point for drills and admin surgery.
  Status MigrateShard(uint32_t shard_index, uint32_t target_server) {
    return migrator_.Migrate(shard_index, target_server);
  }

  ShardHeatTracker& heat() { return heat_; }
  ShardMigrator& migrator() { return migrator_; }
  const PlacementSupervisorStats& stats() const { return stats_; }
  const PlacementSupervisorOptions& options() const { return options_; }

 private:
  struct Plan {
    uint32_t shard = 0;
    uint32_t target_server = 0;
    bool viable = false;
  };

  // Samples heat and exports gauges; called from the loop and RebalanceOnce.
  void SampleHeat();
  // Picks (hot server's hottest shard, coolest server); not viable when the
  // fleet is balanced, idle, or the candidate servers' breakers are open.
  Plan PickMove();
  void Loop();

  ShardMap* shards_;
  Network* network_;
  PlacementSupervisorOptions options_;
  ShardHeatTracker heat_;
  ShardMigrator migrator_;
  PlacementSupervisorStats stats_;
  Rng rng_;

  // Loop-thread only once started: the deadline by which a detected skew
  // must still hold to launch a migration (0 = no window open), and the
  // earliest time the next migration may start.
  int64_t confirm_deadline_ = 0;
  int64_t cooldown_until_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread thread_;
};

}  // namespace mantle

#endif  // SRC_PLACEMENT_PLACEMENT_SUPERVISOR_H_
