#include "src/placement/placement_table.h"

namespace mantle {

PlacementTable::PlacementTable(uint32_t num_shards, uint32_t num_servers)
    : num_shards_(num_shards),
      num_servers_(num_servers),
      slots_(std::make_unique<std::atomic<uint64_t>[]>(num_shards)) {
  for (uint32_t i = 0; i < num_shards_; ++i) {
    slots_[i].store(Pack(i % num_servers_, 1), std::memory_order_relaxed);
  }
}

uint64_t PlacementTable::CommitMove(uint32_t shard, uint32_t server) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed) + 1;
  slots_[shard].store(Pack(server, epoch), std::memory_order_release);
  epoch_.store(epoch, std::memory_order_release);
  moves_.fetch_add(1, std::memory_order_relaxed);
  return epoch;
}

std::vector<uint32_t> PlacementTable::ShardsOn(uint32_t server) const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (Get(i).server == server) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace mantle
