// Epoch-versioned shard -> server routing table for TafDB.
//
// Replaces the implicit `shard i lives on servers[i % servers]` round-robin
// that froze placement at construction. Each shard slot holds the index of
// the server currently hosting it plus the placement epoch at which that
// assignment was committed; a process-wide epoch counter advances on every
// committed move. Routers read slots lock-free (one atomic load: server and
// epoch are packed into a single word, so a reader can never observe a torn
// server/epoch pair). Writers - migrations committing a cutover - serialize
// on a mutex, mirroring the FoundationDB Record Layer's split between
// stateless routing state and movable data.
//
// Staleness is detected at the data, not here: a router that resolved a
// shard before a move holds a pointer to the retired source object, whose
// guarded entry points return kWrongShard carrying the cutover epoch. The
// retry re-reads this table and lands on the new server.

#ifndef SRC_PLACEMENT_PLACEMENT_TABLE_H_
#define SRC_PLACEMENT_PLACEMENT_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace mantle {

class PlacementTable {
 public:
  struct Entry {
    uint32_t server = 0;  // index into the TafDB server fleet
    uint64_t epoch = 0;   // placement epoch that committed this assignment
  };

  // Initial placement is the classic round-robin (shard i on server
  // i % num_servers) at epoch 1, so a table that never migrates routes
  // identically to the pre-placement code.
  PlacementTable(uint32_t num_shards, uint32_t num_servers);

  PlacementTable(const PlacementTable&) = delete;
  PlacementTable& operator=(const PlacementTable&) = delete;

  uint32_t num_shards() const { return num_shards_; }
  uint32_t num_servers() const { return num_servers_; }

  // Current assignment of `shard`. Lock-free; a single atomic load.
  Entry Get(uint32_t shard) const {
    return Unpack(slots_[shard].load(std::memory_order_acquire));
  }

  // The latest committed placement epoch.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Commits `shard` -> `server`, advancing the global epoch. Returns the
  // epoch of the new assignment. Called exactly once per migration, at
  // cutover, after the source shard object has been retired.
  uint64_t CommitMove(uint32_t shard, uint32_t server);

  // Shards currently assigned to `server` (supervisor planning; O(shards)).
  std::vector<uint32_t> ShardsOn(uint32_t server) const;

  // Count of committed moves since construction.
  uint64_t moves() const { return moves_.load(std::memory_order_relaxed); }

 private:
  // server in the low 32 bits, epoch in the high 32. Epochs count committed
  // migrations, so 2^32 is unreachable in any run we model.
  static uint64_t Pack(uint32_t server, uint64_t epoch) {
    return (epoch << 32) | static_cast<uint64_t>(server);
  }
  static Entry Unpack(uint64_t word) {
    return Entry{static_cast<uint32_t>(word & 0xffffffffu), word >> 32};
  }

  const uint32_t num_shards_;
  const uint32_t num_servers_;
  std::unique_ptr<std::atomic<uint64_t>[]> slots_;
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> moves_{0};
  std::mutex writer_mu_;
};

}  // namespace mantle

#endif  // SRC_PLACEMENT_PLACEMENT_TABLE_H_
