#include "src/placement/shard_migrator.h"

#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mantle {
namespace {

// One re-copied row of a catch-up round: the row's current value on the
// source, or nullopt if it was deleted after the snapshot saw it.
struct KeyDelta {
  MetaKey key;
  std::optional<MetaValue> value;
};

// Storage CPU charged for touching `rows` rows in one batch, matching the
// scan charging model used by the read paths (1 + rows/32 row units).
int64_t BatchRowUnits(size_t rows) { return 1 + static_cast<int64_t>(rows) / 32; }

}  // namespace

ShardMigrator::ShardMigrator(ShardMap* shards, Network* network, MigrationOptions options)
    : shards_(shards), network_(network), options_(options) {}

bool ShardMigrator::CrashAt(MigrationCrashPoint point) {
  uint8_t expected = static_cast<uint8_t>(point);
  return armed_crash_.compare_exchange_strong(expected,
                                              static_cast<uint8_t>(MigrationCrashPoint::kNone),
                                              std::memory_order_acq_rel);
}

void ShardMigrator::Recover(uint32_t shard_index) {
  Shard* shard = shards_->ShardAt(shard_index);
  shard->SetWriteFence(false);
  shard->EndMigrationCapture();
  static obs::Counter* recovered = obs::Metrics::Instance().GetCounter("placement.migrate.recovered");
  recovered->Add();
}

Result<size_t> ShardMigrator::CatchUpRound(Shard* source, ServerExecutor* src_server,
                                           const std::shared_ptr<Shard>& dest,
                                           ServerExecutor* dst_server) {
  Network* network = network_;
  // One RPC drains the dirty-key set and reads those rows' current values.
  // Destructive drain is safe because every failure path below aborts the
  // migration (the source stays authoritative; nothing depends on the set).
  auto deltas = src_server->Call(
      [source, network]() -> Result<std::vector<KeyDelta>> {
        std::vector<MetaKey> keys = source->TakeDirtyKeys();
        std::vector<KeyDelta> out;
        out.reserve(keys.size());
        for (const MetaKey& key : keys) {
          out.push_back(KeyDelta{key, source->Get(key)});
        }
        network->ChargeDbRowAccess(BatchRowUnits(keys.size()));
        return out;
      },
      [](Status status) -> Result<std::vector<KeyDelta>> { return status; },
      options_.rpc_deadline_nanos);
  if (!deltas.ok()) {
    return deltas.status();
  }
  const size_t count = deltas.value().size();
  if (count > 0) {
    Status installed = dst_server->Call(
        [dest, rows = std::move(deltas.value()), network]() -> Status {
          for (const KeyDelta& delta : rows) {
            if (delta.value.has_value()) {
              dest->LoadPut(delta.key, *delta.value);
            } else {
              dest->LoadErase(delta.key);
            }
          }
          network->ChargeDbRowAccess(BatchRowUnits(rows.size()));
          return Status::Ok();
        },
        [](Status status) { return status; }, options_.rpc_deadline_nanos);
    if (!installed.ok()) {
      return installed;
    }
  }
  stats_.catchup_rounds.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* rounds = obs::Metrics::Instance().GetCounter("placement.migrate.catchup_rounds");
  rounds->Add();
  return count;
}

Status ShardMigrator::Migrate(uint32_t shard_index, uint32_t target_server) {
  auto& registry = obs::Metrics::Instance();
  static obs::Counter* attempts = registry.GetCounter("placement.migrate.attempts");
  static obs::Counter* commits = registry.GetCounter("placement.migrate.committed");
  static obs::Counter* aborts = registry.GetCounter("placement.migrate.aborted");
  static obs::Counter* rows_copied_metric = registry.GetCounter("placement.migrate.rows_copied");
  static obs::HistogramMetric* fence_hist = registry.GetHistogram("placement.migrate.fence_nanos");
  static obs::HistogramMetric* total_hist = registry.GetHistogram("placement.migrate.total_nanos");
  static obs::Gauge* epoch_gauge = registry.GetGauge("placement.epoch");

  if (shard_index >= shards_->num_shards()) {
    return Status::InvalidArgument("migrate: shard index out of range");
  }
  if (target_server >= shards_->servers().size()) {
    return Status::InvalidArgument("migrate: target server out of range");
  }
  const ShardMap::Routing src = shards_->Resolve(shard_index);
  if (shards_->placement().Get(shard_index).server == target_server) {
    return Status::InvalidArgument("migrate: shard already on target server");
  }
  Shard* source = src.shard;
  ServerExecutor* src_server = src.server;
  ServerExecutor* dst_server = shards_->servers()[target_server];

  attempts->Add();
  stats_.attempts.fetch_add(1, std::memory_order_relaxed);
  Stopwatch total_timer;
  obs::OpTrace* trace = obs::CurrentThreadTrace();
  obs::ScopedSpan migrate_span(trace, "placement.migrate.", std::to_string(shard_index),
                               obs::SpanKind::kLogic);

  // Abort helper: the source stays authoritative; lift whatever migration
  // state this attempt had applied so it keeps serving writes normally.
  auto abort = [&](Status status, bool fenced) {
    if (fenced) {
      source->SetWriteFence(false);
    }
    source->EndMigrationCapture();
    aborts->Add();
    stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    return status;
  };

  // Phase 1: capture on, then snapshot copy (capture-before-scan means any
  // row mutated mid-scan is in the dirty set and gets re-copied).
  source->BeginMigrationCapture();
  auto dest = std::make_shared<Shard>(shard_index);
  Network* network = network_;
  uint64_t copied = 0;
  {
    obs::ScopedSpan copy_span(trace, "placement.copy");
    MetaKey after{};  // before every real key: pid 0 stores no rows
    while (true) {
      const size_t batch = options_.copy_batch_rows;
      auto page = src_server->Call(
          [source, after, batch, network]() -> Result<std::vector<Shard::Entry>> {
            std::vector<Shard::Entry> rows = source->ScanRange(after, batch);
            network->ChargeDbRowAccess(BatchRowUnits(rows.size()));
            return rows;
          },
          [](Status status) -> Result<std::vector<Shard::Entry>> { return status; },
          options_.rpc_deadline_nanos);
      if (!page.ok()) {
        return abort(page.status(), /*fenced=*/false);
      }
      if (page.value().empty()) {
        break;
      }
      after = page.value().back().key;
      copied += page.value().size();
      Status installed = dst_server->Call(
          [dest, rows = std::move(page.value()), network]() -> Status {
            for (const Shard::Entry& entry : rows) {
              dest->LoadPut(entry.key, entry.value);
            }
            network->ChargeDbRowAccess(BatchRowUnits(rows.size()));
            return Status::Ok();
          },
          [](Status status) { return status; }, options_.rpc_deadline_nanos);
      if (!installed.ok()) {
        return abort(installed, /*fenced=*/false);
      }
      if (CrashAt(MigrationCrashPoint::kMidCopy)) {
        // Simulated supervisor crash: capture stays on, fence was never
        // raised. Recover() cleans up; the source lost nothing.
        return Status::Aborted("crash injected mid-copy");
      }
    }
  }
  rows_copied_metric->Add(copied);
  stats_.rows_copied.fetch_add(copied, std::memory_order_relaxed);

  // Phase 2: bounded catch-up until the dirty set converges.
  {
    obs::ScopedSpan catchup_span(trace, "placement.catchup");
    for (int round = 0; round < options_.max_catchup_rounds; ++round) {
      Result<size_t> dirty = CatchUpRound(source, src_server, dest, dst_server);
      if (!dirty.ok()) {
        return abort(dirty.status(), /*fenced=*/false);
      }
      if (dirty.value() <= options_.fence_dirty_threshold) {
        break;
      }
    }
  }
  if (CrashAt(MigrationCrashPoint::kBeforeFence)) {
    return Status::Aborted("crash injected before fence");
  }

  // Phase 3: fence, drain prepared locks, final catch-up, cutover.
  Stopwatch fence_timer;
  {
    obs::ScopedSpan cutover_span(trace, "placement.cutover");
    source->SetWriteFence(true);
    const int64_t drain_deadline = MonotonicNanos() + options_.drain_timeout_nanos;
    while (source->HeldLockCount() > 0) {
      if (MonotonicNanos() >= drain_deadline) {
        return abort(Status::Busy("migrate: prepared locks did not drain on shard " +
                                  std::to_string(shard_index)),
                     /*fenced=*/true);
      }
      std::this_thread::sleep_for(std::chrono::nanoseconds(options_.drain_poll_nanos));
    }
    // All mutators have finished (they hold the shard latch exclusively and
    // re-check the fence under it), so this final round observes every write
    // that will ever land on the source.
    Result<size_t> final_round = CatchUpRound(source, src_server, dest, dst_server);
    if (!final_round.ok()) {
      return abort(final_round.status(), /*fenced=*/true);
    }
    if (CrashAt(MigrationCrashPoint::kMidCutover)) {
      // Crash with the fence up and the cutover uncommitted: the source is
      // still the only authoritative copy. Recover() unfences and the old
      // placement keeps serving.
      return Status::Aborted("crash injected mid-cutover");
    }
    source->EndMigrationCapture();
    // Retire FIRST: from this instant stale routers bounce. Only then does
    // the replacement become reachable - there is never a moment where the
    // superseded object silently serves a read of a row that moved.
    source->Retire(shards_->placement().epoch() + 1);
    const uint64_t epoch = shards_->CommitCutover(shard_index, dest, target_server);
    epoch_gauge->Set(static_cast<int64_t>(epoch));
  }
  const int64_t fence_nanos = fence_timer.ElapsedNanos();
  fence_hist->Record(fence_nanos);
  stats_.last_fence_nanos.store(fence_nanos, std::memory_order_relaxed);
  total_hist->Record(total_timer.ElapsedNanos());
  commits->Add();
  stats_.committed.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace mantle
