// Live migration of one TafDB shard between servers.
//
// Protocol (paper-style snapshot + delta catch-up + short fence):
//
//   1. BeginMigrationCapture on the source: every row mutated from here on
//      has its key recorded (capture starts BEFORE the snapshot scan so a
//      row changed mid-scan is re-copied later).
//   2. Snapshot copy: paged ScanRange RPCs against the source server, each
//      page installed on the destination server by RPC (both sides charge
//      storage CPU, so a migration visibly consumes fleet capacity).
//   3. Bounded catch-up rounds: drain the dirty-key set, re-copy exactly
//      those rows. Rounds shrink while writes are slower than the copy;
//      when a round is small enough (or the round budget is exhausted) the
//      cutover begins.
//   4. Write fence on the source: new lock acquisitions, atomic applies and
//      delta folds fail retriably (kBusy). Phase-two commits of transactions
//      that prepared BEFORE the fence still apply - their locks are already
//      held - and are dirty-captured.
//   5. Drain prepared locks to zero (bounded wait). After this no 2PC
//      transaction spans the move: anything prepared on the source also
//      committed or aborted on the source.
//   6. Final catch-up round (serializes after every in-flight apply because
//      mutators hold the shard latch exclusively and the fence is checked
//      under it), then: retire the source, install the replacement,
//      CommitMove in the PlacementTable. Routers holding the retired object
//      bounce with kWrongShard and re-resolve.
//
// Crash safety: the source stays fully authoritative until step 6's commit.
// Aborting (or "crashing" via an armed CrashPoint) at any earlier point
// leaves a fenced-or-capturing source and a discardable destination copy;
// Recover() lifts the fence and capture and the system continues on the old
// placement with zero loss. There is no window where neither object is
// authoritative.

#ifndef SRC_PLACEMENT_SHARD_MIGRATOR_H_
#define SRC_PLACEMENT_SHARD_MIGRATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/net/network.h"
#include "src/txn/shard_map.h"

namespace mantle {

struct MigrationOptions {
  // Rows per snapshot-copy page (one source-scan RPC + one dest-install RPC).
  size_t copy_batch_rows = 512;
  // Catch-up rounds before the fence goes up regardless of dirty-set size.
  int max_catchup_rounds = 8;
  // A catch-up round at or below this many dirty keys is "converged": stop
  // catching up and fence.
  size_t fence_dirty_threshold = 32;
  // Bounded wait for prepared 2PC locks to drain after the fence.
  int64_t drain_timeout_nanos = 3'000'000'000;  // 3 s
  int64_t drain_poll_nanos = 100'000;           // 100 us
  // Per-RPC deadline for copy/catch-up traffic (chaos drops surface as
  // Status and abort the migration retriably instead of hanging it).
  int64_t rpc_deadline_nanos = 2'000'000'000;  // 2 s
};

// Deterministic abandon points for crash-injection tests: an armed migration
// stops dead at the point, leaving all source-side state (fence, capture)
// exactly as a real supervisor crash would. Tests then exercise Recover().
enum class MigrationCrashPoint : uint8_t {
  kNone = 0,
  kMidCopy,     // after the first snapshot page
  kBeforeFence, // catch-up done, fence not yet raised
  kMidCutover,  // fence up, locks drained, final round copied - one instant
                // before the cutover commits
};

struct MigrationStats {
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> rows_copied{0};
  std::atomic<uint64_t> catchup_rounds{0};
  std::atomic<int64_t> last_fence_nanos{0};  // write-unavailability window
};

class ShardMigrator {
 public:
  ShardMigrator(ShardMap* shards, Network* network, MigrationOptions options = {});

  // Moves `shard_index` to servers()[target_server]. Synchronous; returns
  // Ok after the cutover epoch committed, or a retriable error leaving the
  // source authoritative (fence already lifted - no Recover() needed unless
  // a CrashPoint was armed). Not safe to run concurrently for the same
  // shard; the PlacementSupervisor serializes all migrations.
  Status Migrate(uint32_t shard_index, uint32_t target_server);

  // Arms a one-shot crash point: the NEXT Migrate abandons there, leaving
  // fence/capture state dirty (test hook; mirrors the intent-log ArmCrash
  // idiom in src/txn).
  void ArmCrash(MigrationCrashPoint point) {
    armed_crash_.store(static_cast<uint8_t>(point), std::memory_order_release);
  }

  // Post-crash cleanup for an interrupted migration of `shard_index`: lifts
  // the write fence and dirty capture from the (still-authoritative) source.
  // Idempotent; safe to call when no migration was in flight.
  void Recover(uint32_t shard_index);

  const MigrationStats& stats() const { return stats_; }
  const MigrationOptions& options() const { return options_; }

 private:
  // True (and disarms) if the armed crash point equals `point`.
  bool CrashAt(MigrationCrashPoint point);

  // One catch-up round: drains the source's dirty keys and re-copies those
  // rows to `dest`. Returns the number of dirty keys, or an error status.
  Result<size_t> CatchUpRound(Shard* source, ServerExecutor* src_server,
                              const std::shared_ptr<Shard>& dest, ServerExecutor* dst_server);

  ShardMap* shards_;
  Network* network_;
  const MigrationOptions options_;
  MigrationStats stats_;
  std::atomic<uint8_t> armed_crash_{0};
};

}  // namespace mantle

#endif  // SRC_PLACEMENT_SHARD_MIGRATOR_H_
