// Raft group membership: the voter/learner set carried by kConfig log
// entries.
//
// Membership changes are one-at-a-time (Raft §4.1 single-server changes):
// the leader refuses a new change while one is in flight, and a change may
// alter at most one node's membership status (add a learner, promote a
// learner to voter, or remove a member). The config takes effect when the
// carrying entry COMMITS - every node applies it in its apply loop, and the
// leader counts votes and commits against the committed config from then on.

#ifndef SRC_RAFT_CONFIG_H_
#define SRC_RAFT_CONFIG_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace mantle {

struct RaftConfig {
  std::vector<uint32_t> voters;    // sorted, unique
  std::vector<uint32_t> learners;  // sorted, unique, disjoint from voters

  static RaftConfig Initial(uint32_t num_voters, uint32_t num_learners) {
    RaftConfig config;
    for (uint32_t id = 0; id < num_voters; ++id) {
      config.voters.push_back(id);
    }
    for (uint32_t id = num_voters; id < num_voters + num_learners; ++id) {
      config.learners.push_back(id);
    }
    return config;
  }

  bool IsVoter(uint32_t id) const {
    return std::binary_search(voters.begin(), voters.end(), id);
  }
  bool IsLearner(uint32_t id) const {
    return std::binary_search(learners.begin(), learners.end(), id);
  }
  bool IsMember(uint32_t id) const { return IsVoter(id) || IsLearner(id); }
  size_t NumMembers() const { return voters.size() + learners.size(); }

  // Votes needed to win an election / commit an entry under this config.
  uint32_t Majority() const { return static_cast<uint32_t>(voters.size()) / 2 + 1; }

  void Normalize() {
    std::sort(voters.begin(), voters.end());
    voters.erase(std::unique(voters.begin(), voters.end()), voters.end());
    std::sort(learners.begin(), learners.end());
    learners.erase(std::unique(learners.begin(), learners.end()), learners.end());
  }

  // Derived configs for the three legal single-node transitions. Each returns
  // a normalized copy; callers validate legality via DiffersByOneFrom.
  RaftConfig WithLearner(uint32_t id) const {
    RaftConfig next = *this;
    next.learners.push_back(id);
    next.Normalize();
    return next;
  }
  RaftConfig WithPromoted(uint32_t id) const {
    RaftConfig next = *this;
    next.learners.erase(std::remove(next.learners.begin(), next.learners.end(), id),
                        next.learners.end());
    next.voters.push_back(id);
    next.Normalize();
    return next;
  }
  RaftConfig Without(uint32_t id) const {
    RaftConfig next = *this;
    next.voters.erase(std::remove(next.voters.begin(), next.voters.end(), id),
                      next.voters.end());
    next.learners.erase(std::remove(next.learners.begin(), next.learners.end(), id),
                        next.learners.end());
    return next;
  }

  // True when `next` changes at most ONE node's membership status relative to
  // this config (the one-at-a-time rule). Promotion counts as one change.
  bool DiffersByAtMostOneFrom(const RaftConfig& next) const {
    uint32_t changed = 0;
    auto count_changes = [&](const RaftConfig& a, const RaftConfig& b) {
      for (uint32_t id : a.voters) {
        if (!b.IsVoter(id)) {
          ++changed;
        }
      }
      for (uint32_t id : a.learners) {
        if (!b.IsLearner(id)) {
          ++changed;
        }
      }
    };
    count_changes(*this, next);
    // Count additions (present in next, absent here) without double-counting
    // promotions/demotions already seen above.
    for (uint32_t id : next.voters) {
      if (!IsVoter(id) && !IsLearner(id)) {
        ++changed;
      }
    }
    for (uint32_t id : next.learners) {
      if (!IsVoter(id) && !IsLearner(id)) {
        ++changed;
      }
    }
    // A promotion shows up once as "left learners" and the voter-side check
    // skipped it, so `changed` is the number of nodes whose status moved.
    return changed <= 1;
  }

  bool operator==(const RaftConfig& other) const {
    return voters == other.voters && learners == other.learners;
  }
  bool operator!=(const RaftConfig& other) const { return !(*this == other); }

  // Wire/log encoding: "v0,1,2;l3,4". Stable and human-greppable in traces.
  std::string Encode() const {
    std::string out = "v";
    for (size_t i = 0; i < voters.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(voters[i]);
    }
    out += ";l";
    for (size_t i = 0; i < learners.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(learners[i]);
    }
    return out;
  }

  static RaftConfig Decode(const std::string& encoded) {
    RaftConfig config;
    const size_t sep = encoded.find(";l");
    auto parse_list = [](const std::string& text, std::vector<uint32_t>* out) {
      size_t pos = 0;
      while (pos < text.size()) {
        size_t end = text.find(',', pos);
        if (end == std::string::npos) {
          end = text.size();
        }
        if (end > pos) {
          out->push_back(static_cast<uint32_t>(std::stoul(text.substr(pos, end - pos))));
        }
        pos = end + 1;
      }
    };
    if (sep == std::string::npos || encoded.empty() || encoded[0] != 'v') {
      return config;  // empty config: never a voter, never campaigns
    }
    parse_list(encoded.substr(1, sep - 1), &config.voters);
    parse_list(encoded.substr(sep + 2), &config.learners);
    config.Normalize();
    return config;
  }
};

}  // namespace mantle

#endif  // SRC_RAFT_CONFIG_H_
