#include "src/raft/group.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mantle {

RaftGroup::RaftGroup(Network* network, const std::string& name, uint32_t num_voters,
                     uint32_t num_learners, const StateMachineFactory& factory,
                     RaftOptions options)
    : network_(network), name_(name), options_(options), factory_(factory) {
  const RaftConfig initial = RaftConfig::Initial(num_voters, num_learners);
  const uint32_t total = num_voters + num_learners;
  nodes_.reserve(total);
  for (uint32_t id = 0; id < total; ++id) {
    ServerExecutor* server = network_->AddServer(name + "-" + std::to_string(id),
                                                 options_.workers_per_node);
    ServerExecutor* raft_server =
        network_->AddServer(name + "-" + std::to_string(id) + "-raft", 2);
    nodes_.push_back(std::make_unique<RaftNode>(this, id, initial, server, raft_server,
                                                factory(id), options_));
  }
  for (auto& node : nodes_) {
    RaftNodeStartThreads(*node);
  }
}

RaftGroup::~RaftGroup() {
  // Nodes hold raw pointers to their peers (replicator and vote fan-out), so
  // teardown is three-phase: stop every node's threads, then drain the
  // executors (a deadline-expired caller may have abandoned a handler that is
  // still queued and captures a peer), and only then free any node.
  for (auto& node : nodes_) {
    node->BeginShutdown();
  }
  for (auto& node : nodes_) {
    node->JoinThreads();
  }
  for (auto& node : nodes_) {
    node->server()->Drain();
    node->raft_server()->Drain();
  }
}

std::vector<RaftNode*> RaftGroup::SnapshotNodes() const {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  std::vector<RaftNode*> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    out.push_back(node.get());
  }
  return out;
}

RaftNode* RaftGroup::node(uint32_t id) const {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  return id < nodes_.size() ? nodes_[id].get() : nullptr;
}

uint32_t RaftGroup::num_nodes() const {
  std::lock_guard<std::mutex> lock(nodes_mu_);
  return static_cast<uint32_t>(nodes_.size());
}

void RaftGroup::Start() {
  const RaftConfig config = CommittedConfig();
  RaftNode* starter = nullptr;
  for (uint32_t voter : config.voters) {
    RaftNode* candidate = node(voter);
    if (candidate != nullptr && !candidate->IsDown()) {
      starter = candidate;
      break;
    }
  }
  if (starter == nullptr && num_nodes() > 0) {
    starter = node(0);
  }
  if (starter != nullptr) {
    starter->Campaign();
  }
  RaftNode* leader = WaitForLeader();
  if (leader == nullptr) {
    MANTLE_ELOG << "raft group failed to elect a leader at startup";
  }
}

RaftNode* RaftGroup::leader() const {
  // During a partition the stale leader keeps its role until it hears the new
  // term; preferring the highest-term leader routes clients to the live one.
  RaftNode* best = nullptr;
  uint64_t best_term = 0;
  for (RaftNode* node : SnapshotNodes()) {
    if (!node->IsDown() && node->role() == RaftRole::kLeader) {
      const uint64_t term = node->term();
      if (best == nullptr || term > best_term) {
        best = node;
        best_term = term;
      }
    }
  }
  return best;
}

RaftNode* RaftGroup::WaitForLeader(int64_t timeout_nanos) {
  // Never outlive the calling operation's deadline budget: an election window
  // then surfaces as kUnavailable at the caller instead of a stall.
  const int64_t deadline = MonotonicNanos() + DeadlineBudget::Clamp(timeout_nanos);
  while (MonotonicNanos() < deadline) {
    RaftNode* node = leader();
    if (node != nullptr) {
      return node;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return leader();
}

RaftConfig RaftGroup::CommittedConfig() const {
  RaftNode* best = leader();
  if (best != nullptr) {
    return best->config();
  }
  uint64_t best_index = 0;
  for (RaftNode* node : SnapshotNodes()) {
    if (node->IsDown()) {
      continue;
    }
    const uint64_t index = node->config_index();
    if (best == nullptr || index > best_index) {
      best = node;
      best_index = index;
    }
  }
  if (best == nullptr) {
    best = node(0);  // every node stopped: any persisted view will do
  }
  return best != nullptr ? best->config() : RaftConfig{};
}

Result<std::string> RaftGroup::Propose(const std::string& command) {
  const int64_t deadline =
      MonotonicNanos() + DeadlineBudget::Clamp(options_.propose_timeout_nanos);
  Status last = Status::Timeout("no leader accepted the proposal");
  while (MonotonicNanos() < deadline) {
    RaftNode* node = leader();
    if (node == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    // The proposal rides the fabric: a partition, crash, or drop between this
    // proxy thread and the leader loses it, and the loop retries until the
    // deadline. Idempotence across such retries is the caller's contract
    // (rename UUIDs; add/remove ops are natural no-ops on re-apply).
    network_->ChargeRtt();  // proxy -> leader round trip
    Status pre = network_->PreflightRpc(node->server()->name());
    if (!pre.ok()) {
      last = pre;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    Result<std::string> result = [&]() {
      // Propose bypasses ServerExecutor::Call (the proxy thread talks to the
      // leader's consensus state directly), so the fabric's automatic rpc
      // span never fires; record the consensus round-trip explicitly.
      obs::ScopedSpan propose_span(obs::CurrentThreadTrace(), "raft.propose.",
                                   node->server()->name(), obs::SpanKind::kWire);
      return node->ProposeAndWait(command);
    }();
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      return result;
    }
    last = result.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (last.code() == StatusCode::kUnavailable) {
    return last;
  }
  return Status::Timeout("no leader accepted the proposal: " + last.ToString());
}

Status RaftGroup::ProposeConfigChangeInternal(const RaftConfig& next, int64_t deadline_nanos) {
  Status last = Status::Timeout("no leader accepted the config change");
  while (MonotonicNanos() < deadline_nanos) {
    RaftNode* node = leader();
    if (node == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    network_->ChargeRtt();
    Status pre = network_->PreflightRpc(node->server()->name());
    if (!pre.ok()) {
      last = pre;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    Status status = [&]() {
      obs::ScopedSpan span(obs::CurrentThreadTrace(), "raft.config.propose.",
                           node->server()->name(), obs::SpanKind::kWire);
      return node->ProposeConfigChange(next);
    }();
    // kUnavailable means "wrong/lost leader, retry"; anything else (ok, busy
    // overlap, invalid change, timeout) is the caller's answer.
    if (status.code() != StatusCode::kUnavailable) {
      return status;
    }
    last = status;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return Status::Timeout("config change: " + last.ToString());
}

Status RaftGroup::ProposeConfigChange(const RaftConfig& next, int64_t timeout_nanos) {
  return ProposeConfigChangeInternal(next,
                                     MonotonicNanos() + DeadlineBudget::Clamp(timeout_nanos));
}

Result<uint32_t> RaftGroup::AddLearner(int64_t timeout_nanos) {
  std::lock_guard<std::mutex> membership(membership_mu_);
  static obs::Counter* adds = obs::Metrics::Instance().GetCounter("raft.config.add_learner");
  const int64_t deadline = MonotonicNanos() + DeadlineBudget::Clamp(timeout_nanos);
  const RaftConfig base = CommittedConfig();
  uint32_t id = 0;
  RaftNode* fresh = nullptr;
  {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    id = static_cast<uint32_t>(nodes_.size());
    ServerExecutor* server = network_->AddServer(name_ + "-" + std::to_string(id),
                                                 options_.workers_per_node);
    ServerExecutor* raft_server =
        network_->AddServer(name_ + "-" + std::to_string(id) + "-raft", 2);
    // The fresh node boots with the CURRENT committed membership (which does
    // not include itself) and learns its own admission - and any later
    // changes - from the log or the first installed snapshot.
    nodes_.push_back(std::make_unique<RaftNode>(this, id, base, server, raft_server,
                                                factory_(id), options_));
    fresh = nodes_.back().get();
  }
  RaftNodeStartThreads(*fresh);
  // State-machine content that predates the log (bulk loads) only ships via
  // InstallSnapshot, so make sure the leader has a compacted prefix before
  // the learner starts catching up. Skipped when the machine is not
  // snapshottable or nothing has been applied - log replay is then complete.
  while (MonotonicNanos() < deadline) {
    RaftNode* ldr = leader();
    if (ldr == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    if (ldr->log_first_index() > 0 || ldr->snapshot_disabled() || ldr->last_applied() == 0) {
      break;
    }
    ldr->RequestSnapshot();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Status status = ProposeConfigChangeInternal(base.WithLearner(id), deadline);
  if (!status.ok()) {
    // The orphan node stays allocated but never joins; it is harmless (its
    // replicators idle) and a retry will allocate a new id.
    return status;
  }
  adds->Add();
  MANTLE_ILOG << "raft group " << name_ << " added learner " << id;
  return id;
}

Status RaftGroup::PromoteLearner(uint32_t id, uint64_t max_lag_entries, int64_t timeout_nanos) {
  std::lock_guard<std::mutex> membership(membership_mu_);
  static obs::Gauge* lag_gauge =
      obs::Metrics::Instance().GetGauge("raft.learner.catchup_lag");
  static obs::Counter* promotes = obs::Metrics::Instance().GetCounter("raft.config.promote");
  const int64_t deadline = MonotonicNanos() + DeadlineBudget::Clamp(timeout_nanos);
  while (true) {
    RaftNode* ldr = leader();
    if (ldr != nullptr) {
      const RaftConfig config = ldr->config();
      if (config.IsVoter(id)) {
        return Status::Ok();  // already promoted (idempotent retry)
      }
      if (!config.IsLearner(id)) {
        return Status::NotFound("promote: node is not a learner in the committed config");
      }
      const uint64_t match = ldr->MatchIndexOf(id);
      const uint64_t last = ldr->last_log_index();
      const uint64_t lag = last > match ? last - match : 0;
      lag_gauge->Set(static_cast<int64_t>(lag));
      if (match > 0 && lag <= max_lag_entries) {
        Status status = ProposeConfigChangeInternal(config.WithPromoted(id), deadline);
        if (status.ok()) {
          promotes->Add();
          MANTLE_ILOG << "raft group " << name_ << " promoted learner " << id
                      << " (lag " << lag << ")";
        }
        return status;
      }
    }
    if (MonotonicNanos() >= deadline) {
      return Status::Timeout("promote: learner did not catch up within the lag bound");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Status RaftGroup::RemoveNode(uint32_t id, int64_t timeout_nanos) {
  std::lock_guard<std::mutex> membership(membership_mu_);
  static obs::Counter* removes = obs::Metrics::Instance().GetCounter("raft.config.remove");
  const int64_t deadline = MonotonicNanos() + DeadlineBudget::Clamp(timeout_nanos);
  RaftNode* ldr = WaitForLeader(deadline - MonotonicNanos());
  if (ldr == nullptr) {
    return Status::Unavailable("remove: no leader");
  }
  if (ldr->id() == id && !ldr->IsDown()) {
    // Decommissioning the acting leader: move leadership first so the write
    // stall is one TimeoutNow round plus an election, not a timeout.
    MANTLE_RETURN_IF_ERROR(TransferLeadershipInternal(kAutoTarget, deadline));
  }
  const RaftConfig config = CommittedConfig();
  if (!config.IsMember(id)) {
    return Status::Ok();  // already removed (idempotent retry)
  }
  Status status = ProposeConfigChangeInternal(config.Without(id), deadline);
  if (status.ok()) {
    removes->Add();
    MANTLE_ILOG << "raft group " << name_ << " removed node " << id;
  }
  return status;
}

Status RaftGroup::TransferLeadership(uint32_t target, int64_t timeout_nanos) {
  return TransferLeadershipInternal(target,
                                    MonotonicNanos() + DeadlineBudget::Clamp(timeout_nanos));
}

Status RaftGroup::TransferLeadershipInternal(uint32_t target, int64_t deadline_nanos) {
  RaftNode* ldr = WaitForLeader(deadline_nanos - MonotonicNanos());
  if (ldr == nullptr) {
    return Status::Unavailable("transfer: no leader");
  }
  const uint64_t old_term = ldr->term();
  uint32_t chosen = target;
  if (chosen == kAutoTarget) {
    const RaftConfig config = ldr->config();
    uint64_t best_match = 0;
    chosen = kAutoTarget;
    for (uint32_t voter : config.voters) {
      if (voter == ldr->id()) {
        continue;
      }
      RaftNode* candidate = node(voter);
      if (candidate == nullptr || candidate->IsDown()) {
        continue;
      }
      const uint64_t match = ldr->MatchIndexOf(voter);
      if (chosen == kAutoTarget || match > best_match) {
        chosen = voter;
        best_match = match;
      }
    }
    if (chosen == kAutoTarget) {
      return Status::Unavailable("transfer: no live voter to transfer to");
    }
  }
  MANTLE_RETURN_IF_ERROR(
      ldr->TransferLeadership(chosen, deadline_nanos - MonotonicNanos()));
  while (MonotonicNanos() < deadline_nanos) {
    RaftNode* now = leader();
    if (now != nullptr && (now->id() == chosen || now->term() > old_term)) {
      MANTLE_ILOG << "raft group " << name_ << " leadership moved " << ldr->id() << " -> "
                  << now->id();
      return Status::Ok();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::Timeout("transfer: leadership did not move");
}

void RaftGroup::DecommissionNode(uint32_t id) {
  RaftNode* corpse = node(id);
  if (corpse != nullptr) {
    corpse->Stop();
  }
}

}  // namespace mantle
