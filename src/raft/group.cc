#include "src/raft/group.h"

#include <chrono>
#include <thread>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace mantle {

RaftGroup::RaftGroup(Network* network, const std::string& name, uint32_t num_voters,
                     uint32_t num_learners, const StateMachineFactory& factory,
                     RaftOptions options)
    : network_(network), num_voters_(num_voters), options_(options) {
  const uint32_t total = num_voters + num_learners;
  nodes_.reserve(total);
  for (uint32_t id = 0; id < total; ++id) {
    const bool voter = id < num_voters;
    ServerExecutor* server = network_->AddServer(name + "-" + std::to_string(id),
                                                 options_.workers_per_node);
    ServerExecutor* raft_server =
        network_->AddServer(name + "-" + std::to_string(id) + "-raft", 2);
    nodes_.push_back(std::make_unique<RaftNode>(this, id, voter, server, raft_server,
                                                factory(id), options_));
  }
  for (auto& node : nodes_) {
    RaftNodeStartThreads(*node);
  }
}

RaftGroup::~RaftGroup() {
  // Nodes hold raw pointers to their peers (replicator and vote fan-out), so
  // teardown is three-phase: stop every node's threads, then drain the
  // executors (a deadline-expired caller may have abandoned a handler that is
  // still queued and captures a peer), and only then free any node.
  for (auto& node : nodes_) {
    node->BeginShutdown();
  }
  for (auto& node : nodes_) {
    node->JoinThreads();
  }
  for (auto& node : nodes_) {
    node->server()->Drain();
    node->raft_server()->Drain();
  }
}

void RaftGroup::Start() {
  nodes_[0]->Campaign();
  RaftNode* leader = WaitForLeader();
  if (leader == nullptr) {
    MANTLE_ELOG << "raft group failed to elect a leader at startup";
  }
}

RaftNode* RaftGroup::leader() const {
  // During a partition the stale leader keeps its role until it hears the new
  // term; preferring the highest-term leader routes clients to the live one.
  RaftNode* best = nullptr;
  uint64_t best_term = 0;
  for (const auto& node : nodes_) {
    if (!node->IsDown() && node->role() == RaftRole::kLeader) {
      const uint64_t term = node->term();
      if (best == nullptr || term > best_term) {
        best = node.get();
        best_term = term;
      }
    }
  }
  return best;
}

RaftNode* RaftGroup::WaitForLeader(int64_t timeout_nanos) {
  // Never outlive the calling operation's deadline budget: an election window
  // then surfaces as kUnavailable at the caller instead of a stall.
  const int64_t deadline = MonotonicNanos() + DeadlineBudget::Clamp(timeout_nanos);
  while (MonotonicNanos() < deadline) {
    RaftNode* node = leader();
    if (node != nullptr) {
      return node;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return leader();
}

Result<std::string> RaftGroup::Propose(const std::string& command) {
  const int64_t deadline =
      MonotonicNanos() + DeadlineBudget::Clamp(options_.propose_timeout_nanos);
  Status last = Status::Timeout("no leader accepted the proposal");
  while (MonotonicNanos() < deadline) {
    RaftNode* node = leader();
    if (node == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    // The proposal rides the fabric: a partition, crash, or drop between this
    // proxy thread and the leader loses it, and the loop retries until the
    // deadline. Idempotence across such retries is the caller's contract
    // (rename UUIDs; add/remove ops are natural no-ops on re-apply).
    network_->ChargeRtt();  // proxy -> leader round trip
    Status pre = network_->PreflightRpc(node->server()->name());
    if (!pre.ok()) {
      last = pre;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    Result<std::string> result = [&]() {
      // Propose bypasses ServerExecutor::Call (the proxy thread talks to the
      // leader's consensus state directly), so the fabric's automatic rpc
      // span never fires; record the consensus round-trip explicitly.
      obs::ScopedSpan propose_span(obs::CurrentThreadTrace(), "raft.propose.",
                                   node->server()->name(), obs::SpanKind::kWire);
      return node->ProposeAndWait(command);
    }();
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      return result;
    }
    last = result.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (last.code() == StatusCode::kUnavailable) {
    return last;
  }
  return Status::Timeout("no leader accepted the proposal: " + last.ToString());
}

}  // namespace mantle
