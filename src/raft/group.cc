#include "src/raft/group.h"

#include <chrono>
#include <thread>

#include "src/common/logging.h"

namespace mantle {

RaftGroup::RaftGroup(Network* network, const std::string& name, uint32_t num_voters,
                     uint32_t num_learners, const StateMachineFactory& factory,
                     RaftOptions options)
    : network_(network), num_voters_(num_voters), options_(options) {
  const uint32_t total = num_voters + num_learners;
  nodes_.reserve(total);
  for (uint32_t id = 0; id < total; ++id) {
    const bool voter = id < num_voters;
    ServerExecutor* server = network_->AddServer(name + "-" + std::to_string(id),
                                                 options_.workers_per_node);
    ServerExecutor* raft_server =
        network_->AddServer(name + "-" + std::to_string(id) + "-raft", 2);
    nodes_.push_back(std::make_unique<RaftNode>(this, id, voter, server, raft_server,
                                                factory(id), options_));
  }
  for (auto& node : nodes_) {
    RaftNodeStartThreads(*node);
  }
}

RaftGroup::~RaftGroup() = default;

void RaftGroup::Start() {
  nodes_[0]->Campaign();
  RaftNode* leader = WaitForLeader();
  if (leader == nullptr) {
    MANTLE_ELOG << "raft group failed to elect a leader at startup";
  }
}

RaftNode* RaftGroup::leader() const {
  for (const auto& node : nodes_) {
    if (!node->IsDown() && node->role() == RaftRole::kLeader) {
      return node.get();
    }
  }
  return nullptr;
}

RaftNode* RaftGroup::WaitForLeader(int64_t timeout_nanos) {
  const int64_t deadline = MonotonicNanos() + timeout_nanos;
  while (MonotonicNanos() < deadline) {
    RaftNode* node = leader();
    if (node != nullptr) {
      return node;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return leader();
}

Result<std::string> RaftGroup::Propose(const std::string& command) {
  const int64_t deadline = MonotonicNanos() + options_.propose_timeout_nanos;
  while (MonotonicNanos() < deadline) {
    RaftNode* node = leader();
    if (node == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    network_->ChargeRtt();  // proxy -> leader round trip
    Result<std::string> result = node->ProposeAndWait(command);
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return Status::Timeout("no leader accepted the proposal");
}

}  // namespace mantle
