// A Raft replication group: voters + learners over the simulated fabric.

#ifndef SRC_RAFT_GROUP_H_
#define SRC_RAFT_GROUP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/net/network.h"
#include "src/raft/node.h"

namespace mantle {

class RaftGroup {
 public:
  using StateMachineFactory = std::function<std::unique_ptr<StateMachine>(uint32_t node_id)>;

  // Creates `num_voters` voting replicas and `num_learners` read replicas,
  // each on its own logical server named "<name>-<id>".
  RaftGroup(Network* network, const std::string& name, uint32_t num_voters, uint32_t num_learners,
            const StateMachineFactory& factory, RaftOptions options = {});
  ~RaftGroup();

  RaftGroup(const RaftGroup&) = delete;
  RaftGroup& operator=(const RaftGroup&) = delete;

  // Deterministic bootstrap: node 0 campaigns and the call blocks until a
  // leader exists.
  void Start();

  // Current leader, or nullptr. WaitForLeader blocks (with timeout) until an
  // election settles.
  RaftNode* leader() const;
  RaftNode* WaitForLeader(int64_t timeout_nanos = 5'000'000'000);

  // Routes a proposal to the leader (one RPC) and waits for apply. Retries
  // through leader changes until `options.propose_timeout_nanos` expires.
  Result<std::string> Propose(const std::string& command);

  RaftNode* node(uint32_t id) const { return nodes_[id].get(); }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  uint32_t num_voters() const { return num_voters_; }
  Network* network() const { return network_; }
  const RaftOptions& options() const { return options_; }

  // Number of votes needed to win an election / commit an entry.
  uint32_t Majority() const { return num_voters_ / 2 + 1; }

 private:
  Network* network_;
  uint32_t num_voters_;
  RaftOptions options_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
};

}  // namespace mantle

#endif  // SRC_RAFT_GROUP_H_
