// A Raft replication group: voters + learners over the simulated fabric.
//
// Membership is dynamic: AddLearner/PromoteLearner/RemoveNode change the
// committed config at runtime (one node at a time), and TransferLeadership
// moves the leader off a node about to be decommissioned. The group only ever
// APPENDS to its node table - removed nodes stay behind as stopped corpses so
// raw peer pointers held by replicators and in-flight handlers never dangle.

#ifndef SRC_RAFT_GROUP_H_
#define SRC_RAFT_GROUP_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/net/network.h"
#include "src/raft/config.h"
#include "src/raft/node.h"

namespace mantle {

class RaftGroup {
 public:
  using StateMachineFactory = std::function<std::unique_ptr<StateMachine>(uint32_t node_id)>;

  // Pseudo-target for TransferLeadership: pick the most caught-up live voter.
  static constexpr uint32_t kAutoTarget = UINT32_MAX;

  // Creates `num_voters` voting replicas and `num_learners` read replicas,
  // each on its own logical server named "<name>-<id>".
  RaftGroup(Network* network, const std::string& name, uint32_t num_voters, uint32_t num_learners,
            const StateMachineFactory& factory, RaftOptions options = {});
  ~RaftGroup();

  RaftGroup(const RaftGroup&) = delete;
  RaftGroup& operator=(const RaftGroup&) = delete;

  // Deterministic bootstrap: the first live voter campaigns and the call
  // blocks until a leader exists.
  void Start();

  // Current leader, or nullptr. WaitForLeader blocks (with timeout) until an
  // election settles.
  RaftNode* leader() const;
  RaftNode* WaitForLeader(int64_t timeout_nanos = 5'000'000'000);

  // Routes a proposal to the leader (one RPC) and waits for apply. Retries
  // through leader changes until `options.propose_timeout_nanos` expires.
  Result<std::string> Propose(const std::string& command);

  // --- runtime membership -----------------------------------------------------
  // Allocates a fresh node (new servers on the fabric, state machine from the
  // construction-time factory) and commits a config adding it as a learner.
  // The learner catches up through the normal replication path; when the
  // leader's log is compacted (a snapshot is forced if none exists) the first
  // exchange ships the snapshot, covering state-machine content that predates
  // the log. Returns the new node id.
  Result<uint32_t> AddLearner(int64_t timeout_nanos = 15'000'000'000);

  // Waits until the leader's match index for `id` is within
  // `max_lag_entries` of its last log index, then commits a config promoting
  // the learner to voter. Idempotent if `id` already votes.
  Status PromoteLearner(uint32_t id, uint64_t max_lag_entries = 16,
                        int64_t timeout_nanos = 15'000'000'000);

  // Commits a config removing `id` (voter or learner). When `id` is the
  // current leader, leadership is transferred away first so the write stall
  // stays bounded by one TimeoutNow round plus an election. The node object
  // and its servers remain allocated (stopped corpse); call DecommissionNode
  // to crash-stop it.
  Status RemoveNode(uint32_t id, int64_t timeout_nanos = 15'000'000'000);

  // Moves leadership to `target` (or the most caught-up live voter when
  // kAutoTarget) via TimeoutNow and waits until the new leader takes over.
  Status TransferLeadership(uint32_t target = kAutoTarget,
                            int64_t timeout_nanos = 5'000'000'000);

  // Crash-stops a (typically just-removed) node.
  void DecommissionNode(uint32_t id);

  // Routes a raw config change to the leader with retries across elections.
  Status ProposeConfigChange(const RaftConfig& next,
                             int64_t timeout_nanos = 15'000'000'000);

  // The membership in force: the leader's applied config, else the live
  // node with the highest config index, else node 0's view.
  RaftConfig CommittedConfig() const;

  RaftNode* node(uint32_t id) const;
  uint32_t num_nodes() const;
  uint32_t num_voters() const {
    return static_cast<uint32_t>(CommittedConfig().voters.size());
  }
  Network* network() const { return network_; }
  const std::string& name() const { return name_; }
  const RaftOptions& options() const { return options_; }

  // Number of votes needed to win an election / commit an entry under the
  // committed config.
  uint32_t Majority() const { return CommittedConfig().Majority(); }

 private:
  // Stable pointer copy of the node table; iterate without holding nodes_mu_
  // (node pointers live until group destruction).
  std::vector<RaftNode*> SnapshotNodes() const;
  Status ProposeConfigChangeInternal(const RaftConfig& next, int64_t deadline_nanos);
  Status TransferLeadershipInternal(uint32_t target, int64_t deadline_nanos);

  Network* network_;
  const std::string name_;
  RaftOptions options_;
  StateMachineFactory factory_;

  // Guards nodes_ (runtime growth via AddLearner). Leaf lock: never held
  // while acquiring a node's mutex.
  mutable std::mutex nodes_mu_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;

  // Serializes membership operations group-side; the leader additionally
  // refuses overlapping config entries (the real safety check).
  std::mutex membership_mu_;
};

}  // namespace mantle

#endif  // SRC_RAFT_GROUP_H_
