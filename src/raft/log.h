// Raft log entry and in-memory log with 1-based indexing.

#ifndef SRC_RAFT_LOG_H_
#define SRC_RAFT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mantle {

// What an entry carries: a state-machine command (applied via
// StateMachine::Apply) or a membership config (applied by the Raft layer
// itself at commit - see src/raft/config.h).
enum class LogEntryType : uint8_t { kCommand, kConfig };

struct LogEntry {
  uint64_t term = 0;
  uint64_t index = 0;
  std::string payload;  // opaque state-machine command, or an encoded RaftConfig
  LogEntryType type = LogEntryType::kCommand;
};

// In-memory Raft log with prefix compaction. A sentinel entry marks the
// compaction point (initially index 0, term 0); real entries follow it.
// Not thread-safe; guarded by the owning node's mutex.
class RaftLog {
 public:
  RaftLog() { entries_.push_back(LogEntry{0, 0, ""}); }

  // Index of the sentinel: everything at or below it has been compacted away
  // (its state lives in the snapshot).
  uint64_t FirstIndex() const { return entries_.front().index; }
  uint64_t LastIndex() const { return entries_.back().index; }
  uint64_t LastTerm() const { return entries_.back().term; }

  // True if `index` is the sentinel or a live entry (term/payload readable).
  bool Has(uint64_t index) const { return index >= FirstIndex() && index <= LastIndex(); }
  // True if the entry was compacted into the snapshot.
  bool Compacted(uint64_t index) const { return index < FirstIndex(); }

  uint64_t TermAt(uint64_t index) const {
    return Has(index) ? entries_[index - FirstIndex()].term : 0;
  }

  const LogEntry& At(uint64_t index) const { return entries_[index - FirstIndex()]; }

  void Append(LogEntry entry) { entries_.push_back(std::move(entry)); }

  // Removes entries with index >= first_removed (conflict resolution).
  void TruncateFrom(uint64_t first_removed) {
    if (first_removed > FirstIndex() && first_removed <= LastIndex()) {
      entries_.resize(first_removed - FirstIndex());
    }
  }

  // Drops all entries at or below `upto` (which must be <= LastIndex),
  // leaving a sentinel carrying upto's term. State below the sentinel is
  // assumed captured by a snapshot.
  void CompactPrefix(uint64_t upto) {
    if (upto <= FirstIndex() || upto > LastIndex()) {
      return;
    }
    const uint64_t keep_term = TermAt(upto);
    std::vector<LogEntry> kept;
    kept.push_back(LogEntry{keep_term, upto, ""});
    for (uint64_t i = upto + 1; i <= LastIndex(); ++i) {
      kept.push_back(entries_[i - FirstIndex()]);
    }
    entries_ = std::move(kept);
  }

  // Resets to a bare sentinel at (index, term) - used after InstallSnapshot.
  void ResetToSnapshot(uint64_t index, uint64_t term) {
    entries_.clear();
    entries_.push_back(LogEntry{term, index, ""});
  }

  // Copies entries (from, from+count] capped at the log end. `from_exclusive`
  // must not be compacted.
  std::vector<LogEntry> Slice(uint64_t from_exclusive, size_t max_count) const {
    std::vector<LogEntry> out;
    for (uint64_t i = from_exclusive + 1; i <= LastIndex() && out.size() < max_count; ++i) {
      out.push_back(entries_[i - FirstIndex()]);
    }
    return out;
  }

  size_t LiveEntries() const { return entries_.size() - 1; }

  size_t SizeBytes() const {
    size_t total = 0;
    for (const auto& entry : entries_) {
      total += entry.payload.size() + sizeof(LogEntry);
    }
    return total;
  }

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace mantle

#endif  // SRC_RAFT_LOG_H_
