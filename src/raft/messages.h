// Raft RPC message types (Ongaro & Ousterhout, "In Search of an
// Understandable Consensus Algorithm").

#ifndef SRC_RAFT_MESSAGES_H_
#define SRC_RAFT_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "src/raft/log.h"

namespace mantle {

struct AppendEntriesRequest {
  uint64_t term = 0;
  uint32_t leader_id = 0;
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  uint64_t leader_commit = 0;
  std::vector<LogEntry> entries;  // empty = heartbeat
};

struct AppendEntriesReply {
  uint64_t term = 0;
  bool success = false;
  // On success: last replicated index. On failure: a hint for next_index.
  uint64_t match_index = 0;
  bool peer_down = false;
};

struct RequestVoteRequest {
  uint64_t term = 0;
  uint32_t candidate_id = 0;
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;
};

struct RequestVoteReply {
  uint64_t term = 0;
  bool vote_granted = false;
};

struct InstallSnapshotRequest {
  uint64_t term = 0;
  uint32_t leader_id = 0;
  uint64_t snapshot_index = 0;  // last index covered by the snapshot
  uint64_t snapshot_term = 0;
  std::string data;             // StateMachine::Snapshot() payload
  // Membership as of snapshot_index (encoded RaftConfig) - a learner catching
  // up from a snapshot must learn the config it can no longer replay.
  std::string config;
  uint64_t config_index = 0;
};

struct InstallSnapshotReply {
  uint64_t term = 0;
  bool success = false;
  bool peer_down = false;
};

// Leader transfer (the TimeoutNow extension): the outgoing leader tells a
// caught-up voter to campaign immediately, bypassing its election timeout.
// The old leader steps down when it sees the target's higher-term vote
// request, bounding the write stall to one message exchange.
struct TimeoutNowRequest {
  uint64_t term = 0;
  uint32_t leader_id = 0;
};

struct TimeoutNowReply {
  // True when the target accepted and started a campaign.
  bool accepted = false;
  bool peer_down = false;
};

}  // namespace mantle

#endif  // SRC_RAFT_MESSAGES_H_
