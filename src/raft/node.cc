#include "src/raft/node.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/raft/group.h"

namespace mantle {

namespace {

// Fulfils a proposal promise, tolerating the (never-expected) case of a
// second fulfilment racing a failover path: losing a result beats calling
// std::terminate through std::future_error.
void SafeSetValue(const std::shared_ptr<std::promise<Result<std::string>>>& promise,
                  Result<std::string> value) {
  if (promise == nullptr) {
    return;
  }
  try {
    promise->set_value(std::move(value));
  } catch (const std::future_error&) {
    MANTLE_WLOG << "proposal promise fulfilled twice (failover race)";
  }
}

}  // namespace

RaftNode::RaftNode(RaftGroup* group, uint32_t id, bool voter, ServerExecutor* server,
                   ServerExecutor* raft_server, std::unique_ptr<StateMachine> state_machine,
                   const RaftOptions& options)
    : group_(group),
      id_(id),
      voter_(voter),
      server_(server),
      raft_server_(raft_server),
      state_machine_(std::move(state_machine)),
      options_(options),
      storage_(options.fsync_nanos),
      role_(voter ? RaftRole::kFollower : RaftRole::kLearner),
      rng_(0x9a7f00d + id) {
  last_heartbeat_nanos_ = MonotonicNanos();
  election_timeout_nanos_ = RandomElectionTimeout();
}

// Threads are started by RaftGroup after all nodes exist (replicators need
// group_->node(peer) to be valid), via this friend-style late init.
void RaftNodeStartThreads(RaftNode& node);

RaftNode::~RaftNode() {
  BeginShutdown();
  JoinThreads();
}

void RaftNode::BeginShutdown() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    FailPendingLocked(Status::Unavailable("shutting down"));
  }
  apply_cv_.notify_all();
  applied_cv_.notify_all();
  proposal_cv_.notify_all();
  replicate_cv_.notify_all();
  read_cv_.notify_all();
}

void RaftNode::JoinThreads() {
  if (apply_thread_.joinable()) {
    apply_thread_.join();
  }
  if (election_thread_.joinable()) {
    election_thread_.join();
  }
  if (pipeline_thread_.joinable()) {
    pipeline_thread_.join();
  }
  for (auto& replicator : replicator_threads_) {
    if (replicator.joinable()) {
      replicator.join();
    }
  }
}

int64_t RaftNode::RandomElectionTimeout() {
  return options_.election_timeout_min_nanos +
         static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(
             options_.election_timeout_max_nanos - options_.election_timeout_min_nanos + 1)));
}

RaftRole RaftNode::role() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_;
}

uint64_t RaftNode::term() const {
  std::lock_guard<std::mutex> lock(mu_);
  return term_;
}

uint64_t RaftNode::commit_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_index_;
}

uint64_t RaftNode::last_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_applied_;
}

uint64_t RaftNode::last_log_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.LastIndex();
}

void RaftNode::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  down_.store(true, std::memory_order_release);
  FailPendingLocked(Status::Unavailable("node stopped"));
}

void RaftNode::Restart() {
  std::lock_guard<std::mutex> lock(mu_);
  // A restarted node rejoins as follower/learner with its persisted log.
  role_ = voter_ ? RaftRole::kFollower : RaftRole::kLearner;
  last_heartbeat_nanos_ = MonotonicNanos();
  election_timeout_nanos_ = RandomElectionTimeout();
  down_.store(false, std::memory_order_release);
}

void RaftNode::WipeState() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!down_.load(std::memory_order_acquire)) {
    // Only a stopped node can lose its disk; live threads would race the
    // reset. Total-group-loss recovery stops every node first.
    return;
  }
  FailPendingLocked(Status::Unavailable("node state wiped"));
  log_.ResetToSnapshot(0, 0);
  term_ = 0;
  voted_for_ = -1;
  leader_hint_ = UINT32_MAX;
  commit_index_ = 0;
  last_applied_ = 0;
  snapshot_index_ = 0;
  snapshot_term_ = 0;
  snapshot_data_.clear();
  role_ = voter_ ? RaftRole::kFollower : RaftRole::kLearner;
}

void RaftNode::BecomeFollower(uint64_t term) {
  term_ = term;
  voted_for_ = -1;
  role_ = voter_ ? RaftRole::kFollower : RaftRole::kLearner;
}

void RaftNode::StepDownLocked(uint64_t term) {
  BecomeFollower(term);
  // Queued-but-unappended proposals can never commit under this node; fail
  // them so proxies retry against the new leader. Appended entries stay
  // pending - they may still commit if the new leader carries them.
  while (!proposal_queue_.empty()) {
    SafeSetValue(proposal_queue_.front().done, Status::Unavailable("leadership lost"));
    proposal_queue_.pop_front();
  }
}

void RaftNode::FailPendingLocked(const Status& status) {
  while (!proposal_queue_.empty()) {
    SafeSetValue(proposal_queue_.front().done, status);
    proposal_queue_.pop_front();
  }
  for (auto& [index, promise] : pending_applies_) {
    SafeSetValue(promise, status);
  }
  pending_applies_.clear();
}

void RaftNode::BecomeLeader() {
  role_ = RaftRole::kLeader;
  leader_hint_ = id_;
  const uint64_t last = log_.LastIndex();
  next_index_.assign(group_->num_nodes(), last + 1);
  match_index_.assign(group_->num_nodes(), 0);
  // Commit a no-op to finalize entries from previous terms (Raft §5.4.2).
  log_.Append(LogEntry{term_, last + 1, ""});
  match_index_[id_] = last + 1;
  MaybeAdvanceCommitLocked();
  proposal_cv_.notify_all();
  replicate_cv_.notify_all();
  MANTLE_ILOG << "raft node " << id_ << " became leader (term " << term_ << ")";
}

void RaftNode::MaybeAdvanceCommitLocked() {
  const uint64_t last = log_.LastIndex();
  for (uint64_t n = last; n > commit_index_; --n) {
    if (log_.TermAt(n) != term_) {
      break;  // only entries from the current term commit by counting
    }
    uint32_t votes = 0;
    for (uint32_t peer = 0; peer < group_->num_nodes(); ++peer) {
      if (group_->node(peer)->is_voter() && match_index_[peer] >= n) {
        ++votes;
      }
    }
    if (votes >= group_->Majority()) {
      commit_index_ = n;
      apply_cv_.notify_all();
      replicate_cv_.notify_all();  // piggyback the new commit index
      break;
    }
  }
}

AppendEntriesReply RaftNode::HandleAppendEntries(const AppendEntriesRequest& request) {
  if (down_.load(std::memory_order_acquire)) {
    return AppendEntriesReply{0, false, 0, /*peer_down=*/true};
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (request.term < term_) {
    return AppendEntriesReply{term_, false, 0, false};
  }
  if (request.term > term_ || role_ == RaftRole::kCandidate || role_ == RaftRole::kLeader) {
    StepDownLocked(request.term);
  }
  last_heartbeat_nanos_ = MonotonicNanos();
  leader_hint_ = request.leader_id;

  if (!log_.Has(request.prev_log_index) ||
      log_.TermAt(request.prev_log_index) != request.prev_log_term) {
    const uint64_t hint = std::min(log_.LastIndex(),
                                   request.prev_log_index > 0 ? request.prev_log_index - 1 : 0);
    return AppendEntriesReply{term_, false, hint, false};
  }

  size_t appended = 0;
  for (const auto& entry : request.entries) {
    if (log_.Has(entry.index)) {
      if (log_.TermAt(entry.index) == entry.term) {
        continue;  // duplicate from a retransmission
      }
      // Conflict: discard the divergent suffix (it can never commit here).
      for (auto it = pending_applies_.lower_bound(entry.index); it != pending_applies_.end();) {
        SafeSetValue(it->second, Status::Unavailable("entry truncated by new leader"));
        it = pending_applies_.erase(it);
      }
      log_.TruncateFrom(entry.index);
    }
    log_.Append(entry);
    ++appended;
  }

  const uint64_t match = request.prev_log_index + request.entries.size();
  const uint64_t new_commit = std::min(request.leader_commit, log_.LastIndex());
  if (new_commit > commit_index_) {
    commit_index_ = new_commit;
    apply_cv_.notify_all();
  }
  lock.unlock();
  if (appended > 0) {
    storage_.Persist(appended);
  }
  return AppendEntriesReply{request.term, true, match, false};
}

RequestVoteReply RaftNode::HandleRequestVote(const RequestVoteRequest& request) {
  if (down_.load(std::memory_order_acquire) || !voter_) {
    return RequestVoteReply{0, false};
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (request.term < term_) {
    return RequestVoteReply{term_, false};
  }
  if (request.term > term_) {
    StepDownLocked(request.term);
  }
  const bool log_ok = request.last_log_term > log_.LastTerm() ||
                      (request.last_log_term == log_.LastTerm() &&
                       request.last_log_index >= log_.LastIndex());
  bool granted = false;
  if (log_ok && (voted_for_ == -1 || voted_for_ == static_cast<int32_t>(request.candidate_id))) {
    voted_for_ = static_cast<int32_t>(request.candidate_id);
    granted = true;
    last_heartbeat_nanos_ = MonotonicNanos();  // granting a vote resets the timer
  }
  const uint64_t reply_term = term_;
  lock.unlock();
  if (granted) {
    storage_.Persist(0);  // vote durability
  }
  return RequestVoteReply{reply_term, granted};
}

std::optional<uint64_t> RaftNode::HandleReadIndexQuery() {
  if (down_.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (role_ != RaftRole::kLeader) {
    return std::nullopt;
  }
  return commit_index_;
}

Result<std::string> RaftNode::ProposeAndWait(std::string command) {
  const int64_t wait_nanos = DeadlineBudget::Clamp(options_.propose_timeout_nanos);
  if (wait_nanos <= 0) {
    return Status::Timeout("propose: deadline exhausted");
  }
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  std::future<Result<std::string>> future = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_.load(std::memory_order_acquire)) {
      return Status::Unavailable("node down");
    }
    if (role_ != RaftRole::kLeader) {
      return Status::Unavailable("not leader");
    }
    stats_.proposals.fetch_add(1, std::memory_order_relaxed);
    proposal_queue_.push_back(PendingProposal{std::move(command), promise});
  }
  proposal_cv_.notify_one();
  if (future.wait_for(std::chrono::nanoseconds(wait_nanos)) != std::future_status::ready) {
    return Status::Timeout("propose timed out");
  }
  return future.get();
}

void RaftNode::WaitApplied(uint64_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  applied_cv_.wait(lock, [this, index]() {
    return stopping_.load(std::memory_order_acquire) || last_applied_ >= index;
  });
}

bool RaftNode::WaitAppliedFor(uint64_t index, int64_t timeout_nanos) {
  std::unique_lock<std::mutex> lock(mu_);
  applied_cv_.wait_for(lock, std::chrono::nanoseconds(std::max<int64_t>(timeout_nanos, 0)),
                       [this, index]() {
                         return stopping_.load(std::memory_order_acquire) ||
                                last_applied_ >= index;
                       });
  return last_applied_ >= index;
}

Result<uint64_t> RaftNode::FollowerReadFence() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (role_ == RaftRole::kLeader) {
      return commit_index_;
    }
  }
  // Total fence budget: the configured cap, tightened by the calling
  // operation's deadline (propagated onto this worker thread by the fabric).
  const int64_t budget = DeadlineBudget::Clamp(options_.read_fence_timeout_nanos);
  if (budget <= 0) {
    return Status::Timeout("read fence: deadline exhausted");
  }
  const int64_t fence_deadline = MonotonicNanos() + budget;
  Result<uint64_t> fence = Status::Unavailable("no leader");
  std::unique_lock<std::mutex> read_lock(read_mu_);
  const uint64_t generation = read_generation_;
  if (read_inflight_) {
    // Piggyback on the in-flight leader query (paper §5.1.3: "queries for the
    // commitIndex are batched").
    stats_.read_index_batched.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* batched = obs::Metrics::Instance().GetCounter("raft.read_index.batched");
    batched->Add();
    const bool advanced =
        read_cv_.wait_for(read_lock, std::chrono::nanoseconds(budget), [this, generation]() {
          return stopping_.load(std::memory_order_acquire) || read_generation_ != generation;
        });
    if (!advanced) {
      return Status::Timeout("read fence: batched commit-index query timed out");
    }
    fence = last_read_fence_;
  } else {
    read_inflight_ = true;
    read_lock.unlock();
    stats_.read_index_queries.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* queries = obs::Metrics::Instance().GetCounter("raft.read_index.queries");
    queries->Add();
    RaftNode* leader = group_->leader();
    if (leader != nullptr && leader != this) {
      // A partitioned or crashed leader link loses the query: the translator
      // maps the fault to "no fence", and the caller falls back to another
      // replica or the leader rather than blocking.
      auto commit = leader->raft_server()->Call(
          [leader]() { return leader->HandleReadIndexQuery(); },
          [](const Status&) { return std::optional<uint64_t>{}; });
      if (commit.has_value()) {
        fence = *commit;
      } else {
        fence = Status::Unavailable("read fence: leader unreachable");
      }
    } else if (leader == this) {
      fence = commit_index();
    }
    read_lock.lock();
    last_read_fence_ = fence;
    ++read_generation_;
    read_inflight_ = false;
    read_cv_.notify_all();
  }
  read_lock.unlock();
  if (fence.ok() && !WaitAppliedFor(*fence, fence_deadline - MonotonicNanos())) {
    return Status::Timeout("read fence: apply index did not catch up");
  }
  return fence;
}

void RaftNode::Campaign() { RunElection(); }

void RaftNode::RunElection() {
  // Votes travel the fabric as this node's consensus endpoint, so a named
  // partition isolating this replica also isolates its campaigns.
  ScopedNetOrigin origin(raft_server_->name());
  RequestVoteRequest request;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (role_ == RaftRole::kLeader || !voter_ || down_.load(std::memory_order_acquire)) {
      return;
    }
    ++term_;
    role_ = RaftRole::kCandidate;
    voted_for_ = static_cast<int32_t>(id_);
    stats_.elections_started.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* elections = obs::Metrics::Instance().GetCounter("raft.election.count");
    elections->Add();
    last_heartbeat_nanos_ = MonotonicNanos();
    election_timeout_nanos_ = RandomElectionTimeout();
    request = RequestVoteRequest{term_, id_, log_.LastIndex(), log_.LastTerm()};
  }
  storage_.Persist(0);

  std::vector<std::future<RequestVoteReply>> replies;
  for (uint32_t peer = 0; peer < group_->num_nodes(); ++peer) {
    RaftNode* peer_node = group_->node(peer);
    if (peer == id_ || !peer_node->is_voter()) {
      continue;
    }
    replies.push_back(peer_node->raft_server()->CallAsync(
        [peer_node, request]() { return peer_node->HandleRequestVote(request); },
        [](const Status&) { return RequestVoteReply{0, false}; }));
  }
  group_->network()->InjectDelay();

  uint32_t votes = 1;  // self
  uint64_t max_term = request.term;
  for (auto& reply_future : replies) {
    RequestVoteReply reply = reply_future.get();
    if (reply.vote_granted) {
      ++votes;
    }
    max_term = std::max(max_term, reply.term);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (max_term > term_) {
    StepDownLocked(max_term);
    return;
  }
  if (role_ == RaftRole::kCandidate && term_ == request.term && votes >= group_->Majority()) {
    BecomeLeader();
  }
}

void RaftNode::ElectionLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(options_.election_poll_nanos));
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    if (!options_.enable_election_timer || !voter_ || down_.load(std::memory_order_acquire)) {
      continue;
    }
    bool should_campaign = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      should_campaign = role_ != RaftRole::kLeader &&
                        MonotonicNanos() - last_heartbeat_nanos_ > election_timeout_nanos_;
    }
    if (should_campaign) {
      RunElection();
    }
  }
}

void RaftNode::PipelineLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    proposal_cv_.wait(lock, [this]() {
      return stopping_.load(std::memory_order_acquire) ||
             (role_ == RaftRole::kLeader && !proposal_queue_.empty());
    });
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    const size_t take =
        options_.log_batching ? std::min(proposal_queue_.size(), options_.max_batch_entries) : 1;
    for (size_t i = 0; i < take; ++i) {
      PendingProposal proposal = std::move(proposal_queue_.front());
      proposal_queue_.pop_front();
      const uint64_t index = log_.LastIndex() + 1;
      log_.Append(LogEntry{term_, index, std::move(proposal.command)});
      pending_applies_[index] = std::move(proposal.done);
    }
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    const uint64_t last = log_.LastIndex();
    lock.unlock();
    storage_.Persist(take);
    lock.lock();
    if (role_ == RaftRole::kLeader) {
      match_index_[id_] = std::max(match_index_[id_], last);
      MaybeAdvanceCommitLocked();
    }
    replicate_cv_.notify_all();
  }
}

void RaftNode::ReplicatorLoop(uint32_t peer_id) {
  // Replication traffic originates from this node's consensus endpoint; a
  // partition rule naming this replica severs its leader->follower links.
  ScopedNetOrigin origin(raft_server_->name());
  RaftNode* peer = group_->node(peer_id);
  // Tracks the commit index last shipped so commit-only updates also flow.
  uint64_t last_sent_commit = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    replicate_cv_.wait_for(
        lock, std::chrono::nanoseconds(options_.heartbeat_interval_nanos),
        [this, peer_id, &last_sent_commit]() {
          return stopping_.load(std::memory_order_acquire) ||
                 (role_ == RaftRole::kLeader && !down_.load(std::memory_order_acquire) &&
                  (next_index_[peer_id] <= log_.LastIndex() || commit_index_ > last_sent_commit));
        });
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    if (role_ != RaftRole::kLeader || down_.load(std::memory_order_acquire)) {
      continue;
    }
    if (log_.Compacted(next_index_[peer_id] - 1)) {
      // The entries this peer needs are gone: install the snapshot instead.
      InstallSnapshotRequest snap;
      snap.term = term_;
      snap.leader_id = id_;
      snap.snapshot_index = snapshot_index_;
      snap.snapshot_term = snapshot_term_;
      snap.data = snapshot_data_;
      lock.unlock();
      stats_.snapshots_sent.fetch_add(1, std::memory_order_relaxed);
      InstallSnapshotReply snap_reply = peer->raft_server()->Call(
          [peer, snap]() { return peer->HandleInstallSnapshot(snap); },
          [](const Status&) { return InstallSnapshotReply{0, false, /*peer_down=*/true}; });
      lock.lock();
      if (snap_reply.peer_down) {
        continue;
      }
      if (snap_reply.term > term_) {
        StepDownLocked(snap_reply.term);
        continue;
      }
      if (role_ == RaftRole::kLeader && snap_reply.success) {
        match_index_[peer_id] = std::max(match_index_[peer_id], snap.snapshot_index);
        next_index_[peer_id] = std::max(next_index_[peer_id], snap.snapshot_index + 1);
        MaybeAdvanceCommitLocked();
      }
      continue;
    }
    const uint64_t prev = next_index_[peer_id] - 1;
    AppendEntriesRequest request;
    request.term = term_;
    request.leader_id = id_;
    request.prev_log_index = prev;
    request.prev_log_term = log_.TermAt(prev);
    request.leader_commit = commit_index_;
    request.entries = log_.Slice(prev, options_.max_entries_per_append);
    lock.unlock();

    if (request.entries.empty()) {
      stats_.heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.appends_sent.fetch_add(1, std::memory_order_relaxed);
    }
    AppendEntriesReply reply = peer->raft_server()->Call(
        [peer, request]() { return peer->HandleAppendEntries(request); },
        [](const Status&) { return AppendEntriesReply{0, false, 0, /*peer_down=*/true}; });
    last_sent_commit = request.leader_commit;

    lock.lock();
    if (reply.peer_down) {
      continue;
    }
    if (reply.term > term_) {
      StepDownLocked(reply.term);
      continue;
    }
    if (role_ != RaftRole::kLeader || term_ != request.term) {
      continue;
    }
    if (reply.success) {
      match_index_[peer_id] = std::max(match_index_[peer_id], reply.match_index);
      next_index_[peer_id] = match_index_[peer_id] + 1;
      MaybeAdvanceCommitLocked();
    } else {
      next_index_[peer_id] =
          std::max<uint64_t>(1, std::min(next_index_[peer_id] - 1, reply.match_index + 1));
    }
  }
}

void RaftNode::ApplyLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    apply_cv_.wait(lock, [this]() {
      return stopping_.load(std::memory_order_acquire) || last_applied_ < commit_index_;
    });
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    // Apply lag observed as the backlog waking the loop; the gauge tracks the
    // worst backlog across nodes coarsely (last writer wins).
    static obs::Gauge* apply_lag = obs::Metrics::Instance().GetGauge("raft.apply.lag");
    apply_lag->Set(static_cast<int64_t>(commit_index_ - last_applied_));
    while (last_applied_ < commit_index_) {
      const uint64_t index = last_applied_ + 1;
      const std::string payload = log_.At(index).payload;
      std::shared_ptr<std::promise<Result<std::string>>> waiter;
      auto it = pending_applies_.find(index);
      if (it != pending_applies_.end()) {
        waiter = std::move(it->second);
        pending_applies_.erase(it);
      }
      lock.unlock();
      std::string result;
      if (!payload.empty()) {
        result = state_machine_->Apply(index, payload);
      }
      SafeSetValue(waiter, Result<std::string>(std::move(result)));
      lock.lock();
      last_applied_ = index;
      applied_cv_.notify_all();
    }
    MaybeSnapshot(lock);
  }
}

void RaftNode::MaybeSnapshot(std::unique_lock<std::mutex>& lock) {
  if (options_.snapshot_threshold_entries == 0 ||
      last_applied_ <= log_.FirstIndex() ||
      last_applied_ - log_.FirstIndex() < options_.snapshot_threshold_entries) {
    return;
  }
  const uint64_t snap_index = last_applied_;
  const uint64_t snap_term = log_.TermAt(snap_index);
  lock.unlock();
  // Only the apply thread mutates the state machine, so this serialization
  // observes exactly the applied prefix [1, snap_index].
  std::string data = state_machine_->Snapshot();
  lock.lock();
  if (data.empty()) {
    // Machine is not snapshottable; disable further attempts.
    options_.snapshot_threshold_entries = 0;
    return;
  }
  if (snap_index <= snapshot_index_) {
    return;
  }
  snapshot_index_ = snap_index;
  snapshot_term_ = snap_term;
  snapshot_data_ = std::move(data);
  log_.CompactPrefix(snap_index);
  stats_.snapshots_taken.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  storage_.Persist(1);  // snapshot durability
  lock.lock();
}

InstallSnapshotReply RaftNode::HandleInstallSnapshot(const InstallSnapshotRequest& request) {
  if (down_.load(std::memory_order_acquire)) {
    return InstallSnapshotReply{0, false, /*peer_down=*/true};
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (request.term < term_) {
    return InstallSnapshotReply{term_, false, false};
  }
  if (request.term > term_ || role_ == RaftRole::kCandidate || role_ == RaftRole::kLeader) {
    StepDownLocked(request.term);
  }
  last_heartbeat_nanos_ = MonotonicNanos();
  leader_hint_ = request.leader_id;
  if (request.snapshot_index <= snapshot_index_ ||
      request.snapshot_index <= last_applied_) {
    // Already covered locally; treat as success so the leader advances.
    return InstallSnapshotReply{term_, true, false};
  }
  // Replace the state machine and restart the log at the snapshot point.
  state_machine_->Restore(request.data);
  log_.ResetToSnapshot(request.snapshot_index, request.snapshot_term);
  snapshot_index_ = request.snapshot_index;
  snapshot_term_ = request.snapshot_term;
  snapshot_data_ = request.data;
  last_applied_ = request.snapshot_index;
  commit_index_ = std::max(commit_index_, request.snapshot_index);
  stats_.snapshots_installed.fetch_add(1, std::memory_order_relaxed);
  applied_cv_.notify_all();
  const uint64_t reply_term = term_;
  lock.unlock();
  storage_.Persist(1);
  return InstallSnapshotReply{reply_term, true, false};
}

void RaftNodeStartThreads(RaftNode& node) {
  node.apply_thread_ = std::thread([&node]() { node.ApplyLoop(); });
  node.election_thread_ = std::thread([&node]() { node.ElectionLoop(); });
  node.pipeline_thread_ = std::thread([&node]() { node.PipelineLoop(); });
  for (uint32_t peer = 0; peer < node.group_->num_nodes(); ++peer) {
    if (peer != node.id_) {
      node.replicator_threads_.emplace_back([&node, peer]() { node.ReplicatorLoop(peer); });
    }
  }
}

}  // namespace mantle
