#include "src/raft/node.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/raft/group.h"

namespace mantle {

namespace {

// Fulfils a proposal promise, tolerating the (never-expected) case of a
// second fulfilment racing a failover path: losing a result beats calling
// std::terminate through std::future_error.
void SafeSetValue(const std::shared_ptr<std::promise<Result<std::string>>>& promise,
                  Result<std::string> value) {
  if (promise == nullptr) {
    return;
  }
  try {
    promise->set_value(std::move(value));
  } catch (const std::future_error&) {
    MANTLE_WLOG << "proposal promise fulfilled twice (failover race)";
  }
}

}  // namespace

RaftNode::RaftNode(RaftGroup* group, uint32_t id, const RaftConfig& initial_config,
                   ServerExecutor* server, ServerExecutor* raft_server,
                   std::unique_ptr<StateMachine> state_machine, const RaftOptions& options)
    : group_(group),
      id_(id),
      server_(server),
      raft_server_(raft_server),
      state_machine_(std::move(state_machine)),
      options_(options),
      storage_(options.fsync_nanos),
      boot_config_(initial_config),
      role_(initial_config.IsVoter(id) ? RaftRole::kFollower : RaftRole::kLearner),
      config_(initial_config),
      rng_(0x9a7f00d + id) {
  last_heartbeat_nanos_ = MonotonicNanos();
  election_timeout_nanos_ = RandomElectionTimeout();
}

RaftNode::~RaftNode() {
  BeginShutdown();
  JoinThreads();
}

void RaftNode::BeginShutdown() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    FailPendingLocked(Status::Unavailable("shutting down"));
  }
  apply_cv_.notify_all();
  applied_cv_.notify_all();
  proposal_cv_.notify_all();
  replicate_cv_.notify_all();
  read_cv_.notify_all();
}

void RaftNode::JoinThreads() {
  if (apply_thread_.joinable()) {
    apply_thread_.join();
  }
  if (election_thread_.joinable()) {
    election_thread_.join();
  }
  if (pipeline_thread_.joinable()) {
    pipeline_thread_.join();
  }
  // Replicators spawn under mu_ and check stopping_ under mu_ first, so once
  // stopping_ is set (BeginShutdown) the sets grabbed here are complete.
  std::map<uint32_t, std::thread> replicators;
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    replicators.swap(replicator_threads_);
    finished.swap(finished_replicators_);
  }
  for (auto& [peer, replicator] : replicators) {
    if (replicator.joinable()) {
      replicator.join();
    }
  }
  for (auto& replicator : finished) {
    if (replicator.joinable()) {
      replicator.join();
    }
  }
}

int64_t RaftNode::RandomElectionTimeout() {
  return options_.election_timeout_min_nanos +
         static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(
             options_.election_timeout_max_nanos - options_.election_timeout_min_nanos + 1)));
}

bool RaftNode::is_voter() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_.IsVoter(id_);
}

RaftRole RaftNode::role() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_;
}

uint64_t RaftNode::term() const {
  std::lock_guard<std::mutex> lock(mu_);
  return term_;
}

uint64_t RaftNode::commit_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_index_;
}

uint64_t RaftNode::last_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_applied_;
}

uint64_t RaftNode::last_log_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.LastIndex();
}

uint64_t RaftNode::log_first_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.FirstIndex();
}

RaftConfig RaftNode::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

uint64_t RaftNode::config_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_index_;
}

uint64_t RaftNode::MatchIndexOf(uint32_t peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (role_ != RaftRole::kLeader || peer >= match_index_.size()) {
    return 0;
  }
  return match_index_[peer];
}

uint64_t RaftNode::PeerDownStreak(uint32_t peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peer_down_streak_.find(peer);
  return it == peer_down_streak_.end() ? 0 : it->second;
}

bool RaftNode::snapshot_disabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_disabled_;
}

void RaftNode::set_test_event_hook(std::function<void(const char*)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  test_event_hook_ = std::move(hook);
}

void RaftNode::TestEvent(const char* event) {
  std::function<void(const char*)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = test_event_hook_;
  }
  if (hook) {
    hook(event);
  }
}

void RaftNode::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  down_.store(true, std::memory_order_release);
  FailPendingLocked(Status::Unavailable("node stopped"));
}

void RaftNode::Restart() {
  std::lock_guard<std::mutex> lock(mu_);
  // A restarted node rejoins as follower/learner with its persisted log.
  role_ = config_.IsVoter(id_) ? RaftRole::kFollower : RaftRole::kLearner;
  last_heartbeat_nanos_ = MonotonicNanos();
  election_timeout_nanos_ = RandomElectionTimeout();
  down_.store(false, std::memory_order_release);
}

void RaftNode::WipeState() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!down_.load(std::memory_order_acquire)) {
    // Only a stopped node can lose its disk; live threads would race the
    // reset. Total-group-loss recovery stops every node first.
    return;
  }
  FailPendingLocked(Status::Unavailable("node state wiped"));
  log_.ResetToSnapshot(0, 0);
  term_ = 0;
  voted_for_ = -1;
  leader_hint_ = UINT32_MAX;
  commit_index_ = 0;
  last_applied_ = 0;
  snapshot_index_ = 0;
  snapshot_term_ = 0;
  snapshot_data_.clear();
  snapshot_config_.clear();
  snapshot_config_index_ = 0;
  snapshot_requested_ = false;
  snapshot_disabled_ = false;
  // Learned membership lived in the wiped log/snapshot; fall back to the boot
  // view until SeedConfig or a replayed/installed config overrides it.
  config_ = boot_config_;
  config_index_ = 0;
  role_ = config_.IsVoter(id_) ? RaftRole::kFollower : RaftRole::kLearner;
}

void RaftNode::SeedConfig(const RaftConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!down_.load(std::memory_order_acquire)) {
    return;  // live nodes learn membership only through the log/snapshot
  }
  config_ = config;
  config_index_ = 0;
  role_ = config_.IsVoter(id_) ? RaftRole::kFollower : RaftRole::kLearner;
}

void RaftNode::BecomeFollower(uint64_t term) {
  term_ = term;
  voted_for_ = -1;
  role_ = config_.IsVoter(id_) ? RaftRole::kFollower : RaftRole::kLearner;
}

void RaftNode::StepDownLocked(uint64_t term) {
  BecomeFollower(term);
  // Queued-but-unappended proposals can never commit under this node; fail
  // them so proxies retry against the new leader. Appended entries stay
  // pending - they may still commit if the new leader carries them.
  while (!proposal_queue_.empty()) {
    SafeSetValue(proposal_queue_.front().done, Status::Unavailable("leadership lost"));
    proposal_queue_.pop_front();
  }
}

void RaftNode::FailPendingLocked(const Status& status) {
  while (!proposal_queue_.empty()) {
    SafeSetValue(proposal_queue_.front().done, status);
    proposal_queue_.pop_front();
  }
  for (auto& [index, promise] : pending_applies_) {
    SafeSetValue(promise, status);
  }
  pending_applies_.clear();
}

void RaftNode::BecomeLeader() {
  role_ = RaftRole::kLeader;
  leader_hint_ = id_;
  const uint64_t last = log_.LastIndex();
  next_index_.assign(group_->num_nodes(), last + 1);
  match_index_.assign(group_->num_nodes(), 0);
  // Commit a no-op to finalize entries from previous terms (Raft §5.4.2).
  log_.Append(LogEntry{term_, last + 1, ""});
  match_index_[id_] = last + 1;
  MaybeAdvanceCommitLocked();
  proposal_cv_.notify_all();
  replicate_cv_.notify_all();
  MANTLE_ILOG << "raft node " << id_ << " became leader (term " << term_ << ")";
}

void RaftNode::EnsureLeaderSlotsLocked() {
  const size_t total = group_->num_nodes();
  if (next_index_.size() < total) {
    next_index_.resize(total, log_.LastIndex() + 1);
    match_index_.resize(total, 0);
  }
}

void RaftNode::MaybeAdvanceCommitLocked() {
  const uint64_t last = log_.LastIndex();
  for (uint64_t n = last; n > commit_index_; --n) {
    if (log_.TermAt(n) != term_) {
      break;  // only entries from the current term commit by counting
    }
    uint32_t votes = 0;
    for (uint32_t peer : config_.voters) {
      if (peer < match_index_.size() && match_index_[peer] >= n) {
        ++votes;
      }
    }
    if (votes >= config_.Majority()) {
      commit_index_ = n;
      apply_cv_.notify_all();
      replicate_cv_.notify_all();  // piggyback the new commit index
      break;
    }
  }
}

void RaftNode::ApplyConfigLocked(uint64_t index, RaftConfig config) {
  config_ = std::move(config);
  config_index_ = index;
  stats_.config_changes.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* changes = obs::Metrics::Instance().GetCounter("raft.config.changes");
  static obs::Gauge* voters = obs::Metrics::Instance().GetGauge("raft.config.voters");
  static obs::Gauge* learners = obs::Metrics::Instance().GetGauge("raft.config.learners");
  changes->Add();
  voters->Set(static_cast<int64_t>(config_.voters.size()));
  learners->Set(static_cast<int64_t>(config_.learners.size()));
  const bool self_voter = config_.IsVoter(id_);
  if (role_ == RaftRole::kLeader) {
    if (!self_voter) {
      // Decommissioned leader: step down; the group elects a successor from
      // the remaining voters (or leadership was transferred beforehand).
      MANTLE_ILOG << "raft node " << id_ << " removed from config while leader; stepping down";
      StepDownLocked(term_);
    } else {
      EnsureLeaderSlotsLocked();
    }
  } else if (self_voter && role_ == RaftRole::kLearner) {
    // Freshly promoted: start from a full election timeout rather than a
    // stale learner timer, so promotion never triggers an instant campaign.
    role_ = RaftRole::kFollower;
    last_heartbeat_nanos_ = MonotonicNanos();
    election_timeout_nanos_ = RandomElectionTimeout();
  } else if (!self_voter &&
             (role_ == RaftRole::kFollower || role_ == RaftRole::kCandidate)) {
    role_ = RaftRole::kLearner;
  }
  SyncReplicatorsLocked();
  replicate_cv_.notify_all();
}

void RaftNode::SyncReplicatorsLocked() {
  if (stopping_.load(std::memory_order_acquire)) {
    return;
  }
  auto spawn = [this](uint32_t peer) {
    if (peer == id_ || replicator_threads_.count(peer) != 0) {
      return;
    }
    replicator_threads_.emplace(peer,
                                std::thread([this, peer]() { ReplicatorLoop(peer); }));
  };
  for (uint32_t peer : config_.voters) {
    spawn(peer);
  }
  for (uint32_t peer : config_.learners) {
    spawn(peer);
  }
}

bool RaftNode::ConfigChangeInFlightLocked() const {
  for (const auto& pending : proposal_queue_) {
    if (pending.type == LogEntryType::kConfig) {
      return true;
    }
  }
  // A kConfig entry above the apply cursor - our own in-flight change or one
  // inherited from a previous leader - blocks new changes until it resolves
  // (applies, or is truncated away by a conflicting leader).
  for (uint64_t i = last_applied_ + 1; i <= log_.LastIndex(); ++i) {
    if (log_.At(i).type == LogEntryType::kConfig) {
      return true;
    }
  }
  return false;
}

AppendEntriesReply RaftNode::HandleAppendEntries(const AppendEntriesRequest& request) {
  if (down_.load(std::memory_order_acquire)) {
    return AppendEntriesReply{0, false, 0, /*peer_down=*/true};
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (request.term < term_) {
    return AppendEntriesReply{term_, false, 0, false};
  }
  if (request.term > term_ || role_ == RaftRole::kCandidate || role_ == RaftRole::kLeader) {
    StepDownLocked(request.term);
  }
  last_heartbeat_nanos_ = MonotonicNanos();
  leader_hint_ = request.leader_id;

  if (!log_.Has(request.prev_log_index) ||
      log_.TermAt(request.prev_log_index) != request.prev_log_term) {
    const uint64_t hint = std::min(log_.LastIndex(),
                                   request.prev_log_index > 0 ? request.prev_log_index - 1 : 0);
    return AppendEntriesReply{term_, false, hint, false};
  }

  size_t appended = 0;
  for (const auto& entry : request.entries) {
    if (log_.Has(entry.index)) {
      if (log_.TermAt(entry.index) == entry.term) {
        continue;  // duplicate from a retransmission
      }
      // Conflict: discard the divergent suffix (it can never commit here).
      for (auto it = pending_applies_.lower_bound(entry.index); it != pending_applies_.end();) {
        SafeSetValue(it->second, Status::Unavailable("entry truncated by new leader"));
        it = pending_applies_.erase(it);
      }
      log_.TruncateFrom(entry.index);
    }
    log_.Append(entry);
    ++appended;
  }

  const uint64_t match = request.prev_log_index + request.entries.size();
  const uint64_t new_commit = std::min(request.leader_commit, log_.LastIndex());
  if (new_commit > commit_index_) {
    commit_index_ = new_commit;
    apply_cv_.notify_all();
  }
  lock.unlock();
  if (appended > 0) {
    storage_.Persist(appended);
  }
  return AppendEntriesReply{request.term, true, match, false};
}

RequestVoteReply RaftNode::HandleRequestVote(const RequestVoteRequest& request) {
  if (down_.load(std::memory_order_acquire)) {
    return RequestVoteReply{0, false};
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!config_.IsVoter(id_)) {
    return RequestVoteReply{term_, false};  // learners and removed nodes don't vote
  }
  if (request.term < term_) {
    return RequestVoteReply{term_, false};
  }
  if (request.term > term_) {
    StepDownLocked(request.term);
  }
  const bool log_ok = request.last_log_term > log_.LastTerm() ||
                      (request.last_log_term == log_.LastTerm() &&
                       request.last_log_index >= log_.LastIndex());
  bool granted = false;
  if (log_ok && (voted_for_ == -1 || voted_for_ == static_cast<int32_t>(request.candidate_id))) {
    voted_for_ = static_cast<int32_t>(request.candidate_id);
    granted = true;
    last_heartbeat_nanos_ = MonotonicNanos();  // granting a vote resets the timer
  }
  const uint64_t reply_term = term_;
  lock.unlock();
  if (granted) {
    storage_.Persist(0);  // vote durability
  }
  return RequestVoteReply{reply_term, granted};
}

std::optional<uint64_t> RaftNode::HandleReadIndexQuery() {
  if (down_.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (role_ != RaftRole::kLeader) {
    return std::nullopt;
  }
  return commit_index_;
}

TimeoutNowReply RaftNode::HandleTimeoutNow(const TimeoutNowRequest& request) {
  if (down_.load(std::memory_order_acquire)) {
    return TimeoutNowReply{false, /*peer_down=*/true};
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (role_ == RaftRole::kLeader) {
      return TimeoutNowReply{true, false};  // transfer already complete
    }
    if (request.term < term_ || !config_.IsVoter(id_)) {
      return TimeoutNowReply{false, false};
    }
    stats_.timeout_now_received.fetch_add(1, std::memory_order_relaxed);
  }
  RunElection();
  return TimeoutNowReply{role() == RaftRole::kLeader, false};
}

Result<std::string> RaftNode::ProposeAndWait(std::string command) {
  const int64_t wait_nanos = DeadlineBudget::Clamp(options_.propose_timeout_nanos);
  if (wait_nanos <= 0) {
    return Status::Timeout("propose: deadline exhausted");
  }
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  std::future<Result<std::string>> future = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_.load(std::memory_order_acquire)) {
      return Status::Unavailable("node down");
    }
    if (role_ != RaftRole::kLeader) {
      return Status::Unavailable("not leader");
    }
    stats_.proposals.fetch_add(1, std::memory_order_relaxed);
    proposal_queue_.push_back(PendingProposal{std::move(command), promise});
  }
  proposal_cv_.notify_one();
  if (future.wait_for(std::chrono::nanoseconds(wait_nanos)) != std::future_status::ready) {
    return Status::Timeout("propose timed out");
  }
  return future.get();
}

Status RaftNode::ProposeConfigChange(const RaftConfig& next) {
  static obs::Counter* rejected = obs::Metrics::Instance().GetCounter("raft.config.rejected");
  const int64_t wait_nanos = DeadlineBudget::Clamp(options_.propose_timeout_nanos);
  if (wait_nanos <= 0) {
    return Status::Timeout("config change: deadline exhausted");
  }
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  std::future<Result<std::string>> future = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_.load(std::memory_order_acquire)) {
      return Status::Unavailable("node down");
    }
    if (role_ != RaftRole::kLeader) {
      return Status::Unavailable("not leader");
    }
    if (next == config_) {
      return Status::Ok();  // idempotent re-proposal of the active config
    }
    if (next.voters.empty()) {
      stats_.config_rejected.fetch_add(1, std::memory_order_relaxed);
      rejected->Add();
      return Status::InvalidArgument("config must keep at least one voter");
    }
    if (!config_.DiffersByAtMostOneFrom(next)) {
      stats_.config_rejected.fetch_add(1, std::memory_order_relaxed);
      rejected->Add();
      return Status::InvalidArgument("membership changes are one node at a time");
    }
    if (ConfigChangeInFlightLocked()) {
      stats_.config_rejected.fetch_add(1, std::memory_order_relaxed);
      rejected->Add();
      return Status::Busy("a membership change is already in flight");
    }
    stats_.proposals.fetch_add(1, std::memory_order_relaxed);
    proposal_queue_.push_back(
        PendingProposal{next.Encode(), promise, LogEntryType::kConfig});
  }
  proposal_cv_.notify_one();
  if (future.wait_for(std::chrono::nanoseconds(wait_nanos)) != std::future_status::ready) {
    return Status::Timeout("config change timed out");
  }
  Result<std::string> applied = future.get();
  return applied.ok() ? Status::Ok() : applied.status();
}

Status RaftNode::TransferLeadership(uint32_t target, int64_t timeout_nanos) {
  static obs::Counter* transfers = obs::Metrics::Instance().GetCounter("raft.transfer.count");
  const int64_t deadline = MonotonicNanos() + std::max<int64_t>(timeout_nanos, 0);
  uint64_t request_term = 0;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (down_.load(std::memory_order_acquire)) {
        return Status::Unavailable("node down");
      }
      if (role_ != RaftRole::kLeader) {
        return Status::Unavailable("not leader");
      }
      if (target == id_) {
        return Status::Ok();
      }
      if (!config_.IsVoter(target)) {
        return Status::InvalidArgument("transfer target must be a voter");
      }
      EnsureLeaderSlotsLocked();
      if (match_index_[target] == log_.LastIndex()) {
        request_term = term_;
        break;  // fully caught up: the target's log can win an election
      }
      replicate_cv_.notify_all();
    }
    if (MonotonicNanos() >= deadline) {
      return Status::Timeout("leader transfer: target did not catch up");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  RaftNode* peer = group_->node(target);
  ScopedNetOrigin origin(raft_server_->name());
  const TimeoutNowRequest request{request_term, id_};
  TimeoutNowReply reply = peer->raft_server()->Call(
      [peer, request]() { return peer->HandleTimeoutNow(request); },
      [](const Status&) { return TimeoutNowReply{false, /*peer_down=*/true}; });
  if (reply.peer_down) {
    return Status::Unavailable("leader transfer: target unreachable");
  }
  if (!reply.accepted) {
    return Status::Unavailable("leader transfer: target refused to campaign");
  }
  transfers->Add();
  return Status::Ok();
}

void RaftNode::RequestSnapshot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_requested_ = true;
  }
  apply_cv_.notify_all();
}

void RaftNode::WaitApplied(uint64_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  applied_cv_.wait(lock, [this, index]() {
    return stopping_.load(std::memory_order_acquire) || last_applied_ >= index;
  });
}

bool RaftNode::WaitAppliedFor(uint64_t index, int64_t timeout_nanos) {
  std::unique_lock<std::mutex> lock(mu_);
  applied_cv_.wait_for(lock, std::chrono::nanoseconds(std::max<int64_t>(timeout_nanos, 0)),
                       [this, index]() {
                         return stopping_.load(std::memory_order_acquire) ||
                                last_applied_ >= index;
                       });
  return last_applied_ >= index;
}

Result<uint64_t> RaftNode::FollowerReadFence() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (role_ == RaftRole::kLeader) {
      return commit_index_;
    }
  }
  // Total fence budget: the configured cap, tightened by the calling
  // operation's deadline (propagated onto this worker thread by the fabric).
  const int64_t budget = DeadlineBudget::Clamp(options_.read_fence_timeout_nanos);
  if (budget <= 0) {
    return Status::Timeout("read fence: deadline exhausted");
  }
  const int64_t fence_deadline = MonotonicNanos() + budget;
  Result<uint64_t> fence = Status::Unavailable("no leader");
  std::unique_lock<std::mutex> read_lock(read_mu_);
  const uint64_t generation = read_generation_;
  if (read_inflight_) {
    // Piggyback on the in-flight leader query (paper §5.1.3: "queries for the
    // commitIndex are batched").
    stats_.read_index_batched.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* batched = obs::Metrics::Instance().GetCounter("raft.read_index.batched");
    batched->Add();
    const bool advanced =
        read_cv_.wait_for(read_lock, std::chrono::nanoseconds(budget), [this, generation]() {
          return stopping_.load(std::memory_order_acquire) || read_generation_ != generation;
        });
    if (!advanced) {
      return Status::Timeout("read fence: batched commit-index query timed out");
    }
    fence = last_read_fence_;
  } else {
    read_inflight_ = true;
    read_lock.unlock();
    stats_.read_index_queries.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* queries = obs::Metrics::Instance().GetCounter("raft.read_index.queries");
    queries->Add();
    RaftNode* leader = group_->leader();
    if (leader != nullptr && leader != this) {
      // A partitioned or crashed leader link loses the query: the translator
      // maps the fault to "no fence", and the caller falls back to another
      // replica or the leader rather than blocking.
      auto commit = leader->raft_server()->Call(
          [leader]() { return leader->HandleReadIndexQuery(); },
          [](const Status&) { return std::optional<uint64_t>{}; });
      if (commit.has_value()) {
        fence = *commit;
      } else {
        fence = Status::Unavailable("read fence: leader unreachable");
      }
    } else if (leader == this) {
      fence = commit_index();
    }
    read_lock.lock();
    last_read_fence_ = fence;
    ++read_generation_;
    read_inflight_ = false;
    read_cv_.notify_all();
  }
  read_lock.unlock();
  if (fence.ok() && !WaitAppliedFor(*fence, fence_deadline - MonotonicNanos())) {
    return Status::Timeout("read fence: apply index did not catch up");
  }
  return fence;
}

void RaftNode::Campaign() { RunElection(); }

void RaftNode::RunElection() {
  // Votes travel the fabric as this node's consensus endpoint, so a named
  // partition isolating this replica also isolates its campaigns.
  ScopedNetOrigin origin(raft_server_->name());
  RequestVoteRequest request;
  std::vector<uint32_t> voters;
  uint32_t needed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (role_ == RaftRole::kLeader || !config_.IsVoter(id_) ||
        down_.load(std::memory_order_acquire)) {
      return;
    }
    ++term_;
    role_ = RaftRole::kCandidate;
    voted_for_ = static_cast<int32_t>(id_);
    stats_.elections_started.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* elections = obs::Metrics::Instance().GetCounter("raft.election.count");
    elections->Add();
    last_heartbeat_nanos_ = MonotonicNanos();
    election_timeout_nanos_ = RandomElectionTimeout();
    request = RequestVoteRequest{term_, id_, log_.LastIndex(), log_.LastTerm()};
    voters = config_.voters;
    needed = config_.Majority();
  }
  storage_.Persist(0);

  std::vector<std::future<RequestVoteReply>> replies;
  for (uint32_t peer : voters) {
    if (peer == id_) {
      continue;
    }
    RaftNode* peer_node = group_->node(peer);
    replies.push_back(peer_node->raft_server()->CallAsync(
        [peer_node, request]() { return peer_node->HandleRequestVote(request); },
        [](const Status&) { return RequestVoteReply{0, false}; }));
  }
  group_->network()->InjectDelay();

  uint32_t votes = 1;  // self
  uint64_t max_term = request.term;
  for (auto& reply_future : replies) {
    RequestVoteReply reply = reply_future.get();
    if (reply.vote_granted) {
      ++votes;
    }
    max_term = std::max(max_term, reply.term);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (max_term > term_) {
    StepDownLocked(max_term);
    return;
  }
  if (role_ == RaftRole::kCandidate && term_ == request.term && votes >= needed) {
    BecomeLeader();
  }
}

void RaftNode::ElectionLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(options_.election_poll_nanos));
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    if (!options_.enable_election_timer || down_.load(std::memory_order_acquire)) {
      continue;
    }
    bool should_campaign = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      should_campaign = role_ != RaftRole::kLeader && config_.IsVoter(id_) &&
                        MonotonicNanos() - last_heartbeat_nanos_ > election_timeout_nanos_;
    }
    if (should_campaign) {
      RunElection();
    }
  }
}

void RaftNode::PipelineLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    proposal_cv_.wait(lock, [this]() {
      return stopping_.load(std::memory_order_acquire) ||
             (role_ == RaftRole::kLeader && !proposal_queue_.empty());
    });
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    const size_t take =
        options_.log_batching ? std::min(proposal_queue_.size(), options_.max_batch_entries) : 1;
    for (size_t i = 0; i < take; ++i) {
      PendingProposal proposal = std::move(proposal_queue_.front());
      proposal_queue_.pop_front();
      const uint64_t index = log_.LastIndex() + 1;
      log_.Append(LogEntry{term_, index, std::move(proposal.command), proposal.type});
      pending_applies_[index] = std::move(proposal.done);
    }
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    const uint64_t last = log_.LastIndex();
    lock.unlock();
    storage_.Persist(take);
    lock.lock();
    if (role_ == RaftRole::kLeader) {
      match_index_[id_] = std::max(match_index_[id_], last);
      MaybeAdvanceCommitLocked();
    }
    replicate_cv_.notify_all();
  }
}

void RaftNode::ReplicatorLoop(uint32_t peer_id) {
  // Replication traffic originates from this node's consensus endpoint; a
  // partition rule naming this replica severs its leader->follower links.
  ScopedNetOrigin origin(raft_server_->name());
  RaftNode* peer = group_->node(peer_id);
  // Tracks the commit index last shipped so commit-only updates also flow.
  uint64_t last_sent_commit = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    replicate_cv_.wait_for(
        lock, std::chrono::nanoseconds(options_.heartbeat_interval_nanos),
        [this, peer_id, &last_sent_commit]() {
          return stopping_.load(std::memory_order_acquire) || !config_.IsMember(peer_id) ||
                 (role_ == RaftRole::kLeader && !down_.load(std::memory_order_acquire) &&
                  peer_id < next_index_.size() &&
                  (next_index_[peer_id] <= log_.LastIndex() || commit_index_ > last_sent_commit));
        });
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
    const bool member = config_.IsMember(peer_id);
    if (role_ != RaftRole::kLeader || down_.load(std::memory_order_acquire)) {
      if (!member) {
        break;  // drained: the peer left the config and we owe it nothing
      }
      continue;
    }
    // As leader to a just-removed peer: keep replicating until the removal
    // entry (and the commit index covering it) reaches the peer, so a live
    // decommissioned node learns it is out and stops campaigning. A dead one
    // surfaces as peer_down below and the thread drains immediately.
    EnsureLeaderSlotsLocked();
    if (log_.Compacted(next_index_[peer_id] - 1)) {
      // The entries this peer needs are gone: install the snapshot instead.
      InstallSnapshotRequest snap;
      snap.term = term_;
      snap.leader_id = id_;
      snap.snapshot_index = snapshot_index_;
      snap.snapshot_term = snapshot_term_;
      snap.data = snapshot_data_;
      snap.config = snapshot_config_;
      snap.config_index = snapshot_config_index_;
      lock.unlock();
      stats_.snapshots_sent.fetch_add(1, std::memory_order_relaxed);
      InstallSnapshotReply snap_reply = peer->raft_server()->Call(
          [peer, snap]() { return peer->HandleInstallSnapshot(snap); },
          [](const Status&) { return InstallSnapshotReply{0, false, /*peer_down=*/true}; });
      lock.lock();
      if (snap_reply.peer_down) {
        ++peer_down_streak_[peer_id];
        if (!config_.IsMember(peer_id)) {
          break;
        }
        continue;
      }
      peer_down_streak_[peer_id] = 0;
      if (snap_reply.term > term_) {
        StepDownLocked(snap_reply.term);
        continue;
      }
      if (role_ == RaftRole::kLeader && snap_reply.success) {
        match_index_[peer_id] = std::max(match_index_[peer_id], snap.snapshot_index);
        next_index_[peer_id] = std::max(next_index_[peer_id], snap.snapshot_index + 1);
        MaybeAdvanceCommitLocked();
      }
      continue;
    }
    const uint64_t prev = next_index_[peer_id] - 1;
    AppendEntriesRequest request;
    request.term = term_;
    request.leader_id = id_;
    request.prev_log_index = prev;
    request.prev_log_term = log_.TermAt(prev);
    request.leader_commit = commit_index_;
    request.entries = log_.Slice(prev, options_.max_entries_per_append);
    lock.unlock();

    if (request.entries.empty()) {
      stats_.heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.appends_sent.fetch_add(1, std::memory_order_relaxed);
    }
    AppendEntriesReply reply = peer->raft_server()->Call(
        [peer, request]() { return peer->HandleAppendEntries(request); },
        [](const Status&) { return AppendEntriesReply{0, false, 0, /*peer_down=*/true}; });
    last_sent_commit = request.leader_commit;

    lock.lock();
    if (reply.peer_down) {
      ++peer_down_streak_[peer_id];
      if (!config_.IsMember(peer_id)) {
        break;
      }
      continue;
    }
    peer_down_streak_[peer_id] = 0;
    if (reply.term > term_) {
      StepDownLocked(reply.term);
      continue;
    }
    if (role_ != RaftRole::kLeader || term_ != request.term) {
      continue;
    }
    if (reply.success) {
      match_index_[peer_id] = std::max(match_index_[peer_id], reply.match_index);
      next_index_[peer_id] = match_index_[peer_id] + 1;
      MaybeAdvanceCommitLocked();
      if (!config_.IsMember(peer_id) && match_index_[peer_id] >= config_index_ &&
          request.leader_commit >= config_index_) {
        break;  // removal delivered and committed at the peer: drain
      }
    } else {
      next_index_[peer_id] =
          std::max<uint64_t>(1, std::min(next_index_[peer_id] - 1, reply.match_index + 1));
    }
  }
  // Retire this thread's handle so the peer id can be re-added later; the
  // handle moves to finished_replicators_ for JoinThreads to reap.
  if (!lock.owns_lock()) {
    lock.lock();
  }
  auto it = replicator_threads_.find(peer_id);
  if (it != replicator_threads_.end() && it->second.get_id() == std::this_thread::get_id()) {
    finished_replicators_.push_back(std::move(it->second));
    replicator_threads_.erase(it);
  }
}

void RaftNode::ApplyLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    apply_cv_.wait(lock, [this]() {
      return stopping_.load(std::memory_order_acquire) || last_applied_ < commit_index_ ||
             snapshot_requested_;
    });
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    // Apply lag observed as the backlog waking the loop; the gauge tracks the
    // worst backlog across nodes coarsely (last writer wins).
    static obs::Gauge* apply_lag = obs::Metrics::Instance().GetGauge("raft.apply.lag");
    apply_lag->Set(static_cast<int64_t>(commit_index_ - last_applied_));
    while (last_applied_ < commit_index_) {
      const uint64_t index = last_applied_ + 1;
      const std::string payload = log_.At(index).payload;
      const LogEntryType type = log_.At(index).type;
      std::shared_ptr<std::promise<Result<std::string>>> waiter;
      auto it = pending_applies_.find(index);
      if (it != pending_applies_.end()) {
        waiter = std::move(it->second);
        pending_applies_.erase(it);
      }
      if (type == LogEntryType::kConfig) {
        // Membership applies in the Raft layer itself, atomically with the
        // apply cursor, under the node lock.
        ApplyConfigLocked(index, RaftConfig::Decode(payload));
        last_applied_ = index;
        applied_cv_.notify_all();
        lock.unlock();
        SafeSetValue(waiter, Result<std::string>(std::string()));
        lock.lock();
        continue;
      }
      lock.unlock();
      std::string result;
      if (!payload.empty()) {
        result = state_machine_->Apply(index, payload);
      }
      SafeSetValue(waiter, Result<std::string>(std::move(result)));
      lock.lock();
      last_applied_ = index;
      applied_cv_.notify_all();
    }
    MaybeTakeSnapshot(lock);
  }
}

void RaftNode::MaybeTakeSnapshot(std::unique_lock<std::mutex>& lock) {
  const bool forced = snapshot_requested_;
  snapshot_requested_ = false;
  if (snapshot_disabled_ || last_applied_ <= log_.FirstIndex()) {
    return;
  }
  if (!forced && (options_.snapshot_threshold_entries == 0 ||
                  last_applied_ - log_.FirstIndex() < options_.snapshot_threshold_entries)) {
    return;
  }
  const uint64_t snap_index = last_applied_;
  const uint64_t snap_term = log_.TermAt(snap_index);
  const std::string snap_config = config_.Encode();
  const uint64_t snap_config_index = config_index_;
  lock.unlock();
  // Only the apply thread mutates the state machine, so this serialization
  // observes exactly the applied prefix [1, snap_index].
  std::string data = state_machine_->Snapshot();
  lock.lock();
  if (data.empty()) {
    // Machine is not snapshottable; disable further attempts. Tracked apart
    // from options_ so the configured threshold stays inspectable.
    snapshot_disabled_ = true;
    return;
  }
  if (snap_index <= snapshot_index_) {
    return;
  }
  snapshot_index_ = snap_index;
  snapshot_term_ = snap_term;
  snapshot_data_ = std::move(data);
  snapshot_config_ = snap_config;
  snapshot_config_index_ = snap_config_index;
  lock.unlock();
  // Durability ordering: the snapshot must be on disk BEFORE the log prefix
  // it replaces is dropped. A crash after CompactPrefix but before the
  // snapshot fsync would leave the prefix in neither the durable log nor a
  // durable snapshot.
  storage_.Persist(1);
  TestEvent("snapshot.persisted");
  lock.lock();
  log_.CompactPrefix(snap_index);
  stats_.snapshots_taken.fetch_add(1, std::memory_order_relaxed);
}

InstallSnapshotReply RaftNode::HandleInstallSnapshot(const InstallSnapshotRequest& request) {
  if (down_.load(std::memory_order_acquire)) {
    return InstallSnapshotReply{0, false, /*peer_down=*/true};
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (request.term < term_) {
    return InstallSnapshotReply{term_, false, false};
  }
  if (request.term > term_ || role_ == RaftRole::kCandidate || role_ == RaftRole::kLeader) {
    StepDownLocked(request.term);
  }
  last_heartbeat_nanos_ = MonotonicNanos();
  leader_hint_ = request.leader_id;
  if (request.snapshot_index <= snapshot_index_ ||
      request.snapshot_index <= last_applied_) {
    // Already covered locally; treat as success so the leader advances.
    return InstallSnapshotReply{term_, true, false};
  }
  // Replace the state machine and restart the log at the snapshot point.
  state_machine_->Restore(request.data);
  log_.ResetToSnapshot(request.snapshot_index, request.snapshot_term);
  snapshot_index_ = request.snapshot_index;
  snapshot_term_ = request.snapshot_term;
  snapshot_data_ = request.data;
  snapshot_config_ = request.config;
  snapshot_config_index_ = request.config_index;
  last_applied_ = request.snapshot_index;
  commit_index_ = std::max(commit_index_, request.snapshot_index);
  if (!request.config.empty() && request.config_index >= config_index_) {
    // The snapshot covers config entries this node can no longer replay;
    // adopt the membership in force at the snapshot point.
    ApplyConfigLocked(request.config_index, RaftConfig::Decode(request.config));
  }
  stats_.snapshots_installed.fetch_add(1, std::memory_order_relaxed);
  applied_cv_.notify_all();
  const uint64_t reply_term = term_;
  lock.unlock();
  storage_.Persist(1);
  return InstallSnapshotReply{reply_term, true, false};
}

void RaftNodeStartThreads(RaftNode& node) {
  node.apply_thread_ = std::thread([&node]() { node.ApplyLoop(); });
  node.election_thread_ = std::thread([&node]() { node.ElectionLoop(); });
  node.pipeline_thread_ = std::thread([&node]() { node.PipelineLoop(); });
  std::lock_guard<std::mutex> lock(node.mu_);
  node.SyncReplicatorsLocked();
}

}  // namespace mantle
