// One Raft peer: election, log replication, commit and apply.
//
// Threads per node:
//   * apply thread        - applies committed entries to the state machine;
//   * election thread     - (voters) campaigns when heartbeats stop;
//   * pipeline thread     - (acting leader) drains the proposal queue into
//                           the log; one simulated fsync per *batch* when log
//                           batching is on (paper §5.2.3), per entry when off;
//   * replicator threads  - (acting leader) one per peer, ships AppendEntries
//                           and heartbeats over the simulated fabric.
// Pipeline and replicator threads exist from construction and idle unless the
// node is leader, which keeps role transitions free of thread lifecycles.

#ifndef SRC_RAFT_NODE_H_
#define SRC_RAFT_NODE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/net/network.h"
#include "src/raft/log.h"
#include "src/raft/messages.h"
#include "src/raft/state_machine.h"
#include "src/raft/storage.h"

namespace mantle {

class RaftGroup;

struct RaftOptions {
  int64_t fsync_nanos = 60'000;  // NVMe-class flush latency
  bool log_batching = true;      // amortize fsync across queued proposals
  size_t max_batch_entries = 512;
  size_t max_entries_per_append = 512;
  int64_t heartbeat_interval_nanos = 20'000'000;     // 20 ms
  int64_t election_timeout_min_nanos = 150'000'000;  // 150 ms
  int64_t election_timeout_max_nanos = 300'000'000;  // 300 ms
  int64_t election_poll_nanos = 10'000'000;          // election-timer resolution
  int64_t propose_timeout_nanos = 10'000'000'000;    // 10 s
  // Cap on a follower read fence (leader commit-index query + local apply
  // catch-up); the operation's DeadlineBudget tightens it further.
  int64_t read_fence_timeout_nanos = 2'000'000'000;  // 2 s
  bool enable_election_timer = true;
  size_t workers_per_node = 4;  // executor width of each replica server
  // Log compaction: snapshot the state machine and drop the applied prefix
  // once this many live entries accumulate. 0 disables compaction. Requires
  // a snapshottable StateMachine (non-empty Snapshot()).
  uint64_t snapshot_threshold_entries = 0;
};

enum class RaftRole : uint8_t { kFollower, kCandidate, kLeader, kLearner };

struct RaftNodeStats {
  std::atomic<uint64_t> proposals{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> appends_sent{0};
  std::atomic<uint64_t> heartbeats_sent{0};
  std::atomic<uint64_t> elections_started{0};
  std::atomic<uint64_t> read_index_queries{0};        // queries actually sent to the leader
  std::atomic<uint64_t> read_index_batched{0};        // follower reads served by coalescing
  std::atomic<uint64_t> snapshots_taken{0};
  std::atomic<uint64_t> snapshots_installed{0};       // received from a leader
  std::atomic<uint64_t> snapshots_sent{0};
};

class RaftNode {
 public:
  // `server` handles client operations (resolution, proposals); `raft_server`
  // handles consensus traffic (AppendEntries, votes, ReadIndex queries). The
  // split mirrors a real deployment's separate service ports and guarantees
  // that client handlers blocked on an apply fence can never starve the pool
  // that delivers the very entries they wait for.
  RaftNode(RaftGroup* group, uint32_t id, bool voter, ServerExecutor* server,
           ServerExecutor* raft_server, std::unique_ptr<StateMachine> state_machine,
           const RaftOptions& options);
  ~RaftNode();

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  // --- RPC handlers (invoked via the fabric by peers) ------------------------
  AppendEntriesReply HandleAppendEntries(const AppendEntriesRequest& request);
  RequestVoteReply HandleRequestVote(const RequestVoteRequest& request);
  // Leader-side ReadIndex service: current commit index, or nullopt if this
  // node is not (or no longer) the leader.
  std::optional<uint64_t> HandleReadIndexQuery();
  // Installs a leader-provided snapshot on a lagging follower/learner.
  InstallSnapshotReply HandleInstallSnapshot(const InstallSnapshotRequest& request);

  // --- client API -------------------------------------------------------------
  // Appends `command` through consensus and waits until it is applied locally;
  // returns the state machine's result. Fails with kUnavailable when this node
  // is not the leader.
  Result<std::string> ProposeAndWait(std::string command);

  // Follower/learner read fence (paper §5.1.3): obtain the leader's commit
  // index (coalescing concurrent queries into one RPC) and wait until the
  // local apply index catches up. Returns the read fence index.
  Result<uint64_t> FollowerReadFence();

  // Blocks until last_applied >= index.
  void WaitApplied(uint64_t index);
  // Bounded variant: true once last_applied >= index, false on timeout (the
  // node may be partitioned from the leader and never catch up).
  bool WaitAppliedFor(uint64_t index, int64_t timeout_nanos);

  // Forces this node to start a campaign now (deterministic bootstrap).
  void Campaign();

  // Crash-stop simulation.
  void Stop();
  void Restart();
  // Cold-restart support: discards all Raft state - log, term, vote, commit
  // and apply cursors, retained snapshot - as if the node came back on a
  // blank disk. No-op unless the node is stopped. The caller rebuilds the
  // state machine (or lets InstallSnapshot do it) before Restart().
  void WipeState();
  bool IsDown() const { return down_.load(std::memory_order_acquire); }

  // Two-phase teardown, used by RaftGroup: nodes hold raw peer pointers, so
  // the group stops every node's threads (BeginShutdown on all, then
  // JoinThreads on all) before destroying any node. Both are idempotent; the
  // destructor calls them for standalone use.
  void BeginShutdown();
  void JoinThreads();

  // --- introspection -----------------------------------------------------------
  uint32_t id() const { return id_; }
  bool is_voter() const { return voter_; }
  RaftRole role() const;
  uint64_t term() const;
  uint64_t commit_index() const;
  uint64_t last_applied() const;
  uint64_t last_log_index() const;
  ServerExecutor* server() const { return server_; }
  ServerExecutor* raft_server() const { return raft_server_; }
  StateMachine* state_machine() const { return state_machine_.get(); }
  RaftStorage& storage() { return storage_; }
  const RaftNodeStats& stats() const { return stats_; }

 private:
  friend void RaftNodeStartThreads(RaftNode& node);

  struct PendingProposal {
    std::string command;
    std::shared_ptr<std::promise<Result<std::string>>> done;
  };

  // All Become* methods require mu_ held.
  void BecomeFollower(uint64_t term);
  void BecomeLeader();
  void StepDownLocked(uint64_t term);
  void FailPendingLocked(const Status& status);

  // Advances commit_index_ from voter match indices; requires mu_ held.
  void MaybeAdvanceCommitLocked();

  // Takes a state-machine snapshot and compacts the log; apply thread only,
  // requires mu_ held (released around the state-machine call).
  void MaybeSnapshot(std::unique_lock<std::mutex>& lock);

  void ApplyLoop();
  void ElectionLoop();
  void PipelineLoop();
  void ReplicatorLoop(uint32_t peer_id);
  void RunElection();

  int64_t RandomElectionTimeout();

  RaftGroup* group_;
  const uint32_t id_;
  const bool voter_;
  ServerExecutor* server_;
  ServerExecutor* raft_server_;
  std::unique_ptr<StateMachine> state_machine_;
  RaftOptions options_;
  RaftStorage storage_;
  RaftNodeStats stats_;

  mutable std::mutex mu_;
  RaftRole role_;
  uint64_t term_ = 0;
  int32_t voted_for_ = -1;
  uint32_t leader_hint_ = UINT32_MAX;
  RaftLog log_;
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;
  // Latest snapshot (covers indices <= snapshot_index_).
  uint64_t snapshot_index_ = 0;
  uint64_t snapshot_term_ = 0;
  std::string snapshot_data_;
  int64_t last_heartbeat_nanos_ = 0;
  int64_t election_timeout_nanos_ = 0;

  // Leader state (valid while role_ == kLeader).
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;
  std::deque<PendingProposal> proposal_queue_;
  std::map<uint64_t, std::shared_ptr<std::promise<Result<std::string>>>> pending_applies_;

  // Follower ReadIndex coalescing.
  std::mutex read_mu_;
  std::condition_variable read_cv_;
  bool read_inflight_ = false;
  uint64_t read_generation_ = 0;
  Result<uint64_t> last_read_fence_ = Status::Unavailable("no fence yet");

  std::condition_variable apply_cv_;      // commit advanced
  std::condition_variable applied_cv_;    // last_applied advanced
  std::condition_variable proposal_cv_;   // proposal queued
  std::condition_variable replicate_cv_;  // log grew / commit moved / role change

  std::atomic<bool> down_{false};
  std::atomic<bool> stopping_{false};
  Rng rng_;

  std::thread apply_thread_;
  std::thread election_thread_;
  std::thread pipeline_thread_;
  std::vector<std::thread> replicator_threads_;
};

// Starts a node's background threads. Called by RaftGroup once every node in
// the group has been constructed (replicators dereference peers).
void RaftNodeStartThreads(RaftNode& node);

}  // namespace mantle

#endif  // SRC_RAFT_NODE_H_
