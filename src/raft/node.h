// One Raft peer: election, log replication, commit and apply.
//
// Threads per node:
//   * apply thread        - applies committed entries to the state machine;
//   * election thread     - (voters) campaigns when heartbeats stop;
//   * pipeline thread     - (acting leader) drains the proposal queue into
//                           the log; one simulated fsync per *batch* when log
//                           batching is on (paper §5.2.3), per entry when off;
//   * replicator threads  - (acting leader) one per peer, ships AppendEntries
//                           and heartbeats over the simulated fabric.
// Pipeline and election threads exist from construction and idle unless
// relevant. Replicator threads follow the membership config: one per current
// member, spawned when a config adding the peer applies and draining (thread
// exits) when a config removing it applies.
//
// Membership lives in kConfig log entries (src/raft/config.h): the committed
// config drives vote counting, commit counting, and the replicator set. A
// node's voter/learner status is therefore dynamic - `is_voter()` consults
// the config, not a construction-time flag.

#ifndef SRC_RAFT_NODE_H_
#define SRC_RAFT_NODE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/net/network.h"
#include "src/raft/config.h"
#include "src/raft/log.h"
#include "src/raft/messages.h"
#include "src/raft/state_machine.h"
#include "src/raft/storage.h"

namespace mantle {

class RaftGroup;

struct RaftOptions {
  int64_t fsync_nanos = 60'000;  // NVMe-class flush latency
  bool log_batching = true;      // amortize fsync across queued proposals
  size_t max_batch_entries = 512;
  size_t max_entries_per_append = 512;
  int64_t heartbeat_interval_nanos = 20'000'000;     // 20 ms
  int64_t election_timeout_min_nanos = 150'000'000;  // 150 ms
  int64_t election_timeout_max_nanos = 300'000'000;  // 300 ms
  int64_t election_poll_nanos = 10'000'000;          // election-timer resolution
  int64_t propose_timeout_nanos = 10'000'000'000;    // 10 s
  // Cap on a follower read fence (leader commit-index query + local apply
  // catch-up); the operation's DeadlineBudget tightens it further.
  int64_t read_fence_timeout_nanos = 2'000'000'000;  // 2 s
  bool enable_election_timer = true;
  size_t workers_per_node = 4;  // executor width of each replica server
  // Log compaction: snapshot the state machine and drop the applied prefix
  // once this many live entries accumulate. 0 disables threshold-driven
  // compaction (RequestSnapshot() still forces one). Requires a snapshottable
  // StateMachine (non-empty Snapshot()).
  uint64_t snapshot_threshold_entries = 0;
};

enum class RaftRole : uint8_t { kFollower, kCandidate, kLeader, kLearner };

struct RaftNodeStats {
  std::atomic<uint64_t> proposals{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> appends_sent{0};
  std::atomic<uint64_t> heartbeats_sent{0};
  std::atomic<uint64_t> elections_started{0};
  std::atomic<uint64_t> read_index_queries{0};        // queries actually sent to the leader
  std::atomic<uint64_t> read_index_batched{0};        // follower reads served by coalescing
  std::atomic<uint64_t> snapshots_taken{0};
  std::atomic<uint64_t> snapshots_installed{0};       // received from a leader
  std::atomic<uint64_t> snapshots_sent{0};
  std::atomic<uint64_t> config_changes{0};            // configs applied on this node
  std::atomic<uint64_t> config_rejected{0};           // overlapping/invalid proposals refused
  std::atomic<uint64_t> timeout_now_received{0};      // leader-transfer campaigns triggered
};

class RaftNode {
 public:
  // `server` handles client operations (resolution, proposals); `raft_server`
  // handles consensus traffic (AppendEntries, votes, ReadIndex queries). The
  // split mirrors a real deployment's separate service ports and guarantees
  // that client handlers blocked on an apply fence can never starve the pool
  // that delivers the very entries they wait for. `initial_config` is the
  // node's boot-time view of membership; nodes added at runtime boot with the
  // committed config as of their creation and learn later changes from the
  // log/snapshot.
  RaftNode(RaftGroup* group, uint32_t id, const RaftConfig& initial_config,
           ServerExecutor* server, ServerExecutor* raft_server,
           std::unique_ptr<StateMachine> state_machine, const RaftOptions& options);
  ~RaftNode();

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  // --- RPC handlers (invoked via the fabric by peers) ------------------------
  AppendEntriesReply HandleAppendEntries(const AppendEntriesRequest& request);
  RequestVoteReply HandleRequestVote(const RequestVoteRequest& request);
  // Leader-side ReadIndex service: current commit index, or nullopt if this
  // node is not (or no longer) the leader.
  std::optional<uint64_t> HandleReadIndexQuery();
  // Installs a leader-provided snapshot on a lagging follower/learner.
  InstallSnapshotReply HandleInstallSnapshot(const InstallSnapshotRequest& request);
  // Leader transfer: campaign immediately, bypassing the election timeout.
  TimeoutNowReply HandleTimeoutNow(const TimeoutNowRequest& request);

  // --- client API -------------------------------------------------------------
  // Appends `command` through consensus and waits until it is applied locally;
  // returns the state machine's result. Fails with kUnavailable when this node
  // is not the leader.
  Result<std::string> ProposeAndWait(std::string command);

  // Appends a kConfig entry carrying `next` and waits until it COMMITS and
  // applies locally (one-at-a-time rule, Raft §4.1). Refuses with kBusy while
  // another change is in flight (queued, appended-uncommitted, or inherited
  // from a previous term) and with kInvalidArgument when `next` changes more
  // than one node's status or empties the voter set. Leader only.
  Status ProposeConfigChange(const RaftConfig& next);

  // Leader-side transfer: wait (bounded) for `target` to be fully caught up,
  // then send TimeoutNow so it campaigns immediately. This node steps down on
  // seeing the target's higher-term vote request, bounding the write stall to
  // one round trip plus an election.
  Status TransferLeadership(uint32_t target, int64_t timeout_nanos);

  // Follower/learner read fence (paper §5.1.3): obtain the leader's commit
  // index (coalescing concurrent queries into one RPC) and wait until the
  // local apply index catches up. Returns the read fence index.
  Result<uint64_t> FollowerReadFence();

  // Blocks until last_applied >= index.
  void WaitApplied(uint64_t index);
  // Bounded variant: true once last_applied >= index, false on timeout (the
  // node may be partitioned from the leader and never catch up).
  bool WaitAppliedFor(uint64_t index, int64_t timeout_nanos);

  // Forces this node to start a campaign now (deterministic bootstrap).
  void Campaign();

  // Asks the apply thread to take a snapshot at the next opportunity even if
  // the live-entry threshold has not been reached. Used when a fresh learner
  // joins: bulk-loaded state-machine content is not in the log, so the only
  // way to ship it is the InstallSnapshot path, which needs a snapshot (and a
  // compacted prefix) to exist.
  void RequestSnapshot();

  // Crash-stop simulation.
  void Stop();
  void Restart();
  // Cold-restart support: discards all Raft state - log, term, vote, commit
  // and apply cursors, retained snapshot, learned membership - as if the node
  // came back on a blank disk. No-op unless the node is stopped. The caller
  // rebuilds the state machine (or lets InstallSnapshot do it) and may
  // SeedConfig() a known-good membership before Restart().
  void WipeState();
  // Replaces the membership view of a stopped node (cold-start rebuild after
  // WipeState, when the config can no longer be replayed from any log).
  void SeedConfig(const RaftConfig& config);
  bool IsDown() const { return down_.load(std::memory_order_acquire); }

  // Two-phase teardown, used by RaftGroup: nodes hold raw peer pointers, so
  // the group stops every node's threads (BeginShutdown on all, then
  // JoinThreads on all) before destroying any node. Both are idempotent; the
  // destructor calls them for standalone use.
  void BeginShutdown();
  void JoinThreads();

  // --- introspection -----------------------------------------------------------
  uint32_t id() const { return id_; }
  bool is_voter() const;
  RaftRole role() const;
  uint64_t term() const;
  uint64_t commit_index() const;
  uint64_t last_applied() const;
  uint64_t last_log_index() const;
  uint64_t log_first_index() const;
  RaftConfig config() const;
  uint64_t config_index() const;
  // Leader-side: last replicated index of `peer`, 0 when unknown/not leader.
  uint64_t MatchIndexOf(uint32_t peer) const;
  // Consecutive fabric-level failures (peer_down replies) talking to `peer`;
  // reset to zero by any successful exchange. The repair supervisor's primary
  // death signal.
  uint64_t PeerDownStreak(uint32_t peer) const;
  bool snapshot_disabled() const;
  ServerExecutor* server() const { return server_; }
  ServerExecutor* raft_server() const { return raft_server_; }
  StateMachine* state_machine() const { return state_machine_.get(); }
  RaftStorage& storage() { return storage_; }
  const RaftNodeStats& stats() const { return stats_; }
  const RaftOptions& options() const { return options_; }

  // Crash-point testing: invoked (outside mu_) at named events, currently
  // "snapshot.persisted" - after the snapshot fsync, before the log prefix is
  // compacted. The hook must not call back into methods that take mu_ on this
  // node beyond accessors.
  void set_test_event_hook(std::function<void(const char*)> hook);

 private:
  friend void RaftNodeStartThreads(RaftNode& node);

  struct PendingProposal {
    std::string command;
    std::shared_ptr<std::promise<Result<std::string>>> done;
    LogEntryType type = LogEntryType::kCommand;
  };

  // All Become* methods require mu_ held.
  void BecomeFollower(uint64_t term);
  void BecomeLeader();
  void StepDownLocked(uint64_t term);
  void FailPendingLocked(const Status& status);

  // Advances commit_index_ from committed-config voter match indices;
  // requires mu_ held.
  void MaybeAdvanceCommitLocked();

  // Adopts `config` (committed at `index`) as the active membership: role
  // adjustment, leader bookkeeping growth, replicator sync. Requires mu_ held.
  void ApplyConfigLocked(uint64_t index, RaftConfig config);
  // Spawns replicator threads for config members that lack one. Requires mu_
  // held; no-op while stopping.
  void SyncReplicatorsLocked();
  // Grows next_index_/match_index_ to cover all group nodes. Requires mu_.
  void EnsureLeaderSlotsLocked();
  // True when a membership change is already in flight: queued, or a kConfig
  // entry sits in the log above last_applied_. Requires mu_ held.
  bool ConfigChangeInFlightLocked() const;

  // Takes a state-machine snapshot and compacts the log; apply thread only,
  // requires mu_ held (released around the state-machine call and the
  // snapshot fsync - the snapshot is durable BEFORE the prefix is dropped).
  void MaybeTakeSnapshot(std::unique_lock<std::mutex>& lock);

  void TestEvent(const char* event);

  void ApplyLoop();
  void ElectionLoop();
  void PipelineLoop();
  void ReplicatorLoop(uint32_t peer_id);
  void RunElection();

  int64_t RandomElectionTimeout();

  RaftGroup* group_;
  const uint32_t id_;
  ServerExecutor* server_;
  ServerExecutor* raft_server_;
  std::unique_ptr<StateMachine> state_machine_;
  RaftOptions options_;
  RaftStorage storage_;
  RaftNodeStats stats_;
  const RaftConfig boot_config_;  // WipeState falls back to this view

  mutable std::mutex mu_;
  RaftRole role_;
  uint64_t term_ = 0;
  int32_t voted_for_ = -1;
  uint32_t leader_hint_ = UINT32_MAX;
  RaftLog log_;
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;
  // Active membership = the latest applied config (or the boot config).
  RaftConfig config_;
  uint64_t config_index_ = 0;
  // Latest snapshot (covers indices <= snapshot_index_), plus the membership
  // in force at that point - a learner catching up from the snapshot can no
  // longer replay the config entries it covers.
  uint64_t snapshot_index_ = 0;
  uint64_t snapshot_term_ = 0;
  std::string snapshot_data_;
  std::string snapshot_config_;
  uint64_t snapshot_config_index_ = 0;
  bool snapshot_requested_ = false;  // RequestSnapshot() pending
  bool snapshot_disabled_ = false;   // machine returned an empty snapshot
  int64_t last_heartbeat_nanos_ = 0;
  int64_t election_timeout_nanos_ = 0;

  // Leader state (valid while role_ == kLeader).
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;
  std::deque<PendingProposal> proposal_queue_;
  std::map<uint64_t, std::shared_ptr<std::promise<Result<std::string>>>> pending_applies_;
  // Consecutive peer_down replies per peer (leader-side health signal).
  std::map<uint32_t, uint64_t> peer_down_streak_;

  // Follower ReadIndex coalescing.
  std::mutex read_mu_;
  std::condition_variable read_cv_;
  bool read_inflight_ = false;
  uint64_t read_generation_ = 0;
  Result<uint64_t> last_read_fence_ = Status::Unavailable("no fence yet");

  std::condition_variable apply_cv_;      // commit advanced
  std::condition_variable applied_cv_;    // last_applied advanced
  std::condition_variable proposal_cv_;   // proposal queued
  std::condition_variable replicate_cv_;  // log grew / commit moved / role change

  std::atomic<bool> down_{false};
  std::atomic<bool> stopping_{false};
  Rng rng_;

  std::function<void(const char*)> test_event_hook_;  // guarded by mu_

  std::thread apply_thread_;
  std::thread election_thread_;
  std::thread pipeline_thread_;
  // One replicator per current config member, keyed by peer id. Guarded by
  // mu_ (spawned under it by SyncReplicatorsLocked; swapped out under it by
  // JoinThreads). A replicator that drains (its peer left the config) moves
  // its own handle to finished_replicators_ so the key can be reused if the
  // peer ever rejoins.
  std::map<uint32_t, std::thread> replicator_threads_;
  std::vector<std::thread> finished_replicators_;
};

// Starts a node's background threads. Called by RaftGroup once every node in
// the group has been constructed (replicators dereference peers).
void RaftNodeStartThreads(RaftNode& node);

}  // namespace mantle

#endif  // SRC_RAFT_NODE_H_
