// State machine interface applied by every replica in a Raft group.

#ifndef SRC_RAFT_STATE_MACHINE_H_
#define SRC_RAFT_STATE_MACHINE_H_

#include <cstdint>
#include <string>

namespace mantle {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  // Applies a committed command. Must be deterministic: every replica applies
  // the same sequence and must converge. The return value is delivered to the
  // proposer (leader side) and discarded elsewhere.
  virtual std::string Apply(uint64_t index, const std::string& command) = 0;

  // Serializes the full state for log compaction / InstallSnapshot. Called
  // from the apply thread, so it observes exactly the applied prefix. The
  // default (empty string) marks the machine as not snapshottable.
  virtual std::string Snapshot() { return ""; }
  // Replaces the state with a previously serialized snapshot.
  virtual void Restore(const std::string& snapshot) {}
};

}  // namespace mantle

#endif  // SRC_RAFT_STATE_MACHINE_H_
