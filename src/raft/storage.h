// Simulated durable Raft storage.
//
// The paper identifies per-entry fsync as the IndexNode write bottleneck and
// amortizes it with Raft log batching (§5.2.3). We model durability cost as a
// fixed delay per persistence *call*, so persisting a batch of N entries
// costs one delay instead of N - exactly the amortization the optimization
// buys.

#ifndef SRC_RAFT_STORAGE_H_
#define SRC_RAFT_STORAGE_H_

#include <atomic>
#include <cstdint>

#include "src/common/clock.h"

namespace mantle {

class RaftStorage {
 public:
  explicit RaftStorage(int64_t fsync_nanos) : fsync_nanos_(fsync_nanos) {}

  // Durably persists `entry_count` log entries (or the term/vote state when
  // entry_count == 0). One simulated fsync regardless of count.
  void Persist(size_t entry_count) {
    if (fsync_nanos_ > 0) {
      PreciseSleep(fsync_nanos_);
    }
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    entries_persisted_.fetch_add(entry_count, std::memory_order_relaxed);
  }

  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  uint64_t entries_persisted() const { return entries_persisted_.load(std::memory_order_relaxed); }

 private:
  int64_t fsync_nanos_;
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> entries_persisted_{0};
};

}  // namespace mantle

#endif  // SRC_RAFT_STORAGE_H_
