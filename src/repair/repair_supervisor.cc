#include "src/repair/repair_supervisor.h"

#include <chrono>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mantle {

RepairSupervisor::RepairSupervisor(RaftGroup* group, RepairOptions options)
    : group_(group), options_(options), rng_(options.seed) {}

RepairSupervisor::~RepairSupervisor() { Stop(); }

void RepairSupervisor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_.load(std::memory_order_acquire)) {
    return;
  }
  started_ = true;
  thread_ = std::thread([this]() { Loop(); });
}

void RepairSupervisor::Stop() {
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker = std::move(thread_);
  }
  if (worker.joinable()) {
    worker.join();
  }
}

bool RepairSupervisor::LooksDead(RaftNode* leader, uint32_t peer) const {
  if (leader->PeerDownStreak(peer) >= options_.peer_down_threshold) {
    return true;
  }
  if (options_.use_breaker_signal) {
    RaftNode* node = group_->node(peer);
    if (node != nullptr &&
        node->raft_server()->breaker().state() == CircuitBreaker::State::kOpen) {
      return true;
    }
  }
  return false;
}

void RepairSupervisor::Loop() {
  static obs::Counter* suspected = obs::Metrics::Instance().GetCounter("repair.suspected");
  static obs::Counter* declared = obs::Metrics::Instance().GetCounter("repair.declared_dead");
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::nanoseconds(options_.poll_interval_nanos),
                   [this]() { return stopping_.load(std::memory_order_acquire); });
    }
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    RaftNode* leader = group_->leader();
    if (leader == nullptr) {
      // No leader means no replicator vantage point (and no quorum to commit
      // a config change anyway); wait for the election to settle.
      suspect_deadline_.clear();
      continue;
    }
    const RaftConfig config = leader->config();
    const int64_t now = MonotonicNanos();
    auto scan = [&](uint32_t peer) {
      if (peer == leader->id()) {
        return;
      }
      if (!LooksDead(leader, peer)) {
        suspect_deadline_.erase(peer);  // signal cleared: healthy again
        return;
      }
      auto it = suspect_deadline_.find(peer);
      if (it == suspect_deadline_.end()) {
        // Seeded jitter staggers declarations deterministically - replaying a
        // drill with the same seed reproduces the same timeline.
        const int64_t jitter = static_cast<int64_t>(rng_.Uniform(
            static_cast<uint64_t>(options_.suspicion_window_nanos / 4 + 1)));
        suspect_deadline_[peer] = now + options_.suspicion_window_nanos + jitter;
        stats_.suspected.fetch_add(1, std::memory_order_relaxed);
        suspected->Add();
        MANTLE_WLOG << "repair: replica " << group_->name() << "-" << peer
                    << " suspected dead (streak " << leader->PeerDownStreak(peer) << ")";
        return;
      }
      if (now < it->second) {
        return;  // window still running
      }
      suspect_deadline_.erase(it);
      stats_.declared_dead.fetch_add(1, std::memory_order_relaxed);
      declared->Add();
      MANTLE_WLOG << "repair: replica " << group_->name() << "-" << peer
                  << " declared dead; replacing";
      ReplaceNode(peer);
    };
    for (uint32_t peer : config.voters) {
      scan(peer);
    }
    for (uint32_t peer : config.learners) {
      scan(peer);
    }
  }
}

Status RepairSupervisor::ReplaceNode(uint32_t dead_id) {
  static obs::Counter* replacements = obs::Metrics::Instance().GetCounter("repair.replacements");
  static obs::Counter* failures = obs::Metrics::Instance().GetCounter("repair.failures");
  static obs::HistogramMetric* duration =
      obs::Metrics::Instance().GetHistogram("repair.replace_nanos");
  const int64_t start = MonotonicNanos();
  obs::OpTrace trace("repair.replace");
  obs::ScopedThreadTrace install(&trace);
  Status status = [&]() -> Status {
    uint32_t learner = 0;
    {
      obs::ScopedSpan span(&trace, "repair.join");
      MANTLE_ASSIGN_OR_RETURN(learner, group_->AddLearner(options_.replace_timeout_nanos));
    }
    {
      // Catch-up (snapshot install + log tail) and promotion once the lag
      // bound holds; PromoteLearner exports raft.learner.catchup_lag.
      obs::ScopedSpan span(&trace, "repair.catchup_promote");
      MANTLE_RETURN_IF_ERROR(group_->PromoteLearner(learner, options_.promote_max_lag_entries,
                                                    options_.replace_timeout_nanos));
    }
    {
      obs::ScopedSpan span(&trace, "repair.remove");
      MANTLE_RETURN_IF_ERROR(group_->RemoveNode(dead_id, options_.replace_timeout_nanos));
    }
    group_->DecommissionNode(dead_id);
    return Status::Ok();
  }();
  trace.End(0);  // close the root span before stitching remote batches
  group_->network()->StitchTrace(&trace);
  if (status.ok()) {
    stats_.replacements.fetch_add(1, std::memory_order_relaxed);
    replacements->Add();
    duration->Record(MonotonicNanos() - start);
    MANTLE_ILOG << "repair: replaced " << group_->name() << "-" << dead_id << " in "
                << (MonotonicNanos() - start) / 1'000'000 << " ms";
  } else {
    stats_.failures.fetch_add(1, std::memory_order_relaxed);
    failures->Add();
    MANTLE_WLOG << "repair: replacement of " << group_->name() << "-" << dead_id
                << " failed: " << status.ToString();
  }
  return status;
}

}  // namespace mantle
