// Autonomous replica repair for a RaftGroup.
//
// The supervisor consumes health signals the fabric already produces - the
// leader's consecutive peer_down replication failures and (optionally) an
// open circuit breaker on the peer's consensus port - and turns them into
// membership surgery. A replica whose signal persists past a
// seeded-deterministic suspicion window is declared dead and replaced:
//
//   join     AddLearner() allocates fresh servers on the Network and commits
//            a config adding the newcomer as a learner;
//   catchup  the learner catches up through the normal replication path (the
//            first exchange ships a snapshot when the leader's log is
//            compacted - AddLearner forces one so bulk-loaded state travels);
//   promote  PromoteLearner() waits for match_index_ within a bounded lag of
//            the leader, then commits the voter config;
//   remove   RemoveNode() commits the config dropping the corpse, which is
//            then crash-stopped (DecommissionNode).
//
// Suspicion, declaration, and each phase emit repair.* metrics and trace
// spans so a replacement is fully observable after the fact.

#ifndef SRC_REPAIR_REPAIR_SUPERVISOR_H_
#define SRC_REPAIR_REPAIR_SUPERVISOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/raft/group.h"

namespace mantle {

struct RepairOptions {
  int64_t poll_interval_nanos = 20'000'000;      // health-scan cadence
  // A death signal must persist this long (plus per-node seeded jitter, so
  // concurrent supervisors never stampede) before the replica is declared
  // dead. Bounds the damage of a transient blip being mistaken for a crash.
  int64_t suspicion_window_nanos = 150'000'000;
  // Consecutive peer_down replies from the leader's replicator before the
  // peer counts as signalling at all.
  uint64_t peer_down_threshold = 4;
  // Promotion gate: leader.last_log_index - match_index(learner) must be at
  // or below this before the learner becomes a voter.
  uint64_t promote_max_lag_entries = 16;
  // Budget for one full replacement (join + catchup + promote + remove).
  int64_t replace_timeout_nanos = 20'000'000'000;
  // Also treat an open circuit breaker on the peer's consensus port as a
  // death signal (requires NetworkOptions::breaker to be enabled).
  bool use_breaker_signal = true;
  uint64_t seed = 0x5eed;  // drives the deterministic suspicion jitter
};

struct RepairStats {
  std::atomic<uint64_t> suspected{0};      // suspicion windows opened
  std::atomic<uint64_t> declared_dead{0};  // windows that expired into action
  std::atomic<uint64_t> replacements{0};   // full replacements completed
  std::atomic<uint64_t> failures{0};       // replacements that errored out
};

class RepairSupervisor {
 public:
  explicit RepairSupervisor(RaftGroup* group, RepairOptions options = {});
  ~RepairSupervisor();

  RepairSupervisor(const RepairSupervisor&) = delete;
  RepairSupervisor& operator=(const RepairSupervisor&) = delete;

  void Start();
  void Stop();

  // One full replacement of `dead_id`, synchronously. The supervisor loop
  // calls this after a declaration; drills may call it directly.
  Status ReplaceNode(uint32_t dead_id);

  const RepairStats& stats() const { return stats_; }
  const RepairOptions& options() const { return options_; }

 private:
  // True when the fabric currently says `peer` is gone, judged from the
  // leader's vantage point. Deliberately ignores RaftNode::IsDown() - the
  // supervisor must work from observable signals, not simulator truth.
  bool LooksDead(RaftNode* leader, uint32_t peer) const;
  void Loop();

  RaftGroup* group_;
  RepairOptions options_;
  RepairStats stats_;
  Rng rng_;

  // Open suspicion windows: peer id -> deadline (declaration fires when the
  // signal still holds past it). Loop-thread only once started.
  std::map<uint32_t, int64_t> suspect_deadline_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread thread_;
};

}  // namespace mantle

#endif  // SRC_REPAIR_REPAIR_SUPERVISOR_H_
