#include "src/tafdb/contention_tracker.h"

#include "src/common/clock.h"

namespace mantle {

void ContentionTracker::NoteAbort(InodeId dir_id) {
  const int64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  ++total_aborts_;
  DirState& state = dirs_[dir_id];
  if (now - state.window_start > options_.window_nanos) {
    state.window_start = now;
    state.count_in_window = 0;
  }
  ++state.count_in_window;
  state.last_abort = now;
  if (state.count_in_window >= options_.abort_threshold) {
    state.active = true;
  }
}

bool ContentionTracker::DeltaModeActive(InodeId dir_id) const {
  const int64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dirs_.find(dir_id);
  if (it == dirs_.end() || !it->second.active) {
    return false;
  }
  if (now - it->second.last_abort > options_.cooldown_nanos) {
    // Sustained quiet: fall back to in-place updates to keep dirstat cheap.
    return false;
  }
  return true;
}

uint64_t ContentionTracker::total_aborts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_aborts_;
}

size_t ContentionTracker::tracked_directories() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirs_.size();
}

}  // namespace mantle
