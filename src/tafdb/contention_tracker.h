// Per-directory contention detector.
//
// Delta records trade dirstat read cost for conflict-free attribute updates,
// so Mantle enables them "selectively, activated only under sustained
// contention within a directory" (paper §5.2.1). The tracker counts
// transaction aborts per directory in a sliding window; a directory whose
// abort count crosses the threshold enters delta mode and stays there until
// aborts go quiet for a cooldown period.

#ifndef SRC_TAFDB_CONTENTION_TRACKER_H_
#define SRC_TAFDB_CONTENTION_TRACKER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/kv/meta_record.h"

namespace mantle {

struct ContentionOptions {
  int64_t window_nanos = 100'000'000;    // abort-count window (100 ms)
  int64_t cooldown_nanos = 500'000'000;  // quiet period before delta mode exits
  int abort_threshold = 4;               // aborts within window to activate
};

class ContentionTracker {
 public:
  explicit ContentionTracker(ContentionOptions options = {}) : options_(options) {}

  void NoteAbort(InodeId dir_id);
  bool DeltaModeActive(InodeId dir_id) const;

  uint64_t total_aborts() const;
  size_t tracked_directories() const;

 private:
  struct DirState {
    int64_t window_start = 0;
    int64_t last_abort = 0;
    int count_in_window = 0;
    bool active = false;
  };

  ContentionOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<InodeId, DirState> dirs_;
  uint64_t total_aborts_ = 0;
};

}  // namespace mantle

#endif  // SRC_TAFDB_CONTENTION_TRACKER_H_
