#include "src/tafdb/tafdb.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "src/admission/admission.h"
#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace mantle {

Status TafDb::ValidateOptions(const TafDbOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("TafDbOptions: num_shards must be > 0");
  }
  if (options.num_servers == 0) {
    return Status::InvalidArgument("TafDbOptions: num_servers must be > 0");
  }
  if (options.workers_per_server == 0) {
    return Status::InvalidArgument("TafDbOptions: workers_per_server must be > 0");
  }
  return Status::Ok();
}

TafDb::TafDb(Network* network, TafDbOptions options)
    : network_(network), options_(options), contention_(options.contention) {
  init_status_ = ValidateOptions(options_);
  if (!init_status_.ok()) {
    // Previously num_shards == 0 reached RouteHash(pid) % 0 - UB. Clamp to a
    // safe minimum so every member is constructible, skip the background
    // threads, and surface init_status_ from the fallible entry points.
    MANTLE_WLOG << "TafDb constructed with invalid options: " << init_status_;
    options_.num_shards = std::max(options_.num_shards, 1u);
    options_.num_servers = std::max(options_.num_servers, 1u);
    options_.workers_per_server = std::max(options_.workers_per_server, 1u);
    options_.start_compactor = false;
    options_.enable_placement = false;
  }
  servers_.reserve(options_.num_servers);
  for (uint32_t i = 0; i < options_.num_servers; ++i) {
    servers_.push_back(
        network_->AddServer("tafdb-" + std::to_string(i), options_.workers_per_server));
  }
  shards_ = std::make_unique<ShardMap>(options_.num_shards, servers_);
  coordinator_ = std::make_unique<TxnCoordinator>(shards_.get(), network_);
  coordinator_->set_abort_listener([this](InodeId pid) { contention_.NoteAbort(pid); });
  placement_ = std::make_unique<PlacementSupervisor>(shards_.get(), network_, options_.placement);
  if (options_.enable_placement) {
    placement_->Start();
  }
  if (options_.start_compactor) {
    compactor_ = std::thread([this]() { CompactorLoop(); });
  }
}

TafDb::~TafDb() {
  placement_->Stop();
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (compactor_.joinable()) {
    compactor_.join();
  }
  // Deadline-expired callers may have abandoned handlers still queued on our
  // servers; they capture raw Shard pointers, so drain before the shard map
  // and coordinator members destruct.
  for (ServerExecutor* server : servers_) {
    server->Drain();
  }
}

// Read paths use the deadline-aware Call overload: a paused or slow TafDB
// server surfaces kTimeout instead of wedging the proxy, and all captures are
// by value because an abandoned handler may still run after the caller left.

namespace {

template <typename T>
Result<T> FaultToStatus(const Status& fault) {
  return fault;
}

// Retired-shard bounce for read handlers. Checked AFTER the read: IsRetired()
// false at that point proves the shard was authoritative while the row was
// read, so returning the row is linearizable; true means a migration cutover
// may have raced the read and the row could be stale - bounce and re-route.
Status WrongShardBounce(const Shard* shard) {
  return Status::WrongShard("shard " + std::to_string(shard->shard_id()) + " moved; epoch " +
                            std::to_string(shard->retired_epoch()));
}

// Bound on resolve-and-retry rounds after kWrongShard. One round suffices for
// a single completed migration; the bound only guards against pathological
// churn (a shard migrating continuously during the call).
constexpr int kMaxRouteAttempts = 4;

// Runs `body(routing)` against the current placement of `index`, re-resolving
// and retrying while it returns kWrongShard.
template <typename T, typename Body>
Result<T> WithReroute(ShardMap* shards, uint32_t index, Body&& body) {
  static obs::Counter* reroutes = obs::Metrics::Instance().GetCounter("tafdb.reroute.retries");
  for (int attempt = 0;; ++attempt) {
    Result<T> result = body(shards->Resolve(index));
    if (result.ok() || !result.status().IsWrongShard() || attempt + 1 >= kMaxRouteAttempts) {
      return result;
    }
    reroutes->Add();
  }
}

}  // namespace

Result<MetaValue> TafDb::Get(const MetaKey& key) {
  MANTLE_RETURN_IF_ERROR(init_status_);
  return WithReroute<MetaValue>(
      shards_.get(), shards_->ShardIndex(key.pid), [&](const ShardMap::Routing& route) {
        Shard* shard = route.shard;
        return route.server->Call(
            [this, shard, key]() -> Result<MetaValue> {
              network_->ChargeDbRowAccess();
              auto row = shard->Get(key);
              if (shard->IsRetired()) {
                return WrongShardBounce(shard);
              }
              if (!row.has_value()) {
                return Status::NotFound(key.ToString());
              }
              return *row;
            },
            FaultToStatus<MetaValue>);
      });
}

std::vector<Result<MetaValue>> TafDb::MultiGet(std::span<const MetaKey> keys) {
  std::vector<Result<MetaValue>> results(
      keys.size(), Result<MetaValue>(Status::Unavailable("multiget: no result")));
  if (keys.empty()) {
    return results;
  }
  if (!init_status_.ok()) {
    std::fill(results.begin(), results.end(), Result<MetaValue>(init_status_));
    return results;
  }
  static obs::Counter* batches = obs::Metrics::Instance().GetCounter("tafdb.multiget.batches");
  static obs::Counter* key_count = obs::Metrics::Instance().GetCounter("tafdb.multiget.keys");
  static obs::Counter* reroutes = obs::Metrics::Instance().GetCounter("tafdb.reroute.retries");
  batches->Add();
  key_count->Add(keys.size());
  // Slots still to fetch this round; starts as everything, shrinks to the
  // kWrongShard stragglers when a migration cutover races the batch.
  std::vector<size_t> todo(keys.size());
  for (size_t i = 0; i < todo.size(); ++i) {
    todo[i] = i;
  }
  for (int round = 0; round < kMaxRouteAttempts && !todo.empty(); ++round) {
    if (round > 0) {
      reroutes->Add();
    }
    // Group the round's keys by owning shard, remembering each key's slot.
    std::unordered_map<uint32_t, std::vector<size_t>> groups;
    for (size_t slot : todo) {
      groups[shards_->ShardIndex(keys[slot].pid)].push_back(slot);
    }
    struct GroupCall {
      std::vector<size_t> slots;
      ServerExecutor* server = nullptr;
      std::future<std::vector<Result<MetaValue>>> future;
    };
    std::vector<GroupCall> calls;
    calls.reserve(groups.size());
    for (auto& [shard_index, slots] : groups) {
      const ShardMap::Routing route = shards_->Resolve(shard_index);
      Shard* shard = route.shard;
      // The handler owns its keys: a deadline-expired caller abandons it
      // while it may still be queued.
      auto group_keys = std::make_shared<std::vector<MetaKey>>();
      group_keys->reserve(slots.size());
      for (size_t slot : slots) {
        group_keys->push_back(keys[slot]);
      }
      // Admission sees the group's true weight, not "one more handler".
      ScopedOpCost cost(static_cast<int>(group_keys->size()));
      auto future = route.server->CallAsync(
          [this, shard, group_keys]() -> std::vector<Result<MetaValue>> {
            std::vector<Result<MetaValue>> rows;
            rows.reserve(group_keys->size());
            for (const MetaKey& key : *group_keys) {
              network_->ChargeDbRowAccess();
              auto row = shard->Get(key);
              if (shard->IsRetired()) {
                rows.push_back(WrongShardBounce(shard));
              } else if (row.has_value()) {
                rows.push_back(*row);
              } else {
                rows.push_back(Status::NotFound(key.ToString()));
              }
            }
            return rows;
          },
          [group_keys](const Status& fault) {
            return std::vector<Result<MetaValue>>(group_keys->size(),
                                                  Result<MetaValue>(fault));
          });
      calls.push_back(GroupCall{std::move(slots), route.server, std::move(future)});
    }
    // The per-shard fan-outs overlap on the wire: one shared round-trip
    // charge for the whole batch (CallAsync counted each RPC already).
    network_->InjectDelay();
    const int64_t wait_nanos =
        DeadlineBudget::Clamp(network_->options().default_rpc_deadline_nanos);
    const int64_t deadline_nanos = MonotonicNanos() + (wait_nanos > 0 ? wait_nanos : 0);
    std::vector<size_t> rerouted;
    for (GroupCall& call : calls) {
      const int64_t rest = deadline_nanos - MonotonicNanos();
      if (rest <= 0 || call.future.wait_for(std::chrono::nanoseconds(rest)) !=
                           std::future_status::ready) {
        call.server->RecordOutcome(Status::Timeout());
        network_->NoteCallerTimeout();
        for (size_t slot : call.slots) {
          results[slot] = Status::Timeout("multiget to " + call.server->name() + " timed out");
        }
        continue;
      }
      call.server->RecordOutcome(Status::Ok());
      std::vector<Result<MetaValue>> rows = call.future.get();
      for (size_t j = 0; j < call.slots.size() && j < rows.size(); ++j) {
        const size_t slot = call.slots[j];
        if (!rows[j].ok() && rows[j].status().IsWrongShard() && round + 1 < kMaxRouteAttempts) {
          results[slot] = std::move(rows[j]);  // keep the bounce if rounds run out
          rerouted.push_back(slot);
        } else {
          results[slot] = std::move(rows[j]);
        }
      }
    }
    todo = std::move(rerouted);
  }
  return results;
}

Result<std::vector<Shard::Entry>> TafDb::ListChildren(InodeId pid, size_t limit) {
  MANTLE_RETURN_IF_ERROR(init_status_);
  return WithReroute<std::vector<Shard::Entry>>(
      shards_.get(), shards_->ShardIndex(pid), [&](const ShardMap::Routing& route) {
        Shard* shard = route.shard;
        return route.server->Call(
            [this, shard, pid, limit]() -> Result<std::vector<Shard::Entry>> {
              auto entries = shard->ScanChildren(pid, limit);
              // One seek plus amortized per-row iteration cost.
              network_->ChargeDbRowAccess(1 + static_cast<int64_t>(entries.size()) / 32);
              if (shard->IsRetired()) {
                return WrongShardBounce(shard);
              }
              return entries;
            },
            FaultToStatus<std::vector<Shard::Entry>>);
      });
}

Result<std::vector<Shard::Entry>> TafDb::ListChildrenAfter(InodeId pid,
                                                           const std::string& start_after,
                                                           size_t limit) {
  MANTLE_RETURN_IF_ERROR(init_status_);
  return WithReroute<std::vector<Shard::Entry>>(
      shards_.get(), shards_->ShardIndex(pid), [&](const ShardMap::Routing& route) {
        Shard* shard = route.shard;
        return route.server->Call(
            [this, shard, pid, start_after, limit]() -> Result<std::vector<Shard::Entry>> {
              auto entries = shard->ScanChildrenAfter(pid, start_after, limit);
              network_->ChargeDbRowAccess(1 + static_cast<int64_t>(entries.size()) / 32);
              if (shard->IsRetired()) {
                return WrongShardBounce(shard);
              }
              return entries;
            },
            FaultToStatus<std::vector<Shard::Entry>>);
      });
}

Result<MetaValue> TafDb::ReadDirAttr(InodeId dir_id) {
  MANTLE_RETURN_IF_ERROR(init_status_);
  return WithReroute<MetaValue>(
      shards_.get(), shards_->ShardIndex(dir_id), [&](const ShardMap::Routing& route) {
        Shard* shard = route.shard;
        return route.server->Call(
            [this, shard, dir_id]() -> Result<MetaValue> {
              network_->ChargeDbRowAccess();
              auto merged = shard->ReadAttrMerged(dir_id);
              if (shard->IsRetired()) {
                return WrongShardBounce(shard);
              }
              if (!merged.has_value()) {
                return Status::NotFound("attr of dir " + std::to_string(dir_id));
              }
              return *merged;
            },
            FaultToStatus<MetaValue>);
      });
}

Result<bool> TafDb::HasChildren(InodeId pid) {
  MANTLE_RETURN_IF_ERROR(init_status_);
  return WithReroute<bool>(
      shards_.get(), shards_->ShardIndex(pid), [&](const ShardMap::Routing& route) {
        Shard* shard = route.shard;
        return route.server->Call(
            [this, shard, pid]() -> Result<bool> {
              network_->ChargeDbRowAccess();
              const bool has = shard->HasChildren(pid);
              if (shard->IsRetired()) {
                return Result<bool>(WrongShardBounce(shard));
              }
              return Result<bool>(has);
            },
            FaultToStatus<bool>);
      });
}

Status TafDb::ApplyAtomicSingleShard(const std::vector<WriteOp>& ops) {
  if (ops.empty()) {
    return Status::Ok();
  }
  MANTLE_RETURN_IF_ERROR(init_status_);
  const uint32_t shard_index = shards_->ShardIndex(ops.front().key.pid);
  for (const auto& op : ops) {
    if (shards_->ShardIndex(op.key.pid) != shard_index) {
      return Status::InvalidArgument("ops span shards; use Execute()");
    }
  }
  static obs::Counter* reroutes = obs::Metrics::Instance().GetCounter("tafdb.reroute.retries");
  Status status = Status::Ok();
  for (int attempt = 0; attempt < kMaxRouteAttempts; ++attempt) {
    const ShardMap::Routing route = shards_->Resolve(shard_index);
    Shard* shard = route.shard;
    status = route.server->Call([this, shard, &ops]() {
      // Row-write cost is charged holding the shard latch: concurrent updates
      // to the same rows serialize at storage-engine speed (the parent
      // attribute latch behaviour of Tectonic/LocoFS, paper §6.3).
      return shard->CheckAndApply(
          ops, [this, &ops]() { network_->ChargeDbRowAccess(static_cast<int64_t>(ops.size())); });
    });
    // kWrongShard: the shard moved under us - re-resolve and reapply here.
    // kBusy (write fence) is returned to the caller: the placement has not
    // changed yet, so the proxy-level retry path owns the backoff.
    if (!status.IsWrongShard()) {
      return status;
    }
    reroutes->Add();
  }
  return status;
}

WriteOp TafDb::MakeAttrUpdate(InodeId dir_id, int64_t count_delta, bool bump_mtime,
                              uint64_t txn_id) {
  if (DeltaModeActive(dir_id)) {
    // Conflict-free append: a delta row keyed by the transaction timestamp.
    WriteOp op;
    op.kind = WriteOp::Kind::kPut;
    op.expect = WriteOp::Expect::kNone;
    op.key = DeltaKey(dir_id, txn_id);
    op.value.type = EntryType::kAttrDelta;
    op.value.id = dir_id;
    op.value.child_count = count_delta;
    op.value.mtime = bump_mtime ? txn_id : 0;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_compaction_.insert(dir_id);
    }
    static obs::Counter* appends = obs::Metrics::Instance().GetCounter("tafdb.delta.appends");
    appends->Add();
    return op;
  }
  WriteOp op;
  op.kind = WriteOp::Kind::kAddChildCount;
  op.expect = WriteOp::Expect::kMustExist;
  op.key = AttrKey(dir_id);
  op.count_delta = count_delta;
  op.bump_mtime = bump_mtime;
  return op;
}

bool TafDb::DeltaModeActive(InodeId dir_id) const {
  if (!options_.enable_delta_records) {
    return false;
  }
  if (options_.force_delta_records) {
    return true;
  }
  return contention_.DeltaModeActive(dir_id);
}

void TafDb::LoadPut(const MetaKey& key, const MetaValue& value) {
  shards_->Route(key.pid)->LoadPut(key, value);
}

void TafDb::LoadAdjustChildCount(InodeId dir_id, int64_t delta) {
  WriteOp op;
  op.kind = WriteOp::Kind::kAddChildCount;
  op.key = AttrKey(dir_id);
  op.count_delta = delta;
  shards_->Route(dir_id)->ApplyOps({op});
}

void TafDb::CompactDirectory(InodeId dir_id) {
  Shard* shard = shards_->Route(dir_id);
  auto deltas = shard->ScanDeltas(dir_id);
  if (deltas.empty()) {
    return;
  }
  int64_t fold = 0;
  uint64_t max_mtime = 0;
  std::vector<uint64_t> consumed;
  consumed.reserve(deltas.size());
  for (const auto& entry : deltas) {
    fold += entry.value.child_count;
    if (entry.value.mtime > max_mtime) {
      max_mtime = entry.value.mtime;
    }
    consumed.push_back(entry.key.ts);
  }
  Status status = shard->CompactDeltas(dir_id, consumed, fold, max_mtime);
  if (!status.ok()) {
    // Write-fenced (kBusy) or migrated away (kWrongShard) mid-fold: nothing
    // was mutated. Re-pend the directory; the next pass re-routes through the
    // current placement and folds there.
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_compaction_.insert(dir_id);
  }
}

void TafDb::CompactAllPending() {
  std::unordered_set<InodeId> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    batch.swap(pending_compaction_);
  }
  if (!batch.empty() && compaction_crash_once_.exchange(false)) {
    // Simulated compactor crash between dequeue and fold: the batch (and with
    // it the only in-memory record of these directories) is dropped, leaving
    // their delta rows orphaned until RecoverCompactionBacklog re-scans.
    return;
  }
  for (InodeId dir_id : batch) {
    CompactDirectory(dir_id);
    // Deltas may have landed after the scan; keep the directory pending so
    // the next pass picks up the remainder.
    if (!shards_->Route(dir_id)->ScanDeltas(dir_id).empty()) {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_compaction_.insert(dir_id);
    }
  }
  static obs::Gauge* backlog = obs::Metrics::Instance().GetGauge("tafdb.compaction.backlog");
  backlog->Set(static_cast<int64_t>(PendingCompactions()));
}

TxnRecoveryReport TafDb::RecoverCoordinator() {
  coordinator_->SimulateRestart();
  return coordinator_->Recover();
}

size_t TafDb::RecoverCompactionBacklog() {
  std::unordered_set<InodeId> dirs;
  for (uint32_t i = 0; i < shards_->num_shards(); ++i) {
    // Collect only; Shard::ForEach holds the shard's shared lock, so no
    // nested shard reads from inside the callback.
    shards_->ShardAt(i)->ForEach([&dirs](const MetaKey& key, const MetaValue&) {
      if (key.ts != 0 && key.name == kAttrName) {
        dirs.insert(key.pid);
      }
    });
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (InodeId dir_id : dirs) {
      pending_compaction_.insert(dir_id);
    }
  }
  static obs::Gauge* backlog = obs::Metrics::Instance().GetGauge("tafdb.compaction.backlog");
  backlog->Set(static_cast<int64_t>(PendingCompactions()));
  return dirs.size();
}

size_t TafDb::PendingCompactions() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_compaction_.size();
}

bool TafDb::PendingCompactionContains(InodeId dir_id) const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_compaction_.count(dir_id) > 0;
}

void TafDb::CompactorLoop() {
  // Compaction is maintenance traffic: any RPC it issues is shed first under
  // admission control.
  ScopedOpPriority background(OpPriority::kBackground);
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stopping_) {
    stop_cv_.wait_for(lock, std::chrono::nanoseconds(options_.compaction_interval_nanos));
    if (stopping_) {
      break;
    }
    lock.unlock();
    CompactAllPending();
    lock.lock();
  }
}

}  // namespace mantle
