// TafDB: the scalable, sharded metadata database shared across namespaces.
//
// TafDB stores every MetaTable row (access + attribute metadata) hash-
// partitioned by pid across a fleet of logical servers. It offers:
//   * point reads, directory listings and merged attribute reads, each one
//     RPC to the owning server;
//   * strongly consistent transactions through TxnCoordinator (single-shard
//     fast path, cross-shard 2PC);
//   * delta records: when a directory is contended (or when forced by
//     configuration), attribute updates become conflict-free delta-row
//     inserts that a background compactor folds into the primary row.
//
// TafDB is namespace-agnostic; IndexNode and every baseline build on it.

#ifndef SRC_TAFDB_TAFDB_H_
#define SRC_TAFDB_TAFDB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/common/result.h"
#include "src/net/network.h"
#include "src/placement/placement_supervisor.h"
#include "src/tafdb/contention_tracker.h"
#include "src/txn/coordinator.h"
#include "src/txn/shard_map.h"

namespace mantle {

struct TafDbOptions {
  uint32_t num_shards = 32;
  uint32_t num_servers = 6;         // paper deploys 18; scaled with the testbed
  uint32_t workers_per_server = 2;  // CPU budget per logical server
  // Delta-record policy (paper §5.2.1). `enable` makes the mechanism
  // available behind the contention detector; `force` applies it to every
  // attribute update regardless of contention (ablation benches).
  bool enable_delta_records = true;
  bool force_delta_records = false;
  ContentionOptions contention;
  int64_t compaction_interval_nanos = 2'000'000;  // 2 ms compactor cadence
  bool start_compactor = true;
  // Heat-aware placement (src/placement/): when enabled, a background
  // supervisor samples per-shard heat and live-migrates shards off hot
  // servers. The PlacementSupervisor object always exists (drills drive it
  // directly); this flag only controls the autonomous loop.
  bool enable_placement = false;
  PlacementSupervisorOptions placement;
};

class TafDb {
 public:
  TafDb(Network* network, TafDbOptions options = {});
  ~TafDb();

  // Rejects configurations that would previously reach undefined behaviour
  // (RouteHash % 0, empty server list). A TafDb constructed with invalid
  // options clamps them to a safe minimum, skips background threads, and
  // returns this status from every fallible entry point.
  static Status ValidateOptions(const TafDbOptions& options);
  const Status& init_status() const { return init_status_; }

  TafDb(const TafDb&) = delete;
  TafDb& operator=(const TafDb&) = delete;

  // --- reads (one RPC to the owning server each) -----------------------------

  Result<MetaValue> Get(const MetaKey& key);
  // Batched point reads: keys are grouped by owning shard and each group
  // travels in ONE RPC (so a batch costs one round trip per touched shard,
  // not one per key; the per-shard fan-outs overlap and share a single
  // round-trip charge). Results come back in input order; each entry is
  // exactly what Get(key) would have returned. Per-row server CPU is still
  // charged inside the handler - batching saves wire time, not storage work.
  std::vector<Result<MetaValue>> MultiGet(std::span<const MetaKey> keys);
  Result<std::vector<Shard::Entry>> ListChildren(InodeId pid, size_t limit = 0);
  // Paged listing: children with names strictly after `start_after`.
  Result<std::vector<Shard::Entry>> ListChildrenAfter(InodeId pid,
                                                      const std::string& start_after,
                                                      size_t limit);
  // Attribute primary merged with live deltas (accurate dirstat).
  Result<MetaValue> ReadDirAttr(InodeId dir_id);
  Result<bool> HasChildren(InodeId pid);

  // --- transactional writes --------------------------------------------------

  uint64_t NextTxnId() { return coordinator_->NextTxnId(); }
  Status Execute(const std::vector<WriteOp>& ops, uint64_t txn_id) {
    if (!init_status_.ok()) {
      return init_status_;
    }
    return coordinator_->Execute(ops, txn_id);
  }
  Status Execute(const std::vector<WriteOp>& ops) {
    if (!init_status_.ok()) {
      return init_status_;
    }
    return coordinator_->Execute(ops);
  }

  // Non-transactional single mutation: precondition checked and the op
  // applied under the shard's internal latch, with no key locks and hence no
  // aborts - writers serialize instead. This is the relaxed-consistency write
  // path of the Tectonic re-implementation (paper §6.1) and the CFS-style
  // "single-shard atomic primitive" used by the InfiniFS baseline. All ops
  // must route to one shard; violations return kInvalidArgument.
  Status ApplyAtomicSingleShard(const std::vector<WriteOp>& ops);
  Status ApplySingle(const WriteOp& op) { return ApplyAtomicSingleShard({op}); }

  // Builds the attribute-update op for directory `dir_id`. In delta mode the
  // result is a conflict-free insert of (dir_id, "/_ATTR", txn_id); otherwise
  // an in-place read-modify-write on the primary row (lock-conflicting).
  WriteOp MakeAttrUpdate(InodeId dir_id, int64_t count_delta, bool bump_mtime, uint64_t txn_id);

  // True if the directory currently routes attribute updates through deltas.
  bool DeltaModeActive(InodeId dir_id) const;

  // --- bulk loading (no RPC, no locks; only valid before serving) ------------

  void LoadPut(const MetaKey& key, const MetaValue& value);
  // Direct child-count adjustment used while bulk-populating a namespace.
  void LoadAdjustChildCount(InodeId dir_id, int64_t delta);
  // Direct read with no RPC or latency charge (bulk-load resolution, tests).
  std::optional<MetaValue> LocalGet(const MetaKey& key) {
    return shards_->Route(key.pid)->Get(key);
  }

  // --- compaction -------------------------------------------------------------

  // Folds every pending delta for `dir_id` into its primary row. The
  // background compactor calls this; tests may call it directly.
  void CompactDirectory(InodeId dir_id);
  // Drains the entire pending set once (deterministic tests).
  void CompactAllPending();
  size_t PendingCompactions() const;
  // True if the compactor still tracks `dir_id` (fsck's orphaned-delta probe).
  bool PendingCompactionContains(InodeId dir_id) const;

  // --- crash recovery ---------------------------------------------------------

  TxnCoordinator& coordinator() { return *coordinator_; }

  // Coordinator cold start: volatile state is dropped (SimulateRestart) and
  // the durable intent table replayed (Recover). After this returns there are
  // zero in-doubt transactions and no stranded shard locks.
  TxnRecoveryReport RecoverCoordinator();

  // Compactor cold start: the pending-compaction set is process-local and
  // dies with a crash, stranding fully-written delta rows. Re-scans every
  // shard for delta keys and re-pends their directories; returns how many
  // directories were re-queued.
  size_t RecoverCompactionBacklog();

  // Arms a one-shot crash in the next compaction pass that has pending work:
  // the batch is dropped between dequeue and fold, exactly the window where a
  // real compactor crash orphans delta rows.
  void SimulateCompactionCrashOnce() {
    compaction_crash_once_.store(true, std::memory_order_release);
  }

  // --- placement (heat-aware shard rebalancing, src/placement/) ---------------

  PlacementSupervisor& placement() { return *placement_; }
  // Starts / stops the autonomous rebalancing loop at runtime (drill API).
  void EnableAutoPlacement() { placement_->Start(); }
  void DisableAutoPlacement() { placement_->Stop(); }

  // --- introspection -----------------------------------------------------------

  ShardMap* shard_map() { return shards_.get(); }
  const TxnStats& txn_stats() const { return coordinator_->stats(); }
  const ContentionTracker& contention() const { return contention_; }
  Network* network() const { return network_; }
  size_t TotalRows() const { return shards_->TotalRows(); }

 private:
  void CompactorLoop();

  Network* network_;
  TafDbOptions options_;
  Status init_status_;
  std::vector<ServerExecutor*> servers_;
  std::unique_ptr<ShardMap> shards_;
  std::unique_ptr<TxnCoordinator> coordinator_;
  std::unique_ptr<PlacementSupervisor> placement_;
  ContentionTracker contention_;

  mutable std::mutex pending_mu_;
  std::unordered_set<InodeId> pending_compaction_;
  std::atomic<bool> compaction_crash_once_{false};

  std::thread compactor_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
};

}  // namespace mantle

#endif  // SRC_TAFDB_TAFDB_H_
