#include "src/txn/coordinator.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <memory>

#include "src/common/deadline.h"
#include "src/obs/metrics.h"

namespace mantle {

namespace {

void NoteTxnCommit() {
  static obs::Counter* commits = obs::Metrics::Instance().GetCounter("tafdb.txn.commit");
  commits->Add();
}

void NoteTxnAbort() {
  static obs::Counter* aborts = obs::Metrics::Instance().GetCounter("tafdb.txn.abort");
  aborts->Add();
}

}  // namespace

TxnCoordinator::TxnCoordinator(ShardMap* shards, Network* network)
    : shards_(shards), network_(network) {}

std::vector<TxnCoordinator::Participant> TxnCoordinator::GroupByShard(
    const std::vector<WriteOp>& ops) const {
  std::map<uint32_t, std::vector<WriteOp>> grouped;
  for (const auto& op : ops) {
    grouped[shards_->ShardIndex(op.key.pid)].push_back(op);
  }
  std::vector<Participant> participants;
  participants.reserve(grouped.size());
  for (auto& [index, shard_ops] : grouped) {
    // Deterministic key order within a shard keeps local locking canonical.
    std::sort(shard_ops.begin(), shard_ops.end(),
              [](const WriteOp& a, const WriteOp& b) { return a.key < b.key; });
    participants.push_back({index, std::move(shard_ops)});
  }
  return participants;
}

bool TxnCoordinator::IsDoomed(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(doomed_mu_);
  return doomed_.count(txn_id) > 0;
}

void TxnCoordinator::Doom(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(doomed_mu_);
    doomed_.insert(txn_id);
  }
  stats_.doomed.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* doomed = obs::Metrics::Instance().GetCounter("tafdb.txn.doomed");
  doomed->Add();
}

Status TxnCoordinator::PrepareOnShard(const Participant& participant, uint64_t txn_id) {
  if (IsDoomed(txn_id)) {
    return Status::Aborted("txn abandoned by coordinator");
  }
  Shard* shard = shards_->ShardAt(participant.shard_index);
  std::vector<const MetaKey*> locked;
  locked.reserve(participant.ops.size());
  for (const auto& op : participant.ops) {
    if (!shard->TryLockKey(op.key, txn_id)) {
      for (const MetaKey* key : locked) {
        shard->UnlockKey(*key, txn_id);
      }
      return Status::Aborted("lock conflict on " + op.key.ToString());
    }
    locked.push_back(&op.key);
  }
  for (const auto& op : participant.ops) {
    Status status = shard->CheckPrecondition(op);
    if (!status.ok()) {
      for (const MetaKey* key : locked) {
        shard->UnlockKey(*key, txn_id);
      }
      return status;
    }
  }
  // Re-check after taking locks: if the coordinator abandoned this txn while
  // the prepare sat in a (paused / delayed) server queue, its cleanup abort
  // may already have run and found nothing to unlock. Releasing here instead
  // of returning ok closes that lock-leak race.
  if (IsDoomed(txn_id)) {
    for (const MetaKey* key : locked) {
      shard->UnlockKey(*key, txn_id);
    }
    return Status::Aborted("txn abandoned by coordinator");
  }
  return Status::Ok();
}

void TxnCoordinator::CommitOnShard(const Participant& participant, uint64_t txn_id) {
  Shard* shard = shards_->ShardAt(participant.shard_index);
  shard->ApplyOps(participant.ops);
  for (const auto& op : participant.ops) {
    shard->UnlockKey(op.key, txn_id);
  }
}

void TxnCoordinator::AbortOnShard(const Participant& participant, uint64_t txn_id) {
  Shard* shard = shards_->ShardAt(participant.shard_index);
  for (const auto& op : participant.ops) {
    shard->UnlockKey(op.key, txn_id);
  }
}

void TxnCoordinator::NotifyAbort(const std::vector<WriteOp>& ops) {
  if (!on_abort_) {
    return;
  }
  // Report contention against attribute rows only - that is where
  // shared-directory conflicts land and where delta records help.
  InodeId last = 0;
  for (const auto& op : ops) {
    if (op.key.name == kAttrName && op.key.pid != last) {
      on_abort_(op.key.pid);
      last = op.key.pid;
    }
  }
}

Status TxnCoordinator::Execute(const std::vector<WriteOp>& ops, uint64_t txn_id) {
  if (ops.empty()) {
    return Status::Ok();
  }
  stats_.started.fetch_add(1, std::memory_order_relaxed);
  // Participants are shared-owned: a deadline-abandoned handler may run after
  // Execute returned, so it must never borrow this stack frame.
  std::vector<std::shared_ptr<const Participant>> participants;
  for (auto& participant : GroupByShard(ops)) {
    participants.push_back(std::make_shared<const Participant>(std::move(participant)));
  }

  if (participants.size() == 1) {
    // Single-shard fast path: lock, validate, apply and release in one RPC.
    // A timeout here is ambiguous (the handler may still commit once a paused
    // server resumes) - exactly the semantics of a lost ack in a real system;
    // preconditions make blind client retries safe.
    stats_.single_shard.fetch_add(1, std::memory_order_relaxed);
    auto participant = participants.front();
    ServerExecutor* server = shards_->ServerAt(participant->shard_index);
    Status status = server->Call(
        [this, participant, txn_id]() {
          network_->ChargeDbRowAccess(static_cast<int64_t>(participant->ops.size()));
          Status prepared = PrepareOnShard(*participant, txn_id);
          if (!prepared.ok()) {
            return prepared;
          }
          CommitOnShard(*participant, txn_id);
          return Status::Ok();
        },
        [](const Status& fault) { return fault; });
    if (!status.ok()) {
      stats_.aborted.fetch_add(1, std::memory_order_relaxed);
      NoteTxnAbort();
      if (status.IsAborted()) {
        NotifyAbort(ops);
      }
      return status;
    }
    stats_.committed.fetch_add(1, std::memory_order_relaxed);
    NoteTxnCommit();
    return Status::Ok();
  }

  // Two-phase commit. Prepare round: parallel try-lock + validate. Preflight
  // faults (drop/partition/crash) resolve the future immediately with the
  // fault status; a submitted-but-unresponsive prepare is bounded below.
  stats_.multi_shard.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::future<Status>> prepares;
  prepares.reserve(participants.size());
  for (const auto& participant : participants) {
    ServerExecutor* server = shards_->ServerAt(participant->shard_index);
    prepares.push_back(server->CallAsync(
        [this, participant, txn_id]() {
          network_->ChargeDbRowAccess(static_cast<int64_t>(participant->ops.size()));
          return PrepareOnShard(*participant, txn_id);
        },
        [](const Status& fault) { return fault; }));
  }
  network_->InjectDelay();

  // One absolute deadline for the whole gather: per-future waits share it, so
  // several slow shards cannot stack a full budget each.
  const int64_t prepare_deadline =
      MonotonicNanos() + DeadlineBudget::Clamp(network_->options().default_rpc_deadline_nanos);
  Status failure = Status::Ok();
  std::vector<bool> prepared(participants.size(), false);
  std::vector<bool> abandoned(participants.size(), false);
  for (size_t i = 0; i < prepares.size(); ++i) {
    const int64_t remaining = prepare_deadline - MonotonicNanos();
    if (remaining <= 0 ||
        prepares[i].wait_for(std::chrono::nanoseconds(remaining)) !=
            std::future_status::ready) {
      // Outcome unknown: the prepare is queued on a slow or paused server and
      // may still take locks later. Doom the txn (tombstone checked by
      // PrepareOnShard) and send a cleanup abort below. Tombstones are kept
      // for the process lifetime; a production coordinator would persist the
      // decision in a txn table and GC it.
      if (!IsDoomed(txn_id)) {
        Doom(txn_id);
      }
      abandoned[i] = true;
      network_->NoteCallerTimeout();
      if (failure.ok()) {
        failure = Status::Timeout("2pc prepare timed out on shard " +
                                  std::to_string(participants[i]->shard_index));
      }
      continue;
    }
    Status status = prepares[i].get();
    prepared[i] = status.ok();
    if (!status.ok() && failure.ok()) {
      failure = status;
    }
  }

  // Commit or abort round. Phase-two decisions ride the delivery-reliable
  // CallAsync: a real coordinator retries them until every participant acks,
  // so the fault plan may delay but never lose them.
  std::vector<std::future<void>> finishes;
  finishes.reserve(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    auto participant = participants[i];
    ServerExecutor* server = shards_->ServerAt(participant->shard_index);
    if (failure.ok()) {
      finishes.push_back(server->CallAsync(
          [this, participant, txn_id]() { CommitOnShard(*participant, txn_id); }));
    } else if (prepared[i] || abandoned[i]) {
      // Abandoned prepares get an abort too: if the late prepare locked keys
      // before noticing the tombstone it unlocks them itself; if it ran first
      // and returned ok into the abandoned future, this abort releases them.
      finishes.push_back(server->CallAsync(
          [this, participant, txn_id]() { AbortOnShard(*participant, txn_id); }));
    }
  }
  network_->InjectDelay();
  const int64_t finish_deadline =
      MonotonicNanos() + DeadlineBudget::Clamp(network_->options().default_rpc_deadline_nanos);
  bool acked = true;
  for (auto& finish : finishes) {
    const int64_t remaining = finish_deadline - MonotonicNanos();
    if (remaining <= 0 ||
        finish.wait_for(std::chrono::nanoseconds(remaining)) != std::future_status::ready) {
      acked = false;
      network_->NoteCallerTimeout();
    }
  }

  if (!failure.ok()) {
    stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    NoteTxnAbort();
    if (failure.IsAborted()) {
      NotifyAbort(ops);
    }
    return failure;
  }
  if (!acked) {
    // Commit decided and queued everywhere, but not every ack arrived within
    // budget (e.g. a paused shard). Surface the ambiguity instead of hanging;
    // the mutation lands when the shard resumes.
    return Status::Timeout("2pc commit decided but not fully acknowledged");
  }
  stats_.committed.fetch_add(1, std::memory_order_relaxed);
  NoteTxnCommit();
  return Status::Ok();
}

}  // namespace mantle
