#include "src/txn/coordinator.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <unordered_set>

#include "src/common/deadline.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mantle {

namespace {

void NoteTxnCommit() {
  static obs::Counter* commits = obs::Metrics::Instance().GetCounter("tafdb.txn.commit");
  commits->Add();
}

void NoteTxnAbort() {
  static obs::Counter* aborts = obs::Metrics::Instance().GetCounter("tafdb.txn.abort");
  aborts->Add();
}

}  // namespace

TxnCoordinator::TxnCoordinator(ShardMap* shards, Network* network)
    : shards_(shards), network_(network) {}

std::vector<TxnCoordinator::Participant> TxnCoordinator::GroupByShard(
    const std::vector<WriteOp>& ops) const {
  std::map<uint32_t, std::vector<WriteOp>> grouped;
  for (const auto& op : ops) {
    grouped[shards_->ShardIndex(op.key.pid)].push_back(op);
  }
  std::vector<Participant> participants;
  participants.reserve(grouped.size());
  for (auto& [index, shard_ops] : grouped) {
    // Deterministic key order within a shard keeps local locking canonical.
    std::sort(shard_ops.begin(), shard_ops.end(),
              [](const WriteOp& a, const WriteOp& b) { return a.key < b.key; });
    participants.push_back({index, std::move(shard_ops)});
  }
  return participants;
}

bool TxnCoordinator::IsDoomed(uint64_t txn_id) const {
  {
    std::lock_guard<std::mutex> lock(doomed_mu_);
    if (doomed_.count(txn_id) > 0) {
      return true;
    }
  }
  // A durable abort decision dooms the txn too. This is what keeps presumed
  // abort safe across a coordinator restart: the volatile tombstone set is
  // gone, but a prepare arriving after recovery aborted the txn still finds
  // the decision in the intent table (participants in a real deployment
  // consult the txn table for suspiciously late prepares).
  return intent_log_.DecisionOf(txn_id) == TxnDecision::kAborted;
}

void TxnCoordinator::Doom(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(doomed_mu_);
    doomed_.insert(txn_id);
  }
  UpdateDoomedGauge();
  stats_.doomed.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* doomed = obs::Metrics::Instance().GetCounter("tafdb.txn.doomed");
  doomed->Add();
}

void TxnCoordinator::FinishTxn(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(doomed_mu_);
    doomed_.erase(txn_id);
  }
  UpdateDoomedGauge();
  // GC piggybacks on the last acknowledged phase-two delivery, so it charges
  // no extra RPC (a production coordinator batches these removals lazily).
  intent_log_.Remove(txn_id);
}

void TxnCoordinator::SimulateRestart() {
  {
    std::lock_guard<std::mutex> lock(doomed_mu_);
    doomed_.clear();
  }
  UpdateDoomedGauge();
  crash_point_.store(CrashPoint::kNone, std::memory_order_release);
}

size_t TxnCoordinator::DoomedLive() const {
  std::lock_guard<std::mutex> lock(doomed_mu_);
  return doomed_.size();
}

void TxnCoordinator::UpdateDoomedGauge() {
  static obs::Gauge* live = obs::Metrics::Instance().GetGauge("txn.doomed.live");
  size_t size = 0;
  {
    std::lock_guard<std::mutex> lock(doomed_mu_);
    size = doomed_.size();
  }
  live->Set(static_cast<int64_t>(size));
}

bool TxnCoordinator::ConsumeCrashPoint(CrashPoint point) {
  CrashPoint expected = point;
  return crash_point_.compare_exchange_strong(expected, CrashPoint::kNone,
                                              std::memory_order_acq_rel);
}

ServerExecutor* TxnCoordinator::IntentLogServer(uint64_t txn_id) const {
  return shards_->ServerAt(static_cast<uint32_t>(txn_id % shards_->num_shards()));
}

Status TxnCoordinator::PrepareOnShard(const Participant& participant, uint64_t txn_id) {
  if (IsDoomed(txn_id)) {
    return Status::Aborted("txn abandoned by coordinator");
  }
  Shard* shard = shards_->ShardAt(participant.shard_index);
  std::vector<const MetaKey*> locked;
  locked.reserve(participant.ops.size());
  for (const auto& op : participant.ops) {
    if (!shard->TryLockKey(op.key, txn_id)) {
      for (const MetaKey* key : locked) {
        shard->UnlockKey(*key, txn_id);
      }
      return Status::Aborted("lock conflict on " + op.key.ToString());
    }
    locked.push_back(&op.key);
  }
  for (const auto& op : participant.ops) {
    Status status = shard->CheckPrecondition(op);
    if (!status.ok()) {
      for (const MetaKey* key : locked) {
        shard->UnlockKey(*key, txn_id);
      }
      return status;
    }
  }
  // Re-check after taking locks: if the coordinator abandoned this txn while
  // the prepare sat in a (paused / delayed) server queue, its cleanup abort
  // may already have run and found nothing to unlock. Releasing here instead
  // of returning ok closes that lock-leak race.
  if (IsDoomed(txn_id)) {
    for (const MetaKey* key : locked) {
      shard->UnlockKey(*key, txn_id);
    }
    return Status::Aborted("txn abandoned by coordinator");
  }
  return Status::Ok();
}

void TxnCoordinator::CommitOnShard(const Participant& participant, uint64_t txn_id) {
  Shard* shard = shards_->ShardAt(participant.shard_index);
  shard->ApplyOps(participant.ops);
  for (const auto& op : participant.ops) {
    shard->UnlockKey(op.key, txn_id);
  }
}

void TxnCoordinator::AbortOnShard(const Participant& participant, uint64_t txn_id) {
  Shard* shard = shards_->ShardAt(participant.shard_index);
  for (const auto& op : participant.ops) {
    shard->UnlockKey(op.key, txn_id);
  }
}

void TxnCoordinator::NotifyAbort(const std::vector<WriteOp>& ops) {
  if (!on_abort_) {
    return;
  }
  // Report contention against attribute rows only - that is where
  // shared-directory conflicts land and where delta records help.
  InodeId last = 0;
  for (const auto& op : ops) {
    if (op.key.name == kAttrName && op.key.pid != last) {
      on_abort_(op.key.pid);
      last = op.key.pid;
    }
  }
}

Status TxnCoordinator::Execute(const std::vector<WriteOp>& ops, uint64_t txn_id) {
  if (ops.empty()) {
    return Status::Ok();
  }
  stats_.started.fetch_add(1, std::memory_order_relaxed);
  // Participants are shared-owned: a deadline-abandoned handler may run after
  // Execute returned, so it must never borrow this stack frame.
  std::vector<std::shared_ptr<const Participant>> participants;
  for (auto& participant : GroupByShard(ops)) {
    participants.push_back(std::make_shared<const Participant>(std::move(participant)));
  }

  if (participants.size() == 1) {
    // Single-shard fast path: lock, validate, apply and release in one RPC.
    // A timeout here is ambiguous (the handler may still commit once a paused
    // server resumes) - exactly the semantics of a lost ack in a real system;
    // preconditions make blind client retries safe. No intent row: there is
    // no distributed decision to recover.
    stats_.single_shard.fetch_add(1, std::memory_order_relaxed);
    auto participant = participants.front();
    ServerExecutor* server = shards_->ServerAt(participant->shard_index);
    Status status = server->Call(
        [this, participant, txn_id]() {
          network_->ChargeDbRowAccess(static_cast<int64_t>(participant->ops.size()));
          Status prepared = PrepareOnShard(*participant, txn_id);
          if (!prepared.ok()) {
            return prepared;
          }
          CommitOnShard(*participant, txn_id);
          return Status::Ok();
        },
        [](const Status& fault) { return fault; });
    if (!status.ok()) {
      stats_.aborted.fetch_add(1, std::memory_order_relaxed);
      NoteTxnAbort();
      if (status.IsAborted()) {
        NotifyAbort(ops);
      }
      return status;
    }
    stats_.committed.fetch_add(1, std::memory_order_relaxed);
    NoteTxnCommit();
    return Status::Ok();
  }

  stats_.multi_shard.fetch_add(1, std::memory_order_relaxed);

  // Write-ahead intent row, durable before the first lock is taken. Routed to
  // the intent table's home server so it pays (and can suffer) a real RPC.
  {
    auto logged_ops = std::make_shared<std::vector<WriteOp>>(ops);
    Status logged = IntentLogServer(txn_id)->Call(
        [this, txn_id, logged_ops]() {
          network_->ChargeDbRowAccess(1);
          intent_log_.LogIntent(txn_id, std::move(*logged_ops));
          return Status::Ok();
        },
        [](const Status& fault) { return fault; });
    if (!logged.ok()) {
      // No locks were taken, so aborting to the caller is safe. If the write
      // actually landed (lost ack), the kInDoubt row sits in the table until
      // a recovery pass presumed-aborts and GCs it.
      stats_.aborted.fetch_add(1, std::memory_order_relaxed);
      NoteTxnAbort();
      return logged;
    }
  }

  // Every handler that can consult this txn's tombstone or intent row holds a
  // reference: the prepare fan-out (one each), every phase-two delivery (one
  // each, taken before submission), and the coordinator itself (+1, released
  // at the end of Execute). The last reference out GCs both - this is what
  // lets doomed tombstones and intent rows be reclaimed instead of living for
  // the process lifetime, without ever GCing under a handler that still needs
  // them.
  auto inflight =
      std::make_shared<std::atomic<int>>(static_cast<int>(participants.size()) + 1);
  auto release_ref = [this, txn_id, inflight]() {
    if (inflight->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      FinishTxn(txn_id);
    }
  };

  // Phase spans cannot be lexically scoped (each phase spans a fan-out loop
  // plus its gather), so bracket them with explicit Begin/End.
  obs::OpTrace* trace = obs::CurrentThreadTrace();

  // Two-phase commit. Prepare round: parallel try-lock + validate. Preflight
  // faults (drop/partition/crash) resolve the future immediately with the
  // fault status; a submitted-but-unresponsive prepare is bounded below.
  const int prepare_span = trace != nullptr ? trace->Begin("txn.prepare") : -1;
  std::vector<std::future<Status>> prepares;
  prepares.reserve(participants.size());
  for (const auto& participant : participants) {
    ServerExecutor* server = shards_->ServerAt(participant->shard_index);
    prepares.push_back(server->CallAsync(
        [this, participant, txn_id, release_ref]() {
          network_->ChargeDbRowAccess(static_cast<int64_t>(participant->ops.size()));
          Status status = PrepareOnShard(*participant, txn_id);
          release_ref();
          return status;
        },
        [release_ref](const Status& fault) {
          release_ref();
          return fault;
        }));
  }
  network_->InjectDelay();

  // One absolute deadline for the whole gather: per-future waits share it, so
  // several slow shards cannot stack a full budget each.
  const int64_t prepare_deadline =
      MonotonicNanos() + DeadlineBudget::Clamp(network_->options().default_rpc_deadline_nanos);
  Status failure = Status::Ok();
  std::vector<bool> prepared(participants.size(), false);
  std::vector<bool> abandoned(participants.size(), false);
  for (size_t i = 0; i < prepares.size(); ++i) {
    const int64_t remaining = prepare_deadline - MonotonicNanos();
    if (remaining <= 0 ||
        prepares[i].wait_for(std::chrono::nanoseconds(remaining)) !=
            std::future_status::ready) {
      // Outcome unknown: the prepare is queued on a slow or paused server and
      // may still take locks later. Doom the txn (tombstone checked by
      // PrepareOnShard) and send a cleanup abort below. The tombstone lives
      // until every handler holding a reference has run, then FinishTxn GCs
      // it together with the intent row.
      if (!IsDoomed(txn_id)) {
        Doom(txn_id);
      }
      abandoned[i] = true;
      network_->NoteCallerTimeout();
      if (failure.ok()) {
        failure = Status::Timeout("2pc prepare timed out on shard " +
                                  std::to_string(participants[i]->shard_index));
      }
      continue;
    }
    Status status = prepares[i].get();
    prepared[i] = status.ok();
    if (!status.ok() && failure.ok()) {
      failure = status;
    }
  }
  if (trace != nullptr) {
    trace->End(prepare_span);
  }

  if (failure.ok() && ConsumeCrashPoint(CrashPoint::kAfterPrepare)) {
    // Simulated process death in the in-doubt window: the coordinator's +1
    // reference is never released, so the intent row stays kInDoubt and every
    // prepared shard keeps its locks until Recover() presumed-aborts them.
    return Status::Unavailable("coordinator crashed after prepare");
  }

  // Write-ahead decision row, durable before any phase-two message. A commit
  // whose decision cannot be proven durable must not be applied: doom it and
  // fall through to the abort round instead.
  {
    const TxnDecision decision = failure.ok() ? TxnDecision::kCommitted : TxnDecision::kAborted;
    Status logged = IntentLogServer(txn_id)->Call(
        [this, txn_id, decision]() {
          network_->ChargeDbRowAccess(1);
          intent_log_.LogDecision(txn_id, decision);
          return Status::Ok();
        },
        [](const Status& fault) { return fault; });
    if (failure.ok() && !logged.ok()) {
      // Recovery stays consistent either way the ambiguity resolves: the
      // abort round below releases all locks, and a kCommitted row with no
      // locks held redelivers nothing.
      Doom(txn_id);
      failure = logged;
    }
  }

  if (failure.ok() && ConsumeCrashPoint(CrashPoint::kAfterDecisionLogged)) {
    // Simulated process death after the commit point: no phase-two message
    // goes out, all participants keep their prepare locks, and Recover() must
    // redeliver the logged commit.
    return Status::Unavailable("coordinator crashed after logging commit");
  }

  // Commit or abort round. Phase-two decisions ride the delivery-reliable
  // CallAsync: a real coordinator retries them until every participant acks,
  // so the fault plan may delay but never lose them.
  const int phase2_span = trace != nullptr ? trace->Begin("txn.phase2") : -1;
  std::vector<std::future<void>> finishes;
  finishes.reserve(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    auto participant = participants[i];
    ServerExecutor* server = shards_->ServerAt(participant->shard_index);
    if (failure.ok()) {
      inflight->fetch_add(1, std::memory_order_acq_rel);
      finishes.push_back(server->CallAsync([this, participant, txn_id, release_ref]() {
        CommitOnShard(*participant, txn_id);
        release_ref();
      }));
    } else if (prepared[i] || abandoned[i]) {
      // Abandoned prepares get an abort too: if the late prepare locked keys
      // before noticing the tombstone it unlocks them itself; if it ran first
      // and returned ok into the abandoned future, this abort releases them.
      inflight->fetch_add(1, std::memory_order_acq_rel);
      finishes.push_back(server->CallAsync([this, participant, txn_id, release_ref]() {
        AbortOnShard(*participant, txn_id);
        release_ref();
      }));
    }
  }
  network_->InjectDelay();
  const int64_t finish_deadline =
      MonotonicNanos() + DeadlineBudget::Clamp(network_->options().default_rpc_deadline_nanos);
  bool acked = true;
  for (auto& finish : finishes) {
    const int64_t remaining = finish_deadline - MonotonicNanos();
    if (remaining <= 0 ||
        finish.wait_for(std::chrono::nanoseconds(remaining)) != std::future_status::ready) {
      acked = false;
      network_->NoteCallerTimeout();
    }
  }
  if (trace != nullptr) {
    trace->End(phase2_span);
  }
  // Coordinator's own reference; once every queued handler has drained the
  // tombstone and intent row are GC'd.
  release_ref();

  if (!failure.ok()) {
    stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    NoteTxnAbort();
    if (failure.IsAborted()) {
      NotifyAbort(ops);
    }
    return failure;
  }
  if (!acked) {
    // Commit decided and queued everywhere, but not every ack arrived within
    // budget (e.g. a paused shard). Surface the ambiguity instead of hanging;
    // the mutation lands when the shard resumes.
    return Status::Timeout("2pc commit decided but not fully acknowledged");
  }
  stats_.committed.fetch_add(1, std::memory_order_relaxed);
  NoteTxnCommit();
  return Status::Ok();
}

TxnRecoveryReport TxnCoordinator::Recover() {
  TxnRecoveryReport report;

  // Releases whatever of the txn's locks this participant still holds;
  // returns how many. Handlers own their captures (deadline abandonment).
  auto release_locks = [this](std::shared_ptr<const Participant> participant,
                              uint64_t txn_id) -> uint64_t {
    ServerExecutor* server = shards_->ServerAt(participant->shard_index);
    return server->Call(
        [this, participant, txn_id]() -> uint64_t {
          Shard* shard = shards_->ShardAt(participant->shard_index);
          network_->ChargeDbRowAccess(static_cast<int64_t>(participant->ops.size()));
          uint64_t released = 0;
          for (const auto& op : participant->ops) {
            if (shard->LockHolder(op.key) == txn_id) {
              shard->UnlockKey(op.key, txn_id);
              ++released;
            }
          }
          return released;
        },
        [](const Status&) -> uint64_t { return 0; });
  };

  // Redelivers a logged commit if this participant still holds the txn's
  // locks (it prepared but never heard the decision). A participant holding
  // none already applied the commit - or the txn in fact aborted after an
  // ambiguous decision-write failure, in which case there is nothing to
  // apply and doing nothing is the consistent choice.
  auto redeliver_commit = [this](std::shared_ptr<const Participant> participant,
                                 uint64_t txn_id) -> uint64_t {
    ServerExecutor* server = shards_->ServerAt(participant->shard_index);
    return server->Call(
        [this, participant, txn_id]() -> uint64_t {
          Shard* shard = shards_->ShardAt(participant->shard_index);
          network_->ChargeDbRowAccess(static_cast<int64_t>(participant->ops.size()));
          bool holds = false;
          for (const auto& op : participant->ops) {
            if (shard->LockHolder(op.key) == txn_id) {
              holds = true;
              break;
            }
          }
          if (!holds) {
            return 0;
          }
          shard->ApplyOps(participant->ops);
          uint64_t released = 0;
          for (const auto& op : participant->ops) {
            shard->UnlockKey(op.key, txn_id);
            ++released;
          }
          return released;
        },
        [](const Status&) -> uint64_t { return 0; });
  };

  std::vector<uint64_t> pass_tombstones;
  std::unordered_set<ServerExecutor*> touched_servers;
  for (const auto& row : intent_log_.Scan()) {
    ++report.scanned;
    std::vector<std::shared_ptr<const Participant>> participants;
    for (auto& participant : GroupByShard(row.ops)) {
      touched_servers.insert(shards_->ServerAt(participant.shard_index));
      participants.push_back(std::make_shared<const Participant>(std::move(participant)));
    }
    switch (row.decision) {
      case TxnDecision::kInDoubt: {
        // Presumed abort. Tombstone first so a prepare still queued from
        // before the crash self-aborts instead of re-locking behind us; then
        // make the abort durable in case this pass itself dies mid-cleanup.
        Doom(row.txn_id);
        pass_tombstones.push_back(row.txn_id);
        IntentLogServer(row.txn_id)
            ->Call(
                [this, txn_id = row.txn_id]() {
                  network_->ChargeDbRowAccess(1);
                  intent_log_.LogDecision(txn_id, TxnDecision::kAborted);
                  return Status::Ok();
                },
                [](const Status& fault) { return fault; });
        for (const auto& participant : participants) {
          report.locks_released += release_locks(participant, row.txn_id);
        }
        ++report.in_doubt_aborted;
        break;
      }
      case TxnDecision::kCommitted: {
        uint64_t released = 0;
        for (const auto& participant : participants) {
          released += redeliver_commit(participant, row.txn_id);
        }
        if (released > 0) {
          ++report.commits_redelivered;
          report.locks_released += released;
        }
        break;
      }
      case TxnDecision::kAborted: {
        Doom(row.txn_id);
        pass_tombstones.push_back(row.txn_id);
        for (const auto& participant : participants) {
          report.locks_released += release_locks(participant, row.txn_id);
        }
        break;
      }
    }
    if (intent_log_.Remove(row.txn_id)) {
      ++report.rows_gced;
    }
  }

  // Drain the involved servers so any prepare queued from before the crash
  // runs now - self-aborting against this pass's tombstones - then drop the
  // tombstones: nothing that could consult them is left in flight. Recovery
  // is a cold-start pass; it assumes the fabric is unpaused.
  for (ServerExecutor* server : touched_servers) {
    server->Drain();
  }
  {
    std::lock_guard<std::mutex> lock(doomed_mu_);
    for (uint64_t txn_id : pass_tombstones) {
      doomed_.erase(txn_id);
    }
  }
  UpdateDoomedGauge();

  static obs::Counter* scanned = obs::Metrics::Instance().GetCounter("txn.recovery.scanned");
  static obs::Counter* in_doubt =
      obs::Metrics::Instance().GetCounter("txn.recovery.in_doubt_aborted");
  static obs::Counter* redelivered =
      obs::Metrics::Instance().GetCounter("txn.recovery.commits_redelivered");
  static obs::Counter* released =
      obs::Metrics::Instance().GetCounter("txn.recovery.locks_released");
  static obs::Counter* gced = obs::Metrics::Instance().GetCounter("txn.recovery.rows_gced");
  scanned->Add(report.scanned);
  in_doubt->Add(report.in_doubt_aborted);
  redelivered->Add(report.commits_redelivered);
  released->Add(report.locks_released);
  gced->Add(report.rows_gced);
  return report;
}

}  // namespace mantle
