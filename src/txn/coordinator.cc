#include "src/txn/coordinator.h"

#include <algorithm>
#include <future>
#include <map>

namespace mantle {

TxnCoordinator::TxnCoordinator(ShardMap* shards, Network* network)
    : shards_(shards), network_(network) {}

std::vector<TxnCoordinator::Participant> TxnCoordinator::GroupByShard(
    const std::vector<WriteOp>& ops) const {
  std::map<uint32_t, std::vector<WriteOp>> grouped;
  for (const auto& op : ops) {
    grouped[shards_->ShardIndex(op.key.pid)].push_back(op);
  }
  std::vector<Participant> participants;
  participants.reserve(grouped.size());
  for (auto& [index, shard_ops] : grouped) {
    // Deterministic key order within a shard keeps local locking canonical.
    std::sort(shard_ops.begin(), shard_ops.end(),
              [](const WriteOp& a, const WriteOp& b) { return a.key < b.key; });
    participants.push_back({index, std::move(shard_ops)});
  }
  return participants;
}

Status TxnCoordinator::PrepareOnShard(const Participant& participant, uint64_t txn_id) {
  Shard* shard = shards_->ShardAt(participant.shard_index);
  std::vector<const MetaKey*> locked;
  locked.reserve(participant.ops.size());
  for (const auto& op : participant.ops) {
    if (!shard->TryLockKey(op.key, txn_id)) {
      for (const MetaKey* key : locked) {
        shard->UnlockKey(*key, txn_id);
      }
      return Status::Aborted("lock conflict on " + op.key.ToString());
    }
    locked.push_back(&op.key);
  }
  for (const auto& op : participant.ops) {
    Status status = shard->CheckPrecondition(op);
    if (!status.ok()) {
      for (const MetaKey* key : locked) {
        shard->UnlockKey(*key, txn_id);
      }
      return status;
    }
  }
  return Status::Ok();
}

void TxnCoordinator::CommitOnShard(const Participant& participant, uint64_t txn_id) {
  Shard* shard = shards_->ShardAt(participant.shard_index);
  shard->ApplyOps(participant.ops);
  for (const auto& op : participant.ops) {
    shard->UnlockKey(op.key, txn_id);
  }
}

void TxnCoordinator::AbortOnShard(const Participant& participant, uint64_t txn_id) {
  Shard* shard = shards_->ShardAt(participant.shard_index);
  for (const auto& op : participant.ops) {
    shard->UnlockKey(op.key, txn_id);
  }
}

void TxnCoordinator::NotifyAbort(const std::vector<WriteOp>& ops) {
  if (!on_abort_) {
    return;
  }
  // Report contention against attribute rows only - that is where
  // shared-directory conflicts land and where delta records help.
  InodeId last = 0;
  for (const auto& op : ops) {
    if (op.key.name == kAttrName && op.key.pid != last) {
      on_abort_(op.key.pid);
      last = op.key.pid;
    }
  }
}

Status TxnCoordinator::Execute(const std::vector<WriteOp>& ops, uint64_t txn_id) {
  if (ops.empty()) {
    return Status::Ok();
  }
  stats_.started.fetch_add(1, std::memory_order_relaxed);
  auto participants = GroupByShard(ops);

  if (participants.size() == 1) {
    // Single-shard fast path: lock, validate, apply and release in one RPC.
    stats_.single_shard.fetch_add(1, std::memory_order_relaxed);
    const Participant& participant = participants.front();
    ServerExecutor* server = shards_->ServerAt(participant.shard_index);
    Status status = server->Call([this, &participant, txn_id]() {
      network_->ChargeDbRowAccess(static_cast<int64_t>(participant.ops.size()));
      Status prepared = PrepareOnShard(participant, txn_id);
      if (!prepared.ok()) {
        return prepared;
      }
      CommitOnShard(participant, txn_id);
      return Status::Ok();
    });
    if (!status.ok()) {
      stats_.aborted.fetch_add(1, std::memory_order_relaxed);
      if (status.IsAborted()) {
        NotifyAbort(ops);
      }
      return status;
    }
    stats_.committed.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  // Two-phase commit. Prepare round: parallel try-lock + validate.
  stats_.multi_shard.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::future<Status>> prepares;
  prepares.reserve(participants.size());
  for (const auto& participant : participants) {
    ServerExecutor* server = shards_->ServerAt(participant.shard_index);
    prepares.push_back(server->CallAsync([this, &participant, txn_id]() {
      network_->ChargeDbRowAccess(static_cast<int64_t>(participant.ops.size()));
      return PrepareOnShard(participant, txn_id);
    }));
  }
  network_->InjectDelay();

  Status failure = Status::Ok();
  std::vector<bool> prepared(participants.size(), false);
  for (size_t i = 0; i < prepares.size(); ++i) {
    Status status = prepares[i].get();
    prepared[i] = status.ok();
    if (!status.ok() && failure.ok()) {
      failure = status;
    }
  }

  // Commit or abort round, also parallel.
  std::vector<std::future<void>> finishes;
  finishes.reserve(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    const Participant& participant = participants[i];
    ServerExecutor* server = shards_->ServerAt(participant.shard_index);
    if (failure.ok()) {
      finishes.push_back(
          server->CallAsync([this, &participant, txn_id]() { CommitOnShard(participant, txn_id); }));
    } else if (prepared[i]) {
      finishes.push_back(
          server->CallAsync([this, &participant, txn_id]() { AbortOnShard(participant, txn_id); }));
    }
  }
  network_->InjectDelay();
  for (auto& finish : finishes) {
    finish.get();
  }

  if (!failure.ok()) {
    stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    if (failure.IsAborted()) {
      NotifyAbort(ops);
    }
    return failure;
  }
  stats_.committed.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace mantle
