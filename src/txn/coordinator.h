// Distributed transaction coordinator for the MetaTable.
//
// Writes grouped on one shard commit through a single-RPC fast path; writes
// spanning shards run two-phase commit: a parallel prepare round (try-lock
// every key, validate preconditions) and a parallel commit/abort round. Lock
// acquisition never blocks - any conflict aborts the whole transaction, which
// the proxy retries with randomized backoff. This is the abort/retry behaviour
// whose collapse under shared-directory contention motivates Mantle's delta
// records (paper §3.2, §5.2.1).

#ifndef SRC_TXN_COORDINATOR_H_
#define SRC_TXN_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/txn/shard_map.h"

namespace mantle {

struct TxnStats {
  std::atomic<uint64_t> started{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> single_shard{0};
  std::atomic<uint64_t> multi_shard{0};
  // Transactions abandoned mid-prepare (unresponsive participant); their
  // tombstones make any late prepare self-abort instead of leaking locks.
  std::atomic<uint64_t> doomed{0};
};

class TxnCoordinator {
 public:
  // `on_abort(pid)` fires once per aborted transaction per touched directory
  // attribute row; TafDB's contention detector subscribes to it.
  using AbortListener = std::function<void(InodeId pid)>;

  TxnCoordinator(ShardMap* shards, Network* network);

  // Allocates a transaction id; also used as the delta-record timestamp.
  uint64_t NextTxnId() { return next_txn_id_.fetch_add(1, std::memory_order_relaxed) + 1; }

  // Runs the transaction. On conflict returns kAborted (caller retries).
  // Precondition failures surface as their own codes (kAlreadyExists etc.).
  Status Execute(const std::vector<WriteOp>& ops, uint64_t txn_id);
  Status Execute(const std::vector<WriteOp>& ops) { return Execute(ops, NextTxnId()); }

  void set_abort_listener(AbortListener listener) { on_abort_ = std::move(listener); }

  const TxnStats& stats() const { return stats_; }

 private:
  struct Participant {
    uint32_t shard_index;
    std::vector<WriteOp> ops;
  };

  std::vector<Participant> GroupByShard(const std::vector<WriteOp>& ops) const;
  // Runs lock+validate on one shard; on failure unlocks what it took. Checks
  // the doomed-txn tombstones before and after locking so a prepare that
  // outlived its coordinator's patience can never leak locks.
  Status PrepareOnShard(const Participant& participant, uint64_t txn_id);
  void CommitOnShard(const Participant& participant, uint64_t txn_id);
  void AbortOnShard(const Participant& participant, uint64_t txn_id);
  void NotifyAbort(const std::vector<WriteOp>& ops);
  bool IsDoomed(uint64_t txn_id) const;
  void Doom(uint64_t txn_id);

  ShardMap* shards_;
  Network* network_;
  std::atomic<uint64_t> next_txn_id_{0};
  TxnStats stats_;
  AbortListener on_abort_;
  mutable std::mutex doomed_mu_;
  std::unordered_set<uint64_t> doomed_;
};

}  // namespace mantle

#endif  // SRC_TXN_COORDINATOR_H_
