// Distributed transaction coordinator for the MetaTable.
//
// Writes grouped on one shard commit through a single-RPC fast path; writes
// spanning shards run two-phase commit: a parallel prepare round (try-lock
// every key, validate preconditions) and a parallel commit/abort round. Lock
// acquisition never blocks - any conflict aborts the whole transaction, which
// the proxy retries with randomized backoff. This is the abort/retry behaviour
// whose collapse under shared-directory contention motivates Mantle's delta
// records (paper §3.2, §5.2.1).
//
// Multi-shard transactions are write-ahead logged in a durable intent table
// (src/txn/intent_log.h): an intent row before phase one, the decision before
// phase two, garbage-collected once every phase-two delivery has been
// acknowledged. A coordinator crash at any point is therefore recoverable:
// Recover() resolves in-doubt rows by presumed abort, redelivers logged
// commits to participants still holding their prepare locks, and re-releases
// locks for logged aborts.

#ifndef SRC_TXN_COORDINATOR_H_
#define SRC_TXN_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/txn/intent_log.h"
#include "src/txn/shard_map.h"

namespace mantle {

struct TxnStats {
  std::atomic<uint64_t> started{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> single_shard{0};
  std::atomic<uint64_t> multi_shard{0};
  // Transactions abandoned mid-prepare (unresponsive participant); their
  // tombstones make any late prepare self-abort instead of leaking locks.
  std::atomic<uint64_t> doomed{0};
};

// What TxnCoordinator::Recover() found and fixed. Field meanings:
//   scanned             intent rows examined
//   in_doubt_aborted    kInDoubt rows resolved by presumed abort
//   commits_redelivered kCommitted rows whose participants still held prepare
//                       locks (decision never arrived) and got the commit
//   locks_released      shard key locks freed across all resolutions
//   rows_gced           intent rows removed after resolution
struct TxnRecoveryReport {
  uint64_t scanned = 0;
  uint64_t in_doubt_aborted = 0;
  uint64_t commits_redelivered = 0;
  uint64_t locks_released = 0;
  uint64_t rows_gced = 0;
};

class TxnCoordinator {
 public:
  // `on_abort(pid)` fires once per aborted transaction per touched directory
  // attribute row; TafDB's contention detector subscribes to it.
  using AbortListener = std::function<void(InodeId pid)>;

  // Deterministic kill switches for crash-recovery tests: the next multi-shard
  // transaction that reaches the armed point returns early as if the
  // coordinator process died there - intent row, tombstone and participant
  // locks are all left stranded for Recover() to clean up.
  enum class CrashPoint : uint8_t {
    kNone,
    // After a unanimous prepare round, before the decision is logged: the
    // classic in-doubt window, resolved by presumed abort.
    kAfterPrepare,
    // After the commit decision is durably logged, before any phase-two
    // message is sent: recovery must redeliver the commit.
    kAfterDecisionLogged,
  };

  TxnCoordinator(ShardMap* shards, Network* network);

  // Allocates a transaction id; also used as the delta-record timestamp.
  uint64_t NextTxnId() { return next_txn_id_.fetch_add(1, std::memory_order_relaxed) + 1; }

  // Runs the transaction. On conflict returns kAborted (caller retries).
  // Precondition failures surface as their own codes (kAlreadyExists etc.).
  Status Execute(const std::vector<WriteOp>& ops, uint64_t txn_id);
  Status Execute(const std::vector<WriteOp>& ops) { return Execute(ops, NextTxnId()); }

  // --- crash recovery -------------------------------------------------------

  void SetCrashPoint(CrashPoint point) { crash_point_.store(point, std::memory_order_release); }

  // Models a coordinator process restart: volatile state (doomed-txn
  // tombstones, armed crash point) is lost; the durable intent table and the
  // shards survive. Callers then run Recover() as the cold-start pass.
  void SimulateRestart();

  // Cold-start recovery: scans the intent table and resolves every row.
  //   kInDoubt   -> presumed abort: doom the txn (late prepares self-abort),
  //                 log the abort decision, release participant locks, GC.
  //   kCommitted -> redeliver the commit to any participant still holding the
  //                 txn's locks (it prepared but never heard the decision);
  //                 participants without locks already applied it. GC.
  //   kAborted   -> re-release locks (idempotent), GC.
  TxnRecoveryReport Recover();

  const TxnIntentLog& intent_log() const { return intent_log_; }
  // Live doomed-txn tombstones (also exported as the txn.doomed.live gauge).
  size_t DoomedLive() const;

  void set_abort_listener(AbortListener listener) { on_abort_ = std::move(listener); }

  const TxnStats& stats() const { return stats_; }

 private:
  struct Participant {
    uint32_t shard_index;
    std::vector<WriteOp> ops;
  };

  std::vector<Participant> GroupByShard(const std::vector<WriteOp>& ops) const;
  // Runs lock+validate on one shard; on failure unlocks what it took. Checks
  // the doomed-txn tombstones before and after locking so a prepare that
  // outlived its coordinator's patience can never leak locks.
  Status PrepareOnShard(const Participant& participant, uint64_t txn_id);
  void CommitOnShard(const Participant& participant, uint64_t txn_id);
  void AbortOnShard(const Participant& participant, uint64_t txn_id);
  void NotifyAbort(const std::vector<WriteOp>& ops);
  bool IsDoomed(uint64_t txn_id) const;
  void Doom(uint64_t txn_id);
  // Terminal GC once every handler that could consult the txn's tombstone or
  // intent row has run: erases the tombstone and the intent row.
  void FinishTxn(uint64_t txn_id);
  // Consumes the armed crash point if it matches (one-shot).
  bool ConsumeCrashPoint(CrashPoint point);
  // The intent table's home server for a txn (rows are hash-placed like any
  // other TafDB row, so log writes pay - and can suffer - real RPCs).
  ServerExecutor* IntentLogServer(uint64_t txn_id) const;
  void UpdateDoomedGauge();

  ShardMap* shards_;
  Network* network_;
  std::atomic<uint64_t> next_txn_id_{0};
  TxnStats stats_;
  AbortListener on_abort_;
  mutable std::mutex doomed_mu_;
  std::unordered_set<uint64_t> doomed_;
  // Durable: survives SimulateRestart(), as the backing TafDB table would.
  TxnIntentLog intent_log_;
  std::atomic<CrashPoint> crash_point_{CrashPoint::kNone};
};

}  // namespace mantle

#endif  // SRC_TXN_COORDINATOR_H_
