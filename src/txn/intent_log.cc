#include "src/txn/intent_log.h"

namespace mantle {

void TxnIntentLog::LogIntent(uint64_t txn_id, std::vector<WriteOp> ops) {
  std::lock_guard<std::mutex> lock(mu_);
  TxnIntentRecord& row = rows_[txn_id];
  row.txn_id = txn_id;
  row.decision = TxnDecision::kInDoubt;
  row.ops = std::move(ops);
}

void TxnIntentLog::LogDecision(uint64_t txn_id, TxnDecision decision) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(txn_id);
  if (it != rows_.end()) {
    it->second.decision = decision;
  }
}

std::optional<TxnDecision> TxnIntentLog::DecisionOf(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(txn_id);
  if (it == rows_.end()) {
    return std::nullopt;
  }
  return it->second.decision;
}

bool TxnIntentLog::Remove(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.erase(txn_id) > 0;
}

std::vector<TxnIntentRecord> TxnIntentLog::Scan() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnIntentRecord> out;
  out.reserve(rows_.size());
  for (const auto& [id, row] : rows_) {
    out.push_back(row);
  }
  return out;
}

size_t TxnIntentLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

}  // namespace mantle
