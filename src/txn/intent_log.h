// TxnIntentLog: the durable transaction intent table (a TafDB system table).
//
// Two-phase commit leaves ambiguity windows that only durable coordinator
// state can close: a coordinator that dies between the prepare round and the
// decision strands participant locks forever, and one that dies after
// deciding commit but before every participant heard it leaves the mutation
// half-delivered. The intent log is the write-ahead record that makes both
// recoverable:
//
//   * before phase one the coordinator force-writes an intent row carrying
//     the transaction's buffered ops (kInDoubt);
//   * before phase two it force-writes the decision (kCommitted/kAborted);
//   * once every phase-two delivery has been acknowledged, the row is GC'd.
//
// Recovery scans surviving rows: kInDoubt resolves by presumed abort,
// kCommitted redelivers the commit (idempotently, keyed off still-held
// participant locks), kAborted re-releases locks. See
// TxnCoordinator::Recover().
//
// The log models a replicated TafDB table: rows are hash-bucketed by txn id
// and the coordinator routes every access through a TafDB server executor,
// so intent writes pay (and can suffer) real RPCs. The object itself lives
// outside the coordinator's volatile state - it survives a simulated
// coordinator crash/restart just as the backing table would.

#ifndef SRC_TXN_INTENT_LOG_H_
#define SRC_TXN_INTENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/kv/shard.h"

namespace mantle {

enum class TxnDecision : uint8_t { kInDoubt, kCommitted, kAborted };

struct TxnIntentRecord {
  uint64_t txn_id = 0;
  TxnDecision decision = TxnDecision::kInDoubt;
  // The transaction's buffered mutations, exactly as handed to Execute();
  // recovery re-derives participants (and their lock keys) from these.
  std::vector<WriteOp> ops;
};

class TxnIntentLog {
 public:
  TxnIntentLog() = default;

  TxnIntentLog(const TxnIntentLog&) = delete;
  TxnIntentLog& operator=(const TxnIntentLog&) = delete;

  // Inserts (or overwrites) the intent row for `txn_id` as kInDoubt.
  void LogIntent(uint64_t txn_id, std::vector<WriteOp> ops);

  // Records the outcome. No-op if the row was already GC'd (late decision
  // racing a completed recovery pass).
  void LogDecision(uint64_t txn_id, TxnDecision decision);

  std::optional<TxnDecision> DecisionOf(uint64_t txn_id) const;

  // Removes the row; true if it existed.
  bool Remove(uint64_t txn_id);

  // Snapshot of every live row (recovery scan, tests).
  std::vector<TxnIntentRecord> Scan() const;

  size_t Size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, TxnIntentRecord> rows_;
};

}  // namespace mantle

#endif  // SRC_TXN_INTENT_LOG_H_
