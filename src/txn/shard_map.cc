#include "src/txn/shard_map.h"

#include <cassert>

namespace mantle {

ShardMap::ShardMap(uint32_t num_shards, std::vector<ServerExecutor*> servers)
    : servers_(std::move(servers)) {
  assert(num_shards > 0);
  assert(!servers_.empty());
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i));
  }
}

size_t ShardMap::TotalRows() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->Size();
  }
  return total;
}

}  // namespace mantle
