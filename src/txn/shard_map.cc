#include "src/txn/shard_map.h"

#include <cassert>
#include <utility>

namespace mantle {

ShardMap::ShardMap(uint32_t num_shards, std::vector<ServerExecutor*> servers)
    : num_shards_(num_shards),
      servers_(std::move(servers)),
      placement_(num_shards, static_cast<uint32_t>(servers_.size())),
      current_(std::make_unique<std::atomic<Shard*>[]>(num_shards)) {
  assert(num_shards > 0);
  assert(!servers_.empty());
  owned_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    owned_.push_back(std::make_shared<Shard>(i));
    current_[i].store(owned_.back().get(), std::memory_order_release);
  }
}

size_t ShardMap::TotalRows() const {
  size_t total = 0;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    total += ShardAt(i)->Size();
  }
  return total;
}

uint64_t ShardMap::CommitCutover(uint32_t index, std::shared_ptr<Shard> incoming,
                                 uint32_t server_index) {
  assert(index < num_shards_);
  assert(server_index < servers_.size());
  assert(ShardAt(index)->IsRetired());
  Shard* raw = incoming.get();
  {
    std::lock_guard<std::mutex> lock(owned_mu_);
    owned_.push_back(std::move(incoming));
  }
  current_[index].store(raw, std::memory_order_release);
  return placement_.CommitMove(index, server_index);
}

}  // namespace mantle
