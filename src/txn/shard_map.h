// Routing from pid to the shard that stores its rows, and from shard to the
// logical server that hosts it. Shards are distributed round-robin across the
// TafDB server fleet, mirroring the paper's 18-node TafDB deployment.

#ifndef SRC_TXN_SHARD_MAP_H_
#define SRC_TXN_SHARD_MAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/kv/meta_record.h"
#include "src/kv/shard.h"
#include "src/net/network.h"

namespace mantle {

class ShardMap {
 public:
  // Creates `num_shards` shards spread over `servers` (shard i lives on
  // servers[i % servers.size()]).
  ShardMap(uint32_t num_shards, std::vector<ServerExecutor*> servers);

  uint32_t ShardIndex(InodeId pid) const {
    return static_cast<uint32_t>(RouteHash(pid) % shards_.size());
  }

  Shard* ShardAt(uint32_t index) { return shards_[index].get(); }
  const Shard* ShardAt(uint32_t index) const { return shards_[index].get(); }
  ServerExecutor* ServerAt(uint32_t index) const { return servers_[index % servers_.size()]; }

  Shard* Route(InodeId pid) { return ShardAt(ShardIndex(pid)); }
  ServerExecutor* RouteServer(InodeId pid) const { return ServerAt(ShardIndex(pid)); }

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  size_t TotalRows() const;

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ServerExecutor*> servers_;
};

}  // namespace mantle

#endif  // SRC_TXN_SHARD_MAP_H_
