// Routing from pid to the shard that stores its rows, and from shard to the
// logical server that hosts it.
//
// pid -> shard-index routing is pure hashing (RouteHash(pid) % num_shards)
// and never changes: a pid maps to the same shard id at every placement
// epoch. shard-index -> server routing is dynamic, delegated to an
// epoch-versioned PlacementTable (src/placement/) that live migration
// advances; the initial assignment is the paper's round-robin spread over the
// TafDB server fleet.
//
// Each shard index has one AUTHORITATIVE Shard object at a time, held in an
// atomic slot. A migration builds a detached replacement, retires the source
// (every guarded entry point starts answering kWrongShard), then installs the
// replacement with CommitCutover. Retired objects are never freed: handlers
// abandoned by deadline expiry may still hold raw Shard* and run arbitrarily
// late, so superseded objects stay in a graveyard where stale access is
// answered with a retriable bounce instead of a use-after-free.

#ifndef SRC_TXN_SHARD_MAP_H_
#define SRC_TXN_SHARD_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/kv/meta_record.h"
#include "src/kv/shard.h"
#include "src/net/network.h"
#include "src/placement/placement_table.h"

namespace mantle {

class ShardMap {
 public:
  // Creates `num_shards` shards spread round-robin over `servers` (shard i
  // starts on servers[i % servers.size()], placement epoch 1).
  ShardMap(uint32_t num_shards, std::vector<ServerExecutor*> servers);

  // Pure, placement-independent: the same pid resolves to the same shard
  // index at every epoch. Only the shard's SERVER moves.
  uint32_t ShardIndex(InodeId pid) const {
    return static_cast<uint32_t>(RouteHash(pid) % num_shards_);
  }

  // The currently authoritative object for `index`. Callers that capture the
  // pointer into a deferred handler must treat kWrongShard / IsRetired() as
  // "re-resolve and retry".
  Shard* ShardAt(uint32_t index) { return current_[index].load(std::memory_order_acquire); }
  const Shard* ShardAt(uint32_t index) const {
    return current_[index].load(std::memory_order_acquire);
  }

  ServerExecutor* ServerAt(uint32_t index) const {
    return servers_[placement_.Get(index).server];
  }

  // One consistent-enough view of a shard's routing for a single attempt.
  // The three reads are not atomic together, but any torn combination is
  // safe: a stale shard pointer bounces with kWrongShard at the data, and
  // the retry re-resolves.
  struct Routing {
    Shard* shard = nullptr;
    ServerExecutor* server = nullptr;
    uint64_t epoch = 0;
  };
  Routing Resolve(uint32_t index) {
    const PlacementTable::Entry entry = placement_.Get(index);
    return Routing{ShardAt(index), servers_[entry.server], entry.epoch};
  }

  Shard* Route(InodeId pid) { return ShardAt(ShardIndex(pid)); }
  ServerExecutor* RouteServer(InodeId pid) const { return ServerAt(ShardIndex(pid)); }

  uint32_t num_shards() const { return num_shards_; }
  size_t TotalRows() const;

  PlacementTable& placement() { return placement_; }
  const PlacementTable& placement() const { return placement_; }
  const std::vector<ServerExecutor*>& servers() const { return servers_; }

  // --- migration support (src/placement/shard_migrator.cc) ------------------

  // Installs `incoming` as the authoritative object for `index`, now hosted
  // on servers()[server_index], and commits the placement move. The caller
  // must already have retired the outgoing object (so the order a racing
  // router observes is: old pointer bounces BEFORE the new one appears -
  // never a window where a stale object silently serves reads). Returns the
  // committed cutover epoch. shared_ptr because the migrator's copy-stream
  // RPC handlers co-own the incoming object while it is still detached.
  uint64_t CommitCutover(uint32_t index, std::shared_ptr<Shard> incoming, uint32_t server_index);

 private:
  const uint32_t num_shards_;
  std::vector<ServerExecutor*> servers_;
  PlacementTable placement_;
  std::unique_ptr<std::atomic<Shard*>[]> current_;
  // Every Shard object ever authoritative, including retired ones (see file
  // comment). Guarded by owned_mu_.
  std::mutex owned_mu_;
  std::vector<std::shared_ptr<Shard>> owned_;
};

}  // namespace mantle

#endif  // SRC_TXN_SHARD_MAP_H_
