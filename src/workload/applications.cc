#include "src/workload/applications.h"

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/sync.h"

namespace mantle {

namespace {

// Fixed-width worker pool that drains `count` indexed jobs.
void ParallelFor(int threads, int count, const std::function<void(int)>& job) {
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      for (;;) {
        const int index = next.fetch_add(1, std::memory_order_relaxed);
        if (index >= count) {
          return;
        }
        job(index);
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
}

}  // namespace

AppResult RunAnalytics(MetadataService* service, const std::string& base,
                       const AnalyticsOptions& options) {
  AppResult result;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};

  service->BulkLoadDir(base);
  Stopwatch run_timer;
  for (int query = 0; query < options.queries; ++query) {
    const std::string query_dir = base + "/q" + std::to_string(query);
    const std::string out_dir = query_dir + "/output";
    const std::string tmp_dir = query_dir + "/_temporary";
    for (const std::string& dir : {query_dir, out_dir, tmp_dir}) {
      if (!service->Mkdir(dir).ok()) {
        errors.fetch_add(1);
      }
      ops.fetch_add(1);
    }

    // Map phase: every subtask builds its temporary directory and writes its
    // partial results there.
    ParallelFor(options.threads, options.subtasks_per_query, [&](int task) {
      const std::string task_dir = tmp_dir + "/attempt_" + std::to_string(task);
      OpResult mk = service->Mkdir(task_dir);
      result.mkdir_latency.Record(mk.breakdown.total_nanos());
      ops.fetch_add(1);
      if (!mk.ok()) {
        errors.fetch_add(1);
      }
      for (int object = 0; object < options.objects_per_subtask; ++object) {
        const std::string path = task_dir + "/part-" + std::to_string(object);
        OpResult created = service->CreateObject(path, options.object_bytes);
        ops.fetch_add(1);
        if (!created.ok()) {
          errors.fetch_add(1);
        }
        const int64_t data_cost = options.data.CostNanos(options.object_bytes);
        if (data_cost > 0) {
          PreciseSleep(data_cost);
        }
      }
    });

    // Commit phase: all subtasks rename into the shared output directory
    // concurrently - the §3.2 contention storm.
    ParallelFor(options.threads, options.subtasks_per_query, [&](int task) {
      const std::string task_dir = tmp_dir + "/attempt_" + std::to_string(task);
      OpResult renamed =
          service->RenameDir(task_dir, out_dir + "/part_" + std::to_string(task));
      result.rename_latency.Record(renamed.breakdown.total_nanos());
      ops.fetch_add(1);
      if (!renamed.ok()) {
        errors.fetch_add(1);
      }
    });

    // Interactive read-back: stat the committed outputs.
    ParallelFor(options.threads, options.subtasks_per_query, [&](int task) {
      const std::string part_dir = out_dir + "/part_" + std::to_string(task);
      OpResult stat = service->StatDir(part_dir);
      result.dirstat_latency.Record(stat.breakdown.total_nanos());
      ops.fetch_add(1);
      if (!stat.ok()) {
        errors.fetch_add(1);
      }
      for (int object = 0; object < options.objects_per_subtask; ++object) {
        OpResult ostat = service->StatObject(part_dir + "/part-" + std::to_string(object));
        result.objstat_latency.Record(ostat.breakdown.total_nanos());
        ops.fetch_add(1);
        if (!ostat.ok()) {
          errors.fetch_add(1);
        }
        const int64_t data_cost = options.data.CostNanos(options.object_bytes);
        if (data_cost > 0) {
          PreciseSleep(data_cost);
        }
      }
    });
  }
  result.completion_seconds = run_timer.ElapsedSeconds();
  result.metadata_ops = ops.load();
  result.errors = errors.load();
  return result;
}

AppResult RunAudio(MetadataService* service, const std::string& base,
                   const AudioOptions& options) {
  AppResult result;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};

  // Input corpus lives along deep paths (average access depth > 10, Fig. 3b).
  std::string deep = base;
  service->BulkLoadDir(deep);
  for (int level = 1; level < options.dir_depth; ++level) {
    deep += "/a" + std::to_string(level);
    service->BulkLoadDir(deep);
  }
  const std::string input_dir = deep + "/input";
  const std::string output_dir = deep + "/output";
  service->BulkLoadDir(input_dir);
  service->BulkLoadDir(output_dir);
  for (int object = 0; object < options.input_objects; ++object) {
    service->BulkLoadObject(input_dir + "/clip" + std::to_string(object) + ".wav",
                            options.input_bytes);
  }

  Stopwatch run_timer;
  ParallelFor(options.threads, options.input_objects, [&](int object) {
    const std::string input = input_dir + "/clip" + std::to_string(object) + ".wav";
    OpResult stat = service->StatObject(input);
    result.objstat_latency.Record(stat.breakdown.total_nanos());
    ops.fetch_add(1);
    if (!stat.ok()) {
      errors.fetch_add(1);
    }
    const int64_t read_cost = options.data.CostNanos(options.input_bytes);
    if (read_cost > 0) {
      PreciseSleep(read_cost);
    }
    for (int segment = 0; segment < options.segments_per_object; ++segment) {
      const std::string output = output_dir + "/clip" + std::to_string(object) + "_seg" +
                                 std::to_string(segment) + ".wav";
      OpResult created = service->CreateObject(output, options.output_bytes);
      ops.fetch_add(1);
      if (!created.ok()) {
        errors.fetch_add(1);
      }
      const int64_t write_cost = options.data.CostNanos(options.output_bytes);
      if (write_cost > 0) {
        PreciseSleep(write_cost);
      }
      OpResult verify = service->StatObject(output);
      result.objstat_latency.Record(verify.breakdown.total_nanos());
      ops.fetch_add(1);
      if (!verify.ok()) {
        errors.fetch_add(1);
      }
    }
  });
  result.completion_seconds = run_timer.ElapsedSeconds();
  result.metadata_ops = ops.load();
  result.errors = errors.load();
  return result;
}

}  // namespace mantle
