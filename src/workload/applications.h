// Real-world application workload models (paper §6.2).
//
// Analytics - interactive Spark ad-hoc queries: each query spawns subtasks
// that write results into per-task temporary directories and then atomically
// rename them into ONE shared output directory. The concurrent commit phase
// concentrates directory-attribute updates on that directory - the contention
// storm of §3.2.
//
// Audio - AI audio preprocessing: scan a large set of small input objects
// along deep paths, segment each, and create the output objects. Entirely
// conflict-free; performance is dominated by path resolution.
//
// Both can model data access (Fig. 10b): each object read/write adds a
// latency charge of one data-service round trip plus size/bandwidth.

#ifndef SRC_WORKLOAD_APPLICATIONS_H_
#define SRC_WORKLOAD_APPLICATIONS_H_

#include <cstdint>
#include <string>

#include "src/common/histogram.h"
#include "src/core/metadata_service.h"
#include "src/net/network.h"
#include "src/workload/namespace_gen.h"

namespace mantle {

struct DataAccessModel {
  bool enabled = false;
  int64_t rtt_nanos = 80'000;                  // proxy <-> data service
  double bandwidth_bytes_per_sec = 2.5e9;      // 25 Gbps wire, paper's testbed
  int64_t device_nanos = 40'000;               // SSD access floor

  int64_t CostNanos(uint64_t bytes) const {
    if (!enabled) {
      return 0;
    }
    return rtt_nanos + device_nanos +
           static_cast<int64_t>(static_cast<double>(bytes) / bandwidth_bytes_per_sec * 1e9);
  }
};

struct AppResult {
  double completion_seconds = 0;
  uint64_t metadata_ops = 0;
  uint64_t errors = 0;
  Histogram mkdir_latency;
  Histogram rename_latency;
  Histogram objstat_latency;
  Histogram dirstat_latency;
};

struct AnalyticsOptions {
  int queries = 4;            // sequential interactive queries
  int subtasks_per_query = 48;  // concurrent subtasks (commit storm width)
  int objects_per_subtask = 2;
  uint64_t object_bytes = 8 * 1024 * 1024;  // ~10 GB over the default run
  int threads = 16;           // executor pool driving subtasks
  DataAccessModel data;
};

// Runs the full Analytics workload; the namespace must be pre-populated with
// `base` available as a fresh subtree root.
AppResult RunAnalytics(MetadataService* service, const std::string& base,
                       const AnalyticsOptions& options);

struct AudioOptions {
  int input_objects = 2'000;       // small audio segments to process
  int segments_per_object = 4;     // outputs per input
  uint64_t input_bytes = 256 * 1024;
  uint64_t output_bytes = 64 * 1024;
  int threads = 16;
  int dir_depth = 10;              // working directory depth (deep paths)
  DataAccessModel data;
};

AppResult RunAudio(MetadataService* service, const std::string& base,
                   const AudioOptions& options);

}  // namespace mantle

#endif  // SRC_WORKLOAD_APPLICATIONS_H_
