#include "src/workload/mdtest_driver.h"

#include <atomic>
#include <thread>

#include <memory>

#include "src/common/clock.h"
#include "src/obs/trace.h"

namespace mantle {

WorkloadResult RunClosedLoop(const DriverOptions& options, const OpFn& op) {
  WorkloadResult result;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> rpcs{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{options.warmup_nanos == 0};

  std::vector<std::thread> threads;
  threads.reserve(options.threads);
  Stopwatch run_timer;
  for (int t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(0xabcd1234 + static_cast<uint64_t>(t) * 7919);
      uint64_t index = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (options.max_ops_per_thread != 0 && index >= options.max_ops_per_thread) {
          break;
        }
        OpResult op_result;
        if (options.trace_sample_every != 0 && index % options.trace_sample_every == 0) {
          obs::ScopedTraceCapture capture;
          op_result = op(t, index++, rng);
        } else {
          op_result = op(t, index++, rng);
        }
        if (!measuring.load(std::memory_order_acquire)) {
          continue;
        }
        ops.fetch_add(1, std::memory_order_relaxed);
        if (!op_result.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        retries.fetch_add(static_cast<uint64_t>(op_result.retries), std::memory_order_relaxed);
        rpcs.fetch_add(static_cast<uint64_t>(op_result.rpcs), std::memory_order_relaxed);
        result.total.Record(op_result.breakdown.total_nanos());
        result.lookup.Record(op_result.breakdown.lookup_nanos);
        result.loop_detect.Record(op_result.breakdown.loop_detect_nanos);
        result.execute.Record(op_result.breakdown.execute_nanos);
      }
    });
  }

  if (options.warmup_nanos > 0) {
    PreciseSleep(options.warmup_nanos);
    measuring.store(true, std::memory_order_release);
    run_timer.Reset();
  }
  if (options.max_ops_per_thread == 0) {
    PreciseSleep(options.duration_nanos);
    stop.store(true, std::memory_order_release);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  result.elapsed_seconds = run_timer.ElapsedSeconds();
  if (options.warmup_nanos == 0 && options.max_ops_per_thread == 0) {
    // Duration-bound run without warmup: measure over the configured window.
    result.elapsed_seconds = static_cast<double>(options.duration_nanos) / 1e9;
  }
  result.ops = ops.load();
  result.errors = errors.load();
  result.retries = retries.load();
  result.rpcs = rpcs.load();
  return result;
}

OpFn MdtestOps::ObjStat() const {
  const auto* objects = &ns_->objects;
  MetadataService* service = service_;
  return [service, objects](int, uint64_t, Rng& rng) {
    return service->StatObject((*objects)[rng.Uniform(objects->size())]);
  };
}

OpFn MdtestOps::DirStat() const {
  const auto* dirs = &ns_->dirs;
  MetadataService* service = service_;
  return [service, dirs](int, uint64_t, Rng& rng) {
    return service->StatDir((*dirs)[rng.Uniform(dirs->size())]);
  };
}

OpFn MdtestOps::LookupPaths(std::vector<std::string> paths) const {
  MetadataService* service = service_;
  auto shared_paths = std::make_shared<std::vector<std::string>>(std::move(paths));
  return [service, shared_paths](int, uint64_t, Rng& rng) {
    return service->Lookup((*shared_paths)[rng.Uniform(shared_paths->size())]);
  };
}

std::string MdtestOps::DeepBase(const std::string& raw_base) const {
  std::string base = raw_base;
  service_->BulkLoadDir(base);
  // Leaf paths are base(1) + chain + worker(1) + entry(1) deep.
  const int chain = std::max(0, work_depth_ - 3);
  for (int level = 0; level < chain; ++level) {
    base += "/p" + std::to_string(level);
    service_->BulkLoadDir(base);
  }
  return base;
}

OpFn MdtestOps::CreateDelete(const std::string& raw_base, int threads) const {
  MetadataService* service = service_;
  const std::string base = DeepBase(raw_base);
  for (int t = 0; t < threads; ++t) {
    service->BulkLoadDir(base + "/w" + std::to_string(t));
  }
  return [service, base](int thread_index, uint64_t op_index, Rng&) {
    const std::string path =
        base + "/w" + std::to_string(thread_index) + "/f" + std::to_string(op_index);
    OpResult created = service->CreateObject(path, 4096);
    if (!created.ok()) {
      return created;
    }
    OpResult deleted = service->DeleteObject(path);
    // Report the pair as one create (mdtest measures phases per op type; the
    // bench harness runs create and delete separately when it needs both).
    created.breakdown.execute_nanos += deleted.breakdown.total_nanos();
    created.rpcs += deleted.rpcs;
    return created;
  };
}

OpFn MdtestOps::Create(const std::string& raw_base, int threads) const {
  MetadataService* service = service_;
  const std::string base = DeepBase(raw_base);
  for (int t = 0; t < threads; ++t) {
    service->BulkLoadDir(base + "/w" + std::to_string(t));
  }
  return [service, base](int thread_index, uint64_t op_index, Rng&) {
    return service->CreateObject(
        base + "/w" + std::to_string(thread_index) + "/f" + std::to_string(op_index), 4096);
  };
}

OpFn MdtestOps::Mkdir(const std::string& raw_base, int threads, bool shared) const {
  MetadataService* service = service_;
  const std::string base = DeepBase(raw_base);
  if (shared) {
    service->BulkLoadDir(base + "/shared");
  } else {
    for (int t = 0; t < threads; ++t) {
      service->BulkLoadDir(base + "/w" + std::to_string(t));
    }
  }
  return [service, base, shared](int thread_index, uint64_t op_index, Rng&) {
    const std::string parent =
        shared ? base + "/shared" : base + "/w" + std::to_string(thread_index);
    return service->Mkdir(parent + "/d" + std::to_string(thread_index) + "_" +
                          std::to_string(op_index));
  };
}

OpFn MdtestOps::MkdirRmdir(const std::string& raw_base, int threads, bool shared) const {
  MetadataService* service = service_;
  const std::string base = DeepBase(raw_base);
  if (shared) {
    service->BulkLoadDir(base + "/shared");
  } else {
    for (int t = 0; t < threads; ++t) {
      service->BulkLoadDir(base + "/w" + std::to_string(t));
    }
  }
  return [service, base, shared](int thread_index, uint64_t op_index, Rng&) {
    const std::string parent =
        shared ? base + "/shared" : base + "/w" + std::to_string(thread_index);
    const std::string path =
        parent + "/d" + std::to_string(thread_index) + "_" + std::to_string(op_index);
    OpResult made = service->Mkdir(path);
    if (!made.ok()) {
      return made;
    }
    OpResult removed = service->Rmdir(path);
    made.breakdown.execute_nanos += removed.breakdown.total_nanos();
    made.rpcs += removed.rpcs;
    return made;
  };
}

OpFn MdtestOps::DirRename(const std::string& raw_base, int threads, bool shared) const {
  MetadataService* service = service_;
  const std::string base = DeepBase(raw_base);
  service->BulkLoadDir(base + "/tmp");
  for (int t = 0; t < threads; ++t) {
    service->BulkLoadDir(base + "/tmp/t" + std::to_string(t));
  }
  if (shared) {
    service->BulkLoadDir(base + "/out");
  } else {
    for (int t = 0; t < threads; ++t) {
      service->BulkLoadDir(base + "/out" + std::to_string(t));
    }
  }
  return [service, base, shared](int thread_index, uint64_t op_index, Rng&) -> OpResult {
    const std::string tag = std::to_string(thread_index) + "_" + std::to_string(op_index);
    const std::string src = base + "/tmp/t" + std::to_string(thread_index) + "/part" + tag;
    OpResult made = service->Mkdir(src);
    if (!made.ok()) {
      return made;
    }
    const std::string dst_parent =
        shared ? base + "/out" : base + "/out" + std::to_string(thread_index);
    // Only the rename is the measured operation (its breakdown/RPCs); the
    // setup mkdir mimics mdtest's pre-created per-iteration directory.
    return service->RenameDir(src, dst_parent + "/part" + tag);
  };
}

}  // namespace mantle
