// mdtest-style workload driver (paper §6.1: "we adapt mdtest benchmarks").
//
// Runs N closed-loop client threads (the proxy fleet) against a
// MetadataService for a fixed duration or op budget, collecting throughput
// and per-phase latency histograms. Operation generators implement the seven
// mdtest operations - create, delete, objstat, dirstat, mkdir, rmdir,
// dirrename - each in exclusive ('-e', per-thread directories) or shared
// ('-s', one contended directory) mode.

#ifndef SRC_WORKLOAD_MDTEST_DRIVER_H_
#define SRC_WORKLOAD_MDTEST_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/core/metadata_service.h"
#include "src/workload/namespace_gen.h"

namespace mantle {

struct DriverOptions {
  int threads = 32;
  int64_t duration_nanos = 2'000'000'000;  // wall-clock budget per run
  uint64_t max_ops_per_thread = 0;         // 0 = unlimited (duration-bound)
  int64_t warmup_nanos = 0;
  // Trace every Nth op per thread (0 = tracing off). A sampled op runs under
  // a ScopedTraceCapture, so its stitched span tree reaches the flight
  // recorder (tail sampling, exemplars); the capture itself is discarded.
  uint64_t trace_sample_every = 0;
};

struct WorkloadResult {
  Histogram total;        // end-to-end op latency
  Histogram lookup;       // phase: path resolution
  Histogram loop_detect;  // phase: rename loop detection
  Histogram execute;      // phase: metadata execution
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t retries = 0;
  uint64_t rpcs = 0;
  double elapsed_seconds = 0;

  double Throughput() const { return elapsed_seconds > 0 ? ops / elapsed_seconds : 0; }
  double MeanRpcsPerOp() const { return ops > 0 ? static_cast<double>(rpcs) / ops : 0; }
};

// One operation issued by `thread_index` as its `op_index`-th op.
using OpFn = std::function<OpResult(int thread_index, uint64_t op_index, Rng& rng)>;

// Closed-loop run: each thread issues ops back to back until the budget ends.
WorkloadResult RunClosedLoop(const DriverOptions& options, const OpFn& op);

// --- mdtest operation generators --------------------------------------------
//
// Each factory prepares any needed directories on `service` and returns the
// OpFn. `shared` selects '-s' (all threads in one directory) vs '-e'.

class MdtestOps {
 public:
  // `work_depth` is the directory depth at which mutation workloads operate
  // (the paper's mdtest runs use an average path depth of 10).
  MdtestOps(MetadataService* service, const GeneratedNamespace* ns, int work_depth = 10)
      : service_(service), ns_(ns), work_depth_(work_depth) {}

  // objstat/dirstat sample uniformly from the populated namespace.
  OpFn ObjStat() const;
  OpFn DirStat() const;
  // Lookup-only (path resolution benches); `paths` sampled uniformly.
  OpFn LookupPaths(std::vector<std::string> paths) const;

  // create/delete pair ops run in per-thread work dirs beneath `base`
  // (created here); create-then-delete keeps the namespace size stable.
  OpFn CreateDelete(const std::string& base, int threads) const;
  // Pure create into per-thread dirs (namespace grows).
  OpFn Create(const std::string& base, int threads) const;

  // mkdir: exclusive = per-thread parent dirs; shared = one parent dir.
  OpFn Mkdir(const std::string& base, int threads, bool shared) const;
  // mkdir+rmdir pair (bounded namespace).
  OpFn MkdirRmdir(const std::string& base, int threads, bool shared) const;
  // dirrename: create a temp dir, rename it into the target parent
  // (exclusive: per-thread parents; shared: one parent - the Spark commit
  // pattern of §3.2).
  OpFn DirRename(const std::string& base, int threads, bool shared) const;

 private:
  // Bulk-loads a chain under `base` so per-thread work dirs sit at
  // work_depth_ - 2 (leaf entries then land at work_depth_).
  std::string DeepBase(const std::string& base) const;

  MetadataService* service_;
  const GeneratedNamespace* ns_;
  int work_depth_;
};

}  // namespace mantle

#endif  // SRC_WORKLOAD_MDTEST_DRIVER_H_
