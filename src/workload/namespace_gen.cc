#include "src/workload/namespace_gen.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace mantle {

const std::vector<std::string>& GeneratedNamespace::DirsAtDepth(int depth) const {
  static const std::vector<std::string> kEmpty;
  auto it = dirs_by_depth.find(depth);
  return it == dirs_by_depth.end() ? kEmpty : it->second;
}

double GeneratedNamespace::AverageDirDepth() const {
  if (dirs.empty()) {
    return 0;
  }
  double total = 0;
  for (const auto& [depth, bucket] : dirs_by_depth) {
    total += static_cast<double>(depth) * static_cast<double>(bucket.size());
  }
  return total / static_cast<double>(dirs.size());
}

namespace {

// Approximate normal via the sum of three uniforms (Irwin-Hall), clamped.
int SampleDepth(Rng& rng, const NamespaceSpec& spec) {
  const double u =
      (rng.NextDouble() + rng.NextDouble() + rng.NextDouble() - 1.5) / std::sqrt(0.25 * 3);
  int depth = spec.mean_depth + static_cast<int>(std::lround(u * spec.depth_stddev));
  return std::clamp(depth, spec.min_depth, spec.max_depth);
}

}  // namespace

GeneratedNamespace GenerateNamespace(const NamespaceSpec& spec) {
  GeneratedNamespace out;
  Rng rng(spec.seed);
  out.dirs.reserve(spec.num_dirs);

  // Grow directory chains until the budget is spent. Each chain descends from
  // the root (or an existing directory) to a sampled target depth, producing
  // the deep-hierarchy shape of Fig. 3b.
  struct DirRef {
    std::string path;
    int depth;
  };
  std::vector<DirRef> all_dirs;
  uint64_t next_dir_seq = 0;
  while (all_dirs.size() < spec.num_dirs) {
    // Branch from a random existing directory one third of the time to give
    // the tree realistic fanout; otherwise start a fresh top-level chain.
    std::string base;
    int base_depth = 0;
    if (!all_dirs.empty() && rng.Bernoulli(0.33)) {
      const DirRef& anchor = all_dirs[rng.Uniform(all_dirs.size())];
      base = anchor.path;
      base_depth = anchor.depth;
    }
    // Chains descend to the sampled absolute depth; branches that start deep
    // still grow a couple of levels. A 2% tail of extra-deep chains gives the
    // long maximum depths of the production study (up to 95).
    int target_depth;
    if (rng.Bernoulli(0.02)) {
      target_depth = spec.mean_depth +
                     static_cast<int>(rng.Uniform(
                         static_cast<uint64_t>(std::max(1, spec.max_depth - spec.mean_depth))));
    } else {
      target_depth = SampleDepth(rng, spec);
    }
    target_depth = std::max(target_depth, base_depth + 2);
    target_depth = std::min(target_depth, spec.max_depth);
    for (int depth = base_depth; depth < target_depth && all_dirs.size() < spec.num_dirs;
         ++depth) {
      base += "/d" + std::to_string(next_dir_seq++);
      all_dirs.push_back(DirRef{base, depth + 1});
    }
  }
  for (const auto& dir : all_dirs) {
    out.dirs.push_back(dir.path);
    out.dirs_by_depth[dir.depth].push_back(dir.path);
  }

  // Objects attach to directories, biased toward deeper ones (access depth in
  // the study exceeds 10 on average).
  out.objects.reserve(spec.num_objects);
  out.object_sizes.reserve(spec.num_objects);
  for (uint64_t i = 0; i < spec.num_objects; ++i) {
    const DirRef* home = nullptr;
    // Two draws, keep the deeper: a cheap depth bias.
    const DirRef& a = all_dirs[rng.Uniform(all_dirs.size())];
    const DirRef& b = all_dirs[rng.Uniform(all_dirs.size())];
    home = (a.depth >= b.depth) ? &a : &b;
    out.objects.push_back(home->path + "/o" + std::to_string(i));
    const bool small = rng.Bernoulli(spec.small_object_ratio);
    const uint64_t size = small ? 1 + rng.Uniform(spec.small_object_max_bytes)
                                : spec.small_object_max_bytes +
                                      rng.Uniform(spec.large_object_max_bytes -
                                                  spec.small_object_max_bytes);
    out.object_sizes.push_back(size);
  }
  return out;
}

GeneratedNamespace PopulateNamespace(MetadataService* service, const NamespaceSpec& spec) {
  GeneratedNamespace generated = GenerateNamespace(spec);
  // One batched call: directories first (parents precede children by
  // construction), then the objects that hang off them.
  std::vector<BulkEntry> batch;
  batch.reserve(generated.dirs.size() + generated.objects.size());
  for (const auto& dir : generated.dirs) {
    batch.push_back(BulkEntry::Dir(dir));
  }
  for (size_t i = 0; i < generated.objects.size(); ++i) {
    batch.push_back(BulkEntry::Object(generated.objects[i], generated.object_sizes[i]));
  }
  Status status = service->BulkLoadMany(batch);
  if (!status.ok()) {
    MANTLE_WLOG << "bulk load failed: " << status;
  }
  return generated;
}

std::vector<std::string> BulkLoadChain(MetadataService* service, const std::string& name,
                                       int depth) {
  std::vector<std::string> levels;
  std::string path;
  for (int level = 0; level < depth; ++level) {
    path += "/" + name + std::to_string(level);
    service->BulkLoadDir(path);
    levels.push_back(path);
  }
  return levels;
}

}  // namespace mantle
