// Namespace generator: synthesizes hierarchies shaped like the production
// namespaces of the paper's §3 study - deep directory chains (average depth
// ~10-11, long tails), a ~10:1 object-to-directory ratio, and mostly-small
// objects - and bulk-loads them into any MetadataService.

#ifndef SRC_WORKLOAD_NAMESPACE_GEN_H_
#define SRC_WORKLOAD_NAMESPACE_GEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/metadata_service.h"

namespace mantle {

struct NamespaceSpec {
  uint64_t num_dirs = 1000;
  uint64_t num_objects = 10'000;  // paper ratio: ~10 objects per directory
  int mean_depth = 10;            // target depth of leaf directories
  int depth_stddev = 2;
  int min_depth = 4;
  int max_depth = 24;
  double small_object_ratio = 0.4;      // fraction of objects <= 512 KB
  uint64_t small_object_max_bytes = 512 * 1024;
  uint64_t large_object_max_bytes = 64ull * 1024 * 1024;
  uint64_t seed = 42;
};

// The generated shape: every directory and object path, plus directories
// bucketed by depth for depth-targeted workloads.
struct GeneratedNamespace {
  std::vector<std::string> dirs;
  std::vector<std::string> objects;
  std::vector<uint64_t> object_sizes;
  std::map<int, std::vector<std::string>> dirs_by_depth;

  const std::vector<std::string>& DirsAtDepth(int depth) const;
  double AverageDirDepth() const;
};

// Generates paths only (no service interaction).
GeneratedNamespace GenerateNamespace(const NamespaceSpec& spec);

// Generates and bulk-loads into `service`. Parents always precede children.
GeneratedNamespace PopulateNamespace(MetadataService* service, const NamespaceSpec& spec);

// Creates (via BulkLoadDir) a chain /<name>0/<name>1/.../<name>{depth-1} and
// returns the full path at each level; used by the depth-sweep benches.
std::vector<std::string> BulkLoadChain(MetadataService* service, const std::string& name,
                                       int depth);

}  // namespace mantle

#endif  // SRC_WORKLOAD_NAMESPACE_GEN_H_
