#include "src/workload/trace_replay.h"

#include <sstream>
#include <thread>

#include "src/common/random.h"

namespace mantle {

namespace {

const char* TraceOpName(TraceOpType type) {
  switch (type) {
    case TraceOpType::kMkdir:
      return "mkdir";
    case TraceOpType::kRmdir:
      return "rmdir";
    case TraceOpType::kCreate:
      return "create";
    case TraceOpType::kDelete:
      return "delete";
    case TraceOpType::kObjStat:
      return "objstat";
    case TraceOpType::kDirStat:
      return "dirstat";
    case TraceOpType::kReadDir:
      return "readdir";
    case TraceOpType::kLookup:
      return "lookup";
    case TraceOpType::kRename:
      return "rename";
  }
  return "?";
}

}  // namespace

Result<std::vector<TraceOp>> ParseTrace(const std::string& text) {
  std::vector<TraceOp> ops;
  std::istringstream input(text);
  std::string line;
  int line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string verb;
    TraceOp op;
    fields >> verb >> op.path;
    if (verb.empty() || op.path.empty()) {
      return Status::InvalidArgument("trace line " + std::to_string(line_number) +
                                     ": missing fields");
    }
    if (verb == "mkdir") {
      op.type = TraceOpType::kMkdir;
    } else if (verb == "rmdir") {
      op.type = TraceOpType::kRmdir;
    } else if (verb == "create") {
      op.type = TraceOpType::kCreate;
      if (!(fields >> op.bytes)) {
        return Status::InvalidArgument("trace line " + std::to_string(line_number) +
                                       ": create needs a size");
      }
    } else if (verb == "delete") {
      op.type = TraceOpType::kDelete;
    } else if (verb == "objstat") {
      op.type = TraceOpType::kObjStat;
    } else if (verb == "dirstat") {
      op.type = TraceOpType::kDirStat;
    } else if (verb == "readdir") {
      op.type = TraceOpType::kReadDir;
    } else if (verb == "lookup") {
      op.type = TraceOpType::kLookup;
    } else if (verb == "rename") {
      op.type = TraceOpType::kRename;
      if (!(fields >> op.path2)) {
        return Status::InvalidArgument("trace line " + std::to_string(line_number) +
                                       ": rename needs two paths");
      }
    } else {
      return Status::InvalidArgument("trace line " + std::to_string(line_number) +
                                     ": unknown op '" + verb + "'");
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string FormatTrace(const std::vector<TraceOp>& ops) {
  std::string out;
  for (const auto& op : ops) {
    out += TraceOpName(op.type);
    out += ' ';
    out += op.path;
    if (op.type == TraceOpType::kCreate) {
      out += ' ';
      out += std::to_string(op.bytes);
    } else if (op.type == TraceOpType::kRename) {
      out += ' ';
      out += op.path2;
    }
    out += '\n';
  }
  return out;
}

std::vector<TraceOp> SynthesizeTrace(const GeneratedNamespace& ns, const TraceMix& mix,
                                     size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<TraceOp> ops;
  ops.reserve(count + 2);

  // Mutations live under /trace_mut so they never disturb the read targets.
  TraceOp root;
  root.type = TraceOpType::kMkdir;
  root.path = "/trace_mut";
  ops.push_back(root);
  TraceOp out_root;
  out_root.type = TraceOpType::kMkdir;
  out_root.path = "/trace_mut/out";
  ops.push_back(out_root);

  const double total = mix.objstat + mix.dirstat + mix.create + mix.del + mix.mkdir +
                       mix.rename + mix.readdir;
  uint64_t sequence = 0;
  std::vector<std::string> live_objects;
  std::vector<std::string> live_dirs;
  while (ops.size() < count + 2) {
    const double roll = rng.NextDouble() * total;
    TraceOp op;
    double edge = mix.objstat;
    if (roll < edge) {
      op.type = TraceOpType::kObjStat;
      op.path = ns.objects[rng.Uniform(ns.objects.size())];
    } else if (roll < (edge += mix.dirstat)) {
      op.type = TraceOpType::kDirStat;
      op.path = ns.dirs[rng.Uniform(ns.dirs.size())];
    } else if (roll < (edge += mix.create)) {
      op.type = TraceOpType::kCreate;
      op.path = "/trace_mut/obj" + std::to_string(sequence++);
      op.bytes = 1 + rng.Uniform(512 * 1024);
      live_objects.push_back(op.path);
    } else if (roll < (edge += mix.del)) {
      if (live_objects.empty()) {
        continue;
      }
      op.type = TraceOpType::kDelete;
      op.path = live_objects.back();
      live_objects.pop_back();
    } else if (roll < (edge += mix.mkdir)) {
      op.type = TraceOpType::kMkdir;
      op.path = "/trace_mut/dir" + std::to_string(sequence++);
      live_dirs.push_back(op.path);
    } else if (roll < (edge += mix.rename)) {
      if (live_dirs.empty()) {
        continue;
      }
      op.type = TraceOpType::kRename;
      op.path = live_dirs.back();
      live_dirs.pop_back();
      op.path2 = "/trace_mut/out/moved" + std::to_string(sequence++);
    } else {
      op.type = TraceOpType::kReadDir;
      op.path = ns.dirs[rng.Uniform(ns.dirs.size())];
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

WorkloadResult ReplayTrace(MetadataService* service, const std::vector<TraceOp>& ops,
                           int threads) {
  // The first few ops establish mutation roots; run them inline so every
  // worker sees them.
  size_t start = 0;
  while (start < ops.size() && ops[start].type == TraceOpType::kMkdir &&
         ops[start].path.rfind("/trace_mut", 0) == 0) {
    service->Mkdir(ops[start].path);
    ++start;
  }

  DriverOptions options;
  options.threads = threads;
  options.max_ops_per_thread =
      (ops.size() - start + static_cast<size_t>(threads) - 1) / threads;
  const std::vector<TraceOp>* trace = &ops;
  return RunClosedLoop(options, [service, trace, start, threads](int thread_index,
                                                                 uint64_t op_index, Rng&) {
    const size_t global = start + static_cast<size_t>(op_index) * threads +
                          static_cast<size_t>(thread_index);
    OpResult noop;
    noop.status = Status::Ok();
    if (global >= trace->size()) {
      return noop;
    }
    const TraceOp& op = (*trace)[global];
    switch (op.type) {
      case TraceOpType::kMkdir:
        return service->Mkdir(op.path);
      case TraceOpType::kRmdir:
        return service->Rmdir(op.path);
      case TraceOpType::kCreate:
        return service->CreateObject(op.path, op.bytes);
      case TraceOpType::kDelete:
        return service->DeleteObject(op.path);
      case TraceOpType::kObjStat:
        return static_cast<OpResult>(service->StatObject(op.path));
      case TraceOpType::kDirStat:
        return static_cast<OpResult>(service->StatDir(op.path));
      case TraceOpType::kReadDir: {
        std::vector<std::string> names;
        return service->ReadDir(op.path, &names);
      }
      case TraceOpType::kLookup:
        return service->Lookup(op.path);
      case TraceOpType::kRename:
        return service->RenameDir(op.path, op.path2);
    }
    return noop;
  });
}

}  // namespace mantle
