// Trace replay: parse and replay metadata-operation traces against any
// MetadataService. Production traces are not public, so the module also
// synthesizes traces with configurable operation mixes from a generated
// namespace - the same substitution DESIGN.md documents for the §3 study.
//
// Trace format: one operation per line,
//   mkdir <path>
//   rmdir <path>
//   create <path> <bytes>
//   delete <path>
//   objstat <path>
//   dirstat <path>
//   readdir <path>
//   lookup <path>
//   rename <src> <dst>
// Blank lines and lines starting with '#' are ignored.

#ifndef SRC_WORKLOAD_TRACE_REPLAY_H_
#define SRC_WORKLOAD_TRACE_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/workload/mdtest_driver.h"
#include "src/workload/namespace_gen.h"

namespace mantle {

enum class TraceOpType : uint8_t {
  kMkdir,
  kRmdir,
  kCreate,
  kDelete,
  kObjStat,
  kDirStat,
  kReadDir,
  kLookup,
  kRename,
};

struct TraceOp {
  TraceOpType type = TraceOpType::kObjStat;
  std::string path;
  std::string path2;   // rename destination
  uint64_t bytes = 0;  // create size
};

// Parses a trace; fails on the first malformed line (message names it).
Result<std::vector<TraceOp>> ParseTrace(const std::string& text);

// Serializes ops back to the text format (round-trips with ParseTrace).
std::string FormatTrace(const std::vector<TraceOp>& ops);

// Operation mix for synthetic traces; weights need not sum to anything.
struct TraceMix {
  double objstat = 60;
  double dirstat = 10;
  double create = 15;
  double del = 5;
  double mkdir = 5;
  double rename = 2;
  double readdir = 3;
};

// Builds `count` ops over paths of `ns`, in the given mix. Mutations target a
// dedicated subtree so the trace is replayable against a service populated
// with the same namespace.
std::vector<TraceOp> SynthesizeTrace(const GeneratedNamespace& ns, const TraceMix& mix,
                                     size_t count, uint64_t seed);

// Replays ops round-robin over `threads` closed-loop workers (each worker
// takes ops i, i+threads, ...), preserving per-worker order.
WorkloadResult ReplayTrace(MetadataService* service, const std::vector<TraceOp>& ops,
                           int threads);

}  // namespace mantle

#endif  // SRC_WORKLOAD_TRACE_REPLAY_H_
