// Baseline-specific mechanics: InfiniFS id prediction and speculative
// fallback, the rename coordinator, LocoFS's directory machine, and the
// Tectonic relaxed-vs-transactional split.

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/infinifs/infinifs_service.h"
#include "src/baselines/locofs/loco_dir_machine.h"
#include "src/baselines/locofs/locofs_service.h"
#include "src/baselines/tectonic/tectonic_service.h"
#include "src/common/path.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

// --- InfiniFS ------------------------------------------------------------------

class InfiniFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(FastNetworkOptions());
    InfiniFsOptions options;
    options.tafdb = FastTafDbOptions();
    service_ = std::make_unique<InfiniFsService>(network_.get(), options);
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<InfiniFsService> service_;
};

TEST_F(InfiniFsTest, PredictIdIsDeterministicAndDistinct) {
  EXPECT_EQ(InfiniFsService::PredictId("/a/b"), InfiniFsService::PredictId("/a/b"));
  EXPECT_NE(InfiniFsService::PredictId("/a/b"), InfiniFsService::PredictId("/a/c"));
  EXPECT_EQ(InfiniFsService::PredictId("/"), kRootId);
  // Predicted ids carry the high bit (disjoint from sequential object ids).
  EXPECT_NE(InfiniFsService::PredictId("/a") & 0x8000000000000000ULL, 0u);
}

TEST_F(InfiniFsTest, FreshDirectoriesResolveInOneRound) {
  std::string path;
  for (int i = 0; i < 8; ++i) {
    path += "/s" + std::to_string(i);
    ASSERT_TRUE(service_->Mkdir(path).ok());
  }
  ASSERT_TRUE(service_->CreateObject(path + "/o", 1).ok());
  const uint64_t rounds_before = service_->resolve_stats().rounds.load();
  const uint64_t fallbacks_before = service_->resolve_stats().fallbacks.load();
  ASSERT_TRUE(service_->StatObject(path + "/o").ok());
  // All ids match their predictions: exactly one speculative round, no
  // fallback.
  EXPECT_EQ(service_->resolve_stats().rounds.load(), rounds_before + 1);
  EXPECT_EQ(service_->resolve_stats().fallbacks.load(), fallbacks_before);
}

TEST_F(InfiniFsTest, RenameBreaksPredictionAndForcesFallback) {
  ASSERT_TRUE(service_->Mkdir("/top").ok());
  ASSERT_TRUE(service_->Mkdir("/top/mid").ok());
  ASSERT_TRUE(service_->Mkdir("/top/mid/deep").ok());
  ASSERT_TRUE(service_->CreateObject("/top/mid/deep/o", 1).ok());
  ASSERT_TRUE(service_->Mkdir("/dest").ok());
  ASSERT_TRUE(service_->RenameDir("/top/mid", "/dest/moved").ok());

  const uint64_t fallbacks_before = service_->resolve_stats().fallbacks.load();
  ASSERT_TRUE(service_->StatObject("/dest/moved/deep/o").ok());
  // The moved directory keeps its (now mispredicted) id: extra rounds.
  EXPECT_GT(service_->resolve_stats().fallbacks.load(), fallbacks_before);
}

TEST_F(InfiniFsTest, RenameCoordinatorBlocksConcurrentConflicts) {
  ASSERT_TRUE(service_->Mkdir("/r1").ok());
  ASSERT_TRUE(service_->Mkdir("/r2").ok());
  ASSERT_TRUE(service_->Mkdir("/r2/inner").ok());
  // Loop: renaming /r2 into its own subtree must be rejected.
  EXPECT_TRUE(service_->RenameDir("/r2", "/r2/inner/in").status.IsLoopDetected());
  // Tree intact afterwards (locks released).
  EXPECT_TRUE(service_->RenameDir("/r1", "/r2/inner/ok").ok());
}

TEST_F(InfiniFsTest, AmCacheAcceleratesRepeatedResolutions) {
  service_.reset();  // the SetUp service must go before its network
  network_ = std::make_unique<Network>(FastNetworkOptions());
  InfiniFsOptions options;
  options.tafdb = FastTafDbOptions();
  options.enable_am_cache = true;
  service_ = std::make_unique<InfiniFsService>(network_.get(), options);

  std::string path;
  for (int i = 0; i < 6; ++i) {
    path += "/c" + std::to_string(i);
    ASSERT_TRUE(service_->Mkdir(path).ok());
  }
  ASSERT_TRUE(service_->CreateObject(path + "/o", 1).ok());
  ASSERT_TRUE(service_->StatObject(path + "/o").ok());
  EXPECT_GT(service_->am_cache()->Size(), 0u);
  // Cached prefix: the next stat issues fewer DB RPCs.
  ScopedRpcCounter counter;
  ASSERT_TRUE(service_->StatObject(path + "/o").ok());
  EXPECT_LE(counter.count(), 2);
}

TEST_F(InfiniFsTest, AmCacheInvalidatedOnRename) {
  service_.reset();  // the SetUp service must go before its network
  network_ = std::make_unique<Network>(FastNetworkOptions());
  InfiniFsOptions options;
  options.tafdb = FastTafDbOptions();
  options.enable_am_cache = true;
  service_ = std::make_unique<InfiniFsService>(network_.get(), options);

  ASSERT_TRUE(service_->Mkdir("/m").ok());
  ASSERT_TRUE(service_->Mkdir("/m/x").ok());
  ASSERT_TRUE(service_->Mkdir("/m/x/y").ok());
  ASSERT_TRUE(service_->Mkdir("/m/x/y/z").ok());
  ASSERT_TRUE(service_->CreateObject("/m/x/y/z/o", 1).ok());
  ASSERT_TRUE(service_->StatObject("/m/x/y/z/o").ok());  // warm cache
  ASSERT_TRUE(service_->Mkdir("/m2").ok());
  ASSERT_TRUE(service_->RenameDir("/m/x", "/m2/x2").ok());
  EXPECT_TRUE(service_->StatObject("/m/x/y/z/o").status.IsNotFound());
  EXPECT_TRUE(service_->StatObject("/m2/x2/y/z/o").ok());
}

// --- LocoFS directory machine ------------------------------------------------------

class LocoDirMachineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(NetworkOptions{.zero_latency = true});
    machine_ = std::make_unique<LocoDirMachine>(network_.get());
  }

  Status ApplyCommand(const IndexCommand& command) {
    return DecodeApplyStatus(machine_->Apply(1, EncodeIndexCommand(command)));
  }

  Status ApplyMkdir(const std::string& path, InodeId id) {
    IndexCommand command;
    command.type = IndexCommandType::kAddDir;
    command.id = id;
    command.permission = kPermAll;
    command.inval_path = path;
    return ApplyCommand(command);
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<LocoDirMachine> machine_;
};

TEST_F(LocoDirMachineTest, MkdirResolvesDuringApply) {
  EXPECT_TRUE(ApplyMkdir("/a", 2).ok());
  EXPECT_TRUE(ApplyMkdir("/a/b", 3).ok());
  EXPECT_TRUE(ApplyMkdir("/missing/child", 4).IsNotFound());
  auto info = machine_->ResolveNoCharge(SplitPath("/a/b"), 2);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->id, 3u);
}

TEST_F(LocoDirMachineTest, AttrsTrackChildDirectories) {
  ASSERT_TRUE(ApplyMkdir("/a", 2).ok());
  ASSERT_TRUE(ApplyMkdir("/a/b", 3).ok());
  ASSERT_TRUE(ApplyMkdir("/a/c", 4).ok());
  auto stat = machine_->DirStat(SplitPath("/a"));
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->child_count, 2);
  EXPECT_EQ(machine_->ChildDirs(2).size(), 2u);
}

TEST_F(LocoDirMachineTest, RmdirRequiresEmpty) {
  ASSERT_TRUE(ApplyMkdir("/a", 2).ok());
  ASSERT_TRUE(ApplyMkdir("/a/b", 3).ok());
  IndexCommand rm;
  rm.type = IndexCommandType::kRemoveDir;
  rm.inval_path = "/a";
  EXPECT_EQ(ApplyCommand(rm).code(), StatusCode::kNotEmpty);
  rm.inval_path = "/a/b";
  EXPECT_TRUE(ApplyCommand(rm).ok());
  rm.inval_path = "/a";
  EXPECT_TRUE(ApplyCommand(rm).ok());
}

TEST_F(LocoDirMachineTest, RenamePrepareAndApply) {
  ASSERT_TRUE(ApplyMkdir("/src", 2).ok());
  ASSERT_TRUE(ApplyMkdir("/src/kid", 3).ok());
  ASSERT_TRUE(ApplyMkdir("/dst", 4).ok());

  auto prepared = machine_->RenamePrepare(SplitPath("/src"), SplitPath("/dst/moved"), 9);
  ASSERT_TRUE(prepared.ok());
  // Competing rename busy.
  EXPECT_TRUE(
      machine_->RenamePrepare(SplitPath("/src"), SplitPath("/dst/other"), 10).status().IsBusy());

  IndexCommand rename;
  rename.type = IndexCommandType::kRenameDir;
  rename.uuid = 9;
  rename.inval_path = "/src";
  rename.dst_name = "/dst/moved";
  ASSERT_TRUE(ApplyCommand(rename).ok());
  EXPECT_TRUE(machine_->ResolveNoCharge(SplitPath("/dst/moved/kid"), 3).ok());
  EXPECT_TRUE(machine_->ResolveNoCharge(SplitPath("/src"), 1).status().IsNotFound());
  // Attr bookkeeping moved with it.
  EXPECT_EQ(machine_->DirStat(SplitPath("/dst"))->child_count, 1);
}

TEST_F(LocoDirMachineTest, RenameLoopRejectedAtPrepareAndApply) {
  ASSERT_TRUE(ApplyMkdir("/p", 2).ok());
  ASSERT_TRUE(ApplyMkdir("/p/q", 3).ok());
  EXPECT_TRUE(
      machine_->RenamePrepare(SplitPath("/p"), SplitPath("/p/q/under"), 5).status().IsLoopDetected());
  IndexCommand rename;
  rename.type = IndexCommandType::kRenameDir;
  rename.uuid = 6;
  rename.inval_path = "/p";
  rename.dst_name = "/p/q/under";
  EXPECT_TRUE(ApplyCommand(rename).IsLoopDetected());
}

TEST_F(LocoDirMachineTest, SnapshotRoundTripsTreeAndAttrs) {
  ASSERT_TRUE(ApplyMkdir("/a", 2).ok());
  ASSERT_TRUE(ApplyMkdir("/a/b", 3).ok());
  ASSERT_TRUE(ApplyMkdir("/a/c", 4).ok());

  LocoDirMachine target(network_.get());
  IndexCommand noise;
  noise.type = IndexCommandType::kAddDir;
  noise.id = 50;
  noise.permission = kPermAll;
  noise.inval_path = "/stale";
  ASSERT_TRUE(DecodeApplyStatus(target.Apply(1, EncodeIndexCommand(noise))).ok());

  target.Restore(machine_->Snapshot());
  EXPECT_EQ(target.DirCount(), 3u);
  EXPECT_TRUE(target.ResolveNoCharge(SplitPath("/stale"), 1).status().IsNotFound());
  auto stat = target.DirStat(SplitPath("/a"));
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->child_count, 2);
  EXPECT_EQ(target.ChildDirs(stat->id).size(), 2u);
  // Post-restore mutations keep working.
  IndexCommand rm;
  rm.type = IndexCommandType::kRemoveDir;
  rm.inval_path = "/a/b";
  EXPECT_TRUE(DecodeApplyStatus(target.Apply(2, EncodeIndexCommand(rm))).ok());
  EXPECT_EQ(target.DirStat(SplitPath("/a"))->child_count, 1);
}

// --- Tectonic consistency modes -----------------------------------------------------

TEST(TectonicModesTest, DistributedTxnVariantRetriesUnderConflict) {
  Network network(FastNetworkOptions());
  TectonicOptions options;
  options.tafdb = FastTafDbOptions();
  options.use_distributed_txn = true;
  TectonicService service(&network, options);
  EXPECT_EQ(service.name(), "DBtable");
  ASSERT_TRUE(service.Mkdir("/shared").ok());
  // Hold a foreign lock on the shared directory's attribute row: mkdir inside
  // must abort/retry and eventually give up (capped attempts).
  Shard* shard = service.tafdb()->shard_map()->Route(2);
  auto row = service.tafdb()->LocalGet(EntryKey(kRootId, "shared"));
  ASSERT_TRUE(row.has_value());
  Shard* attr_shard = service.tafdb()->shard_map()->Route(row->id);
  ASSERT_TRUE(attr_shard->TryLockKey(AttrKey(row->id), 31337));
  OpResult result = service.Mkdir("/shared/blocked");
  // Exhausting max_attempts surfaces the tagged kOverloaded status, with the
  // final raw abort preserved in the message.
  EXPECT_TRUE(result.status.IsOverloaded()) << result.status;
  EXPECT_NE(result.status.message().find("Aborted"), std::string::npos) << result.status;
  EXPECT_GT(result.retries, 0);
  attr_shard->UnlockKey(AttrKey(row->id), 31337);
  EXPECT_TRUE(service.Mkdir("/shared/blocked").ok());
  (void)shard;
}

TEST(TectonicModesTest, RelaxedVariantSerializesInsteadOfAborting) {
  Network network(FastNetworkOptions());
  TectonicOptions options;
  options.tafdb = FastTafDbOptions();
  options.use_distributed_txn = false;
  TectonicService service(&network, options);
  EXPECT_EQ(service.name(), "Tectonic");
  ASSERT_TRUE(service.Mkdir("/shared").ok());
  OpResult result = service.Mkdir("/shared/child");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.retries, 0);
}

}  // namespace
}  // namespace mantle
