// Batched & coalesced read path (ISSUE 8): MultiStat/MultiLookup semantics,
// the TafDB MultiGet RPC shape, and the IndexService singleflight coalescer.
//
// The contract under test: MultiStat(paths) returns per-entry results equal
// to what elementwise StatObject would have returned, in input order, while
// the Mantle fast path spends ONE IndexNode RPC (single ReadIndex fence) plus
// one TafDB RPC per touched shard. Coalesced waiters share the leader's
// resolution and report zero extra RPCs, and a coalesced read is never older
// than the joiner's own fence point (joins close before the fence is taken).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/infinifs/infinifs_service.h"
#include "src/baselines/locofs/locofs_service.h"
#include "src/baselines/tectonic/tectonic_service.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

uint64_t MetricValue(const char* name) {
  return obs::Metrics::Instance().CounterValue(name);
}

struct ServiceHarness {
  std::unique_ptr<Network> network;
  std::unique_ptr<MetadataService> service;
};

using HarnessFactory = ServiceHarness (*)();

ServiceHarness MakeMantle() {
  ServiceHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  harness.service = std::make_unique<MantleService>(harness.network.get(), FastMantleOptions());
  return harness;
}

ServiceHarness MakeTectonic() {
  ServiceHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  TectonicOptions options;
  options.tafdb = FastTafDbOptions();
  harness.service = std::make_unique<TectonicService>(harness.network.get(), options);
  return harness;
}

ServiceHarness MakeInfiniFs() {
  ServiceHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  InfiniFsOptions options;
  options.tafdb = FastTafDbOptions();
  harness.service = std::make_unique<InfiniFsService>(harness.network.get(), options);
  return harness;
}

ServiceHarness MakeLocoFs() {
  ServiceHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  LocoFsOptions options;
  options.tafdb = FastTafDbOptions();
  options.raft = FastRaftOptions();
  harness.service = std::make_unique<LocoFsService>(harness.network.get(), options);
  return harness;
}

struct NamedFactory {
  const char* name;
  HarnessFactory factory;
};

class BatchReadConformanceTest : public ::testing::TestWithParam<NamedFactory> {
 protected:
  void SetUp() override {
    harness_ = GetParam().factory();
    service_ = harness_.service.get();
  }
  void TearDown() override {
    harness_.service.reset();
    harness_.network.reset();
  }

  ServiceHarness harness_;
  MetadataService* service_ = nullptr;
};

// A mixed namespace: objects at several depths plus every per-path failure
// class (missing leaf, missing parent, unreadable parent, invalid path).
std::vector<std::string> BuildMixedNamespace(MetadataService* service) {
  EXPECT_TRUE(service->Mkdir("/a").ok());
  EXPECT_TRUE(service->Mkdir("/a/b").ok());
  EXPECT_TRUE(service->Mkdir("/a/b/c").ok());
  EXPECT_TRUE(service->Mkdir("/locked").ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(service->CreateObject("/a/o" + std::to_string(i), 100 + i).ok());
    EXPECT_TRUE(service->CreateObject("/a/b/c/deep" + std::to_string(i), 200 + i).ok());
  }
  EXPECT_TRUE(service->CreateObject("/locked/secret", 7).ok());
  EXPECT_TRUE(service->SetDirPermission("/locked", kPermTraverse).ok());  // no read bit
  return {
      "/a/o0",       "/a/o1",        "/a/b/c/deep0", "/a/b/c/deep3",
      "/a/missing",  "/ghost/o",     "/locked/secret", "",
      "/a/o2",       "/a/b/c/deep1", "/a/o3",        "/a/b/c/deep2",
  };
}

TEST_P(BatchReadConformanceTest, MultiStatMatchesElementwiseStatObject) {
  const std::vector<std::string> paths = BuildMixedNamespace(service_);
  const MultiOpResult batch = service_->MultiStat(paths);
  ASSERT_EQ(batch.results.size(), paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    const StatResult single = service_->StatObject(paths[i]);
    const StatResult& entry = batch.results[i];
    EXPECT_EQ(entry.status.code(), single.status.code())
        << GetParam().name << " path=" << paths[i];
    if (single.ok()) {
      EXPECT_EQ(entry.info.id, single.info.id) << paths[i];
      EXPECT_EQ(entry.info.size, single.info.size) << paths[i];
      EXPECT_EQ(entry.info.is_dir, single.info.is_dir) << paths[i];
      EXPECT_EQ(entry.info.permission, single.info.permission) << paths[i];
    }
  }
}

TEST_P(BatchReadConformanceTest, MultiLookupMatchesElementwiseLookup) {
  const std::vector<std::string> paths = {"/a/o0", "/a/missing", "/ghost/o", "/a/b/c/deep0"};
  BuildMixedNamespace(service_);
  const MultiOpResult batch = service_->MultiLookup(paths);
  ASSERT_EQ(batch.results.size(), paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    const OpResult single = service_->Lookup(paths[i]);
    EXPECT_EQ(batch.results[i].status.code(), single.status.code())
        << GetParam().name << " path=" << paths[i];
  }
}

TEST_P(BatchReadConformanceTest, EmptyBatchCostsNothing) {
  const MultiOpResult batch = service_->MultiStat({});
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.rpcs, 0);
  EXPECT_TRUE(batch.all_ok());
}

// The property test of the ISSUE: under seeded chaos (dropped RPCs) plus one
// coalescer-racing rename flipping a directory back and forth, every
// MultiStat entry must still be a valid elementwise outcome - the true
// stat for a stable path, NotFound for a path the rename can hide, or an
// RPC-level failure code. Never a wrong answer.
TEST_P(BatchReadConformanceTest, MultiStatUnderSeededChaosStaysElementwise) {
  ASSERT_TRUE(service_->Mkdir("/stable").ok());
  ASSERT_TRUE(service_->CreateObject("/stable/o", 42).ok());
  ASSERT_TRUE(service_->Mkdir("/flip").ok());
  ASSERT_TRUE(service_->CreateObject("/flip/o", 43).ok());
  ASSERT_TRUE(service_->Mkdir("/spare").ok());

  FaultRule drops;
  drops.drop_probability = 0.03;
  harness_.network->faults().Reseed(0xba7c4ULL);
  harness_.network->faults().SetRule("tafdb", drops);

  std::atomic<bool> stop{false};
  std::thread renamer([&]() {
    // One racing rename per round trip: /flip <-> /spare/flip.
    bool away = false;
    while (!stop.load(std::memory_order_acquire)) {
      if (!away) {
        away = service_->RenameDir("/flip", "/spare/flip").ok();
      } else {
        away = !service_->RenameDir("/spare/flip", "/flip").ok();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const std::vector<std::string> paths = {"/stable/o", "/flip/o", "/stable/missing",
                                          "/stable/o", "/flip/o"};
  for (int round = 0; round < 40; ++round) {
    const MultiOpResult batch = service_->MultiStat(paths);
    ASSERT_EQ(batch.results.size(), paths.size());
    for (size_t i = 0; i < paths.size(); ++i) {
      const StatResult& entry = batch.results[i];
      const StatusCode code = entry.status.code();
      const bool rpc_failure = code == StatusCode::kTimeout ||
                               code == StatusCode::kUnavailable ||
                               code == StatusCode::kOverloaded;
      if (paths[i] == "/stable/o") {
        ASSERT_TRUE(entry.ok() || rpc_failure) << GetParam().name << " " << entry.status;
        if (entry.ok()) {
          EXPECT_EQ(entry.info.size, 42u);
        }
      } else if (paths[i] == "/flip/o") {
        // The rename may hide the path; it must never corrupt the answer.
        ASSERT_TRUE(entry.ok() || entry.status.IsNotFound() || rpc_failure)
            << GetParam().name << " " << entry.status;
        if (entry.ok()) {
          EXPECT_EQ(entry.info.size, 43u);
        }
      } else {
        ASSERT_TRUE(entry.status.IsNotFound() || rpc_failure)
            << GetParam().name << " " << entry.status;
      }
    }
  }
  stop.store(true, std::memory_order_release);
  renamer.join();

  // Chaos off: the batch and the loop must agree exactly again.
  harness_.network->faults().ClearAll();
  const MultiOpResult clean = service_->MultiStat(paths);
  for (size_t i = 0; i < paths.size(); ++i) {
    const StatResult single = service_->StatObject(paths[i]);
    EXPECT_EQ(clean.results[i].status.code(), single.status.code()) << paths[i];
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, BatchReadConformanceTest,
                         ::testing::Values(NamedFactory{"Mantle", MakeMantle},
                                           NamedFactory{"Tectonic", MakeTectonic},
                                           NamedFactory{"InfiniFS", MakeInfiniFs},
                                           NamedFactory{"LocoFS", MakeLocoFs}),
                         [](const ::testing::TestParamInfo<NamedFactory>& info) {
                           return info.param.name;
                         });

// --- RPC shape of the fast paths ---------------------------------------------

TEST(BatchReadTest, MantleMultiStatIsOneResolvePlusOneRpcPerShard) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.Mkdir("/d").ok());
  std::vector<std::string> paths;
  for (int i = 0; i < 32; ++i) {
    const std::string path = "/d/o" + std::to_string(i);
    ASSERT_TRUE(service.BulkLoadObject(path, 1).ok());
    paths.push_back(path);
  }
  const MultiOpResult batch = service.MultiStat(paths);
  ASSERT_TRUE(batch.all_ok());
  // ONE IndexNode resolve for the whole batch, then at most one TafDB RPC
  // per shard (8 in the fast config). The looped default would pay 2 RPCs
  // per path = 64.
  EXPECT_LE(batch.rpcs, 1 + static_cast<int64_t>(FastTafDbOptions().num_shards));
  EXPECT_GE(batch.rpcs, 2);
}

TEST(BatchReadTest, LoopedDefaultMultiStatMatchesFastPathResults) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.Mkdir("/d").ok());
  std::vector<std::string> paths;
  for (int i = 0; i < 8; ++i) {
    const std::string path = "/d/o" + std::to_string(i);
    ASSERT_TRUE(service.CreateObject(path, 10 + i).ok());
    paths.push_back(path);
  }
  paths.push_back("/d/missing");
  const MultiOpResult fast = service.MultiStat(paths);
  // Qualified call = the contract-mandated looped default on the base class.
  const MultiOpResult looped = service.MetadataService::MultiStat(paths);
  ASSERT_EQ(fast.results.size(), looped.results.size());
  for (size_t i = 0; i < fast.results.size(); ++i) {
    EXPECT_EQ(fast.results[i].status.code(), looped.results[i].status.code()) << paths[i];
    if (looped.results[i].ok()) {
      EXPECT_EQ(fast.results[i].info.size, looped.results[i].info.size) << paths[i];
      EXPECT_EQ(fast.results[i].info.id, looped.results[i].info.id) << paths[i];
    }
  }
  // The fast path spends strictly fewer round trips than the loop.
  EXPECT_LT(fast.rpcs, looped.rpcs);
}

TEST(BatchReadTest, TafDbMultiGetPreservesInputOrderAcrossShards) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.Mkdir("/m").ok());
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    names.push_back("k" + std::to_string(i));
    ASSERT_TRUE(service.CreateObject("/m/" + names.back(), 1000 + i).ok());
  }
  const StatResult dir_stat = service.StatDir("/m");
  ASSERT_TRUE(dir_stat.ok());
  const StatInfo dir_info = dir_stat.info;
  std::vector<MetaKey> keys;
  for (const auto& name : names) {
    keys.push_back(EntryKey(dir_info.id, name));
  }
  keys.push_back(EntryKey(dir_info.id, "absent"));
  ScopedRpcCounter rpcs;
  const auto rows = service.tafdb()->MultiGet(keys);
  ASSERT_EQ(rows.size(), keys.size());
  for (size_t i = 0; i < names.size(); ++i) {
    ASSERT_TRUE(rows[i].ok()) << names[i];
    EXPECT_EQ(rows[i]->size, 1000 + i) << names[i];
  }
  EXPECT_TRUE(rows.back().status().IsNotFound());
  // Grouped by shard: never more round trips than shards, regardless of batch.
  EXPECT_LE(rpcs.count(), static_cast<int64_t>(FastTafDbOptions().num_shards));
  EXPECT_GE(rpcs.count(), 1);
}

// --- singleflight coalescing -------------------------------------------------

MantleOptions CoalesceMantleOptions() {
  MantleOptions options = FastMantleOptions();
  options.index.coalesce.enable = true;
  options.op_deadline_nanos = 5'000'000'000;  // paused leader must not hang ops
  return options;
}

// Deterministic coalesce plan: pause the IndexNode leader's service port so
// the first lookup's handler cannot start (its `started` flag stays false),
// let N joiners attach, then resume. Exactly one resolve leader, N waiters.
TEST(BatchReadTest, CoalescedWaitersShareOneResolveAndReportZeroRpcs) {
  Network network(FastNetworkOptions());
  MantleService service(&network, CoalesceMantleOptions());
  ASSERT_TRUE(service.Mkdir("/c").ok());
  ASSERT_TRUE(service.CreateObject("/c/o", 5).ok());
  ASSERT_TRUE(service.Lookup("/c/o").ok());  // warm

  RaftNode* leader = service.index()->group()->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  const uint64_t hits_before = MetricValue("index.coalesce.hit");
  const uint64_t leaders_before = MetricValue("index.coalesce.leader");

  network.faults().PauseServer(leader->server()->name());
  constexpr int kWaiters = 4;
  std::vector<std::thread> threads;
  std::vector<OpResult> results(1 + kWaiters);
  threads.emplace_back([&]() { results[0] = service.Lookup("/c/o"); });
  // Wait until the resolve leader has registered its in-flight record, then
  // launch the joiners; they attach because the paused handler has not set
  // the started flag.
  while (MetricValue("index.coalesce.leader") == leaders_before) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  for (int i = 1; i <= kWaiters; ++i) {
    threads.emplace_back([&, i]() { results[i] = service.Lookup("/c/o"); });
  }
  while (MetricValue("index.coalesce.hit") < hits_before + kWaiters) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  network.faults().ResumeServer(leader->server()->name());
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(MetricValue("index.coalesce.leader"), leaders_before + 1);
  EXPECT_EQ(MetricValue("index.coalesce.hit"), hits_before + kWaiters);
  int zero_rpc_ops = 0;
  for (const OpResult& result : results) {
    ASSERT_TRUE(result.ok()) << result.status;
    if (result.rpcs == 0) {
      ++zero_rpc_ops;
    }
  }
  // Every waiter rode the leader's RPC for free.
  EXPECT_EQ(zero_rpc_ops, kWaiters);
}

TEST(BatchReadTest, CoalesceJoinIsTraceVisible) {
  Network network(FastNetworkOptions());
  MantleService service(&network, CoalesceMantleOptions());
  ASSERT_TRUE(service.Mkdir("/t").ok());
  ASSERT_TRUE(service.CreateObject("/t/o", 5).ok());
  ASSERT_TRUE(service.Lookup("/t/o").ok());

  RaftNode* leader = service.index()->group()->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  const uint64_t leaders_before = MetricValue("index.coalesce.leader");
  const uint64_t hits_before = MetricValue("index.coalesce.hit");
  network.faults().PauseServer(leader->server()->name());

  std::thread first([&]() { (void)service.Lookup("/t/o"); });
  while (MetricValue("index.coalesce.leader") == leaders_before) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  obs::OpTrace trace;
  std::thread joiner([&]() {
    OpContext ctx = service.MakeOpContext();
    ctx.trace = &trace;
    (void)service.Lookup(ctx, "/t/o");
  });
  while (MetricValue("index.coalesce.hit") < hits_before + 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  network.faults().ResumeServer(leader->server()->name());
  first.join();
  joiner.join();

  bool saw_join_span = false;
  for (const auto& span : trace.spans()) {
    if (span.name == "coalesce.join") {
      saw_join_span = true;
    }
  }
  EXPECT_TRUE(saw_join_span) << trace.Render();
}

// Coalescing OFF (the default) must leave the read path bit-for-bit at seed
// behaviour: no registry traffic at all.
TEST(BatchReadTest, CoalescingOffTouchesNoRegistry) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.Mkdir("/plain").ok());
  ASSERT_TRUE(service.CreateObject("/plain/o", 5).ok());
  const uint64_t hits_before = MetricValue("index.coalesce.hit");
  const uint64_t leaders_before = MetricValue("index.coalesce.leader");
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&]() {
      for (int j = 0; j < 20; ++j) {
        ASSERT_TRUE(service.Lookup("/plain/o").ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(MetricValue("index.coalesce.hit"), hits_before);
  EXPECT_EQ(MetricValue("index.coalesce.leader"), leaders_before);
}

// Consistency rule: a coalesced read is never older than the joiner's own
// fence point. Concurrent same-path lookups racing a rename must each see
// either the pre-rename or post-rename world - a NotFound after the joiner
// observed the new name is fine, a stale success after the rename committed
// AND the joiner's fence passed is not distinguishable here, so we assert
// the strong observable: every op terminates with ok or NotFound, and once a
// final Lookup succeeds the result is the current world.
TEST(BatchReadTest, CoalescedLookupsSurviveRacingRename) {
  Network network(FastNetworkOptions());
  MantleService service(&network, CoalesceMantleOptions());
  ASSERT_TRUE(service.Mkdir("/r").ok());
  ASSERT_TRUE(service.Mkdir("/r/dir").ok());
  ASSERT_TRUE(service.CreateObject("/r/dir/o", 5).ok());
  ASSERT_TRUE(service.Mkdir("/r2").ok());

  std::atomic<bool> stop{false};
  std::thread renamer([&]() {
    bool away = false;
    while (!stop.load(std::memory_order_acquire)) {
      if (!away) {
        away = service.RenameDir("/r/dir", "/r2/dir").ok();
      } else {
        away = !service.RenameDir("/r2/dir", "/r/dir").ok();
      }
    }
  });
  std::vector<std::thread> readers;
  std::atomic<int> bad{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      for (int i = 0; i < 200; ++i) {
        const OpResult result = service.Lookup("/r/dir/o");
        if (!result.ok() && !result.status.IsNotFound()) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& reader : readers) {
    reader.join();
  }
  stop.store(true, std::memory_order_release);
  renamer.join();
  EXPECT_EQ(bad.load(), 0);
  // Whichever side the rename settled on, the object is reachable there.
  const bool home = service.Lookup("/r/dir/o").ok();
  const bool away = service.Lookup("/r2/dir/o").ok();
  EXPECT_TRUE(home != away) << "object must live on exactly one side";
}

}  // namespace
}  // namespace mantle
