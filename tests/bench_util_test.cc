#include <gtest/gtest.h>

#include <cstdlib>

#include "src/bench_util/bench_env.h"
#include "src/bench_util/report.h"
#include "src/common/config.h"
#include "src/common/logging.h"

namespace mantle {
namespace {

TEST(FormatTest, OpsScalesUnits) {
  EXPECT_EQ(FormatOps(512), "512 op/s");
  EXPECT_EQ(FormatOps(12'300), "12.3 Kop/s");
  EXPECT_EQ(FormatOps(2'500'000), "2.50 Mop/s");
}

TEST(FormatTest, MicrosScalesUnits) {
  EXPECT_EQ(FormatMicros(1'500), "1.5 us");
  EXPECT_EQ(FormatMicros(2'500'000), "2.50 ms");
  EXPECT_EQ(FormatMicros(3'200'000'000.0), "3.20 s");
}

TEST(FormatTest, CountScalesUnits) {
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1'500), "1.5K");
  EXPECT_EQ(FormatCount(2'500'000), "2.5M");
  EXPECT_EQ(FormatCount(3'000'000'000ULL), "3.0B");
}

TEST(BenchConfigTest, EnvOverridesApply) {
  setenv("MANTLE_BENCH_THREADS", "7", 1);
  setenv("MANTLE_BENCH_SECONDS", "0.5", 1);
  setenv("MANTLE_BENCH_DIRS", "123", 1);
  setenv("MANTLE_BENCH_OBJECTS", "456", 1);
  BenchConfig config = BenchConfig::FromEnv();
  EXPECT_EQ(config.threads, 7);
  EXPECT_DOUBLE_EQ(config.seconds_per_cell, 0.5);
  EXPECT_EQ(config.ns_dirs, 123u);
  EXPECT_EQ(config.ns_objects, 456u);
  EXPECT_EQ(config.DurationNanos(), 500'000'000);
  unsetenv("MANTLE_BENCH_THREADS");
  unsetenv("MANTLE_BENCH_SECONDS");
  unsetenv("MANTLE_BENCH_DIRS");
  unsetenv("MANTLE_BENCH_OBJECTS");
}

TEST(BenchConfigTest, QuickModeShrinksDefaults) {
  setenv("MANTLE_BENCH_QUICK", "1", 1);
  BenchConfig quick = BenchConfig::FromEnv();
  unsetenv("MANTLE_BENCH_QUICK");
  BenchConfig full = BenchConfig::FromEnv();
  EXPECT_LT(quick.threads, full.threads);
  EXPECT_LT(quick.ns_dirs, full.ns_dirs);
  EXPECT_LT(quick.WarmupNanos(), full.WarmupNanos());
}

TEST(ConfigTest, EnvHelpers) {
  setenv("MANTLE_TEST_INT", "42", 1);
  setenv("MANTLE_TEST_DBL", "2.5", 1);
  setenv("MANTLE_TEST_BOOL", "false", 1);
  setenv("MANTLE_TEST_STR", "hello", 1);
  EXPECT_EQ(EnvInt("MANTLE_TEST_INT", 0), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("MANTLE_TEST_DBL", 0), 2.5);
  EXPECT_FALSE(EnvBool("MANTLE_TEST_BOOL", true));
  EXPECT_EQ(EnvString("MANTLE_TEST_STR", ""), "hello");
  EXPECT_EQ(EnvInt("MANTLE_TEST_ABSENT", 7), 7);
  EXPECT_TRUE(EnvBool("MANTLE_TEST_ABSENT", true));
  setenv("MANTLE_TEST_INT", "notanumber", 1);
  EXPECT_EQ(EnvInt("MANTLE_TEST_INT", 9), 9);
  unsetenv("MANTLE_TEST_INT");
  unsetenv("MANTLE_TEST_DBL");
  unsetenv("MANTLE_TEST_BOOL");
  unsetenv("MANTLE_TEST_STR");
}

TEST(LoggingTest, LevelGating) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kWarning));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));
  SetLogLevel(before);
}

TEST(SystemFactoryTest, MakesEverySystemKind) {
  // Constructing each paper-scaled topology must succeed and serve one op.
  for (SystemKind kind : {SystemKind::kMantle, SystemKind::kTectonic, SystemKind::kDbTable,
                          SystemKind::kInfiniFs, SystemKind::kLocoFs}) {
    SystemInstance instance = MakeSystem(kind);
    ASSERT_NE(instance.get(), nullptr);
    EXPECT_TRUE(instance.get()->Mkdir("/smoke").ok()) << SystemName(kind);
    EXPECT_TRUE(instance.get()->StatDir("/smoke").ok()) << SystemName(kind);
  }
}

}  // namespace
}  // namespace mantle
